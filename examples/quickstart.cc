/// \file quickstart.cc
/// \brief Ten-minute tour of the Glue-Nail engine.
///
/// Shows the full two-language workflow of the paper: declarative NAIL!
/// rules for the query part, procedural Glue for state and control, the
/// shared subgoal interface between them, and EDB persistence.
///
///   $ ./quickstart

#include <iostream>

#include "src/api/engine.h"

namespace {

constexpr std::string_view kProgram = R"(
module quickstart;
edb edge(X,Y), visited(X);
export crawl(Start:Node);

% --- NAIL!: the declarative part -------------------------------------
% Reachability over edge/2, written as plain recursive rules.
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).

% --- Glue: the procedural part ---------------------------------------
% Crawl from a start node: record every reachable node in the visited
% EDB relation (a side effect no NAIL! rule could perform), then return
% them. Note the NAIL! predicate `path` used as an ordinary subgoal.
proc crawl(Start:Node)
  visited(N) += in(Start) & path(Start, N).
  return(Start:Node) := in(Start) & visited(Node).
end

% --- Facts may live in the module too --------------------------------
edge(1,2). edge(2,3). edge(3,4). edge(2,5).
end
)";

void Check(const gluenail::Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  gluenail::Engine engine;
  Check(engine.LoadProgram(kProgram));
  std::cout << "compiled: "
            << gluenail::FormatCompileStats(engine.compile_stats()) << "\n\n";

  // Ad-hoc queries: conjunctive goals over EDB and NAIL! predicates alike.
  auto answers = engine.Query("path(1, Y) & Y > 2");
  Check(answers.status());
  std::cout << "path(1, Y) & Y > 2:\n";
  for (const gluenail::Tuple& row : answers->rows) {
    std::cout << "  Y = " << engine.terms().ToString(row[0]) << "\n";
  }

  // Call the exported procedure once on a set of seeds (§4 semantics).
  auto crawled =
      engine.Call("crawl", {{*engine.InternTerm("2")}});
  Check(crawled.status());
  std::cout << "\ncrawl(2):\n";
  for (const gluenail::Tuple& row : *crawled) {
    std::cout << "  reached " << engine.terms().ToString(row[1]) << "\n";
  }

  // Ad-hoc Glue statements mutate the EDB...
  Check(engine.ExecuteStatement("edge(5, 99) += true."));
  // ...and NAIL! predicates always reflect the *current* EDB (§2).
  auto recheck = engine.Query("path(2, 99)");
  Check(recheck.status());
  std::cout << "\nafter adding edge(5,99), path(2,99) is "
            << (recheck->rows.empty() ? "false" : "true") << "\n";

  // §10: the EDB persists between runs.
  const std::string file = "/tmp/gluenail_quickstart.facts";
  Check(engine.SaveEdbFile(file));
  std::cout << "\nEDB saved to " << file << "\n";
  std::cout << "run stats: " << gluenail::FormatExecStats(engine.exec_stats())
            << "\n";
  return 0;
}
