/// \file cad_select.cc
/// \brief The paper's Figure 1: interactive element selection in a
/// micro-CAD system.
///
/// The `windows` and `graphics` modules the paper imports are foreign
/// code; here they are host procedures (the §10 foreign-language
/// interface) over a scripted session, so the example runs unattended:
///
///   $ ./cad_select
///
/// The user "clicks" near a cluster of elements, rejects the nearest
/// candidate, and accepts the second — watch the highlight/dehighlight
/// traffic and the prompt.

#include <deque>
#include <iostream>

#include "src/api/engine.h"

namespace {

constexpr std::string_view kCadProgram = R"(
module cad;
export select(:Key);
from windows import event( :Type, Data );
from graphics import highlight( Key: ), dehighlight( Key: );
edb element(Key, P1, DS),
    tolerance(T),
    click(X, Y);

% select: find all elements within tolerance of the mouse point, then
% offer them to the user one at a time in increasing distance order
% (Figure 1 of the paper).
proc select( :Key )
rels
  possible(Key, D), try(Key), confirmed(Key);
  click(X,Y) := event( mouse, p(X,Y) ).
  possible( Key, D ):= graphic_search( Key, D ).
  repeat
    try(Key):=
      possible( Key, D ) &
      D = min(D) &
      It = arbitrary(Key) &
      Key = It &
      --possible( It, D ).
    confirmed(K):=
      try(K) &
      highlight(K) &
      write( 'This one? ' ) &
      event( keyboard, KeyBuffer ) &
      dehighlight( K ) &
      KeyBuffer = 'y'.
  until {confirmed(K) | empty(possible(K,D)) };
  return(:Key):= confirmed( Key ).
end

% The declarative half: a NAIL! rule computing distances.
graphic_search( Key, Dist ):-
  click(X,Y) &
  element( Key, p(Xmin, Ymin), _ ) &
  tolerance(T) &
  (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T &
  Dist = (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin).

% The drawing.
element(inner_wall,  p(12,10), solid).
element(outer_wall,  p(14,14), solid).
element(door_arc,    p(11,11), dashed).
element(window_far,  p(90,80), solid).
tolerance(40).
end
)";

struct ScriptedSession {
  struct Event {
    std::string type;
    int64_t x = 0, y = 0;
    std::string key;
  };
  std::deque<Event> events;

  void Register(gluenail::Engine* engine) {
    using gluenail::HostProcedure;
    using gluenail::Relation;
    using gluenail::Status;
    using gluenail::TermPool;
    using gluenail::Tuple;

    HostProcedure event{"event", 0, 2, true, nullptr};
    event.fn = [this](TermPool* pool, const Relation& input,
                      Relation* output) -> Status {
      if (input.empty()) return Status::OK();
      if (events.empty()) {
        return Status::RuntimeError("scripted session ran out of events");
      }
      Event e = events.front();
      events.pop_front();
      gluenail::TermId data;
      if (e.type == "mouse") {
        std::cout << "[windows]  mouse click at (" << e.x << "," << e.y
                  << ")\n";
        std::vector<gluenail::TermId> xy{pool->MakeInt(e.x),
                                         pool->MakeInt(e.y)};
        data = pool->MakeCompound("p", xy);
      } else {
        std::cout << "[user]     types '" << e.key << "'\n";
        data = pool->MakeSymbol(e.key);
      }
      output->Insert(Tuple{pool->MakeSymbol(e.type), data});
      return Status::OK();
    };
    if (!engine->RegisterHostProcedure(std::move(event)).ok()) std::abort();

    auto tracer = [](const char* verb) {
      return [verb](TermPool* pool, const Relation& input,
                    Relation* output) -> Status {
        for (gluenail::RowView t : input) {
          std::cout << "[graphics] " << verb << " "
                    << pool->ToString(t[0]) << "\n";
          output->Insert(t);
        }
        return Status::OK();
      };
    };
    HostProcedure hi{"highlight", 1, 0, true, tracer("highlight")};
    HostProcedure lo{"dehighlight", 1, 0, true, tracer("dehighlight")};
    if (!engine->RegisterHostProcedure(std::move(hi)).ok()) std::abort();
    if (!engine->RegisterHostProcedure(std::move(lo)).ok()) std::abort();
  }
};

}  // namespace

int main() {
  gluenail::Engine engine;
  ScriptedSession session;
  // The script: click near the wall cluster, reject the nearest element
  // (door_arc at distance 2), accept the next (inner_wall at distance 4).
  session.events.push_back({"mouse", 10, 10, ""});
  session.events.push_back({"keyboard", 0, 0, "n"});
  session.events.push_back({"keyboard", 0, 0, "y"});
  session.Register(&engine);

  gluenail::Status s = engine.LoadProgram(kCadProgram);
  if (!s.ok()) {
    std::cerr << "compile failed: " << s << "\n";
    return 1;
  }

  std::cout << "--- running select ---\n";
  auto result = engine.Call("select", {{}});
  if (!result.ok()) {
    std::cerr << "select failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "--- done ---\n";
  if (result->empty()) {
    std::cout << "nothing selected\n";
  } else {
    std::cout << "selected: " << engine.terms().ToString((*result)[0][0])
              << "\n";
  }
  return 0;
}
