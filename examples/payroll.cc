/// \file payroll.cc
/// \brief A small payroll application: the update-by-key operator,
/// grouped aggregates, a derived NAIL! view, I/O, and persistence —
/// the "complete application" shape the paper's intro calls for.
///
///   $ ./payroll

#include <iostream>

#include "src/api/engine.h"

namespace {

constexpr std::string_view kPayroll = R"(
module payroll;
edb employee(Name, Dept, Salary), bonus(Dept, Pct);
export apply_raises(:), report(:);

% A derived view: effective pay after the department bonus.
effective(Name, Dept, Pay) :-
  employee(Name, Dept, Salary) &
  bonus(Dept, Pct) &
  Pay = Salary + Salary * Pct / 100.

% Update-by-key (§3.1: "analogous to UPDATE in SQL"): everyone below the
% department mean gets pulled up to it.
proc apply_raises(:)
rels dept_mean(Dept, M);
  dept_mean(D, M) :=
    employee(_, D, S) & group_by(D) & M = mean(S).
  employee(N, D, M) +=[N]
    employee(N, D, S) & dept_mean(D, M) & S < M.
  return(:) := true.
end

proc report(:)
  return(:) :=
    effective(Name, Dept, Pay) &
    writeln(concat(concat(Name, ' earns '), Pay)).
end

employee(ada, eng, 120).
employee(grace, eng, 140).
employee(alan, eng, 100).
employee(edgar, sales, 90).
employee(tony, sales, 110).
bonus(eng, 10).
bonus(sales, 5).
end
)";

void Check(const gluenail::Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  gluenail::Engine engine;
  Check(engine.LoadProgram(kPayroll));

  std::cout << "before raises:\n";
  Check(engine.Call("report", {{}}).status());

  Check(engine.Call("apply_raises", {{}}).status());

  std::cout << "\nafter raises (everyone at or above their dept mean):\n";
  Check(engine.Call("report", {{}}).status());

  // Show the plan of the key update, for the curious.
  auto plan = engine.ExplainStatement(
      "employee(N, D, M) +=[N] employee(N, D, S) & dm(D, M) & S < M.");
  Check(plan.status());
  std::cout << "\nplan of the update-by-key statement:\n" << *plan;

  Check(engine.SaveEdbFile("/tmp/gluenail_payroll.facts"));
  std::cout << "\nEDB saved to /tmp/gluenail_payroll.facts\n";
  return 0;
}
