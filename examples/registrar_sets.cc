/// \file registrar_sets.cc
/// \brief The paper's §5 registrar domain: HiLog set-valued attributes.
///
/// class_info carries two *set-valued* attributes — the TAs and the
/// students of each class — represented as predicate *names* (HiLog),
/// exactly as §5.1 prescribes. The example shows:
///   * parameterized NAIL! predicates (tas(ID), students(ID));
///   * set dereferencing through variables (T(TA), S(Student));
///   * cheap set-name equality vs member-wise set_eq (§5.1);
///   * grouped aggregation over the derived data (§3.3.1);
///   * EDB persistence (§10).
///
///   $ ./registrar_sets

#include <iostream>

#include "src/api/engine.h"

namespace {

constexpr std::string_view kRegistrar = R"(
module registrar;
edb class_instructor(C,I), class_room(C,R), class_subject(C,S),
    failed_exam(P,S), attends(P,C), grade(P,C,G);
export set_eq(S,T:), roster(:Course,Student);

% ---- §5.1: class_info with set-valued attributes --------------------
class_info( ID, Instructor, Room, tas(ID), students(ID) ) :-
  class_instructor( ID, Instructor ) &
  class_room( ID, Room ).

% The TAs for a course: graduate students who failed the qualifying
% exam in the course's subject area (the paper's joke, preserved).
tas(ID)(Ta) :-
  class_subject(ID, Subject) &
  failed_exam(Ta, Subject).

students(ID)(Student) :-
  class_subject(ID, _) &
  attends(Student, ID).

% ---- §5.1: member-wise set comparison, verbatim ----------------------
proc set_eq( S, T: )
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end

% ---- A Glue procedure walking the sets -------------------------------
proc roster(:Course,Student)
  return(:Course,Student) :=
    class_info(Course, _, _, _, Set) &
    Set(Student).
end

% ---- EDB --------------------------------------------------------------
class_instructor( cs99, smith ).
class_instructor( cs101, jones_prof ).
class_room( cs99, mjh460a ).
class_room( cs101, gates104 ).
class_subject( cs99, databases ).
class_subject( cs101, databases ).
failed_exam( jones, databases ).
attends( wilson, cs99 ).
attends( green, cs99 ).
attends( wilson, cs101 ).
attends( green, cs101 ).
grade( wilson, cs99, 91 ).
grade( green, cs99, 78 ).
grade( wilson, cs101, 85 ).
grade( green, cs101, 89 ).
end
)";

void Check(const gluenail::Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s << "\n";
    std::exit(1);
  }
}

void Show(gluenail::Engine* engine, std::string_view goal) {
  auto r = engine->Query(goal);
  Check(r.status());
  std::cout << goal << "\n";
  for (const gluenail::Tuple& row : r->rows) {
    std::cout << "  ";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) std::cout << ", ";
      std::cout << r->vars[i] << " = " << engine->terms().ToString(row[i]);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  gluenail::Engine engine;
  Check(engine.LoadProgram(kRegistrar));

  // The paper's implied IDB tuples.
  Show(&engine, "students(cs99)(Who)");
  Show(&engine, "tas(cs99)(Who)");

  // Set-valued attributes dereferenced through variables (§5.1).
  Show(&engine, "class_info(C, I, R, T, S) & T(Ta) & S(Student)");

  // Cheap set equality: identical names, one term comparison.
  Show(&engine, "class_info(cs99, _, _, _, S1) & "
                "class_info(cs99, _, _, _, S2) & S1 = S2");

  // Member-wise set_eq: cs99 and cs101 have the same student body even
  // though the set *names* differ.
  auto eq = engine.Call(
      "set_eq", {{*engine.InternTerm("students(cs99)"),
                  *engine.InternTerm("students(cs101)")}});
  Check(eq.status());
  std::cout << "set_eq(students(cs99), students(cs101)): "
            << (eq->empty() ? "different" : "equal members") << "\n\n";

  // Grouped aggregation over grades (§3.3.1).
  Check(engine.ExecuteStatement(
      "course_average(C, A) := grade(_, C, G) & group_by(C) & "
      "A = mean(G)."));
  Show(&engine, "course_average(C, A)");

  // Walk a set through the exported procedure.
  auto roster = engine.Call("roster", {{}});
  Check(roster.status());
  std::cout << "roster:\n";
  for (const gluenail::Tuple& row : *roster) {
    std::cout << "  " << engine.terms().ToString(row[0]) << " -> "
              << engine.terms().ToString(row[1]) << "\n";
  }

  const std::string file = "/tmp/gluenail_registrar.facts";
  Check(engine.SaveEdbFile(file));
  std::cout << "\nEDB saved to " << file << "\n";
  return 0;
}
