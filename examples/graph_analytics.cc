/// \file graph_analytics.cc
/// \brief A small graph-analytics workload mixing NAIL! and Glue.
///
/// Demonstrates the division of labor the paper's intro motivates:
///  * NAIL! for the fixpoint queries (reachability, 2-hop neighbors);
///  * Glue for everything stateful: a worklist loop assigning component
///    ids with repeat/until + EDB updates, and report formatting via
///    write/aggregates.
///
///   $ ./graph_analytics

#include <iostream>
#include <random>

#include "src/api/engine.h"

namespace {

constexpr std::string_view kProgram = R"(
module graphs;
edb edge(X,Y), node(X), comp(Node, Id), pending(X);
export components(:), summary(:);

% ---- NAIL!: undirected reachability ----------------------------------
link(X,Y) :- edge(X,Y).
link(X,Y) :- edge(Y,X).
reach(X,Y) :- link(X,Y).
reach(X,Z) :- reach(X,Y) & link(Y,Z).

% ---- Glue: label connected components ---------------------------------
% Repeatedly pick the smallest unlabeled node, stamp its whole reachable
% set with its id, and continue until nothing is pending.
proc components(:)
  pending(X) := node(X).
  repeat
    comp(Seed, Seed) += pending(Seed) & Seed = min(Seed).
    comp(Y, Seed)    += comp(Seed, Seed) & pending(Seed) & reach(Seed, Y).
    pending(X)       -= comp(X, _) & pending(X).
  until empty(pending(_));
  return(:) := true.
end

% ---- Glue: aggregate report --------------------------------------------
proc summary(:)
  return(:) :=
    comp(N, Id) & group_by(Id) & Size = count(N) &
    writeln(concat(concat('component ', Id), concat(' size ', Size))).
end
end
)";

void Check(const gluenail::Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  gluenail::Engine engine;
  Check(engine.LoadProgram(kProgram));

  // Build a random graph with a few obvious islands.
  std::mt19937 rng(1991);  // the year of the paper
  const int kNodes = 60;
  for (int i = 0; i < kNodes; ++i) {
    Check(engine.AddFact(gluenail::StrCat("node(", i, ").")));
  }
  // Three chains plus random extra edges inside each third.
  for (int base : {0, 20, 40}) {
    for (int i = base; i < base + 19; ++i) {
      if (i % 7 == 3) continue;  // break the chains into more components
      Check(engine.AddFact(gluenail::StrCat("edge(", i, ",", i + 1, ").")));
    }
  }

  Check(engine.Call("components", {{}}).status());

  auto comp = engine.Query("comp(N, Id)");
  Check(comp.status());
  std::cout << "labeled " << comp->rows.size() << " nodes\n";

  std::cout << "\nper-component sizes:\n";
  Check(engine.Call("summary", {{}}).status());

  // Cross-check one component against the NAIL! relation directly.
  auto island = engine.Query("comp(N, 0)");
  Check(island.status());
  auto reach0 = engine.Query("reach(0, Y)");
  Check(reach0.status());
  std::cout << "\ncomponent of node 0 has " << island->rows.size()
            << " members; reach(0,_) has " << reach0->rows.size()
            << " rows\n";

  std::cout << "\nexec stats: "
            << gluenail::FormatExecStats(engine.exec_stats()) << "\n";
  return 0;
}
