/// \file ast.h
/// \brief Abstract syntax shared by Glue and NAIL!.
///
/// The paper's central design point (§1, §11) is that the two languages
/// share data model, type system, and syntax; accordingly they share one
/// AST here. A Glue assignment statement and a NAIL! rule differ only in
/// the connective (`:=` family vs `:-`) and in which subgoal kinds they may
/// contain; the NAIL!-to-Glue compiler (src/nail/nail_to_glue.cc) produces
/// ordinary Glue AST that flows through the same planner as hand-written
/// Glue — which is exactly how the paper obtains a single optimizer over
/// all code.

#ifndef GLUENAIL_AST_AST_H_
#define GLUENAIL_AST_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace gluenail {
namespace ast {

/// 1-based source position for diagnostics; (0,0) for generated code.
struct SourceLoc {
  int line = 0;
  int col = 0;
};

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

/// Kinds of (possibly non-ground) syntactic terms. Arithmetic expressions
/// and aggregate calls are represented uniformly as kApply terms with
/// operator functors ("+", "min", "concat", ...); the planner gives them
/// meaning inside comparison subgoals.
enum class TermKind : uint8_t {
  kVariable,  ///< X, Name — an upper-case identifier
  kWildcard,  ///< _ — matches anything, binds nothing
  kInt,
  kFloat,
  kSymbol,  ///< lower-case identifier or quoted string (atom == string, §2)
  kApply,   ///< functor(args...); functor is children[0] and may be any
            ///< term, including a variable (HiLog, §5)
};

struct Term {
  TermKind kind = TermKind::kSymbol;
  /// Variable or symbol name.
  std::string name;
  int64_t int_value = 0;
  double float_value = 0.0;
  /// For kApply: children[0] is the functor, children[1..] the arguments.
  std::vector<Term> children;
  SourceLoc loc;

  static Term Variable(std::string name, SourceLoc loc = {});
  static Term Wildcard(SourceLoc loc = {});
  static Term Int(int64_t v, SourceLoc loc = {});
  static Term Float(double v, SourceLoc loc = {});
  static Term Symbol(std::string name, SourceLoc loc = {});
  static Term Apply(Term functor, std::vector<Term> args, SourceLoc loc = {});
  /// Convenience: symbol-functor application.
  static Term Apply(std::string functor, std::vector<Term> args,
                    SourceLoc loc = {});

  bool IsVariable() const { return kind == TermKind::kVariable; }
  bool IsWildcard() const { return kind == TermKind::kWildcard; }
  bool IsSymbol() const { return kind == TermKind::kSymbol; }
  bool IsApply() const { return kind == TermKind::kApply; }
  /// True for terms with no variables or wildcards anywhere.
  bool IsGround() const;

  const Term& functor() const { return children[0]; }
  /// Number of arguments of a kApply (children minus the functor).
  size_t apply_arity() const { return children.size() - 1; }
  const Term& arg(size_t i) const { return children[i + 1]; }

  /// Structural equality (including locations being ignored).
  bool Equals(const Term& other) const;

  /// Appends every distinct variable name, in first-occurrence order.
  void CollectVariables(std::vector<std::string>* out) const;
};

// ---------------------------------------------------------------------------
// Subgoals
// ---------------------------------------------------------------------------

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Renders "=", "!=", "<", "<=", ">", ">=".
const char* CompareOpName(CompareOp op);

enum class SubgoalKind : uint8_t {
  /// p(args) — an EDB relation, local relation, NAIL! predicate, Glue
  /// procedure, `in`, or I/O builtin; the resolver decides which (§2).
  kAtom,
  /// !p(args) — negation; requires all its variables bound (safety).
  kNegatedAtom,
  /// lhs op rhs — comparisons, arithmetic, string builtins, and (when the
  /// right side mentions an aggregate functor) aggregation (§3.3).
  kComparison,
  /// group_by(V1,...,Vk) — partitions the supplementary relation (§3.3.1).
  kGroupBy,
  /// ++p(args) — EDB insertion performed per supplementary tuple.
  kInsert,
  /// --p(args) — EDB deletion performed per supplementary tuple
  /// (Figure 1 uses this to shrink `possible`).
  kDelete,
};

struct Subgoal {
  SubgoalKind kind = SubgoalKind::kAtom;
  /// Predicate name term for kAtom/kNegatedAtom/kInsert/kDelete. May be a
  /// symbol (`edge`), a variable (`T` — HiLog set attribute), or a compound
  /// with variables (`tas(ID)` — parameterized predicate).
  Term pred;
  /// Arguments for the predicate-shaped kinds; group_by variables for
  /// kGroupBy.
  std::vector<Term> args;
  /// Comparison payload (kComparison only).
  CompareOp cmp = CompareOp::kEq;
  Term lhs, rhs;
  SourceLoc loc;

  static Subgoal Atom(Term pred, std::vector<Term> args, SourceLoc loc = {});
  static Subgoal Negated(Term pred, std::vector<Term> args,
                         SourceLoc loc = {});
  static Subgoal Comparison(Term lhs, CompareOp op, Term rhs,
                            SourceLoc loc = {});
  static Subgoal GroupBy(std::vector<Term> vars, SourceLoc loc = {});
  static Subgoal Insert(Term pred, std::vector<Term> args,
                        SourceLoc loc = {});
  static Subgoal Delete(Term pred, std::vector<Term> args,
                        SourceLoc loc = {});
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// The four assignment operators of §3.1.
enum class AssignOp : uint8_t {
  kClear,   ///< :=  overwrite the head relation
  kInsert,  ///< +=  add tuples
  kDelete,  ///< -=  remove tuples
  kModify,  ///< +=[Z...]  update by key
};

const char* AssignOpName(AssignOp op);

struct Statement;

struct Assignment {
  /// Head predicate name; `return` heads are plain atoms whose name is the
  /// symbol "return".
  Term head_pred;
  std::vector<Term> head_args;
  /// For `return(X,Y:Z)` heads: the number of arguments left of the colon
  /// (the bound arguments that restrict against `in`, §4); -1 if no colon.
  int head_colon = -1;
  AssignOp op = AssignOp::kClear;
  /// Key variables for +=[Z...].
  std::vector<std::string> modify_key;
  std::vector<Subgoal> body;
  /// When has_delta is set (kInsert only), tuples *actually added* by this
  /// statement are also inserted into the relation named by delta_into —
  /// the back end's `uniondiff` operator (paper §10), emitted by the
  /// NAIL!-to-Glue compiler for semi-naive loops. Not surface syntax.
  bool has_delta = false;
  Term delta_into;
  SourceLoc loc;
};

/// Loop termination conditions (§4 and Figure 1): boolean combinations of
/// `unchanged(p(...))`, `empty(p(...))`, and plain atom non-emptiness tests.
struct UntilCond {
  enum class Kind : uint8_t {
    kUnchanged,  ///< unchanged(p(_,_)) — relation unchanged since this
                 ///< site's previous evaluation; false on first evaluation
    kEmpty,      ///< empty(p(...)) — the predicate has no matching tuple
    kNonEmpty,   ///< p(...) — the predicate has a matching tuple
    kAnd,
    kOr,
    kNot,
  };
  Kind kind = Kind::kNonEmpty;
  /// Predicate and args for the three test kinds.
  Term pred;
  std::vector<Term> args;
  /// Operands for kAnd/kOr (2 children) and kNot (1 child).
  std::vector<UntilCond> children;
  SourceLoc loc;
};

struct RepeatUntil {
  std::vector<Statement> body;
  UntilCond cond;
  SourceLoc loc;
};

struct Statement {
  std::variant<Assignment, RepeatUntil> node;

  bool is_assignment() const {
    return std::holds_alternative<Assignment>(node);
  }
  const Assignment& assignment() const { return std::get<Assignment>(node); }
  Assignment& assignment() { return std::get<Assignment>(node); }
  const RepeatUntil& repeat() const { return std::get<RepeatUntil>(node); }
  RepeatUntil& repeat() { return std::get<RepeatUntil>(node); }
};

// ---------------------------------------------------------------------------
// Procedures, rules, modules
// ---------------------------------------------------------------------------

/// A local relation declaration from a `rels` clause. The argument names in
/// the declaration (`connected(X,Y)`) only fix the arity.
struct LocalRelation {
  std::string name;
  uint32_t arity = 0;
  SourceLoc loc;
};

struct Procedure {
  std::string name;
  /// Arity split: tc_e(X:Y) has bound_arity 1 and free_arity 1. The `in`
  /// relation has arity bound_arity; `return` has the full arity (§4).
  uint32_t bound_arity = 0;
  uint32_t free_arity = 0;
  std::vector<LocalRelation> locals;
  std::vector<Statement> body;
  SourceLoc loc;

  uint32_t arity() const { return bound_arity + free_arity; }
};

/// A NAIL! rule: head :- body.
struct NailRule {
  Term head_pred;
  std::vector<Term> head_args;
  std::vector<Subgoal> body;
  SourceLoc loc;
};

/// Signature in an export/import list: name(B1,..,Bm : F1,..,Fn).
struct PredicateSig {
  std::string name;
  uint32_t bound_arity = 0;
  uint32_t free_arity = 0;
  SourceLoc loc;

  uint32_t arity() const { return bound_arity + free_arity; }
};

struct ImportDecl {
  std::string from_module;
  PredicateSig sig;
};

/// An `edb` declaration: name(A1,...,An) — only the arity matters.
struct EdbDecl {
  std::string name;
  uint32_t arity = 0;
  SourceLoc loc;
};

/// A compilation unit (§6). Modules are purely a compile-time concept.
struct Module {
  std::string name;
  std::vector<PredicateSig> exports;
  std::vector<ImportDecl> imports;
  std::vector<EdbDecl> edb;
  std::vector<Procedure> procedures;
  std::vector<NailRule> rules;
  /// Ground facts written directly in the module ("edge(1,2)."); loaded
  /// into the EDB when the module is linked. A convenience beyond the
  /// paper's surface syntax, matching how its example EDBs are presented.
  std::vector<Term> facts;
  SourceLoc loc;
};

/// A parsed source file: one or more modules.
struct Program {
  std::vector<Module> modules;
};

// ---------------------------------------------------------------------------
// Printing (ast_printer.cc)
// ---------------------------------------------------------------------------

/// Renders terms/subgoals/statements/modules back to parseable source.
/// Round-tripping is tested; the NAIL!-to-Glue compiler's output is
/// inspectable through these.
std::string ToString(const Term& t);
std::string ToString(const Subgoal& g);
std::string ToString(const Assignment& a);
std::string ToString(const Statement& s);
std::string ToString(const UntilCond& c);
std::string ToString(const NailRule& r);
std::string ToString(const Procedure& p);
std::string ToString(const Module& m);

}  // namespace ast
}  // namespace gluenail

#endif  // GLUENAIL_AST_AST_H_
