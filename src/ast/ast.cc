#include "src/ast/ast.h"

#include <algorithm>

namespace gluenail {
namespace ast {

Term Term::Variable(std::string name, SourceLoc loc) {
  Term t;
  t.kind = TermKind::kVariable;
  t.name = std::move(name);
  t.loc = loc;
  return t;
}

Term Term::Wildcard(SourceLoc loc) {
  Term t;
  t.kind = TermKind::kWildcard;
  t.loc = loc;
  return t;
}

Term Term::Int(int64_t v, SourceLoc loc) {
  Term t;
  t.kind = TermKind::kInt;
  t.int_value = v;
  t.loc = loc;
  return t;
}

Term Term::Float(double v, SourceLoc loc) {
  Term t;
  t.kind = TermKind::kFloat;
  t.float_value = v;
  t.loc = loc;
  return t;
}

Term Term::Symbol(std::string name, SourceLoc loc) {
  Term t;
  t.kind = TermKind::kSymbol;
  t.name = std::move(name);
  t.loc = loc;
  return t;
}

Term Term::Apply(Term functor, std::vector<Term> args, SourceLoc loc) {
  Term t;
  t.kind = TermKind::kApply;
  t.loc = loc;
  t.children.reserve(args.size() + 1);
  t.children.push_back(std::move(functor));
  for (Term& a : args) t.children.push_back(std::move(a));
  return t;
}

Term Term::Apply(std::string functor, std::vector<Term> args,
                 SourceLoc loc) {
  return Apply(Symbol(std::move(functor), loc), std::move(args), loc);
}

bool Term::IsGround() const {
  switch (kind) {
    case TermKind::kVariable:
    case TermKind::kWildcard:
      return false;
    case TermKind::kApply:
      return std::all_of(children.begin(), children.end(),
                         [](const Term& c) { return c.IsGround(); });
    default:
      return true;
  }
}

bool Term::Equals(const Term& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case TermKind::kVariable:
    case TermKind::kSymbol:
      return name == other.name;
    case TermKind::kWildcard:
      return true;
    case TermKind::kInt:
      return int_value == other.int_value;
    case TermKind::kFloat:
      return float_value == other.float_value;
    case TermKind::kApply: {
      if (children.size() != other.children.size()) return false;
      for (size_t i = 0; i < children.size(); ++i) {
        if (!children[i].Equals(other.children[i])) return false;
      }
      return true;
    }
  }
  return false;
}

void Term::CollectVariables(std::vector<std::string>* out) const {
  switch (kind) {
    case TermKind::kVariable:
      if (std::find(out->begin(), out->end(), name) == out->end()) {
        out->push_back(name);
      }
      return;
    case TermKind::kApply:
      for (const Term& c : children) c.CollectVariables(out);
      return;
    default:
      return;
  }
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AssignOpName(AssignOp op) {
  switch (op) {
    case AssignOp::kClear:
      return ":=";
    case AssignOp::kInsert:
      return "+=";
    case AssignOp::kDelete:
      return "-=";
    case AssignOp::kModify:
      return "+=";
  }
  return "?";
}

Subgoal Subgoal::Atom(Term pred, std::vector<Term> args, SourceLoc loc) {
  Subgoal g;
  g.kind = SubgoalKind::kAtom;
  g.pred = std::move(pred);
  g.args = std::move(args);
  g.loc = loc;
  return g;
}

Subgoal Subgoal::Negated(Term pred, std::vector<Term> args, SourceLoc loc) {
  Subgoal g = Atom(std::move(pred), std::move(args), loc);
  g.kind = SubgoalKind::kNegatedAtom;
  return g;
}

Subgoal Subgoal::Comparison(Term lhs, CompareOp op, Term rhs, SourceLoc loc) {
  Subgoal g;
  g.kind = SubgoalKind::kComparison;
  g.lhs = std::move(lhs);
  g.cmp = op;
  g.rhs = std::move(rhs);
  g.loc = loc;
  return g;
}

Subgoal Subgoal::GroupBy(std::vector<Term> vars, SourceLoc loc) {
  Subgoal g;
  g.kind = SubgoalKind::kGroupBy;
  g.args = std::move(vars);
  g.loc = loc;
  return g;
}

Subgoal Subgoal::Insert(Term pred, std::vector<Term> args, SourceLoc loc) {
  Subgoal g = Atom(std::move(pred), std::move(args), loc);
  g.kind = SubgoalKind::kInsert;
  return g;
}

Subgoal Subgoal::Delete(Term pred, std::vector<Term> args, SourceLoc loc) {
  Subgoal g = Atom(std::move(pred), std::move(args), loc);
  g.kind = SubgoalKind::kDelete;
  return g;
}

}  // namespace ast
}  // namespace gluenail
