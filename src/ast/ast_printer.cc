/// \file ast_printer.cc
/// \brief Renders AST nodes back to parseable Glue / NAIL! source.

#include <cctype>
#include <cstdio>

#include "src/ast/ast.h"
#include "src/common/strings.h"

namespace gluenail {
namespace ast {

namespace {

bool IsPlainIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

/// Binary operators that print infix (and re-parse as expressions).
bool IsInfixOp(const Term& functor) {
  if (!functor.IsSymbol()) return false;
  const std::string& n = functor.name;
  return n == "+" || n == "-" || n == "*" || n == "/" || n == "mod";
}

void AppendTerm(const Term& t, std::string* out);

void AppendArgs(const Term& t, std::string* out) {
  out->push_back('(');
  for (size_t i = 0; i < t.apply_arity(); ++i) {
    if (i != 0) out->push_back(',');
    AppendTerm(t.arg(i), out);
  }
  out->push_back(')');
}

void AppendTerm(const Term& t, std::string* out) {
  switch (t.kind) {
    case TermKind::kVariable:
      out->append(t.name);
      return;
    case TermKind::kWildcard:
      out->push_back('_');
      return;
    case TermKind::kInt:
      out->append(std::to_string(t.int_value));
      return;
    case TermKind::kFloat: {
      char buf[64];
      int n = std::snprintf(buf, sizeof(buf), "%.17g", t.float_value);
      std::string_view sv(buf, static_cast<size_t>(n));
      out->append(sv);
      if (sv.find('.') == std::string_view::npos &&
          sv.find('e') == std::string_view::npos) {
        out->append(".0");
      }
      return;
    }
    case TermKind::kSymbol:
      if (IsPlainIdentifier(t.name)) {
        out->append(t.name);
      } else {
        out->push_back('\'');
        out->append(EscapeQuoted(t.name));
        out->push_back('\'');
      }
      return;
    case TermKind::kApply: {
      if (IsInfixOp(t.functor()) && t.apply_arity() == 2) {
        out->push_back('(');
        AppendTerm(t.arg(0), out);
        if (t.functor().name == "mod") {
          out->append(" mod ");
        } else {
          out->append(t.functor().name);
        }
        AppendTerm(t.arg(1), out);
        out->push_back(')');
        return;
      }
      if (t.functor().IsSymbol() && t.functor().name == "-" &&
          t.apply_arity() == 1) {
        out->append("-(");
        AppendTerm(t.arg(0), out);
        out->push_back(')');
        return;
      }
      AppendTerm(t.functor(), out);
      AppendArgs(t, out);
      return;
    }
  }
}

void AppendAtomLike(const Term& pred, const std::vector<Term>& args,
                    std::string* out) {
  AppendTerm(pred, out);
  if (!args.empty()) {
    out->push_back('(');
    for (size_t i = 0; i < args.size(); ++i) {
      if (i != 0) out->push_back(',');
      AppendTerm(args[i], out);
    }
    out->push_back(')');
  }
}

void AppendSubgoal(const Subgoal& g, std::string* out) {
  switch (g.kind) {
    case SubgoalKind::kAtom:
      AppendAtomLike(g.pred, g.args, out);
      return;
    case SubgoalKind::kNegatedAtom:
      out->push_back('!');
      AppendAtomLike(g.pred, g.args, out);
      return;
    case SubgoalKind::kComparison:
      AppendTerm(g.lhs, out);
      out->push_back(' ');
      out->append(CompareOpName(g.cmp));
      out->push_back(' ');
      AppendTerm(g.rhs, out);
      return;
    case SubgoalKind::kGroupBy: {
      out->append("group_by(");
      for (size_t i = 0; i < g.args.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendTerm(g.args[i], out);
      }
      out->push_back(')');
      return;
    }
    case SubgoalKind::kInsert:
      out->append("++");
      AppendAtomLike(g.pred, g.args, out);
      return;
    case SubgoalKind::kDelete:
      out->append("--");
      AppendAtomLike(g.pred, g.args, out);
      return;
  }
}

void AppendBody(const std::vector<Subgoal>& body, std::string* out) {
  for (size_t i = 0; i < body.size(); ++i) {
    if (i != 0) out->append(" & ");
    AppendSubgoal(body[i], out);
  }
}

void AppendHead(const Assignment& a, std::string* out) {
  AppendTerm(a.head_pred, out);
  if (!a.head_args.empty() || a.head_colon >= 0) {
    out->push_back('(');
    for (size_t i = 0; i < a.head_args.size(); ++i) {
      if (a.head_colon >= 0 && static_cast<size_t>(a.head_colon) == i) {
        out->push_back(':');
      } else if (i != 0) {
        out->push_back(',');
      }
      AppendTerm(a.head_args[i], out);
    }
    if (a.head_colon >= 0 &&
        static_cast<size_t>(a.head_colon) == a.head_args.size()) {
      out->push_back(':');
    }
    out->push_back(')');
  }
}

void AppendStatement(const Statement& s, int indent, std::string* out);

void AppendAssignment(const Assignment& a, int indent, std::string* out) {
  out->append(indent, ' ');
  AppendHead(a, out);
  out->push_back(' ');
  out->append(AssignOpName(a.op));
  if (a.op == AssignOp::kModify) {
    out->push_back('[');
    for (size_t i = 0; i < a.modify_key.size(); ++i) {
      if (i != 0) out->push_back(',');
      out->append(a.modify_key[i]);
    }
    out->push_back(']');
  }
  out->push_back(' ');
  AppendBody(a.body, out);
  out->append(".\n");
}

void AppendUntilCond(const UntilCond& c, std::string* out) {
  switch (c.kind) {
    case UntilCond::Kind::kUnchanged:
      out->append("unchanged(");
      AppendAtomLike(c.pred, c.args, out);
      out->push_back(')');
      return;
    case UntilCond::Kind::kEmpty:
      out->append("empty(");
      AppendAtomLike(c.pred, c.args, out);
      out->push_back(')');
      return;
    case UntilCond::Kind::kNonEmpty:
      AppendAtomLike(c.pred, c.args, out);
      return;
    case UntilCond::Kind::kAnd:
      out->push_back('(');
      AppendUntilCond(c.children[0], out);
      out->append(" & ");
      AppendUntilCond(c.children[1], out);
      out->push_back(')');
      return;
    case UntilCond::Kind::kOr:
      out->push_back('(');
      AppendUntilCond(c.children[0], out);
      out->append(" | ");
      AppendUntilCond(c.children[1], out);
      out->push_back(')');
      return;
    case UntilCond::Kind::kNot:
      out->push_back('!');
      AppendUntilCond(c.children[0], out);
      return;
  }
}

void AppendStatement(const Statement& s, int indent, std::string* out) {
  if (s.is_assignment()) {
    AppendAssignment(s.assignment(), indent, out);
    return;
  }
  const RepeatUntil& r = s.repeat();
  out->append(indent, ' ');
  out->append("repeat\n");
  for (const Statement& inner : r.body) {
    AppendStatement(inner, indent + 2, out);
  }
  out->append(indent, ' ');
  out->append("until ");
  AppendUntilCond(r.cond, out);
  out->append(";\n");
}

void AppendSig(const PredicateSig& sig, std::string* out) {
  out->append(sig.name);
  out->push_back('(');
  for (uint32_t i = 0; i < sig.bound_arity; ++i) {
    if (i != 0) out->push_back(',');
    out->append(StrCat("B", i));
  }
  out->push_back(':');
  for (uint32_t i = 0; i < sig.free_arity; ++i) {
    if (i != 0) out->push_back(',');
    out->append(StrCat("F", i));
  }
  out->push_back(')');
}

}  // namespace

std::string ToString(const Term& t) {
  std::string out;
  AppendTerm(t, &out);
  return out;
}

std::string ToString(const Subgoal& g) {
  std::string out;
  AppendSubgoal(g, &out);
  return out;
}

std::string ToString(const Assignment& a) {
  std::string out;
  AppendAssignment(a, 0, &out);
  return out;
}

std::string ToString(const Statement& s) {
  std::string out;
  AppendStatement(s, 0, &out);
  return out;
}

std::string ToString(const UntilCond& c) {
  std::string out;
  AppendUntilCond(c, &out);
  return out;
}

std::string ToString(const NailRule& r) {
  std::string out;
  AppendAtomLike(r.head_pred, r.head_args, &out);
  out.append(" :- ");
  AppendBody(r.body, &out);
  out.append(".\n");
  return out;
}

std::string ToString(const Procedure& p) {
  std::string out = StrCat("proc ", p.name, "(");
  for (uint32_t i = 0; i < p.bound_arity; ++i) {
    if (i != 0) out.push_back(',');
    out.append(StrCat("B", i));
  }
  out.push_back(':');
  for (uint32_t i = 0; i < p.free_arity; ++i) {
    if (i != 0) out.push_back(',');
    out.append(StrCat("F", i));
  }
  out.append(")\n");
  if (!p.locals.empty()) {
    out.append("rels ");
    for (size_t i = 0; i < p.locals.size(); ++i) {
      if (i != 0) out.append(", ");
      out.append(p.locals[i].name);
      out.push_back('(');
      for (uint32_t k = 0; k < p.locals[i].arity; ++k) {
        if (k != 0) out.push_back(',');
        out.append(StrCat("A", k));
      }
      out.push_back(')');
    }
    out.append(";\n");
  }
  for (const Statement& s : p.body) {
    AppendStatement(s, 2, &out);
  }
  out.append("end\n");
  return out;
}

std::string ToString(const Module& m) {
  std::string out = StrCat("module ", m.name, ";\n");
  for (const PredicateSig& e : m.exports) {
    out.append("export ");
    AppendSig(e, &out);
    out.append(";\n");
  }
  for (const ImportDecl& i : m.imports) {
    out.append(StrCat("from ", i.from_module, " import "));
    AppendSig(i.sig, &out);
    out.append(";\n");
  }
  if (!m.edb.empty()) {
    out.append("edb ");
    for (size_t i = 0; i < m.edb.size(); ++i) {
      if (i != 0) out.append(", ");
      out.append(m.edb[i].name);
      out.push_back('(');
      for (uint32_t k = 0; k < m.edb[i].arity; ++k) {
        if (k != 0) out.push_back(',');
        out.append(StrCat("A", k));
      }
      out.push_back(')');
    }
    out.append(";\n");
  }
  for (const NailRule& r : m.rules) {
    out.append(ToString(r));
  }
  for (const Procedure& p : m.procedures) {
    out.append(ToString(p));
  }
  out.append("end\n");
  return out;
}

}  // namespace ast
}  // namespace gluenail
