// adaptive.h is header-only; this file anchors the translation unit so the
// build lists every storage component explicitly.
#include "src/storage/adaptive.h"
