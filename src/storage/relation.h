/// \file relation.h
/// \brief Duplicate-free, main-memory relations over ground tuples.
///
/// This is the core of the Section-10 back end: relations live in main
/// memory, support the `uniondiff` operator used by compiled recursive
/// NAIL! queries, and build hash indexes on demand under a pluggable policy
/// (see adaptive.h).
///
/// Storage layout (see docs/ARCHITECTURE.md, "Storage layout"): row data
/// lives once, contiguously, in an arity-strided TupleArena. Everything
/// else — the dedup set and every index — stores only 32-bit row ids and
/// resolves them through the arena, so inserting a tuple costs one arena
/// append and zero per-tuple heap allocations, and `row(id)` hands the
/// executors a borrowed RowView instead of a copy.
///
/// Concurrency: a Relation is single-writer. Mutations must be externally
/// serialized (the engine's writer lock does this); const methods —
/// Contains, SelectConst, iteration, version(), Snapshot() — are safe to
/// call from many threads as long as no mutation runs concurrently.
/// version() is an atomic counter so readers polling for staleness (NAIL!
/// memo invalidation, `unchanged(p)`) never see a torn increment.
///
/// Predicates never contain duplicates (paper §2), so Insert is a no-op on
/// an existing tuple and reports whether the relation changed — exactly the
/// information `repeat ... until unchanged(p)` loops need.

#ifndef GLUENAIL_STORAGE_RELATION_H_
#define GLUENAIL_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/adaptive.h"
#include "src/storage/index.h"
#include "src/storage/row_table.h"
#include "src/storage/snapshot.h"
#include "src/storage/stats.h"
#include "src/storage/tuple.h"
#include "src/storage/tuple_arena.h"

namespace gluenail {

class Relation {
 public:
  Relation(std::string name, uint32_t arity);
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  uint32_t arity() const { return arity_; }
  /// Number of live tuples.
  size_t size() const { return dedup_.size(); }
  bool empty() const { return dedup_.empty(); }

  /// Monotone counter bumped atomically by every successful mutation.
  /// Powers the `unchanged(p)` builtin (paper §4), NAIL! memo invalidation,
  /// and snapshot cache keys.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Inserts \p t; returns true iff the relation changed.
  bool Insert(RowView t);
  /// Erases \p t; returns true iff the relation changed.
  bool Erase(RowView t);
  bool Contains(RowView t) const;
  /// Removes all tuples (the effect of a `:=` with an empty body result).
  void Clear();

  // --- Row-level access for the executors -------------------------------

  /// Total physical rows, live or dead. Row ids are stable until Compact().
  uint32_t num_rows() const { return arena_.num_rows(); }
  bool row_live(uint32_t row_id) const { return live_[row_id]; }
  /// Borrowed view of the row's columns; valid until Clear()/Compact().
  RowView row(uint32_t row_id) const { return arena_.row(row_id); }

  /// Appends the ids of live rows whose \p mask columns equal \p key.
  ///
  /// This is the single entry point for keyed selection: it consults an
  /// existing index, or scans — and under IndexPolicy::kAdaptive it
  /// accounts the scan cost and converts to an index once the cumulative
  /// scanning reaches the modeled build cost (paper §10). Under
  /// kAlwaysIndex the index is built on first use. \p mask must be
  /// non-zero; full scans should iterate rows directly.
  ///
  /// \p visited, when non-null, accumulates the rows this selection had to
  /// look at — every physical row for a scan, the probe-chain length for
  /// an index lookup — which is what the executors charge against
  /// ResourceLimits::max_rows_scanned.
  void Select(ColumnMask mask, RowView key, std::vector<uint32_t>* out,
              uint64_t* visited = nullptr);

  /// Const selection that never builds indexes or updates statistics.
  void SelectConst(ColumnMask mask, RowView key, std::vector<uint32_t>* out,
                   uint64_t* visited = nullptr) const;

  // --- Batch-granular access (exec/vector/) ------------------------------

  /// The underlying arena: chunk geometry for the batch executor, which
  /// walks rows one 4096-row chunk at a time.
  const TupleArena& arena() const { return arena_; }

  /// Appends the ids of live rows in [\p begin, \p end) (clamped to
  /// num_rows()) — the batch executor's chunk-at-a-time row harvest, and
  /// the building block of the batched UnionDiff walk.
  void CollectLiveRows(uint32_t begin, uint32_t end,
                       std::vector<uint32_t>* out) const {
    if (end > num_rows()) end = num_rows();
    for (uint32_t r = begin; r < end; ++r) {
      if (live_[r]) out->push_back(r);
    }
  }

  /// Keyed selection into a caller-owned scratch buffer (cleared first),
  /// returned as a row-id span: the batch executor's probe entry points.
  /// Same semantics and \p visited accounting as Select / SelectConst.
  std::span<const uint32_t> SelectSpan(ColumnMask mask, RowView key,
                                       std::vector<uint32_t>* scratch,
                                       uint64_t* visited = nullptr) {
    scratch->clear();
    Select(mask, key, scratch, visited);
    return {scratch->data(), scratch->size()};
  }
  std::span<const uint32_t> SelectSpanConst(
      ColumnMask mask, RowView key, std::vector<uint32_t>* scratch,
      uint64_t* visited = nullptr) const {
    scratch->clear();
    SelectConst(mask, key, scratch, visited);
    return {scratch->data(), scratch->size()};
  }

  /// Bulk-appends \p rows of \p src, which the caller guarantees are
  /// distinct and absent from this relation (e.g. a slice of a
  /// duplicate-free relation into a fresh partition): one arena append and
  /// dedup insert per row, no dedup probe. The parallel semi-naive
  /// partitioner's batch loader.
  void AppendDistinctRows(const Relation& src, std::span<const uint32_t> rows);

  // --- Index management --------------------------------------------------

  const HashIndex* FindIndex(ColumnMask mask) const;
  /// Builds (if necessary) and returns the index on \p mask.
  HashIndex* EnsureIndex(ColumnMask mask);
  void set_index_policy(IndexPolicy policy) { policy_ = policy; }
  IndexPolicy index_policy() const { return policy_; }
  void set_adaptive_config(const AdaptiveConfig& cfg) { adaptive_cfg_ = cfg; }
  const AccessStats& access_stats() const { return access_stats_; }

  /// Incremental cardinality statistics (row count + per-column NDV),
  /// maintained on the Insert/Erase path — the planner's cost input.
  const RelationStats& stats() const { return stats_; }

  // --- Set operations ----------------------------------------------------

  /// The paper's `uniondiff` (§10, after [9]): inserts every tuple of
  /// \p src not already present, appending exactly the newly added tuples
  /// to \p delta (if non-null). Returns the number of tuples added.
  /// This one operator is what semi-naive loops need per iteration.
  size_t UnionDiff(const Relation& src, Relation* delta);

  /// Inserts every tuple of \p src; returns the number actually added.
  size_t UnionAll(const Relation& src);

  /// Replaces contents with a copy of \p src (arity must match). When the
  /// source has no dead rows this copies whole arena chunks and bulk-loads
  /// the dedup table without per-row probing.
  void CopyFrom(const Relation& src);

  /// Live tuples in canonical (term-order) sorted order; for deterministic
  /// output and tests.
  std::vector<Tuple> SortedTuples(const TermPool& pool) const;

  /// Immutable snapshot of the current contents, keyed off version(): the
  /// same shared_ptr is returned until the next mutation, so repeated
  /// snapshots of an unchanged relation are O(1). Must not race with a
  /// mutation (the engine's writer lock guarantees this); the returned
  /// snapshot may outlive the relation.
  std::shared_ptr<const RelationSnapshot> Snapshot(const TermPool& pool) const;

  /// Drops dead rows and rebuilds indexes. Invalidates row ids.
  void Compact();

  // --- Iteration over live tuples ---------------------------------------

  class const_iterator {
   public:
    const_iterator(const Relation* rel, uint32_t pos) : rel_(rel), pos_(pos) {
      SkipDead();
    }
    RowView operator*() const { return rel_->row(pos_); }
    const_iterator& operator++() {
      ++pos_;
      SkipDead();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    void SkipDead() {
      while (pos_ < rel_->num_rows() && !rel_->live_[pos_]) ++pos_;
    }
    const Relation* rel_;
    uint32_t pos_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, num_rows()); }

  /// Cumulative operation counters, reported through Engine statistics.
  /// Atomic (relaxed) because SelectConst/Contains update them from
  /// concurrent reader threads; atomic<uint64_t> converts implicitly on
  /// read, so counters().scan_rows etc. read like plain fields.
  struct Counters {
    std::atomic<uint64_t> scan_rows{0};     ///< rows visited by keyed scans
    std::atomic<uint64_t> index_lookups{0}; ///< keyed selections via index
    std::atomic<uint64_t> index_probe_rows{0};  ///< probe-chain rows walked
    std::atomic<uint64_t> indexes_built{0}; ///< indexes built (any policy)
    std::atomic<uint64_t> dedup_probes{0};  ///< dedup slots inspected
    std::atomic<uint64_t> stats_rebuilds{0};  ///< NDV sketch rebuilds
  };
  const Counters& counters() const { return counters_; }

  /// Current bytes held by the arena, the dedup table, and all indexes.
  size_t arena_bytes() const;

 private:
  void ScanSelect(ColumnMask mask, RowView key, std::vector<uint32_t>* out,
                  uint64_t* visited) const;
  /// Re-observes every live row into freshly cleared NDV sketches. Called
  /// once the erase debt crosses the NeedsSketchRebuild threshold (and on
  /// Compact, which walks the rows anyway), so delete/re-insert churn
  /// cannot leave the planner with saturated stale NDV estimates.
  void RebuildStatsSketches();
  /// Dedup lookup: live row id storing \p t, or RowIdTable::kNoRow.
  uint32_t FindRow(RowView t, uint64_t hash) const;
  /// Appends a row known to be absent: arena + dedup + indexes + version.
  void AppendNewRow(RowView t, uint64_t hash);

  std::string name_;
  uint32_t arity_;
  std::atomic<uint64_t> version_{0};

  /// Row data, stored exactly once.
  TupleArena arena_;
  std::vector<bool> live_;
  /// Row-id set hashing/comparing arena data directly — the dedup
  /// structure holds no tuple copies.
  RowIdTable dedup_;

  std::vector<std::unique_ptr<HashIndex>> indexes_;

  IndexPolicy policy_ = IndexPolicy::kAdaptive;
  AdaptiveConfig adaptive_cfg_;
  AccessStats access_stats_;
  RelationStats stats_;
  mutable Counters counters_;

  /// Snapshot cache: valid while snap_cache_->version == version().
  mutable std::mutex snap_mu_;
  mutable std::shared_ptr<const RelationSnapshot> snap_cache_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_RELATION_H_
