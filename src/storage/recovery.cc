#include "src/storage/recovery.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"
#include "src/storage/mutation_batch.h"
#include "src/storage/wal.h"

namespace gluenail {

namespace {

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFileText(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError(
        StrCat("open '", path, "': ", std::strerror(errno)));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IoError(StrCat("read '", path, "' failed"));
  }
  *out = buf.str();
  return Status::OK();
}

/// Parses + applies one WAL record's payload. `where` labels errors.
Status ReplayRecord(Database* db, TermPool* pool, const WalScanRecord& rec,
                    RecoveryReport* report) {
  Result<MutationBatch> batch = MutationBatch::Parse(rec.payload);
  if (!batch.ok()) {
    return batch.status().WithContext(StrCat("wal record lsn=", rec.lsn));
  }
  Result<MutationBatch::ApplyReport> applied = batch->Apply(db, pool);
  if (!applied.ok()) {
    return applied.status().WithContext(StrCat("wal record lsn=", rec.lsn));
  }
  ++report->records_replayed;
  report->ops_applied += applied->applied;
  if (rec.lsn > report->last_lsn) report->last_lsn = rec.lsn;
  return Status::OK();
}

}  // namespace

RecoveryCounters& GlobalRecoveryCounters() {
  static RecoveryCounters counters;
  return counters;
}

std::string RecoveryReport::Summary() const {
  std::string out = StrCat(
      "recovered: checkpoint ",
      checkpoint_found
          ? StrCat(checkpoint.relations_loaded, " relation(s), ",
                   checkpoint.facts_loaded, " fact(s)")
          : std::string("absent"),
      "; wal ",
      wal_found ? StrCat(records_replayed, " record(s), ", ops_applied,
                         " op(s), last lsn ", last_lsn)
                : std::string("absent"));
  if (records_salvaged > 0) {
    out += StrCat(" (", records_salvaged, " salvaged)");
  }
  if (torn_bytes > 0) out += StrCat("; torn tail ", torn_bytes, " byte(s)");
  if (needs_reset) out += "; log needs rotation";
  return out;
}

Result<RecoveryReport> RecoverDatabase(Database* db, TermPool* pool,
                                       const std::string& checkpoint_path,
                                       const std::string& wal_path,
                                       const RecoveryOptions& options) {
  RecoveryCounters& counters = GlobalRecoveryCounters();
  RecoveryReport report;
  auto fail = [&counters](Status s) -> Status {
    counters.failures.fetch_add(1, std::memory_order_relaxed);
    return s;
  };

  // 1. Checkpoint: the atomic-save discipline guarantees the file is
  // either a complete old or complete new image, so kStrict is the normal
  // path; kSalvage extends to section-level damage the same way LoadEdb
  // does.
  if (FileExists(checkpoint_path)) {
    LoadOptions load_opts;
    load_opts.recovery = options.mode;
    Result<LoadReport> loaded =
        LoadDatabaseFromFile(db, checkpoint_path, load_opts);
    if (!loaded.ok()) {
      return fail(loaded.status().WithContext("recovery checkpoint"));
    }
    report.checkpoint_found = true;
    report.checkpoint = *loaded;
    if (!loaded->clean()) {
      for (const std::string& d : loaded->dropped) {
        report.notes.push_back(StrCat("checkpoint: dropped ", d));
      }
    }
  } else {
    report.notes.push_back(StrCat("no checkpoint at ", checkpoint_path));
  }

  // 2. WAL tail.
  if (!FileExists(wal_path)) {
    report.notes.push_back(StrCat("no wal at ", wal_path));
    counters.recoveries.fetch_add(1, std::memory_order_relaxed);
    return report;
  }
  report.wal_found = true;
  std::string data;
  GLUENAIL_RETURN_NOT_OK(ReadFileText(wal_path, &data));
  Result<WalScanResult> scanned = ScanWalBuffer(data);
  if (!scanned.ok()) {
    if (options.mode == RecoveryMode::kStrict) {
      return fail(scanned.status());
    }
    report.notes.push_back(
        StrCat("wal dropped entirely: ", scanned.status().message()));
    report.needs_reset = true;
    counters.recoveries.fetch_add(1, std::memory_order_relaxed);
    return report;
  }
  const WalScanResult& scan = *scanned;
  report.wal_start_lsn = scan.start_lsn;
  report.last_lsn = scan.last_lsn;

  if (scan.damage == WalDamage::kMidLog &&
      options.mode == RecoveryMode::kStrict) {
    return fail(Status::IoError(StrCat(
        "wal '", wal_path, "': ", scan.damage_note, ", but ",
        scan.salvaged.size(),
        " valid record(s) follow — this is mid-log corruption, not a torn "
        "tail; rerun recovery with RecoveryMode::kSalvage to keep them")));
  }

  for (const WalScanRecord& rec : scan.records) {
    // A record that passed both checksums but fails to parse or apply is
    // a logic-level corruption; strict and salvage both stop trusting the
    // prefix past it — but salvage keeps what already replayed.
    Status st = ReplayRecord(db, pool, rec, &report);
    if (!st.ok()) {
      if (options.mode == RecoveryMode::kStrict) return fail(std::move(st));
      report.notes.push_back(StrCat("salvage dropped: ", st.message()));
      report.needs_reset = true;
    }
  }

  if (scan.damage == WalDamage::kTornTail) {
    report.torn_bytes = data.size() - scan.valid_bytes;
    report.notes.push_back(StrCat(
        "torn tail: ", report.torn_bytes, " byte(s) after lsn ",
        scan.last_lsn, " discarded (", scan.damage_note, ")"));
  } else if (scan.damage == WalDamage::kMidLog) {
    // kSalvage: replay whatever the resync scan validated. Individual
    // records that fail to parse/apply are dropped with a note rather
    // than failing the whole recovery.
    for (const WalScanRecord& rec : scan.salvaged) {
      Status st = ReplayRecord(db, pool, rec, &report);
      if (!st.ok()) {
        report.notes.push_back(StrCat("salvage dropped: ", st.message()));
        continue;
      }
      ++report.records_salvaged;
    }
    report.notes.push_back(StrCat("mid-log corruption: ", scan.damage_note,
                                  "; ", report.records_salvaged,
                                  " record(s) salvaged past it"));
    report.needs_reset = true;
  }

  counters.recoveries.fetch_add(1, std::memory_order_relaxed);
  counters.records_replayed.fetch_add(report.records_replayed,
                                      std::memory_order_relaxed);
  counters.records_salvaged.fetch_add(report.records_salvaged,
                                      std::memory_order_relaxed);
  counters.torn_bytes.fetch_add(report.torn_bytes,
                                std::memory_order_relaxed);
  return report;
}

}  // namespace gluenail
