/// \file tuple.h
/// \brief Ground tuples: fixed-arity sequences of interned terms.

#ifndef GLUENAIL_STORAGE_TUPLE_H_
#define GLUENAIL_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// A ground tuple. All attributes are interned TermIds, so tuple equality
/// and hashing never inspect term structure.
using Tuple = std::vector<TermId>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (TermId v : t) h = HashCombine(h, v);
    return static_cast<size_t>(h);
  }
};

/// Renders "(a,b,c)" using the pool's term printer.
std::string TupleToString(const TermPool& pool, const Tuple& tuple);

/// Lexicographic comparison by the pool's total term order; shorter tuples
/// sort first. Used for canonical (deterministic) output ordering.
int CompareTuples(const TermPool& pool, const Tuple& a, const Tuple& b);

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_TUPLE_H_
