/// \file tuple.h
/// \brief Ground tuples: fixed-arity sequences of interned terms.
///
/// Two row representations coexist:
///  * RowView — a borrowed, contiguous view into a relation's TupleArena
///    (or any TermId array). This is what flows through the executors:
///    matching, key probes, and set operations never copy row data.
///  * Tuple — an owning vector, used where a row must outlive its source
///    (sorted output, snapshots, head construction). A Tuple converts
///    implicitly to RowView.
///
/// All attributes are interned TermIds, so equality and hashing never
/// inspect term structure.

#ifndef GLUENAIL_STORAGE_TUPLE_H_
#define GLUENAIL_STORAGE_TUPLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/strings.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// An owning ground tuple.
using Tuple = std::vector<TermId>;

/// A borrowed view of a row's columns (arena storage or a Tuple).
using RowView = std::span<const TermId>;

/// The one row hash used by dedup tables and indexes; hashing a Tuple and
/// hashing the arena row it was stored as must agree.
inline uint64_t HashRow(RowView t) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (TermId v : t) h = HashCombine(h, v);
  return h;
}

inline bool RowEquals(RowView a, RowView b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    return static_cast<size_t>(HashRow(t));
  }
};

/// Renders "(a,b,c)" using the pool's term printer.
std::string TupleToString(const TermPool& pool, RowView tuple);

/// Lexicographic comparison by the pool's total term order; shorter tuples
/// sort first. Used for canonical (deterministic) output ordering.
int CompareTuples(const TermPool& pool, RowView a, RowView b);

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_TUPLE_H_
