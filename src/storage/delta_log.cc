#include "src/storage/delta_log.h"

namespace gluenail {

EdbVersion SnapshotEdbVersion(const Database& db) {
  EdbVersion v;
  db.ForEach([&](TermId, uint32_t, Relation* rel) {
    ++v.relations;
    v.version_sum += rel->version();
  });
  return v;
}

DeltaLog::RelDelta* DeltaLog::Entry(TermId name, uint32_t arity) {
  auto& slot = entries_[Key(name, arity)];
  if (slot == nullptr) slot = std::make_unique<RelDelta>(arity);
  return slot.get();
}

void DeltaLog::CaptureInsert(TermId name, uint32_t arity, RowView row) {
  if (!valid_) return;
  RelDelta* d = Entry(name, arity);
  if (d->dropped) return;
  // Net semantics: re-inserting a tuple erased since the base cancels the
  // erase (the tuple is back where the base had it).
  if (d->erased.Erase(row)) return;
  d->inserted.Insert(row);
  if (d->rows() > max_rows_) {
    d->inserted.Clear();
    d->erased.Clear();
    d->dropped = true;
  }
}

void DeltaLog::CaptureErase(TermId name, uint32_t arity, RowView row) {
  if (!valid_) return;
  RelDelta* d = Entry(name, arity);
  if (d->dropped) return;
  if (d->inserted.Erase(row)) return;
  d->erased.Insert(row);
  if (d->rows() > max_rows_) {
    d->inserted.Clear();
    d->erased.Clear();
    d->dropped = true;
  }
}

}  // namespace gluenail
