/// \file tuple_arena.h
/// \brief Flat chunked storage for relation rows: contiguous, arity-strided.
///
/// A TupleArena holds every row of one relation in fixed-size chunks of
/// `kRowsPerChunk * arity` TermIds. Like common/chunked_vector.h it is
/// append-only and never moves a row once written, so a row id resolves to
/// a stable `std::span<const TermId>` into the chunk — relations, dedup
/// tables, and indexes all read row data from here and never store tuple
/// copies of their own. Unlike ChunkedVector the stride is a run-time
/// arity, so chunks are sized in rows (rows never straddle a chunk
/// boundary) and location is a shift+mask, not a bit-width computation.
///
/// Concurrency: same contract as the owning Relation — appends are
/// externally serialized; row() is safe from any thread while no append or
/// Clear runs concurrently.

#ifndef GLUENAIL_STORAGE_TUPLE_ARENA_H_
#define GLUENAIL_STORAGE_TUPLE_ARENA_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/term/term_pool.h"

namespace gluenail {

class TupleArena {
 public:
  /// log2 of rows per chunk: 4096 rows, i.e. chunks of 32 KiB * arity/1
  /// TermIds — big enough to amortize allocation, small enough that tiny
  /// relations don't overcommit (the first chunk is allocated lazily).
  static constexpr uint32_t kRowsPerChunkShift = 12;
  static constexpr uint32_t kRowsPerChunk = 1u << kRowsPerChunkShift;
  static constexpr uint32_t kRowOffsetMask = kRowsPerChunk - 1;

  explicit TupleArena(uint32_t arity) : arity_(arity) {}
  TupleArena(const TupleArena&) = delete;
  TupleArena& operator=(const TupleArena&) = delete;
  TupleArena(TupleArena&& o) noexcept
      : arity_(o.arity_),
        num_rows_(o.num_rows_),
        chunks_(std::move(o.chunks_)) {
    o.num_rows_ = 0;
    o.chunks_.clear();
  }
  TupleArena& operator=(TupleArena&& o) noexcept {
    if (this != &o) {
      Clear();
      assert(arity_ == o.arity_);
      num_rows_ = o.num_rows_;
      chunks_ = std::move(o.chunks_);
      o.num_rows_ = 0;
      o.chunks_.clear();
    }
    return *this;
  }
  ~TupleArena() { Clear(); }

  uint32_t arity() const { return arity_; }
  uint32_t num_rows() const { return num_rows_; }

  /// Appends one row (size must equal arity) and returns its row id.
  uint32_t Append(std::span<const TermId> row) {
    assert(row.size() == arity_);
    uint32_t id = num_rows_++;
    if (arity_ == 0) return id;  // arity-0 rows occupy no storage
    size_t chunk = id >> kRowsPerChunkShift;
    if (chunk == chunks_.size()) {
      // Chunk allocation is the storage layer's only unbounded growth
      // point; the injector seam simulates OOM here (as std::bad_alloc,
      // converted to Status::ResourceExhausted at the query boundary).
      FaultInjector::MaybeFailAlloc();
      chunks_.push_back(new TermId[size_t{kRowsPerChunk} * arity_]);
    }
    TermId* dst = chunks_[chunk] + size_t(id & kRowOffsetMask) * arity_;
    std::memcpy(dst, row.data(), sizeof(TermId) * arity_);
    return id;
  }

  /// Bulk append of \p src's rows; only valid on an empty arena of the
  /// same arity (the CopyFrom fast path). Copies whole chunks.
  void CopyRowsFrom(const TupleArena& src) {
    assert(num_rows_ == 0 && arity_ == src.arity_);
    num_rows_ = src.num_rows_;
    if (arity_ == 0) return;
    chunks_.reserve(src.chunks_.size());
    const size_t chunk_terms = size_t{kRowsPerChunk} * arity_;
    for (size_t c = 0; c < src.chunks_.size(); ++c) {
      FaultInjector::MaybeFailAlloc();
      TermId* chunk = new TermId[chunk_terms];
      // The last chunk may be partially filled; copying it whole is still
      // within the source allocation.
      std::memcpy(chunk, src.chunks_[c], sizeof(TermId) * chunk_terms);
      chunks_.push_back(chunk);
    }
  }

  // --- Chunk-granular access (the batch executor's unit of work) --------

  /// Number of row chunks the current rows span (0 for an empty arena;
  /// always computed from num_rows, so arity-0 arenas — which allocate no
  /// storage — still report their logical chunks).
  uint32_t num_chunks() const {
    return (num_rows_ + kRowsPerChunk - 1) >> kRowsPerChunkShift;
  }
  /// First row id of chunk \p c.
  uint32_t chunk_begin(uint32_t c) const { return c << kRowsPerChunkShift; }
  /// One past the last row id of chunk \p c.
  uint32_t chunk_end(uint32_t c) const {
    uint32_t end = (c + 1) << kRowsPerChunkShift;
    return end < num_rows_ ? end : num_rows_;
  }

  /// Stable view of row \p id's columns. Valid until Clear().
  std::span<const TermId> row(uint32_t id) const {
    assert(id < num_rows_);
    if (arity_ == 0) return {};
    const TermId* p = chunks_[id >> kRowsPerChunkShift] +
                      size_t(id & kRowOffsetMask) * arity_;
    return {p, arity_};
  }

  void Clear() {
    for (TermId* c : chunks_) delete[] c;
    chunks_.clear();
    num_rows_ = 0;
  }

  /// Bytes of row storage currently allocated (whole chunks).
  size_t allocated_bytes() const {
    return chunks_.size() * size_t{kRowsPerChunk} * arity_ * sizeof(TermId);
  }

 private:
  uint32_t arity_;
  uint32_t num_rows_ = 0;
  std::vector<TermId*> chunks_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_TUPLE_ARENA_H_
