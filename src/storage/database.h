/// \file database.h
/// \brief The Extensional Data Base: a catalog of relations keyed by
/// (name term, arity).
///
/// In Glue-Nail a predicate name is itself a term (HiLog, paper §5): the
/// relation `students(cs99)` has the compound term students(cs99) as its
/// name. Keying the catalog by TermId makes parameterized predicate
/// families first-class and makes run-time predicate dereferencing (a
/// subgoal whose predicate position is a bound variable) a single map
/// lookup.

#ifndef GLUENAIL_STORAGE_DATABASE_H_
#define GLUENAIL_STORAGE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/storage/relation.h"
#include "src/storage/snapshot.h"
#include "src/term/term_pool.h"

namespace gluenail {

class Database {
 public:
  /// The pool must outlive the database.
  explicit Database(TermPool* pool) : pool_(pool) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  TermPool* pool() const { return pool_; }

  /// Finds or creates the relation named by \p name with \p arity. A newly
  /// created relation receives the database's default index policy.
  Relation* GetOrCreate(TermId name, uint32_t arity);

  /// Returns the relation, or nullptr if it does not exist.
  Relation* Find(TermId name, uint32_t arity) const;

  /// Removes a relation entirely.
  Status Drop(TermId name, uint32_t arity);

  /// Invokes \p fn for every relation (iteration order unspecified).
  void ForEach(
      const std::function<void(TermId name, uint32_t arity, Relation*)>& fn)
      const;

  /// All (name, relation) pairs of the given arity — used when a HiLog
  /// predicate variable must range over every known predicate name.
  std::vector<std::pair<TermId, Relation*>> RelationsWithArity(
      uint32_t arity) const;

  size_t num_relations() const { return relations_.size(); }

  /// Captures an immutable snapshot of every relation. Per-relation
  /// snapshots are cached by version, so this is cheap when little has
  /// changed. Must not race with mutations (engine writer lock).
  DatabaseSnapshot Snapshot() const;

  /// Policy applied to relations created after this call.
  void set_default_index_policy(IndexPolicy policy) {
    default_policy_ = policy;
  }
  IndexPolicy default_index_policy() const { return default_policy_; }
  void set_default_adaptive_config(const AdaptiveConfig& cfg) {
    default_adaptive_cfg_ = cfg;
  }

 private:
  struct Key {
    TermId name;
    uint32_t arity;
    bool operator==(const Key& o) const {
      return name == o.name && arity == o.arity;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(
          HashCombine(HashCombine(0x51ed270b2f6e69c5ULL, k.name), k.arity));
    }
  };

  TermPool* pool_;
  std::unordered_map<Key, std::unique_ptr<Relation>, KeyHash> relations_;
  IndexPolicy default_policy_ = IndexPolicy::kAdaptive;
  AdaptiveConfig default_adaptive_cfg_;
};

/// StatsProvider over an (EDB, IDB) database pair: answers cardinality
/// queries from live relation statistics, trying the primary database
/// first. Reads must be externally serialized against writers (the
/// planner runs under the engine's writer/reader lock, which covers this).
class DatabasePairStatsProvider : public StatsProvider {
 public:
  DatabasePairStatsProvider(const Database* primary, const Database* secondary)
      : primary_(primary), secondary_(secondary) {}

  bool Estimate(TermId name, uint32_t arity,
                CardEstimate* out) const override {
    const Relation* rel =
        primary_ != nullptr ? primary_->Find(name, arity) : nullptr;
    if (rel == nullptr && secondary_ != nullptr) {
      rel = secondary_->Find(name, arity);
    }
    if (rel == nullptr) return false;
    *out = rel->stats().Estimate();
    return true;
  }

 private:
  const Database* primary_;
  const Database* secondary_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_DATABASE_H_
