#include "src/storage/index.h"

#include <algorithm>
#include <bit>

namespace gluenail {

int ColumnMaskArity(ColumnMask mask) { return std::popcount(mask); }

void ExtractKey(ColumnMask mask, const Tuple& row, Tuple* key) {
  key->clear();
  for (size_t i = 0; i < row.size(); ++i) {
    if (mask & (1u << i)) key->push_back(row[i]);
  }
}

void HashIndex::Add(const Tuple& row, uint32_t row_id) {
  ExtractKey(mask_, row, &scratch_key_);
  buckets_[scratch_key_].push_back(row_id);
}

void HashIndex::Remove(const Tuple& row, uint32_t row_id) {
  ExtractKey(mask_, row, &scratch_key_);
  auto it = buckets_.find(scratch_key_);
  if (it == buckets_.end()) return;
  std::vector<uint32_t>& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), row_id);
  if (pos != ids.end()) {
    *pos = ids.back();
    ids.pop_back();
  }
  if (ids.empty()) buckets_.erase(it);
}

std::span<const uint32_t> HashIndex::Find(const Tuple& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return {};
  return it->second;
}

}  // namespace gluenail
