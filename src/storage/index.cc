#include "src/storage/index.h"

#include <algorithm>
#include <bit>

namespace gluenail {

int ColumnMaskArity(ColumnMask mask) { return std::popcount(mask); }

void ExtractKey(ColumnMask mask, RowView row, Tuple* key) {
  key->clear();
  for (size_t i = 0; i < row.size(); ++i) {
    if (mask & (1u << i)) key->push_back(row[i]);
  }
}

void HashIndex::Add(const TupleArena& arena, uint32_t row_id) {
  if (chain_next_.size() <= row_id) {
    chain_next_.resize(row_id + 1, kNoChain);
  }
  RowView row = arena.row(row_id);
  uint64_t h = HashProjected(mask_, row);
  uint32_t* slot = heads_.FindSlot(h, [&](uint32_t head) {
    RowView other = arena.row(head);
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      size_t c = static_cast<size_t>(std::countr_zero(m));
      if (row[c] != other[c]) return false;
    }
    return true;
  });
  if (slot != nullptr) {
    // Push-front onto the existing chain; the slot's hash is unchanged
    // because old head and new head share the projected key.
    chain_next_[row_id] = *slot;
    *slot = row_id;
    return;
  }
  chain_next_[row_id] = kNoChain;
  heads_.Insert(h, row_id, [&](uint32_t r) {
    return HashProjected(mask_, arena.row(r));
  });
}

void HashIndex::Remove(const TupleArena& arena, uint32_t row_id) {
  if (row_id >= chain_next_.size()) return;
  RowView row = arena.row(row_id);
  uint64_t h = HashProjected(mask_, row);
  uint32_t* slot = heads_.FindSlot(h, [&](uint32_t head) {
    RowView other = arena.row(head);
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      size_t c = static_cast<size_t>(std::countr_zero(m));
      if (row[c] != other[c]) return false;
    }
    return true;
  });
  if (slot == nullptr) return;
  if (*slot == row_id) {
    uint32_t next = chain_next_[row_id];
    if (next == kNoChain) {
      heads_.Erase(h, [&](uint32_t head) { return head == row_id; });
    } else {
      *slot = next;  // same key, hash invariant preserved
    }
    return;
  }
  uint32_t prev = *slot;
  uint32_t cur = chain_next_[prev];
  while (cur != kNoChain) {
    if (cur == row_id) {
      chain_next_[prev] = chain_next_[cur];
      return;
    }
    prev = cur;
    cur = chain_next_[cur];
  }
}

size_t HashIndex::Find(const TupleArena& arena, RowView key,
                       std::vector<uint32_t>* out) const {
  uint64_t h = HashRow(key);
  uint32_t head = heads_.Find(h, [&](uint32_t r) {
    return ProjectedEquals(mask_, arena.row(r), key);
  });
  if (head == RowIdTable::kNoRow) return 0;
  size_t first = out->size();
  for (uint32_t r = head; r != kNoChain; r = chain_next_[r]) {
    out->push_back(r);
  }
  // Chains are push-front (newest first); emit in insertion (ascending
  // row id) order to preserve the pre-arena executor iteration order.
  std::reverse(out->begin() + static_cast<ptrdiff_t>(first), out->end());
  return out->size() - first;
}

size_t HashIndex::allocated_bytes() const {
  return heads_.allocated_bytes() +
         chain_next_.capacity() * sizeof(uint32_t);
}

}  // namespace gluenail
