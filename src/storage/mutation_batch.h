/// \file mutation_batch.h
/// \brief MutationBatch: an ordered, serializable sequence of insert/erase
/// operations against named relations.
///
/// This is the shared mutation seam called out in ROADMAP items 1–3: the
/// wire protocol ships batches from clients, a future write-ahead log will
/// append them as its record type, and incremental view maintenance will
/// consume them as deltas. Keeping ops as *ground fact text* (the same
/// syntax the §10 persistence format stores, e.g. `edge(1,2)`) makes a
/// batch independent of any particular TermPool: it can be built in one
/// process, shipped over a socket, and applied against another engine's
/// pool.
///
/// Serialized form (one batch, checksummed like the v2 EDB format):
///
///     %% gluenail-batch v1 ops=3 checksum=0123456789abcdef
///     + edge(1,2)
///     + edge(2,3)
///     - edge(1,9)
///
/// The checksum is FNV-1a 64 over the op lines (each normalized to end in
/// LF), so a torn or bit-flipped batch is rejected before any op applies.
///
/// Apply is all-or-nothing on validation: every fact is parsed before the
/// first op touches the database, so a malformed op leaves the database
/// untouched. (Inserts/erases themselves cannot fail — relations dedupe
/// and erasing an absent tuple is a no-op.)

#ifndef GLUENAIL_STORAGE_MUTATION_BATCH_H_
#define GLUENAIL_STORAGE_MUTATION_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/storage/database.h"
#include "src/storage/tuple.h"

namespace gluenail {

class MutationBatch {
 public:
  enum class OpKind : uint8_t { kInsert, kErase };

  struct Op {
    OpKind kind;
    /// One ground fact in source syntax, without the trailing dot:
    /// `edge(1,2)`, `flag` (zero-arity), `students(cs99)(wilson)` (HiLog).
    std::string fact;
  };

  /// What Apply changed. `inserted`/`erased` count tuples that actually
  /// changed the database (a duplicate insert or absent-tuple erase
  /// counts as applied but not changed).
  struct ApplyReport {
    uint64_t applied = 0;
    uint64_t inserted = 0;
    uint64_t erased = 0;
  };

  MutationBatch() = default;

  /// Queues an insert/erase of a ground fact (trailing dot and
  /// surrounding whitespace tolerated).
  void Insert(std::string_view fact) { Push(OpKind::kInsert, fact); }
  void Erase(std::string_view fact) { Push(OpKind::kErase, fact); }

  /// Queues an op for a tuple of an existing relation, rendering through
  /// \p pool: name + (a,b,c) becomes the fact `name(a,b,c)`.
  void Insert(const TermPool& pool, TermId name, RowView row) {
    Push(OpKind::kInsert, RenderFact(pool, name, row));
  }
  void Erase(const TermPool& pool, TermId name, RowView row) {
    Push(OpKind::kErase, RenderFact(pool, name, row));
  }

  const std::vector<Op>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  void clear() { ops_.clear(); }

  /// Observes each op that actually changed the database (a duplicate
  /// insert or absent-tuple erase is not reported). The incremental view
  /// maintenance layer hangs its delta capture here.
  using ChangeObserver =
      std::function<void(OpKind kind, TermId name, uint32_t arity,
                         RowView row)>;

  /// Validates every op (parse + ground + shape), then applies them in
  /// order against \p db. All-or-nothing on validation failure.
  Result<ApplyReport> Apply(Database* db, TermPool* pool) const {
    return Apply(db, pool, nullptr);
  }
  /// Apply with a change observer (may be null).
  Result<ApplyReport> Apply(Database* db, TermPool* pool,
                            const ChangeObserver* observer) const;

  /// The validation half of Apply, without the apply: parses every op and
  /// checks its fact shape. The WAL calls this before appending a batch,
  /// so a malformed batch is rejected up front and never logged.
  Status Validate(TermPool* pool) const;

  /// Checksummed text form (see file comment). Infallible.
  std::string Serialize() const;

  /// Inverse of Serialize. Rejects missing/corrupt headers, op-count
  /// mismatches, checksum mismatches, and unknown op markers.
  static Result<MutationBatch> Parse(std::string_view text);

 private:
  void Push(OpKind kind, std::string_view fact);
  static std::string RenderFact(const TermPool& pool, TermId name,
                                RowView row);

  std::vector<Op> ops_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_MUTATION_BATCH_H_
