#include "src/storage/database.h"

namespace gluenail {

Relation* Database::GetOrCreate(TermId name, uint32_t arity) {
  Key key{name, arity};
  auto it = relations_.find(key);
  if (it != relations_.end()) return it->second.get();
  auto rel = std::make_unique<Relation>(pool_->ToString(name), arity);
  rel->set_index_policy(default_policy_);
  rel->set_adaptive_config(default_adaptive_cfg_);
  Relation* out = rel.get();
  relations_.emplace(key, std::move(rel));
  return out;
}

Relation* Database::Find(TermId name, uint32_t arity) const {
  auto it = relations_.find(Key{name, arity});
  return it == relations_.end() ? nullptr : it->second.get();
}

Status Database::Drop(TermId name, uint32_t arity) {
  auto it = relations_.find(Key{name, arity});
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("no relation ", pool_->ToString(name), "/",
                                   arity, " to drop"));
  }
  relations_.erase(it);
  return Status::OK();
}

void Database::ForEach(
    const std::function<void(TermId, uint32_t, Relation*)>& fn) const {
  for (const auto& [key, rel] : relations_) {
    fn(key.name, key.arity, rel.get());
  }
}

DatabaseSnapshot Database::Snapshot() const {
  DatabaseSnapshot snap;
  snap.entries_.reserve(relations_.size());
  for (const auto& [key, rel] : relations_) {
    snap.entries_.emplace(DatabaseSnapshot::PackKey(key.name, key.arity),
                          rel->Snapshot(*pool_));
  }
  return snap;
}

std::vector<std::pair<TermId, Relation*>> Database::RelationsWithArity(
    uint32_t arity) const {
  std::vector<std::pair<TermId, Relation*>> out;
  for (const auto& [key, rel] : relations_) {
    if (key.arity == arity) out.emplace_back(key.name, rel.get());
  }
  return out;
}

}  // namespace gluenail
