#include "src/storage/tuple.h"

namespace gluenail {

std::string TupleToString(const TermPool& pool, RowView tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ",";
    pool.AppendTerm(tuple[i], &out);
  }
  out += ")";
  return out;
}

int CompareTuples(const TermPool& pool, RowView a, RowView b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = pool.Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace gluenail
