#include "src/storage/stats.h"

#include <cmath>

namespace gluenail {

namespace {

/// splitmix64 finalizer: TermIds are small dense integers, so they need a
/// strong mix before indexing a 4096-bit bitmap or adjacent ids would land
/// in adjacent bits and the occupancy model would still hold — but the
/// mixed form also decorrelates the column sketches from the dedup hash.
uint64_t MixTermId(TermId value) {
  uint64_t z = static_cast<uint64_t>(value) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void ColumnNdvSketch::Observe(TermId value) {
  uint32_t bit = static_cast<uint32_t>(MixTermId(value)) & (kBits - 1);
  uint64_t word = words_[bit / 64];
  uint64_t mask = 1ull << (bit % 64);
  if ((word & mask) == 0) {
    words_[bit / 64] = word | mask;
    ++set_bits_;
  }
}

double ColumnNdvSketch::Estimate() const {
  if (set_bits_ == 0) return 0;
  uint32_t empty = kBits - set_bits_;
  if (empty == 0) {
    // Bitmap saturated: report the model's limit for one empty bit, the
    // largest value linear counting can distinguish at this width (~34k).
    empty = 1;
  }
  double b = static_cast<double>(kBits);
  return b * std::log(b / static_cast<double>(empty));
}

void ColumnNdvSketch::Clear() {
  words_.fill(0);
  set_bits_ = 0;
}

CardEstimate RelationStats::Estimate() const {
  CardEstimate out;
  out.rows = static_cast<double>(rows_);
  out.ndv.reserve(columns_.size());
  for (const auto& sketch : columns_) {
    double d = sketch.Estimate();
    if (rows_ > 0) {
      if (d < 1.0) d = 1.0;
      if (d > out.rows) d = out.rows;
    } else {
      d = 0;
    }
    out.ndv.push_back(d);
  }
  return out;
}

}  // namespace gluenail
