/// \file wal.h
/// \brief Write-ahead log of MutationBatch records — the engine's
/// durability story for heavy write traffic (ROADMAP item 1).
///
/// The log is append-only and binary-framed with the same discipline as
/// the wire protocol (server/protocol.cc): a magic tag, a length prefix,
/// and an FNV-1a 64 checksum guarding every payload. Payloads are
/// MutationBatch::Serialize() text, which carries its *own* header and
/// checksum, so a record is double-checked before replay ever applies it.
///
/// File layout (all integers little-endian):
///
///     header   "GNWALOG1" | start_lsn u64 | fnv1a(first 16 bytes) u64
///     record   "GNWR" | lsn u64 | payload_len u32 | fnv1a(payload) u64
///              | payload
///     record   ...
///
/// LSNs are dense and ascending: the first record carries the header's
/// start_lsn, each next record start_lsn+1, +2, ... A checkpoint rotates
/// the log (fresh header with the next LSN), which is how the log
/// truncates behind the checkpoint without a separate manifest — replay
/// after recovery is idempotent (insert/erase are set operations, so
/// re-applying a tail the checkpoint already includes is harmless).
///
/// Failure semantics (what the crash-point sweep in tests/wal_test.cc
/// proves):
///  * A failed Append rolls the partial record off the file (ftruncate
///    back to the last record boundary), so the file always ends on a
///    record boundary unless the rollback itself failed — and then the
///    torn bytes fail their checksum and recovery discards them.
///  * A failed Sync marks the log broken (sticky) and truncates back to
///    the last *synced* offset, so a batch whose commit errored cannot
///    reappear after restart. Broken logs refuse further appends until a
///    checkpoint rotates in a fresh log.
///  * Every write / fsync / rename / ftruncate consults the process-wide
///    FaultInjector first, so tests can crash the log at any point.
///
/// Thread safety: all methods are safe to call concurrently. Append holds
/// the internal mutex for the (buffered) write; Sync runs its fsync
/// *outside* the mutex, so the next commit group can append while the
/// current group's leader waits on the disk.

#ifndef GLUENAIL_STORAGE_WAL_H_
#define GLUENAIL_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {

/// How hard a Session::Execute(mutate) ack promises the batch is on disk.
enum class DurabilityLevel {
  /// No log at all: mutations live in memory until an explicit save.
  kNone,
  /// Log every batch, ack immediately, fsync lazily (at most once per
  /// fsync interval, piggybacked on commits). A crash loses at most the
  /// un-synced tail; the log still bounds the loss to whole batches.
  kAsync,
  /// fsync before every ack, one batch at a time, commits fully
  /// serialized — the honest per-batch baseline group commit is measured
  /// against.
  kSync,
  /// Group commit: concurrent committers enqueue, one leader fsyncs the
  /// whole group (committers arriving during the in-flight fsync are
  /// absorbed into the next group; an optional linger grows groups
  /// further), every waiter observes the durable LSN before its ack.
  /// Same guarantee as kSync, shared cost.
  kGroupCommit,
};

std::string_view DurabilityLevelName(DurabilityLevel level);

/// Cumulative WAL activity, exported via the engine's metrics registry.
struct WalCounters {
  std::atomic<uint64_t> appends{0};
  std::atomic<uint64_t> appended_bytes{0};
  std::atomic<uint64_t> append_failures{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> sync_failures{0};
  std::atomic<uint64_t> rotations{0};
  /// Torn-tail bytes discarded when opening an existing log.
  std::atomic<uint64_t> open_truncated_bytes{0};
};

/// One structurally valid record found by ScanWalBuffer. `payload` views
/// into the scanned buffer.
struct WalScanRecord {
  uint64_t lsn = 0;
  std::string_view payload;
};

enum class WalDamage {
  kNone,      ///< every byte belongs to a valid record
  kTornTail,  ///< trailing garbage after the valid prefix (crashed append)
  kMidLog,    ///< valid records exist *past* a corrupt region
};

struct WalScanResult {
  uint64_t start_lsn = 1;
  /// Header + the longest valid record prefix, in bytes. Opening a log
  /// truncates the file here when damage == kTornTail.
  uint64_t valid_bytes = 0;
  uint64_t last_lsn = 0;  ///< last LSN of the valid prefix (0 if none)
  std::vector<WalScanRecord> records;  ///< the valid prefix, in LSN order
  WalDamage damage = WalDamage::kNone;
  std::string damage_note;
  /// Structurally valid records found past the damage by a byte-wise
  /// resync scan — what RecoveryMode::kSalvage replays in addition to the
  /// prefix. Empty unless damage == kMidLog.
  std::vector<WalScanRecord> salvaged;
};

/// Parses an in-memory WAL image. Fails only when the file header itself
/// is missing or corrupt; record-level damage is reported in the result.
Result<WalScanResult> ScanWalBuffer(std::string_view data);

class Wal {
 public:
  struct OpenReport {
    bool created = false;  ///< the log did not exist and was created fresh
    uint64_t start_lsn = 1;
    uint64_t last_lsn = 0;
    uint64_t records = 0;
    uint64_t truncated_bytes = 0;  ///< torn tail discarded by this open
  };

  /// Opens \p path for appending, scanning and validating what is already
  /// there: a torn tail is truncated away (the crash happened mid-append),
  /// mid-log corruption is refused — recover with RecoveryMode::kSalvage
  /// and rotate to a fresh log instead. A missing file is created with
  /// start_lsn = \p create_start_lsn via the atomic temp+rename path.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           uint64_t create_start_lsn = 1,
                                           OpenReport* report = nullptr);

  /// Atomically replaces \p path with a fresh empty log whose LSNs start
  /// at \p start_lsn (temp file + fsync + rename, like SaveDatabaseToFile)
  /// and opens it for appending.
  static Result<std::unique_ptr<Wal>> Create(const std::string& path,
                                             uint64_t start_lsn);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Hard cap on a single record's payload. Append refuses anything
  /// larger *before writing a byte*: recovery's scan rejects lengths past
  /// this cap as corruption, so an oversized record would be acked
  /// durable yet unrecoverable (and past 4 GiB the u32 length prefix
  /// would silently truncate, corrupting the framing).
  static constexpr uint64_t kMaxPayloadBytes = 256u << 20;

  /// Test-only: lowers the Append payload cap so the refusal path can be
  /// exercised without building a 256 MiB batch. Pass 0 to restore the
  /// default; returns the previous override (0 = none). The recovery
  /// scan's cap is unaffected, so the "every durable record is
  /// recoverable" invariant holds under any override.
  static uint64_t OverrideMaxPayloadForTesting(uint64_t bytes);

  /// Appends one record; returns its LSN. The record is in the OS page
  /// cache but NOT yet durable — call Sync() (or let the engine's group
  /// commit do it) before acking. Fails without side effects when the
  /// batch is invalid, its payload exceeds kMaxPayloadBytes, or the log
  /// is broken.
  Result<uint64_t> Append(const MutationBatch& batch);

  /// fsyncs everything appended so far; on return every previously
  /// appended record is durable (durable_lsn() covers it). Concurrent
  /// callers coalesce: a sync that finds nothing new is a no-op, which is
  /// what makes group commit's shared-fsync accounting honest.
  Status Sync();

  /// Swaps in a fresh empty log starting at \p start_lsn (checkpoint
  /// truncation). The caller must guarantee no concurrent Append/Sync —
  /// the engine calls this under its writer lock after draining commits.
  /// On failure the old log stays open and intact.
  Status Rotate(uint64_t start_lsn);

  /// One record read back out of the log by ReadRecordsFrom; unlike
  /// WalScanRecord the payload is owned, so it outlives the read.
  struct TailRecord {
    uint64_t lsn = 0;
    std::string payload;
  };

  /// What one tail-follow poll observed: the log's current start LSN (so
  /// the caller can detect that its cursor was rotated away and fall back
  /// to a checkpoint bootstrap), the durable watermark, and every record
  /// in [from_lsn, durable_lsn] still present in the log. Records the
  /// log has appended but not yet synced are NOT returned — log shipping
  /// must never hand a replica a record the primary could still lose.
  struct TailChunk {
    uint64_t start_lsn = 1;
    uint64_t durable_lsn = 0;
    std::vector<TailRecord> records;
  };

  /// Reads the durable records with LSN >= \p from_lsn back out of the
  /// log (replication's tail-follow). If \p from_lsn predates start_lsn()
  /// the returned records begin at start_lsn — the caller compares and
  /// bootstraps from the checkpoint image covering the gap. Safe against
  /// concurrent Append/Sync/Rotate; cost is one full read + scan of the
  /// current log file, which checkpoint rotation keeps bounded.
  Result<TailChunk> ReadRecordsFrom(uint64_t from_lsn) const;

  const std::string& path() const { return path_; }
  uint64_t start_lsn() const;
  /// LSN the next Append will return.
  uint64_t next_lsn() const;
  /// Highest LSN known to be on disk (0 = none yet).
  uint64_t durable_lsn() const;
  /// True after a sync failure or an unrollable append failure: the log
  /// refuses appends until Rotate gives it a fresh file.
  bool broken() const;

  const WalCounters& counters() const { return counters_; }

 private:
  Wal() = default;

  Status TruncateLocked(uint64_t to);
  Status FailSyncLocked(Status cause);

  std::string path_;
  int fd_ = -1;

  mutable std::mutex mu_;
  uint64_t start_lsn_ = 1;
  uint64_t next_lsn_ = 1;
  uint64_t offset_ = 0;         ///< file size; end of the last full record
  uint64_t synced_offset_ = 0;  ///< prefix known durable
  uint64_t durable_lsn_ = 0;
  bool broken_ = false;

  WalCounters counters_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_WAL_H_
