/// \file row_table.h
/// \brief Open-addressing hash table over row ids; keys live in the arena.
///
/// A RowIdTable stores nothing but 32-bit row ids: hashing and equality
/// are supplied per call by the owner (Relation or HashIndex), which
/// resolves a row id to its columns through the TupleArena. That makes the
/// table the copy-free replacement for `unordered_map<Tuple, ...>` — no
/// duplicate tuple keys, no per-node allocation, linear probing over a
/// power-of-two slot array.
///
/// Deletion uses tombstones; they are recycled by the next rehash (growth
/// keeps slots at most ~70% occupied by live entries + tombstones).

#ifndef GLUENAIL_STORAGE_ROW_TABLE_H_
#define GLUENAIL_STORAGE_ROW_TABLE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gluenail {

class RowIdTable {
 public:
  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;
  static constexpr uint32_t kTombstone = 0xFFFFFFFEu;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    slots_.clear();
    size_ = 0;
    used_ = 0;
  }

  /// Returns the stored row id whose key matches, or kNoRow. \p eq is
  /// called as eq(row_id) on candidate slots; \p probes (optional)
  /// accumulates the number of slots inspected.
  template <typename EqFn>
  uint32_t Find(uint64_t hash, EqFn&& eq, uint64_t* probes = nullptr) const {
    if (slots_.empty()) return kNoRow;
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    uint64_t n = 0;
    while (true) {
      ++n;
      uint32_t s = slots_[i];
      if (s == kNoRow) break;
      if (s != kTombstone && eq(s)) {
        if (probes != nullptr) *probes += n;
        return s;
      }
      i = (i + 1) & mask;
    }
    if (probes != nullptr) *probes += n;
    return kNoRow;
  }

  /// Mutable pointer to the slot whose entry matches \p eq, or nullptr.
  /// Overwriting it with a row id of the SAME key is allowed (chain-head
  /// rotation); changing the key through it would corrupt probing.
  template <typename EqFn>
  uint32_t* FindSlot(uint64_t hash, EqFn&& eq) {
    if (slots_.empty()) return nullptr;
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      uint32_t s = slots_[i];
      if (s == kNoRow) return nullptr;
      if (s != kTombstone && eq(s)) return &slots_[i];
      i = (i + 1) & mask;
    }
  }

  /// Inserts \p row, whose key must not already be present. \p hash_of is
  /// called as hash_of(row_id) when growth forces a rehash of stored rows.
  template <typename HashFn>
  void Insert(uint64_t hash, uint32_t row, HashFn&& hash_of) {
    assert(row < kTombstone);
    if ((used_ + 1) * 10 >= slots_.size() * 7) {
      Rehash(hash_of);
    }
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots_[i] != kNoRow && slots_[i] != kTombstone) {
      i = (i + 1) & mask;
    }
    if (slots_[i] == kNoRow) ++used_;  // tombstone reuse keeps used_ flat
    slots_[i] = row;
    ++size_;
  }

  /// Removes the entry matching \p eq; returns the removed row id or
  /// kNoRow if absent.
  template <typename EqFn>
  uint32_t Erase(uint64_t hash, EqFn&& eq) {
    if (slots_.empty()) return kNoRow;
    size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (true) {
      uint32_t s = slots_[i];
      if (s == kNoRow) return kNoRow;
      if (s != kTombstone && eq(s)) {
        slots_[i] = kTombstone;
        --size_;
        return s;
      }
      i = (i + 1) & mask;
    }
  }

  /// Pre-sizes for \p n entries (used by bulk loads: Compact, CopyFrom).
  template <typename HashFn>
  void Reserve(size_t n, HashFn&& hash_of) {
    size_t want = 16;
    while (n * 10 >= want * 7) want <<= 1;
    if (want > slots_.size()) Grow(want, hash_of);
  }

  /// Invokes fn(row_id) for every stored entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t s : slots_) {
      if (s != kNoRow && s != kTombstone) fn(s);
    }
  }

  size_t allocated_bytes() const {
    return slots_.capacity() * sizeof(uint32_t);
  }

 private:
  template <typename HashFn>
  void Rehash(HashFn&& hash_of) {
    // Grow only when live entries (not tombstones) demand it; otherwise
    // rebuild at the same size to flush tombstones.
    size_t want = slots_.empty() ? 16 : slots_.size();
    if ((size_ + 1) * 10 >= want * 7) want <<= 1;
    Grow(want, hash_of);
  }

  template <typename HashFn>
  void Grow(size_t new_cap, HashFn&& hash_of) {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(new_cap, kNoRow);
    size_t mask = new_cap - 1;
    for (uint32_t s : old) {
      if (s == kNoRow || s == kTombstone) continue;
      size_t i = static_cast<size_t>(hash_of(s)) & mask;
      while (slots_[i] != kNoRow) i = (i + 1) & mask;
      slots_[i] = s;
    }
    used_ = size_;
  }

  std::vector<uint32_t> slots_;
  size_t size_ = 0;  ///< live entries
  size_t used_ = 0;  ///< live entries + tombstones
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_ROW_TABLE_H_
