/// \file index.h
/// \brief Hash indexes over column subsets of a relation — copy-free.
///
/// A HashIndex stores only row ids: an open-addressing table of chain
/// heads (one per distinct key) and a per-row `next` link forming the
/// chain of rows sharing that key. Key bytes are never materialized —
/// hashing and comparison project the masked columns straight out of the
/// owning relation's TupleArena, and probes compare against the caller's
/// key span (the executors' reusable scratch buffer).

#ifndef GLUENAIL_STORAGE_INDEX_H_
#define GLUENAIL_STORAGE_INDEX_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "src/storage/row_table.h"
#include "src/storage/tuple.h"
#include "src/storage/tuple_arena.h"

namespace gluenail {

/// Bitmask of indexed columns; bit i set means column i is part of the key.
/// Relations are limited to 32 columns, far beyond any real program.
using ColumnMask = uint32_t;

/// Number of set bits in \p mask.
int ColumnMaskArity(ColumnMask mask);

/// Extracts the key (columns of \p mask, ascending) from \p row into \p key.
void ExtractKey(ColumnMask mask, RowView row, Tuple* key);

/// Hash of \p row's \p mask columns; equals HashRow of the extracted key.
inline uint64_t HashProjected(ColumnMask mask, RowView row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    h = HashCombine(h, row[static_cast<size_t>(std::countr_zero(m))]);
  }
  return h;
}

/// True iff \p row's \p mask columns (ascending) equal the packed \p key.
inline bool ProjectedEquals(ColumnMask mask, RowView row, RowView key) {
  size_t k = 0;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    if (row[static_cast<size_t>(std::countr_zero(m))] != key[k++]) {
      return false;
    }
  }
  return true;
}

/// \brief A hash multimap from projected keys to row-id chains, maintained
/// incrementally by the owning Relation on every insert and erase. Reads
/// row data exclusively through the relation's arena.
class HashIndex {
 public:
  explicit HashIndex(ColumnMask mask) : mask_(mask) {}

  ColumnMask mask() const { return mask_; }

  /// Adds \p row_id under the key projected from its arena row.
  void Add(const TupleArena& arena, uint32_t row_id);
  /// Unlinks \p row_id from its key's chain (no-op if absent).
  void Remove(const TupleArena& arena, uint32_t row_id);
  /// Appends all row ids matching \p key (the mask's columns, ascending)
  /// to \p out. Returns the number of chain rows visited — the probe cost
  /// the caller charges against ResourceLimits::max_rows_scanned, so an
  /// index-heavy query is accounted like the scan it replaced.
  size_t Find(const TupleArena& arena, RowView key,
              std::vector<uint32_t>* out) const;

  /// Number of distinct keys currently indexed.
  size_t num_keys() const { return heads_.size(); }

  /// Bytes allocated for slots and chain links.
  size_t allocated_bytes() const;

 private:
  ColumnMask mask_;
  /// key-hash → head row id of the chain for that key.
  RowIdTable heads_;
  /// chain_next_[row] = next row with the same key, or kNoChain. Sized to
  /// the highest row id ever added.
  std::vector<uint32_t> chain_next_;

  static constexpr uint32_t kNoChain = 0xFFFFFFFFu;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_INDEX_H_
