/// \file index.h
/// \brief Hash indexes over column subsets of a relation.

#ifndef GLUENAIL_STORAGE_INDEX_H_
#define GLUENAIL_STORAGE_INDEX_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/storage/tuple.h"

namespace gluenail {

/// Bitmask of indexed columns; bit i set means column i is part of the key.
/// Relations are limited to 32 columns, far beyond any real program.
using ColumnMask = uint32_t;

/// Number of set bits in \p mask.
int ColumnMaskArity(ColumnMask mask);

/// Extracts the key (columns of \p mask, ascending) from \p row into \p key.
void ExtractKey(ColumnMask mask, const Tuple& row, Tuple* key);

/// \brief A hash multimap from key tuples to row ids, maintained
/// incrementally by the owning Relation on every insert and erase.
class HashIndex {
 public:
  explicit HashIndex(ColumnMask mask) : mask_(mask) {}

  ColumnMask mask() const { return mask_; }

  /// Adds \p row_id under the key extracted from \p row.
  void Add(const Tuple& row, uint32_t row_id);
  /// Removes \p row_id (swap-remove within its bucket).
  void Remove(const Tuple& row, uint32_t row_id);
  /// Row ids matching \p key, or an empty span.
  std::span<const uint32_t> Find(const Tuple& key) const;

  size_t num_keys() const { return buckets_.size(); }

 private:
  ColumnMask mask_;
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets_;
  mutable Tuple scratch_key_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_INDEX_H_
