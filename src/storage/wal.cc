#include "src/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/fault_injector.h"
#include "src/common/strings.h"

namespace gluenail {

namespace {

constexpr char kWalMagic[8] = {'G', 'N', 'W', 'A', 'L', 'O', 'G', '1'};
constexpr char kRecordMagic[4] = {'G', 'N', 'W', 'R'};
constexpr size_t kWalHeaderSize = 24;    // magic + start_lsn + checksum
constexpr size_t kRecordHeaderSize = 24;  // magic + lsn + len + checksum
/// Per-payload sanity bound: anything larger than this is corruption, not
/// a batch (the wire protocol caps frames at 64 MiB; we allow 4x).
/// Append enforces the same cap (see Wal::kMaxPayloadBytes), so the scan
/// never rejects a record Append accepted.
constexpr uint64_t kMaxPayload = Wal::kMaxPayloadBytes;

/// Test-only Append cap override; 0 = use kMaxPayloadBytes. The scan cap
/// above stays at the default, so lowering this can only make Append
/// stricter than recovery — never the reverse.
std::atomic<uint64_t> g_max_payload_override{0};

uint64_t AppendPayloadCap() {
  uint64_t o = g_max_payload_override.load(std::memory_order_relaxed);
  return o == 0 ? Wal::kMaxPayloadBytes : o;
}
/// Append writes in chunks so the fault injector can tear a large record
/// mid-write — the same discipline as SaveDatabaseToFile.
constexpr size_t kWriteChunk = 64 * 1024;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xff));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t(uint8_t(p[i])) << (8 * i);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(uint8_t(p[i])) << (8 * i);
  return v;
}

Status ErrnoError(std::string_view op, const std::string& path) {
  return Status::IoError(
      StrCat(op, " '", path, "': ", std::strerror(errno)));
}

std::string EncodeHeader(uint64_t start_lsn) {
  std::string out(kWalMagic, sizeof(kWalMagic));
  PutU64(&out, start_lsn);
  PutU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string out(kRecordMagic, sizeof(kRecordMagic));
  PutU64(&out, lsn);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Writes all of \p data through the kWrite fault seam, in chunks.
Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    GLUENAIL_RETURN_NOT_OK(InjectFault(FaultOp::kWrite, path));
    size_t want = std::min(kWriteChunk, data.size() - off);
    ssize_t n = ::write(fd, data.data() + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open", path);
  out->clear();
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = ErrnoError("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

/// Best-effort directory fsync so a freshly renamed log survives a crash
/// of the directory entry itself (same note as persistence.cc: once the
/// rename succeeded the log content is safe either way).
void SyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Writes a fresh one-header log to \p path via temp + fsync + rename and
/// opens the published file for appending. The fault seams mirror
/// SaveDatabaseToFile's: write, fsync, rename.
Result<int> WriteFreshLog(const std::string& path, uint64_t start_lsn) {
  const std::string tmp = StrCat(path, ".tmp");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("open", tmp);
  auto fail = [&](Status s) -> Status {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  };
  Status st = WriteAll(fd, EncodeHeader(start_lsn), tmp);
  if (!st.ok()) return fail(std::move(st));
  st = InjectFault(FaultOp::kFsync, tmp);
  if (!st.ok()) return fail(std::move(st));
  if (::fsync(fd) != 0) return fail(ErrnoError("fsync", tmp));
  if (::close(fd) != 0) {
    fd = -1;
    return fail(ErrnoError("close", tmp));
  }
  fd = -1;
  st = InjectFault(FaultOp::kRename, path);
  if (!st.ok()) return fail(std::move(st));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(ErrnoError("rename", path));
  }
  SyncDirOf(path);
  int out = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (out < 0) return ErrnoError("open", path);
  return out;
}

/// Parses one record at \p pos; false on any structural or checksum
/// failure. Writes the record and the offset just past it on success.
bool ParseRecordAt(std::string_view data, size_t pos, WalScanRecord* rec,
                   size_t* end) {
  if (pos + kRecordHeaderSize > data.size()) return false;
  const char* p = data.data() + pos;
  if (std::memcmp(p, kRecordMagic, sizeof(kRecordMagic)) != 0) return false;
  uint64_t lsn = GetU64(p + 4);
  uint64_t len = GetU32(p + 12);
  uint64_t sum = GetU64(p + 16);
  if (len > kMaxPayload) return false;
  if (pos + kRecordHeaderSize + len > data.size()) return false;
  std::string_view payload = data.substr(pos + kRecordHeaderSize, len);
  if (Fnv1a64(payload.data(), payload.size()) != sum) return false;
  rec->lsn = lsn;
  rec->payload = payload;
  *end = pos + kRecordHeaderSize + len;
  return true;
}

}  // namespace

std::string_view DurabilityLevelName(DurabilityLevel level) {
  switch (level) {
    case DurabilityLevel::kNone:
      return "none";
    case DurabilityLevel::kAsync:
      return "async";
    case DurabilityLevel::kSync:
      return "sync";
    case DurabilityLevel::kGroupCommit:
      return "group";
  }
  return "unknown";
}

Result<WalScanResult> ScanWalBuffer(std::string_view data) {
  if (data.size() < kWalHeaderSize ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::IoError("wal: missing or corrupt file header");
  }
  if (Fnv1a64(data.data(), 16) != GetU64(data.data() + 16)) {
    return Status::IoError("wal: file header checksum mismatch");
  }
  WalScanResult out;
  out.start_lsn = GetU64(data.data() + 8);
  out.valid_bytes = kWalHeaderSize;
  uint64_t expect = out.start_lsn;
  size_t off = kWalHeaderSize;
  while (off < data.size()) {
    WalScanRecord rec;
    size_t end = 0;
    if (!ParseRecordAt(data, off, &rec, &end) || rec.lsn != expect) break;
    out.records.push_back(rec);
    out.last_lsn = rec.lsn;
    expect = rec.lsn + 1;
    out.valid_bytes = end;
    off = end;
  }
  if (off >= data.size()) return out;

  // Damage at byte `off`. Resync byte-by-byte: any structurally valid
  // record past here means the corruption is *inside* the log, not a torn
  // tail — strict recovery must refuse, salvage replays what it finds.
  out.damage_note =
      StrCat("bad record at byte ", off, " of ", data.size());
  for (size_t pos = off + 1; pos + kRecordHeaderSize <= data.size(); ++pos) {
    if (data[pos] != 'G') continue;
    WalScanRecord rec;
    size_t end = 0;
    if (ParseRecordAt(data, pos, &rec, &end)) {
      out.salvaged.push_back(rec);
      pos = end - 1;
    }
  }
  out.damage =
      out.salvaged.empty() ? WalDamage::kTornTail : WalDamage::kMidLog;
  return out;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       uint64_t create_start_lsn,
                                       OpenReport* report) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno != ENOENT) return ErrnoError("stat", path);
    Result<std::unique_ptr<Wal>> created = Create(path, create_start_lsn);
    if (created.ok() && report != nullptr) {
      report->created = true;
      report->start_lsn = create_start_lsn;
    }
    return created;
  }

  std::string data;
  GLUENAIL_RETURN_NOT_OK(ReadWholeFile(path, &data));
  GLUENAIL_ASSIGN_OR_RETURN(WalScanResult scan, ScanWalBuffer(data));
  if (scan.damage == WalDamage::kMidLog) {
    return Status::IoError(StrCat(
        "wal '", path, "': mid-log corruption (", scan.damage_note,
        " with ", scan.salvaged.size(),
        " record(s) after it); recover with RecoveryMode::kSalvage and "
        "rotate to a fresh log"));
  }

  std::unique_ptr<Wal> wal(new Wal());
  wal->path_ = path;
  wal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (wal->fd_ < 0) return ErrnoError("open", path);
  wal->start_lsn_ = scan.start_lsn;
  wal->next_lsn_ = scan.records.empty() ? scan.start_lsn : scan.last_lsn + 1;
  wal->durable_lsn_ = scan.records.empty() ? 0 : scan.last_lsn;

  uint64_t truncated = data.size() - scan.valid_bytes;
  if (truncated > 0) {
    // Torn tail from a crashed append: cut the file back to the last
    // record boundary before appending anything after it.
    GLUENAIL_RETURN_NOT_OK(wal->TruncateLocked(scan.valid_bytes));
    wal->counters_.open_truncated_bytes.fetch_add(
        truncated, std::memory_order_relaxed);
  }
  wal->offset_ = scan.valid_bytes;
  // One fsync so the (possibly truncated) state we computed is the state
  // on disk — from here durable_lsn_ only advances through Sync().
  if (::fsync(wal->fd_) != 0) return ErrnoError("fsync", path);
  wal->synced_offset_ = wal->offset_;

  if (report != nullptr) {
    report->created = false;
    report->start_lsn = scan.start_lsn;
    report->last_lsn = scan.last_lsn;
    report->records = scan.records.size();
    report->truncated_bytes = truncated;
  }
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::Create(const std::string& path,
                                         uint64_t start_lsn) {
  GLUENAIL_ASSIGN_OR_RETURN(int fd, WriteFreshLog(path, start_lsn));
  std::unique_ptr<Wal> wal(new Wal());
  wal->path_ = path;
  wal->fd_ = fd;
  wal->start_lsn_ = start_lsn;
  wal->next_lsn_ = start_lsn;
  wal->offset_ = kWalHeaderSize;
  wal->synced_offset_ = kWalHeaderSize;
  wal->durable_lsn_ = 0;
  return wal;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best-effort: don't lose a clean shutdown's tail to a missing sync.
    if (!broken_ && synced_offset_ != offset_) ::fsync(fd_);
    ::close(fd_);
  }
}

Status Wal::TruncateLocked(uint64_t to) {
  GLUENAIL_RETURN_NOT_OK(InjectFault(FaultOp::kTruncate, path_));
  if (::ftruncate(fd_, static_cast<off_t>(to)) != 0) {
    return ErrnoError("ftruncate", path_);
  }
  return Status::OK();
}

uint64_t Wal::OverrideMaxPayloadForTesting(uint64_t bytes) {
  return g_max_payload_override.exchange(bytes, std::memory_order_relaxed);
}

Result<uint64_t> Wal::Append(const MutationBatch& batch) {
  const std::string payload = batch.Serialize();
  if (payload.size() > AppendPayloadCap()) {
    // Refuse before writing a byte: recovery rejects lengths past the cap
    // as corruption, so an oversized record would be acked durable yet
    // read back as a torn tail (and past 4 GiB the u32 length prefix
    // would silently truncate, corrupting the framing).
    return Status::InvalidArgument(
        StrCat("mutation batch serializes to ", payload.size(),
               " bytes, over the ", AppendPayloadCap(),
               "-byte wal record limit; split the batch"));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::InvalidArgument("wal is not open");
    if (broken_) {
      return Status::IoError(StrCat(
          "wal '", path_, "' is broken after an earlier failure; "
          "checkpoint to rotate in a fresh log"));
    }
    uint64_t lsn = next_lsn_;
    std::string record = EncodeRecord(lsn, payload);
    Status st = WriteAll(fd_, record, path_);
    if (!st.ok()) {
      counters_.append_failures.fetch_add(1, std::memory_order_relaxed);
      // Roll any partial record back off the file. If even that fails the
      // file ends in torn bytes — safe for recovery (the record's checksum
      // cannot validate) but useless for appending, so mark broken.
      Status rollback = TruncateLocked(offset_);
      if (!rollback.ok()) broken_ = true;
      return st;
    }
    offset_ += record.size();
    next_lsn_ = lsn + 1;
    counters_.appends.fetch_add(1, std::memory_order_relaxed);
    counters_.appended_bytes.fetch_add(record.size(),
                                       std::memory_order_relaxed);
    return lsn;
  }
}

Status Wal::FailSyncLocked(Status cause) {
  counters_.sync_failures.fetch_add(1, std::memory_order_relaxed);
  broken_ = true;
  // The un-synced suffix was appended but its commits are about to be
  // errored — remove it so those batches cannot resurface after restart.
  // If the rollback fails too, the (valid, unacked) records stay on disk:
  // that is the one unknown-outcome window, the same one a real crash
  // between write and ack leaves, and it is documented in wal.h.
  Status rollback = TruncateLocked(synced_offset_);
  if (rollback.ok()) {
    offset_ = synced_offset_;
    next_lsn_ = durable_lsn_ == 0 ? start_lsn_ : durable_lsn_ + 1;
  }
  return cause;
}

Status Wal::Sync() {
  uint64_t target_off, target_lsn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0) return Status::InvalidArgument("wal is not open");
    if (broken_) {
      return Status::IoError(
          StrCat("wal '", path_, "' is broken; checkpoint to heal"));
    }
    if (synced_offset_ == offset_) return Status::OK();
    Status st = InjectFault(FaultOp::kFsync, path_);
    if (!st.ok()) return FailSyncLocked(std::move(st));
    target_off = offset_;
    target_lsn = next_lsn_ - 1;
  }
  // The fsync itself runs outside mu_, so concurrent Appends keep landing
  // in the page cache while this group commits; they form the next group.
  int rc = ::fsync(fd_);
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return Status::IoError(
        StrCat("wal '", path_, "' broke during a concurrent failure"));
  }
  if (rc != 0) return FailSyncLocked(ErrnoError("fsync", path_));
  if (target_off > synced_offset_) {
    synced_offset_ = target_off;
    if (target_lsn > durable_lsn_) durable_lsn_ = target_lsn;
  }
  counters_.syncs.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Rotate(uint64_t start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("wal is not open");
  GLUENAIL_ASSIGN_OR_RETURN(int fresh, WriteFreshLog(path_, start_lsn));
  ::close(fd_);  // the old log's inode; already renamed over
  fd_ = fresh;
  start_lsn_ = start_lsn;
  next_lsn_ = start_lsn;
  offset_ = kWalHeaderSize;
  synced_offset_ = kWalHeaderSize;
  durable_lsn_ = 0;
  broken_ = false;
  counters_.rotations.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<Wal::TailChunk> Wal::ReadRecordsFrom(uint64_t from_lsn) const {
  // Holding mu_ for the whole read pins a consistent (file bytes,
  // synced_offset_, durable_lsn_) triple against concurrent Append / Sync
  // / Rotate. The read is page-cache traffic, comparable to the buffered
  // writes Append already does under this mutex.
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::InvalidArgument("wal is not open");
  TailChunk chunk;
  chunk.start_lsn = start_lsn_;
  chunk.durable_lsn = durable_lsn_;
  if (durable_lsn_ == 0 || from_lsn > durable_lsn_) return chunk;
  std::string data;
  GLUENAIL_RETURN_NOT_OK(ReadWholeFile(path_, &data));
  // Only the synced prefix ships: a record past synced_offset_ is acked to
  // nobody yet and a sync failure may roll it back, so a replica that
  // applied it would hold state the primary can lose.
  if (data.size() > synced_offset_) data.resize(synced_offset_);
  GLUENAIL_ASSIGN_OR_RETURN(WalScanResult scan, ScanWalBuffer(data));
  for (const WalScanRecord& rec : scan.records) {
    if (rec.lsn < from_lsn || rec.lsn > durable_lsn_) continue;
    chunk.records.push_back(
        TailRecord{rec.lsn, std::string(rec.payload)});
  }
  return chunk;
}

uint64_t Wal::start_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return start_lsn_;
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

bool Wal::broken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return broken_;
}

}  // namespace gluenail
