/// \file snapshot.h
/// \brief Immutable point-in-time views of relations and databases.
///
/// A RelationSnapshot is a frozen copy of one relation's live tuples in
/// canonical term order, stamped with the relation's version() at capture
/// time. Snapshots are cheap in steady state: Relation caches the snapshot
/// it built for its current version and hands out the same shared_ptr until
/// the next mutation, so a read-mostly workload pays the copy once per
/// write, not once per read.
///
/// A DatabaseSnapshot is a consistent set of RelationSnapshots captured
/// together (under the engine's writer exclusion), so readers never observe
/// a torn multi-relation state. Both types are immutable after construction
/// and safe to share across threads; they remain valid after the source
/// Relation/Database mutates or is destroyed.

#ifndef GLUENAIL_STORAGE_SNAPSHOT_H_
#define GLUENAIL_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/storage/stats.h"
#include "src/storage/tuple.h"

namespace gluenail {

class TermPool;

/// Frozen contents of one relation. `tuples` is sorted by the pool's
/// canonical term order (Relation::SortedTuples).
struct RelationSnapshot {
  std::string name;
  uint32_t arity = 0;
  /// Relation::version() at capture time.
  uint64_t version = 0;
  std::vector<Tuple> tuples;
  /// Cardinality statistics frozen at capture time, so readers plan
  /// against the same view they execute against.
  CardEstimate stats;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  /// Binary search over the canonical order.
  bool Contains(const TermPool& pool, RowView t) const;
};

/// A consistent set of relation snapshots keyed by (name term, arity).
class DatabaseSnapshot {
 public:
  size_t num_relations() const { return entries_.size(); }

  /// Returns the snapshot, or nullptr if the relation did not exist at
  /// capture time. The pointer stays valid as long as any copy of this
  /// DatabaseSnapshot is alive.
  const RelationSnapshot* Find(TermId name, uint32_t arity) const;

  /// Invokes \p fn for every captured relation (iteration order
  /// unspecified).
  void ForEach(const std::function<void(TermId name, uint32_t arity,
                                        const RelationSnapshot&)>& fn) const;

 private:
  friend class Database;

  static uint64_t PackKey(TermId name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }

  std::unordered_map<uint64_t, std::shared_ptr<const RelationSnapshot>>
      entries_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_SNAPSHOT_H_
