/// \file delta_log.h
/// \brief Captured per-relation EDB deltas for incremental view
/// maintenance (ROADMAP item 2; Brass & Stephan delta pipelines).
///
/// The engine's structured write path (Engine::ApplyBatch, AddFact)
/// records every tuple that actually changed an EDB relation into this
/// log as net insert/erase row sets. The NAIL! refresh planner consumes
/// them to run counting / DRed maintenance instead of a full recompute
/// (src/nail/ivm.cc).
///
/// Validity is watermark-based: after each captured batch the log seals
/// itself at the EDB's (relation count, version-sum) snapshot. Relation
/// versions are bumped by *every* content change — Insert, Erase, Clear
/// of a non-empty relation, Compact, CopyFrom — so any mutation that
/// bypassed capture (Engine::Mutate, ad-hoc `++p` statements, direct
/// Relation calls) leaves the watermark behind the live snapshot and the
/// next refresh detects it and recomputes from scratch. Recover and
/// LoadEdbFile additionally invalidate explicitly (belt and braces: a
/// salvage recovery must never serve memo rows derived from
/// pre-recovery deltas).
///
/// Captured rows are *net* deltas against the base snapshot: an insert
/// that cancels a captured erase (or vice versa) removes the earlier
/// entry instead of accumulating both sides. Invariants the maintenance
/// algorithms rely on: erased ⊆ base, inserted ∩ base = ∅, and
/// current = base − erased ∪ inserted. Per-relation captures are capped
/// (Config::max_rows); an overflowing relation drops its row sets and is
/// marked, which forces the next refresh to full recompute.

#ifndef GLUENAIL_STORAGE_DELTA_LOG_H_
#define GLUENAIL_STORAGE_DELTA_LOG_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/storage/database.h"
#include "src/storage/relation.h"
#include "src/storage/tuple.h"

namespace gluenail {

/// The EDB's monotone (relation count, version-sum) snapshot — the same
/// pair NailEngine memoizes against.
struct EdbVersion {
  uint64_t relations = 0;
  uint64_t version_sum = 0;
  bool operator==(const EdbVersion& o) const {
    return relations == o.relations && version_sum == o.version_sum;
  }
  bool operator!=(const EdbVersion& o) const { return !(*this == o); }
};

/// Snapshots \p db's version pair (shared by the engine's sealing and the
/// NAIL! engine's staleness check).
EdbVersion SnapshotEdbVersion(const Database& db);

class DeltaLog {
 public:
  /// Net delta of one relation since the log's base snapshot.
  struct RelDelta {
    RelDelta(uint32_t arity)
        : inserted("$delta+", arity), erased("$delta-", arity) {}
    Relation inserted;
    Relation erased;
    /// The capture overflowed max_rows: row sets were discarded and the
    /// next refresh must recompute this relation's dependents fully.
    bool dropped = false;

    uint64_t rows() const { return inserted.size() + erased.size(); }
  };

  explicit DeltaLog(uint64_t max_rows_per_relation = 1u << 20)
      : max_rows_(max_rows_per_relation) {}

  /// Records a tuple that was actually inserted into / erased from the
  /// relation named \p name. No-ops while the log is invalid (nothing to
  /// maintain incrementally until a refresh rebases it).
  void CaptureInsert(TermId name, uint32_t arity, RowView row);
  void CaptureErase(TermId name, uint32_t arity, RowView row);

  /// Seals the captured state at \p watermark — call after each batch
  /// whose changes were all captured.
  void SealBatch(const EdbVersion& watermark) {
    if (valid_) watermark_ = watermark;
  }

  /// Drops everything and marks the log unusable until the next Rebase.
  void Invalidate() {
    valid_ = false;
    entries_.clear();
  }

  /// Called after a refresh: the memo now matches \p base, so deltas
  /// accumulate against it from here on.
  void Rebase(const EdbVersion& base) {
    entries_.clear();
    base_ = base;
    watermark_ = base;
    valid_ = true;
  }

  bool valid() const { return valid_; }
  const EdbVersion& base() const { return base_; }
  const EdbVersion& watermark() const { return watermark_; }

  /// True when every EDB change between \p base and \p now went through
  /// capture: the log is valid, accumulates against exactly \p base, and
  /// its watermark matches the live snapshot \p now.
  bool Covers(const EdbVersion& base, const EdbVersion& now) const {
    return valid_ && base_ == base && watermark_ == now;
  }

  const RelDelta* Find(TermId name, uint32_t arity) const {
    auto it = entries_.find(Key(name, arity));
    return it == entries_.end() ? nullptr : it->second.get();
  }

  template <typename F>  // F(TermId name, uint32_t arity, const RelDelta&)
  void ForEach(F&& f) const {
    for (const auto& [key, delta] : entries_) {
      f(static_cast<TermId>(key >> 32), static_cast<uint32_t>(key), *delta);
    }
  }

  bool any_dropped() const {
    for (const auto& [key, delta] : entries_) {
      if (delta->dropped) return true;
    }
    return false;
  }

  uint64_t total_rows() const {
    uint64_t n = 0;
    for (const auto& [key, delta] : entries_) n += delta->rows();
    return n;
  }

 private:
  static uint64_t Key(TermId name, uint32_t arity) {
    return (static_cast<uint64_t>(name) << 32) | arity;
  }
  RelDelta* Entry(TermId name, uint32_t arity);

  uint64_t max_rows_;
  bool valid_ = false;
  EdbVersion base_;
  EdbVersion watermark_;
  std::unordered_map<uint64_t, std::unique_ptr<RelDelta>> entries_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_DELTA_LOG_H_
