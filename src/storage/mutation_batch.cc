#include "src/storage/mutation_batch.h"

#include <charconv>

#include "src/common/strings.h"
#include "src/storage/persistence.h"

namespace gluenail {

namespace {

constexpr std::string_view kHeaderPrefix = "%% gluenail-batch v1 ";

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

/// FNV-1a over \p line normalized to end in exactly one LF — the same
/// discipline the v2 EDB format uses, so batches survive CRLF translation.
uint64_t HashLine(uint64_t h, std::string_view line) {
  h = Fnv1a64(line.data(), line.size(), h);
  return Fnv1a64("\n", 1, h);
}

std::string Hex16(uint64_t v) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

bool ParseU64(std::string_view s, uint64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out, 16);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string OpLine(const MutationBatch::Op& op) {
  return StrCat(op.kind == MutationBatch::OpKind::kInsert ? "+ " : "- ",
                op.fact);
}

}  // namespace

void MutationBatch::Push(OpKind kind, std::string_view fact) {
  std::string_view t = TrimView(fact);
  if (!t.empty() && t.back() == '.') t = TrimView(t.substr(0, t.size() - 1));
  ops_.push_back(Op{kind, std::string(t)});
}

std::string MutationBatch::RenderFact(const TermPool& pool, TermId name,
                                      RowView row) {
  std::string out = pool.ToString(name);
  if (row.empty()) return out;
  out += "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ",";
    pool.AppendTerm(row[i], &out);
  }
  out += ")";
  return out;
}

Result<MutationBatch::ApplyReport> MutationBatch::Apply(
    Database* db, TermPool* pool, const ChangeObserver* observer) const {
  // Validate everything before touching the database: parse every fact and
  // pin down its (relation, tuple) shape first, so a bad op in the middle
  // of a batch cannot leave a half-applied prefix behind.
  struct Resolved {
    OpKind kind;
    TermId name;
    Tuple row;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(ops_.size());
  for (const Op& op : ops_) {
    Result<TermId> parsed = ParseGroundTerm(pool, op.fact);
    if (!parsed.ok()) {
      return parsed.status().WithContext(StrCat("batch op '", op.fact, "'"));
    }
    TermId t = *parsed;
    if (pool->IsCompound(t)) {
      std::span<const TermId> args = pool->Args(t);
      resolved.push_back(
          Resolved{op.kind, pool->Functor(t), Tuple(args.begin(), args.end())});
    } else if (pool->IsSymbol(t)) {
      resolved.push_back(Resolved{op.kind, t, Tuple{}});
    } else {
      return Status::InvalidArgument(StrCat(
          "batch op '", op.fact, "': a fact must be a symbol or compound"));
    }
  }

  ApplyReport report;
  for (const Resolved& r : resolved) {
    uint32_t arity = static_cast<uint32_t>(r.row.size());
    if (r.kind == OpKind::kInsert) {
      if (db->GetOrCreate(r.name, arity)->Insert(r.row)) {
        ++report.inserted;
        if (observer != nullptr) (*observer)(r.kind, r.name, arity, r.row);
      }
    } else {
      Relation* rel = db->Find(r.name, arity);
      if (rel != nullptr && rel->Erase(r.row)) {
        ++report.erased;
        if (observer != nullptr) (*observer)(r.kind, r.name, arity, r.row);
      }
    }
    ++report.applied;
  }
  return report;
}

Status MutationBatch::Validate(TermPool* pool) const {
  for (const Op& op : ops_) {
    Result<TermId> parsed = ParseGroundTerm(pool, op.fact);
    if (!parsed.ok()) {
      return parsed.status().WithContext(StrCat("batch op '", op.fact, "'"));
    }
    if (!pool->IsCompound(*parsed) && !pool->IsSymbol(*parsed)) {
      return Status::InvalidArgument(StrCat(
          "batch op '", op.fact, "': a fact must be a symbol or compound"));
    }
  }
  return Status::OK();
}

std::string MutationBatch::Serialize() const {
  uint64_t checksum = 0xcbf29ce484222325ULL;
  std::string body;
  for (const Op& op : ops_) {
    std::string line = OpLine(op);
    checksum = HashLine(checksum, line);
    body += line;
    body += "\n";
  }
  return StrCat(kHeaderPrefix, "ops=", ops_.size(),
                " checksum=", Hex16(checksum), "\n", body);
}

Result<MutationBatch> MutationBatch::Parse(std::string_view text) {
  size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Status::InvalidArgument("mutation batch: missing header line");
  }
  std::string_view header = TrimView(text.substr(0, eol));
  if (header.substr(0, kHeaderPrefix.size()) != kHeaderPrefix) {
    return Status::InvalidArgument(
        StrCat("mutation batch: bad header '", header, "'"));
  }
  uint64_t declared_ops = 0;
  uint64_t declared_checksum = 0;
  bool have_ops = false, have_checksum = false;
  for (std::string_view field :
       Split(header.substr(kHeaderPrefix.size()), ' ')) {
    if (field.substr(0, 4) == "ops=") {
      have_ops = ParseU64(field.substr(4), &declared_ops);
    } else if (field.substr(0, 9) == "checksum=") {
      have_checksum = ParseHex64(field.substr(9), &declared_checksum);
    }
  }
  if (!have_ops || !have_checksum) {
    return Status::InvalidArgument(
        "mutation batch: header lacks ops=/checksum= fields");
  }

  MutationBatch batch;
  uint64_t checksum = 0xcbf29ce484222325ULL;
  std::string_view rest = text.substr(eol + 1);
  while (!rest.empty()) {
    size_t next = rest.find('\n');
    std::string_view line =
        next == std::string_view::npos ? rest : rest.substr(0, next);
    rest = next == std::string_view::npos ? std::string_view()
                                          : rest.substr(next + 1);
    std::string_view t = TrimView(line);
    if (t.empty()) continue;
    OpKind kind;
    if (t.substr(0, 2) == "+ ") {
      kind = OpKind::kInsert;
    } else if (t.substr(0, 2) == "- ") {
      kind = OpKind::kErase;
    } else {
      return Status::InvalidArgument(
          StrCat("mutation batch: bad op line '", t, "'"));
    }
    batch.ops_.push_back(Op{kind, std::string(TrimView(t.substr(2)))});
    checksum = HashLine(checksum, OpLine(batch.ops_.back()));
  }
  if (batch.size() != declared_ops) {
    return Status::InvalidArgument(
        StrCat("mutation batch: header declares ", declared_ops,
               " ops but body has ", batch.size()));
  }
  if (checksum != declared_checksum) {
    return Status::InvalidArgument(
        StrCat("mutation batch: checksum mismatch (header ",
               Hex16(declared_checksum), ", body ", Hex16(checksum), ")"));
  }
  return batch;
}

}  // namespace gluenail
