/// \file persistence.h
/// \brief EDB persistence: "storing EDB relations on disk between runs"
/// (paper §10), hardened for crash safety.
///
/// The on-disk format is plain fact syntax, one ground fact per line,
/// framed by checksummed headers (format v2):
///
///     %% gluenail-edb v2 relations=2 tuples=6 checksum=89abcdef01234567
///     % edge/2: 5 tuples checksum=0123456789abcdef
///     edge(1,2).
///     tolerance(2.5).
///     students(cs99)(wilson).      % parameterized (HiLog) predicate
///     flag.                        % zero-arity relation
///
/// The `%%` header carries the relation/tuple counts and a whole-file
/// checksum; each `%` section header carries its relation's tuple count
/// and a checksum over just that section's fact lines. Checksums are
/// FNV-1a 64 over lines normalized to LF endings, so files survive CRLF
/// translation. Headerless files (format v1, and hand-written fact files)
/// still load.
///
/// Crash safety:
///  * SaveDatabaseToFile writes a temp file in the target's directory,
///    fsyncs, and atomically renames over the target — a crash at any
///    point leaves either the old complete file or the new complete file,
///    never a torn one.
///  * Loading stages everything into a scratch database and swaps into
///    the destination only after full validation: a failed load leaves
///    the destination untouched (all-or-nothing).
///  * RecoveryMode::kSalvage keeps the checksummed-good relations of a
///    torn or partially corrupted file and reports what was dropped.
///
/// Every fact is simply a ground term whose functor is the predicate name
/// and whose arguments are the tuple; the loader therefore needs only a
/// ground-term reader, implemented here without depending on the full Glue
/// parser (the storage layer sits below the language front end).

#ifndef GLUENAIL_STORAGE_PERSISTENCE_H_
#define GLUENAIL_STORAGE_PERSISTENCE_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/database.h"

namespace gluenail {

/// Process-wide persistence activity counters, exported through the engine's
/// metrics registry. Global (not per-Engine) because the file-level save/load
/// entry points are free functions.
struct PersistenceCounters {
  std::atomic<uint64_t> saves{0};
  std::atomic<uint64_t> save_failures{0};
  std::atomic<uint64_t> loads{0};
  std::atomic<uint64_t> load_failures{0};
};

PersistenceCounters& GlobalPersistenceCounters();

/// How loading reacts to a corrupt or torn file.
enum class RecoveryMode {
  /// Any validation failure (bad checksum, short section, parse error)
  /// fails the whole load; the destination database is untouched.
  kStrict,
  /// Keep every relation section whose own checksum and tuple count
  /// validate; drop (and report) the rest. Headerless legacy files
  /// salvage line-by-line instead of section-by-section.
  kSalvage,
};

struct LoadOptions {
  RecoveryMode recovery = RecoveryMode::kStrict;
};

/// What a load accomplished — and, under kSalvage, what it had to drop.
struct LoadReport {
  size_t relations_loaded = 0;
  uint64_t facts_loaded = 0;
  /// Relation sections dropped by salvage (checksum/count/parse failures).
  size_t sections_dropped = 0;
  /// Individual fact lines dropped by salvage (legacy headerless files).
  size_t lines_dropped = 0;
  /// One human-readable reason per dropped section or line.
  std::vector<std::string> dropped;

  bool clean() const { return sections_dropped == 0 && lines_dropped == 0; }
};

/// Serializes every relation of \p db in canonical sorted order, with the
/// v2 checksummed headers. Infallible; the result is what the save
/// functions write.
std::string SerializeDatabase(const Database& db);

/// Writes SerializeDatabase(db) to \p os and flushes, verifying stream
/// state afterwards: a full disk or broken pipe surfaces as
/// Status::IoError, never as a silent truncation.
Status SaveDatabase(const Database& db, std::ostream& os);

/// Crash-safe save: temp file in the same directory, fsync, atomic
/// rename. On any failure the previous file content is untouched and the
/// temp file is removed.
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Reads facts into \p db, creating relations as needed. All-or-nothing:
/// facts are staged into a scratch database and merged only after the
/// whole input validates. Existing tuples are kept; duplicates in the
/// input are harmless (relations dedupe).
Status LoadDatabase(Database* db, std::istream& is);
Result<LoadReport> LoadDatabase(Database* db, std::istream& is,
                                const LoadOptions& options);

Status LoadDatabaseFromFile(Database* db, const std::string& path);
Result<LoadReport> LoadDatabaseFromFile(Database* db, const std::string& path,
                                        const LoadOptions& options);

/// Parses one ground term from \p text (the whole string must be consumed,
/// modulo surrounding whitespace). Exposed for tests and the Engine's
/// fact-insertion API.
Result<TermId> ParseGroundTerm(TermPool* pool, std::string_view text);

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_PERSISTENCE_H_
