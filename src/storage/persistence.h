/// \file persistence.h
/// \brief EDB persistence: "storing EDB relations on disk between runs"
/// (paper §10).
///
/// The on-disk format is plain fact syntax, one ground fact per line:
///
///     edge(1,2).
///     tolerance(2.5).
///     students(cs99)(wilson).      % parameterized (HiLog) predicate
///     flag.                        % zero-arity relation
///     % comment lines start with '%' or '#'
///
/// Every fact is simply a ground term whose functor is the predicate name
/// and whose arguments are the tuple; the loader therefore needs only a
/// ground-term reader, implemented here without depending on the full Glue
/// parser (the storage layer sits below the language front end).

#ifndef GLUENAIL_STORAGE_PERSISTENCE_H_
#define GLUENAIL_STORAGE_PERSISTENCE_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/common/result.h"
#include "src/storage/database.h"

namespace gluenail {

/// Writes every relation of \p db in canonical sorted order.
Status SaveDatabase(const Database& db, std::ostream& os);
Status SaveDatabaseToFile(const Database& db, const std::string& path);

/// Reads facts into \p db, creating relations as needed. Existing tuples
/// are kept; duplicates in the input are harmless (relations dedupe).
Status LoadDatabase(Database* db, std::istream& is);
Status LoadDatabaseFromFile(Database* db, const std::string& path);

/// Parses one ground term from \p text (the whole string must be consumed,
/// modulo surrounding whitespace). Exposed for tests and the Engine's
/// fact-insertion API.
Result<TermId> ParseGroundTerm(TermPool* pool, std::string_view text);

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_PERSISTENCE_H_
