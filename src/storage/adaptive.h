/// \file adaptive.h
/// \brief The adaptive optimization policy of paper §10.
///
/// "The back end will employ adaptive optimization techniques that select
///  appropriate storage structures and access methods at run-time based on
///  changing properties of the database and patterns of access. For
///  example, an index could be created for a relation after the cumulative
///  cost of selection by scanning the relation reaches the cost of creating
///  the index."
///
/// We implement exactly that rule: for each (relation, column-set) we
/// accumulate the number of rows scanned by selections that could have used
/// an index on that column set; once the cumulative scan cost reaches
/// `build_cost_factor * current_relation_size` (our model of index build
/// cost: one hash insert per row), the index is built and used from then on.

#ifndef GLUENAIL_STORAGE_ADAPTIVE_H_
#define GLUENAIL_STORAGE_ADAPTIVE_H_

#include <cstdint>
#include <unordered_map>

#include "src/storage/index.h"

namespace gluenail {

/// How a relation decides when to build indexes for keyed selections.
enum class IndexPolicy {
  /// Never index; every keyed selection scans.
  kNeverIndex,
  /// Build an index on first use of a keyed selection.
  kAlwaysIndex,
  /// Paper §10: build once cumulative scan cost reaches build cost.
  kAdaptive,
};

struct AdaptiveConfig {
  /// Estimated cost of building an index, in units of "rows scanned" per
  /// row of the relation. 1.0 models one hash insert ~= one scan step.
  double build_cost_factor = 1.0;
};

/// \brief Per-relation access statistics backing the adaptive policy.
class AccessStats {
 public:
  /// Accounts \p rows_scanned rows of scanning on behalf of a keyed
  /// selection over \p mask.
  void RecordScan(ColumnMask mask, uint64_t rows_scanned) {
    scanned_[mask] += rows_scanned;
  }

  /// True if the cumulative scan cost for \p mask has reached the modeled
  /// build cost for a relation of \p relation_size rows.
  bool ShouldBuild(ColumnMask mask, uint64_t relation_size,
                   const AdaptiveConfig& config) const {
    auto it = scanned_.find(mask);
    if (it == scanned_.end()) return false;
    double build_cost =
        config.build_cost_factor * static_cast<double>(relation_size);
    return static_cast<double>(it->second) >= build_cost;
  }

  uint64_t cumulative_scanned(ColumnMask mask) const {
    auto it = scanned_.find(mask);
    return it == scanned_.end() ? 0 : it->second;
  }

  void Reset() { scanned_.clear(); }

 private:
  std::unordered_map<ColumnMask, uint64_t> scanned_;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_ADAPTIVE_H_
