#include "src/storage/persistence.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/strings.h"

namespace gluenail {

namespace {

/// Minimal recursive-descent reader for ground terms in fact syntax.
/// Grammar:
///   term     := primary suffix*
///   suffix   := '(' term (',' term)* ')'        // HiLog application
///   primary  := number | symbol | quoted | '(' term ')'
class GroundTermReader {
 public:
  GroundTermReader(TermPool* pool, std::string_view text)
      : pool_(pool), text_(text) {}

  Result<TermId> ReadTerm() {
    GLUENAIL_ASSIGN_OR_RETURN(TermId t, ReadPrimary());
    SkipSpace();
    while (!AtEnd() && Peek() == '(') {
      GLUENAIL_ASSIGN_OR_RETURN(std::vector<TermId> args, ReadArgs());
      if (args.empty()) {
        return Status::ParseError(Context("empty argument list"));
      }
      t = pool_->MakeCompound(t, args);
      SkipSpace();
    }
    return t;
  }

  Status ExpectEnd() {
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError(Context("trailing characters after term"));
    }
    return Status::OK();
  }

  Status ExpectDot() {
    SkipSpace();
    if (AtEnd() || Peek() != '.') {
      return Status::ParseError(Context("expected '.' after fact"));
    }
    ++pos_;
    return Status::OK();
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  char Peek() const { return text_[pos_]; }

  std::string Context(std::string_view msg) const {
    return StrCat(msg, " at offset ", pos_, " in \"", text_, "\"");
  }

  Result<std::vector<TermId>> ReadArgs() {
    ++pos_;  // consume '('
    std::vector<TermId> args;
    SkipSpace();
    if (!AtEnd() && Peek() == ')') {
      ++pos_;
      return args;
    }
    while (true) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId a, ReadTerm());
      args.push_back(a);
      SkipSpace();
      if (AtEnd()) return Status::ParseError(Context("unterminated args"));
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ')') {
        ++pos_;
        return args;
      }
      return Status::ParseError(Context("expected ',' or ')'"));
    }
  }

  Result<TermId> ReadPrimary() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError(Context("expected a term"));
    char c = Peek();
    if (c == '(') {
      ++pos_;
      GLUENAIL_ASSIGN_OR_RETURN(TermId t, ReadTerm());
      SkipSpace();
      if (AtEnd() || Peek() != ')') {
        return Status::ParseError(Context("expected ')'"));
      }
      ++pos_;
      return t;
    }
    if (c == '\'') return ReadQuoted();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ReadNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ReadSymbol();
    }
    return Status::ParseError(Context("unexpected character"));
  }

  Result<TermId> ReadQuoted() {
    ++pos_;  // consume opening quote
    std::string raw;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < text_.size()) {
        raw += c;
        raw += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        return pool_->MakeSymbol(UnescapeQuoted(raw));
      }
      raw += c;
      ++pos_;
    }
    return Status::ParseError(Context("unterminated quoted symbol"));
  }

  Result<TermId> ReadNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool is_float = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        // A '.' only continues the number if a digit follows; a bare '.' is
        // the fact terminator.
        is_float = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ > start &&
                 pos_ + 1 < text_.size() &&
                 (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
                  text_[pos_ + 1] == '-' || text_[pos_ + 1] == '+')) {
        is_float = true;
        pos_ += 2;
      } else {
        break;
      }
    }
    std::string_view lit = text_.substr(start, pos_ - start);
    if (lit.empty() || lit == "-") {
      return Status::ParseError(Context("malformed number"));
    }
    if (is_float) {
      double v = 0;
      auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
      if (ec != std::errc() || p != lit.data() + lit.size()) {
        return Status::ParseError(Context("malformed float"));
      }
      return pool_->MakeFloat(v);
    }
    int64_t v = 0;
    auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
    if (ec != std::errc() || p != lit.data() + lit.size()) {
      return Status::ParseError(Context("malformed integer"));
    }
    return pool_->MakeInt(v);
  }

  Result<TermId> ReadSymbol() {
    // An unquoted identifier starting upper-case or with '_' would be a
    // variable in source syntax; facts are ground, so reject it. (A symbol
    // that genuinely starts upper-case is written quoted: 'X'.)
    char first = Peek();
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return Status::ParseError(
          Context("variables are not allowed in ground facts"));
    }
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    return pool_->MakeSymbol(text_.substr(start, pos_ - start));
  }

  TermPool* pool_;
  std::string_view text_;
  size_t pos_ = 0;
};

void AppendFact(const TermPool& pool, TermId name, const Tuple& tuple,
                std::string* out) {
  pool.AppendTerm(name, out);
  if (!tuple.empty()) {
    out->push_back('(');
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i != 0) out->push_back(',');
      pool.AppendTerm(tuple[i], out);
    }
    out->push_back(')');
  }
  out->append(".\n");
}

}  // namespace

Result<TermId> ParseGroundTerm(TermPool* pool, std::string_view text) {
  GroundTermReader reader(pool, text);
  GLUENAIL_ASSIGN_OR_RETURN(TermId t, reader.ReadTerm());
  GLUENAIL_RETURN_NOT_OK(reader.ExpectEnd());
  return t;
}

Status SaveDatabase(const Database& db, std::ostream& os) {
  const TermPool& pool = *db.pool();
  // Collect and order relations by printed name for deterministic files.
  std::vector<std::pair<std::string, std::pair<TermId, Relation*>>> rels;
  db.ForEach([&](TermId name, uint32_t arity, Relation* rel) {
    rels.emplace_back(StrCat(pool.ToString(name), "/", arity),
                      std::make_pair(name, rel));
  });
  std::sort(rels.begin(), rels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string buf;
  for (const auto& [label, entry] : rels) {
    auto [name, rel] = entry;
    buf.clear();
    buf += StrCat("% ", label, ": ", rel->size(), " tuples\n");
    for (const Tuple& t : rel->SortedTuples(pool)) {
      AppendFact(pool, name, t, &buf);
    }
    os << buf;
    if (!os.good()) return Status::IoError("write failed while saving EDB");
  }
  return Status::OK();
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::IoError(StrCat("cannot open ", path, " for writing"));
  }
  return SaveDatabase(db, os).WithContext(path);
}

Status LoadDatabase(Database* db, std::istream& is) {
  TermPool* pool = db->pool();
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and blank lines.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    GroundTermReader reader(pool, line);
    Result<TermId> fact = reader.ReadTerm();
    if (!fact.ok()) {
      return fact.status().WithContext(StrCat("line ", line_no));
    }
    Status dot = reader.ExpectDot();
    if (!dot.ok()) return dot.WithContext(StrCat("line ", line_no));
    GLUENAIL_RETURN_NOT_OK(reader.ExpectEnd().WithContext(
        StrCat("line ", line_no)));
    TermId t = *fact;
    if (pool->IsCompound(t)) {
      TermId name = pool->Functor(t);
      std::span<const TermId> args = pool->Args(t);
      Relation* rel =
          db->GetOrCreate(name, static_cast<uint32_t>(args.size()));
      rel->Insert(args);  // span insert: no intermediate Tuple copy
    } else if (pool->IsSymbol(t)) {
      Relation* rel = db->GetOrCreate(t, 0);
      rel->Insert(Tuple{});
    } else {
      return Status::ParseError(
          StrCat("line ", line_no, ": a fact must be a symbol or compound"));
    }
  }
  return Status::OK();
}

Status LoadDatabaseFromFile(Database* db, const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) {
    return Status::IoError(StrCat("cannot open ", path, " for reading"));
  }
  return LoadDatabase(db, is).WithContext(path);
}

}  // namespace gluenail
