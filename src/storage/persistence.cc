#include "src/storage/persistence.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/strings.h"

namespace gluenail {

namespace {

/// Minimal recursive-descent reader for ground terms in fact syntax.
/// Grammar:
///   term     := primary suffix*
///   suffix   := '(' term (',' term)* ')'        // HiLog application
///   primary  := number | symbol | quoted | '(' term ')'
class GroundTermReader {
 public:
  GroundTermReader(TermPool* pool, std::string_view text)
      : pool_(pool), text_(text) {}

  Result<TermId> ReadTerm() {
    GLUENAIL_ASSIGN_OR_RETURN(TermId t, ReadPrimary());
    SkipSpace();
    while (!AtEnd() && Peek() == '(') {
      GLUENAIL_ASSIGN_OR_RETURN(std::vector<TermId> args, ReadArgs());
      if (args.empty()) {
        return Status::ParseError(Context("empty argument list"));
      }
      t = pool_->MakeCompound(t, args);
      SkipSpace();
    }
    return t;
  }

  Status ExpectEnd() {
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError(Context("trailing characters after term"));
    }
    return Status::OK();
  }

  Status ExpectDot() {
    SkipSpace();
    if (AtEnd() || Peek() != '.') {
      return Status::ParseError(Context("expected '.' after fact"));
    }
    ++pos_;
    return Status::OK();
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  char Peek() const { return text_[pos_]; }

  std::string Context(std::string_view msg) const {
    return StrCat(msg, " at offset ", pos_, " in \"", text_, "\"");
  }

  Result<std::vector<TermId>> ReadArgs() {
    ++pos_;  // consume '('
    std::vector<TermId> args;
    SkipSpace();
    if (!AtEnd() && Peek() == ')') {
      ++pos_;
      return args;
    }
    while (true) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId a, ReadTerm());
      args.push_back(a);
      SkipSpace();
      if (AtEnd()) return Status::ParseError(Context("unterminated args"));
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ')') {
        ++pos_;
        return args;
      }
      return Status::ParseError(Context("expected ',' or ')'"));
    }
  }

  Result<TermId> ReadPrimary() {
    SkipSpace();
    if (AtEnd()) return Status::ParseError(Context("expected a term"));
    char c = Peek();
    if (c == '(') {
      ++pos_;
      GLUENAIL_ASSIGN_OR_RETURN(TermId t, ReadTerm());
      SkipSpace();
      if (AtEnd() || Peek() != ')') {
        return Status::ParseError(Context("expected ')'"));
      }
      ++pos_;
      return t;
    }
    if (c == '\'') return ReadQuoted();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ReadNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ReadSymbol();
    }
    return Status::ParseError(Context("unexpected character"));
  }

  Result<TermId> ReadQuoted() {
    ++pos_;  // consume opening quote
    std::string raw;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < text_.size()) {
        raw += c;
        raw += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        return pool_->MakeSymbol(UnescapeQuoted(raw));
      }
      raw += c;
      ++pos_;
    }
    return Status::ParseError(Context("unterminated quoted symbol"));
  }

  Result<TermId> ReadNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    bool is_float = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        // A '.' only continues the number if a digit follows; a bare '.' is
        // the fact terminator.
        is_float = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && pos_ > start &&
                 pos_ + 1 < text_.size() &&
                 (std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
                  text_[pos_ + 1] == '-' || text_[pos_ + 1] == '+')) {
        is_float = true;
        pos_ += 2;
      } else {
        break;
      }
    }
    std::string_view lit = text_.substr(start, pos_ - start);
    if (lit.empty() || lit == "-") {
      return Status::ParseError(Context("malformed number"));
    }
    if (is_float) {
      double v = 0;
      auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
      if (ec != std::errc() || p != lit.data() + lit.size()) {
        return Status::ParseError(Context("malformed float"));
      }
      return pool_->MakeFloat(v);
    }
    int64_t v = 0;
    auto [p, ec] = std::from_chars(lit.data(), lit.data() + lit.size(), v);
    if (ec != std::errc() || p != lit.data() + lit.size()) {
      return Status::ParseError(Context("malformed integer"));
    }
    return pool_->MakeInt(v);
  }

  Result<TermId> ReadSymbol() {
    // An unquoted identifier starting upper-case or with '_' would be a
    // variable in source syntax; facts are ground, so reject it. (A symbol
    // that genuinely starts upper-case is written quoted: 'X'.)
    char first = Peek();
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return Status::ParseError(
          Context("variables are not allowed in ground facts"));
    }
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ++pos_;
      } else {
        break;
      }
    }
    return pool_->MakeSymbol(text_.substr(start, pos_ - start));
  }

  TermPool* pool_;
  std::string_view text_;
  size_t pos_ = 0;
};

void AppendFact(const TermPool& pool, TermId name, const Tuple& tuple,
                std::string* out) {
  pool.AppendTerm(name, out);
  if (!tuple.empty()) {
    out->push_back('(');
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i != 0) out->push_back(',');
      pool.AppendTerm(tuple[i], out);
    }
    out->push_back(')');
  }
  out->append(".\n");
}

// --- v2 checksummed framing ------------------------------------------------

constexpr std::string_view kFileMagic = "%% gluenail-edb v2";
constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Checksums are accumulated per logical line as hash(line + '\n') with
/// trailing '\r' stripped first, so a file that went through CRLF
/// translation still validates.
uint64_t ChecksumLine(uint64_t h, std::string_view line) {
  while (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  h = Fnv1a64(line.data(), line.size(), h);
  return Fnv1a64("\n", 1, h);
}

/// Extracts the decimal value of "key=<digits>" from \p line.
bool FindField(std::string_view line, std::string_view key, uint64_t* out) {
  size_t at = line.find(key);
  if (at == std::string_view::npos) return false;
  const char* begin = line.data() + at + key.size();
  const char* end = line.data() + line.size();
  auto [p, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && p != begin;
}

/// Extracts the 16-hex-digit value of "checksum=<hex>" from \p line.
bool FindChecksum(std::string_view line, uint64_t* out) {
  constexpr std::string_view key = "checksum=";
  size_t at = line.find(key);
  if (at == std::string_view::npos) return false;
  const char* begin = line.data() + at + key.size();
  const char* end = line.data() + line.size();
  auto [p, ec] = std::from_chars(begin, end, *out, 16);
  return ec == std::errc() && p == begin + 16;
}

bool IsSectionHeader(std::string_view line) {
  return StartsWith(line, "% ") &&
         line.find(" tuples checksum=") != std::string_view::npos;
}

Status ErrnoError(std::string_view op, const std::string& path) {
  return Status::IoError(
      StrCat(op, " failed for ", path, ": ", std::strerror(errno)));
}

/// Parses one "name(args)." line into \p db (shared \p pool).
Status ParseFactInto(Database* db, TermPool* pool, std::string_view line,
                     size_t line_no) {
  GroundTermReader reader(pool, line);
  Result<TermId> fact = reader.ReadTerm();
  if (!fact.ok()) {
    return fact.status().WithContext(StrCat("line ", line_no));
  }
  Status dot = reader.ExpectDot();
  if (!dot.ok()) return dot.WithContext(StrCat("line ", line_no));
  GLUENAIL_RETURN_NOT_OK(
      reader.ExpectEnd().WithContext(StrCat("line ", line_no)));
  TermId t = *fact;
  if (pool->IsCompound(t)) {
    TermId name = pool->Functor(t);
    std::span<const TermId> args = pool->Args(t);
    Relation* rel = db->GetOrCreate(name, static_cast<uint32_t>(args.size()));
    rel->Insert(args);  // span insert: no intermediate Tuple copy
    return Status::OK();
  }
  if (pool->IsSymbol(t)) {
    db->GetOrCreate(t, 0)->Insert(Tuple{});
    return Status::OK();
  }
  return Status::ParseError(
      StrCat("line ", line_no, ": a fact must be a symbol or compound"));
}

/// Unions every relation of \p staged into \p dst, creating as needed.
void MergeInto(const Database& staged, Database* dst) {
  staged.ForEach([&](TermId name, uint32_t arity, Relation* rel) {
    dst->GetOrCreate(name, arity)->UnionAll(*rel);
  });
}

struct Section {
  std::string label;        // "edge/2", for reporting
  uint64_t declared_tuples = 0;
  uint64_t declared_checksum = 0;
  size_t header_line_no = 0;
  std::vector<std::pair<size_t, std::string>> lines;  // (line_no, text)
};

/// Splits a v2 body (every line after the %% header, \r-stripped) into
/// sections. Stray lines before the first section header are returned in
/// \p stray.
void SplitSections(const std::vector<std::string>& lines,
                   size_t first_line_no, std::vector<Section>* sections,
                   std::vector<std::pair<size_t, std::string>>* stray) {
  Section* cur = nullptr;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    size_t line_no = first_line_no + i;
    if (IsSectionHeader(line)) {
      sections->emplace_back();
      cur = &sections->back();
      cur->header_line_no = line_no;
      FindChecksum(line, &cur->declared_checksum);
      // "% <label>: <n> tuples checksum=<hex>" — anchor on the trailing
      // keywords so a ':' inside a quoted relation name cannot confuse us.
      size_t tup = line.find(" tuples checksum=");
      size_t colon = line.rfind(": ", tup);
      if (tup != std::string::npos && colon != std::string::npos &&
          colon >= 2) {
        const char* begin = line.data() + colon + 2;
        const char* end = line.data() + tup;
        std::from_chars(begin, end, cur->declared_tuples);
        cur->label = line.substr(2, colon - 2);
      } else {
        cur->label = line;
      }
      continue;
    }
    if (cur == nullptr) {
      stray->emplace_back(line_no, line);
    } else {
      cur->lines.emplace_back(line_no, line);
    }
  }
}

/// Validates and parses one section into its own scratch database; on
/// success merges the scratch into \p staging and bumps the report.
Status LoadSection(const Section& sec, Database* staging, TermPool* pool,
                   LoadReport* report) {
  if (sec.lines.size() != sec.declared_tuples) {
    return Status::IoError(
        StrCat("section ", sec.label, " (line ", sec.header_line_no,
               "): expected ", sec.declared_tuples, " tuples, found ",
               sec.lines.size(), " (torn file?)"));
  }
  uint64_t h = kFnvSeed;
  for (const auto& [line_no, line] : sec.lines) h = ChecksumLine(h, line);
  if (h != sec.declared_checksum) {
    return Status::IoError(StrCat("section ", sec.label, " (line ",
                                  sec.header_line_no,
                                  "): checksum mismatch (corrupt file?)"));
  }
  Database scratch(pool);
  for (const auto& [line_no, line] : sec.lines) {
    GLUENAIL_RETURN_NOT_OK(ParseFactInto(&scratch, pool, line, line_no));
  }
  // Recreate the relation even when empty, so empty relations round-trip.
  size_t slash = sec.label.rfind('/');
  if (slash != std::string::npos) {
    uint32_t arity = 0;
    const char* begin = sec.label.data() + slash + 1;
    const char* end = sec.label.data() + sec.label.size();
    auto [p, ec] = std::from_chars(begin, end, arity);
    if (ec == std::errc() && p == end) {
      Result<TermId> name =
          ParseGroundTerm(pool, sec.label.substr(0, slash));
      if (name.ok()) scratch.GetOrCreate(*name, arity);
    }
  }
  MergeInto(scratch, staging);
  ++report->relations_loaded;
  report->facts_loaded += sec.lines.size();
  return Status::OK();
}

}  // namespace

Result<TermId> ParseGroundTerm(TermPool* pool, std::string_view text) {
  GroundTermReader reader(pool, text);
  GLUENAIL_ASSIGN_OR_RETURN(TermId t, reader.ReadTerm());
  GLUENAIL_RETURN_NOT_OK(reader.ExpectEnd());
  return t;
}

std::string SerializeDatabase(const Database& db) {
  const TermPool& pool = *db.pool();
  // Collect and order relations by printed name for deterministic files.
  std::vector<std::pair<std::string, std::pair<TermId, Relation*>>> rels;
  db.ForEach([&](TermId name, uint32_t arity, Relation* rel) {
    rels.emplace_back(StrCat(pool.ToString(name), "/", arity),
                      std::make_pair(name, rel));
  });
  std::sort(rels.begin(), rels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Body first: each section is "% label: n tuples checksum=H" followed by
  // its fact lines; the section checksum covers only the fact lines.
  std::string body;
  std::string facts;
  uint64_t total_tuples = 0;
  for (const auto& [label, entry] : rels) {
    auto [name, rel] = entry;
    facts.clear();
    for (const Tuple& t : rel->SortedTuples(pool)) {
      AppendFact(pool, name, t, &facts);
    }
    total_tuples += rel->size();
    body += StrCat("% ", label, ": ", rel->size(), " tuples checksum=",
                   Hex16(Fnv1a64(facts.data(), facts.size())), "\n");
    body += facts;
  }
  // The file checksum covers every line after the %% header.
  std::string out =
      StrCat(kFileMagic, " relations=", rels.size(), " tuples=", total_tuples,
             " checksum=", Hex16(Fnv1a64(body.data(), body.size())), "\n");
  out += body;
  return out;
}

Status SaveDatabase(const Database& db, std::ostream& os) {
  std::string buf = SerializeDatabase(db);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  os.flush();
  // Stream state after the flush is the only truth about whether the bytes
  // left the process; a full disk shows up here, not at write().
  if (!os.good()) {
    return Status::IoError("stream write failed while saving EDB");
  }
  return Status::OK();
}

PersistenceCounters& GlobalPersistenceCounters() {
  static PersistenceCounters counters;
  return counters;
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  const std::string data = SerializeDatabase(db);
  // Temp file in the target's directory, so the final rename cannot cross
  // a filesystem boundary (rename(2) is only atomic within one).
  const std::string tmp = StrCat(path, ".tmp.", ::getpid());

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    GlobalPersistenceCounters().save_failures.fetch_add(
        1, std::memory_order_relaxed);
    return ErrnoError("open", tmp);
  }
  auto fail = [&](Status st) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    GlobalPersistenceCounters().save_failures.fetch_add(
        1, std::memory_order_relaxed);
    return st;
  };

  // Write in bounded chunks so large databases span several write(2)
  // calls — both for EINTR robustness and so the fault injector can hit
  // any write, not just "the" write.
  constexpr size_t kChunk = 64 * 1024;
  size_t off = 0;
  while (off < data.size()) {
    Status st = InjectFault(FaultOp::kWrite, tmp);
    if (!st.ok()) return fail(std::move(st));
    size_t want = std::min(kChunk, data.size() - off);
    ssize_t n = ::write(fd, data.data() + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(ErrnoError("write", tmp));
    }
    off += static_cast<size_t>(n);
  }

  Status st = InjectFault(FaultOp::kFsync, tmp);
  if (!st.ok()) return fail(std::move(st));
  if (::fsync(fd) != 0) return fail(ErrnoError("fsync", tmp));
  if (::close(fd) != 0) {
    fd = -1;  // the fd is gone even when close reports an error
    return fail(ErrnoError("close", tmp));
  }
  fd = -1;

  st = InjectFault(FaultOp::kRename, path);
  if (!st.ok()) return fail(std::move(st));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(ErrnoError("rename", path));
  }

  // Durability of the rename itself: fsync the directory. Best-effort and
  // deliberately not fault-injected — once rename succeeded the new file
  // is complete and the old one gone, so reporting an error here would
  // only mislead (the save can no longer be rolled back).
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  GlobalPersistenceCounters().saves.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<LoadReport> LoadDatabase(Database* db, std::istream& is,
                                const LoadOptions& options) {
  TermPool* pool = db->pool();
  const bool salvage = options.recovery == RecoveryMode::kSalvage;
  LoadReport report;

  // Slurp lines up front (\r-stripped): both checksumming and salvage need
  // to see the whole file before anything may touch \p db.
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (is.bad()) return Status::IoError("read failed while loading EDB");

  Database staging(pool);

  if (!lines.empty() && StartsWith(lines[0], kFileMagic)) {
    // --- v2 checksummed format ------------------------------------------
    uint64_t declared_relations = 0;
    uint64_t declared_tuples = 0;
    uint64_t declared_checksum = 0;
    bool header_ok = FindField(lines[0], "relations=", &declared_relations) &&
                     FindField(lines[0], "tuples=", &declared_tuples) &&
                     FindChecksum(lines[0], &declared_checksum);
    if (!header_ok && !salvage) {
      return Status::ParseError("malformed gluenail-edb v2 header");
    }

    std::vector<std::string> body(lines.begin() + 1, lines.end());
    if (header_ok) {
      uint64_t h = kFnvSeed;
      for (const std::string& l : body) h = ChecksumLine(h, l);
      if (h != declared_checksum && !salvage) {
        return Status::IoError(
            "file checksum mismatch (torn or corrupt EDB file); "
            "retry with RecoveryMode::kSalvage to keep the good relations");
      }
    }

    std::vector<Section> sections;
    std::vector<std::pair<size_t, std::string>> stray;
    SplitSections(body, /*first_line_no=*/2, &sections, &stray);

    if (!salvage) {
      if (!stray.empty()) {
        return Status::ParseError(
            StrCat("line ", stray.front().first,
                   ": content outside any relation section"));
      }
      if (sections.size() != declared_relations) {
        return Status::IoError(
            StrCat("expected ", declared_relations, " relation sections, "
                   "found ", sections.size(), " (torn file?)"));
      }
      for (const Section& sec : sections) {
        GLUENAIL_RETURN_NOT_OK(LoadSection(sec, &staging, pool, &report));
      }
      if (report.facts_loaded != declared_tuples) {
        return Status::IoError(
            StrCat("expected ", declared_tuples, " tuples, found ",
                   report.facts_loaded));
      }
    } else {
      // Salvage: every section stands or falls on its own checksum.
      for (const auto& [line_no, text] : stray) {
        ++report.lines_dropped;
        report.dropped.push_back(
            StrCat("line ", line_no, ": outside any relation section"));
      }
      for (const Section& sec : sections) {
        Status sec_st = LoadSection(sec, &staging, pool, &report);
        if (!sec_st.ok()) {
          ++report.sections_dropped;
          report.dropped.push_back(sec_st.message());
        }
      }
    }
  } else {
    // --- legacy headerless fact files -----------------------------------
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& l = lines[i];
      size_t first = l.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (l[first] == '%' || l[first] == '#') continue;
      Status st = ParseFactInto(&staging, pool, l, i + 1);
      if (!st.ok()) {
        if (!salvage) return st;
        ++report.lines_dropped;
        report.dropped.push_back(st.message());
        continue;
      }
      ++report.facts_loaded;
    }
    report.relations_loaded = staging.num_relations();
  }

  // Validation passed (or salvage kept what it could): only now touch the
  // destination. A failed load above returned without mutating *db.
  MergeInto(staging, db);
  return report;
}

Status LoadDatabase(Database* db, std::istream& is) {
  GLUENAIL_ASSIGN_OR_RETURN(LoadReport report,
                            LoadDatabase(db, is, LoadOptions{}));
  (void)report;
  return Status::OK();
}

Result<LoadReport> LoadDatabaseFromFile(Database* db, const std::string& path,
                                        const LoadOptions& options) {
  PersistenceCounters& counters = GlobalPersistenceCounters();
  std::ifstream is(path);
  if (!is.is_open()) {
    counters.load_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError(StrCat("cannot open ", path, " for reading"));
  }
  Result<LoadReport> out = LoadDatabase(db, is, options);
  if (!out.ok()) {
    counters.load_failures.fetch_add(1, std::memory_order_relaxed);
    return out.status().WithContext(path);
  }
  counters.loads.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Status LoadDatabaseFromFile(Database* db, const std::string& path) {
  GLUENAIL_ASSIGN_OR_RETURN(LoadReport report,
                            LoadDatabaseFromFile(db, path, LoadOptions{}));
  (void)report;
  return Status::OK();
}

}  // namespace gluenail
