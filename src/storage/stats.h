/// \file stats.h
/// \brief Incremental cardinality statistics for the cost-based planner.
///
/// Every Relation owns a RelationStats: an exact live-row count plus one
/// linear-counting sketch per column estimating the number of distinct
/// values (NDV) seen in that column. Maintenance is incremental — Insert
/// observes each column's TermId into its sketch (a handful of ns), Erase
/// only decrements the row count — so after deletions the NDV estimates
/// are upper bounds, which is the safe direction for a selectivity model
/// only while the drift stays modest. Once erases since the last rebuild
/// exceed half the live rows the owning Relation rebuilds the sketches
/// from the arena (Relation::Erase / Compact), so delete/re-insert churn
/// cannot leave the planner ordering joins off saturated stale NDVs.
///
/// The physical planner (plan/physical.h) consumes these through the
/// StatsProvider interface so the plan layer never depends on storage
/// headers, and RelationSnapshot carries a frozen CardEstimate so read
/// sessions plan against the same consistent view they execute against.

#ifndef GLUENAIL_STORAGE_STATS_H_
#define GLUENAIL_STORAGE_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/storage/tuple.h"

namespace gluenail {

/// Point-in-time cardinality summary of one relation: live rows plus a
/// per-column distinct-value estimate. `ndv` entries are >= 1 whenever
/// `rows` > 0 so selectivity factors (1/ndv) are always well defined.
struct CardEstimate {
  double rows = 0;
  std::vector<double> ndv;
};

/// Linear-counting distinct-value sketch over TermIds (Whang et al.):
/// hash each observed value into a fixed bitmap; the estimate is
/// B * ln(B / empty_bits). 4096 bits keeps the relative error under ~4%
/// up to a few thousand distinct values and saturates gracefully above —
/// plenty of resolution for join-order decisions, at 512 bytes per column.
class ColumnNdvSketch {
 public:
  /// Folds one value into the sketch. Insert-only; duplicates are free.
  void Observe(TermId value);

  /// Estimated distinct count. Exactly 0 only when nothing was observed.
  double Estimate() const;

  void Clear();

 private:
  static constexpr uint32_t kBits = 4096;
  static constexpr uint32_t kWords = kBits / 64;

  std::array<uint64_t, kWords> words_{};
  uint32_t set_bits_ = 0;
};

/// Per-relation statistics, owned by Relation and updated on its mutation
/// path. Copyable so Relation::CopyFrom can transfer statistics wholesale.
class RelationStats {
 public:
  RelationStats() = default;
  explicit RelationStats(uint32_t arity) : columns_(arity) {}

  /// Called for every row actually added (post-dedup).
  void OnInsert(RowView t) {
    ++rows_;
    for (uint32_t c = 0; c < static_cast<uint32_t>(columns_.size()); ++c) {
      columns_[c].Observe(t[c]);
    }
  }

  /// Called for every row actually removed. Only the row count moves here:
  /// a bitmap sketch cannot un-observe a value, so each erase leaves stale
  /// bits behind and the NDV estimates drift upward. The erase debt is
  /// tracked so the owning Relation — the layer that *can* rescan — knows
  /// when the drift is bad enough to warrant a sketch rebuild
  /// (NeedsSketchRebuild); without that, delete/re-insert churn saturates
  /// the sketches and the planner mis-orders joins off NDVs that only grow.
  void OnErase() {
    if (rows_ > 0) --rows_;
    ++erased_since_rebuild_;
  }

  /// True when erases since the last rebuild exceed half the live rows:
  /// past that point the sketches count more dead values than a safe upper
  /// bound tolerates, and the O(rows) rescan is amortized against the
  /// erases that earned it.
  bool NeedsSketchRebuild() const {
    return erased_since_rebuild_ > 0 && erased_since_rebuild_ * 2 > rows_;
  }

  /// Clears the sketches (keeping the exact row count) and resets the
  /// erase debt; the caller must then ObserveForRebuild every live row.
  void BeginSketchRebuild() {
    for (auto& c : columns_) c.Clear();
    erased_since_rebuild_ = 0;
  }

  /// Re-observes one live row during a rebuild (sketches only — the row
  /// count is already exact).
  void ObserveForRebuild(RowView t) {
    for (uint32_t c = 0; c < static_cast<uint32_t>(columns_.size()); ++c) {
      columns_[c].Observe(t[c]);
    }
  }

  void Clear() {
    rows_ = 0;
    erased_since_rebuild_ = 0;
    for (auto& c : columns_) c.Clear();
  }

  uint64_t rows() const { return rows_; }
  uint64_t erased_since_rebuild() const { return erased_since_rebuild_; }

  /// Freezes the current state into a CardEstimate. NDV values are clamped
  /// into [1, rows] when the relation is non-empty.
  CardEstimate Estimate() const;

 private:
  uint64_t rows_ = 0;
  uint64_t erased_since_rebuild_ = 0;
  std::vector<ColumnNdvSketch> columns_;
};

/// Planner-facing cardinality oracle. Implementations answer "how big is
/// relation (name, arity) right now?" without exposing storage types to the
/// plan layer. Returns false when the relation is unknown to the provider;
/// the planner then falls back to a configured default cardinality.
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  virtual bool Estimate(TermId name, uint32_t arity,
                        CardEstimate* out) const = 0;
};

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_STATS_H_
