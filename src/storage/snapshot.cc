#include "src/storage/snapshot.h"

#include <algorithm>

#include "src/term/term_pool.h"

namespace gluenail {

bool RelationSnapshot::Contains(const TermPool& pool, RowView t) const {
  return std::binary_search(
      tuples.begin(), tuples.end(), t,
      [&pool](RowView a, RowView b) { return CompareTuples(pool, a, b) < 0; });
}

const RelationSnapshot* DatabaseSnapshot::Find(TermId name,
                                               uint32_t arity) const {
  auto it = entries_.find(PackKey(name, arity));
  return it == entries_.end() ? nullptr : it->second.get();
}

void DatabaseSnapshot::ForEach(
    const std::function<void(TermId, uint32_t, const RelationSnapshot&)>& fn)
    const {
  for (const auto& [key, rel] : entries_) {
    fn(static_cast<TermId>(key >> 32), static_cast<uint32_t>(key), *rel);
  }
}

}  // namespace gluenail
