#include "src/storage/relation.h"

#include <algorithm>
#include <cassert>

namespace gluenail {

Relation::Relation(std::string name, uint32_t arity)
    : name_(std::move(name)), arity_(arity) {
  assert(arity <= 32 && "relations are limited to 32 columns");
}

bool Relation::Insert(const Tuple& t) {
  assert(t.size() == arity_);
  auto [it, inserted] = dedup_.try_emplace(t, num_rows());
  if (!inserted) return false;
  rows_.push_back(t);
  live_.push_back(true);
  uint32_t row_id = it->second;
  for (auto& idx : indexes_) idx->Add(t, row_id);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool Relation::Erase(const Tuple& t) {
  auto it = dedup_.find(t);
  if (it == dedup_.end()) return false;
  uint32_t row_id = it->second;
  live_[row_id] = false;
  for (auto& idx : indexes_) idx->Remove(t, row_id);
  dedup_.erase(it);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void Relation::Clear() {
  if (!dedup_.empty()) version_.fetch_add(1, std::memory_order_acq_rel);
  rows_.clear();
  live_.clear();
  dedup_.clear();
  indexes_.clear();
  access_stats_.Reset();
}

const HashIndex* Relation::FindIndex(ColumnMask mask) const {
  for (const auto& idx : indexes_) {
    if (idx->mask() == mask) return idx.get();
  }
  return nullptr;
}

HashIndex* Relation::EnsureIndex(ColumnMask mask) {
  for (auto& idx : indexes_) {
    if (idx->mask() == mask) return idx.get();
  }
  auto idx = std::make_unique<HashIndex>(mask);
  for (uint32_t r = 0; r < num_rows(); ++r) {
    if (live_[r]) idx->Add(rows_[r], r);
  }
  counters_.indexes_built.fetch_add(1, std::memory_order_relaxed);
  indexes_.push_back(std::move(idx));
  return indexes_.back().get();
}

void Relation::ScanSelect(ColumnMask mask, const Tuple& key,
                          std::vector<uint32_t>* out) const {
  for (uint32_t r = 0; r < num_rows(); ++r) {
    if (!live_[r]) continue;
    const Tuple& row = rows_[r];
    bool match = true;
    size_t k = 0;
    for (size_t col = 0; col < row.size(); ++col) {
      if (mask & (1u << col)) {
        if (row[col] != key[k]) {
          match = false;
          break;
        }
        ++k;
      }
    }
    if (match) out->push_back(r);
  }
  counters_.scan_rows.fetch_add(num_rows(), std::memory_order_relaxed);
}

void Relation::Select(ColumnMask mask, const Tuple& key,
                      std::vector<uint32_t>* out) {
  assert(mask != 0);
  const HashIndex* idx = FindIndex(mask);
  if (idx == nullptr) {
    switch (policy_) {
      case IndexPolicy::kNeverIndex:
        ScanSelect(mask, key, out);
        return;
      case IndexPolicy::kAlwaysIndex:
        idx = EnsureIndex(mask);
        break;
      case IndexPolicy::kAdaptive:
        // Paper §10: build the index once the cumulative scanning cost for
        // this column set reaches the cost of building the index.
        if (access_stats_.ShouldBuild(mask, size(), adaptive_cfg_)) {
          idx = EnsureIndex(mask);
        } else {
          access_stats_.RecordScan(mask, size());
          ScanSelect(mask, key, out);
          return;
        }
        break;
    }
  }
  counters_.index_lookups.fetch_add(1, std::memory_order_relaxed);
  for (uint32_t r : idx->Find(key)) out->push_back(r);
}

void Relation::SelectConst(ColumnMask mask, const Tuple& key,
                           std::vector<uint32_t>* out) const {
  const HashIndex* idx = FindIndex(mask);
  if (idx != nullptr) {
    counters_.index_lookups.fetch_add(1, std::memory_order_relaxed);
    for (uint32_t r : idx->Find(key)) out->push_back(r);
    return;
  }
  ScanSelect(mask, key, out);
}

size_t Relation::UnionDiff(const Relation& src, Relation* delta) {
  assert(src.arity() == arity_);
  size_t added = 0;
  for (const Tuple& t : src) {
    if (Insert(t)) {
      ++added;
      if (delta != nullptr) delta->Insert(t);
    }
  }
  return added;
}

size_t Relation::UnionAll(const Relation& src) {
  return UnionDiff(src, nullptr);
}

void Relation::CopyFrom(const Relation& src) {
  assert(src.arity() == arity_);
  Clear();
  for (const Tuple& t : src) Insert(t);
}

std::vector<Tuple> Relation::SortedTuples(const TermPool& pool) const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (const Tuple& t : *this) out.push_back(t);
  std::sort(out.begin(), out.end(), [&pool](const Tuple& a, const Tuple& b) {
    return CompareTuples(pool, a, b) < 0;
  });
  return out;
}

std::shared_ptr<const RelationSnapshot> Relation::Snapshot(
    const TermPool& pool) const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  uint64_t v = version();
  if (snap_cache_ != nullptr && snap_cache_->version == v) return snap_cache_;
  auto snap = std::make_shared<RelationSnapshot>();
  snap->name = name_;
  snap->arity = arity_;
  snap->version = v;
  snap->tuples = SortedTuples(pool);
  snap_cache_ = std::move(snap);
  return snap_cache_;
}

void Relation::Compact() {
  std::vector<Tuple> live_rows;
  live_rows.reserve(size());
  for (const Tuple& t : *this) live_rows.push_back(t);
  std::vector<ColumnMask> masks;
  for (const auto& idx : indexes_) masks.push_back(idx->mask());
  rows_.clear();
  live_.clear();
  dedup_.clear();
  indexes_.clear();
  for (Tuple& t : live_rows) {
    dedup_.emplace(t, num_rows());
    rows_.push_back(std::move(t));
    live_.push_back(true);
  }
  for (ColumnMask m : masks) EnsureIndex(m);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace gluenail
