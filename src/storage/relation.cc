#include "src/storage/relation.h"

#include <algorithm>
#include <cassert>

namespace gluenail {

Relation::Relation(std::string name, uint32_t arity)
    : name_(std::move(name)), arity_(arity), arena_(arity), stats_(arity) {
  assert(arity <= 32 && "relations are limited to 32 columns");
}

uint32_t Relation::FindRow(RowView t, uint64_t hash) const {
  uint64_t probes = 0;
  uint32_t r = dedup_.Find(
      hash, [&](uint32_t row_id) { return RowEquals(arena_.row(row_id), t); },
      &probes);
  counters_.dedup_probes.fetch_add(probes, std::memory_order_relaxed);
  return r;
}

void Relation::AppendNewRow(RowView t, uint64_t hash) {
  uint32_t row_id = arena_.Append(t);
  live_.push_back(true);
  dedup_.Insert(hash, row_id,
                [this](uint32_t r) { return HashRow(arena_.row(r)); });
  for (auto& idx : indexes_) idx->Add(arena_, row_id);
  stats_.OnInsert(t);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

bool Relation::Insert(RowView t) {
  assert(t.size() == arity_);
  uint64_t h = HashRow(t);
  if (FindRow(t, h) != RowIdTable::kNoRow) return false;
  AppendNewRow(t, h);
  return true;
}

bool Relation::Erase(RowView t) {
  uint64_t h = HashRow(t);
  uint32_t row_id = dedup_.Erase(
      h, [&](uint32_t r) { return RowEquals(arena_.row(r), t); });
  if (row_id == RowIdTable::kNoRow) return false;
  live_[row_id] = false;
  for (auto& idx : indexes_) idx->Remove(arena_, row_id);
  stats_.OnErase();
  if (stats_.NeedsSketchRebuild()) RebuildStatsSketches();
  version_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

void Relation::RebuildStatsSketches() {
  stats_.BeginSketchRebuild();
  for (RowView t : *this) stats_.ObserveForRebuild(t);
  counters_.stats_rebuilds.fetch_add(1, std::memory_order_relaxed);
}

bool Relation::Contains(RowView t) const {
  assert(t.size() == arity_);
  return FindRow(t, HashRow(t)) != RowIdTable::kNoRow;
}

void Relation::Clear() {
  if (!dedup_.empty()) version_.fetch_add(1, std::memory_order_acq_rel);
  arena_.Clear();
  live_.clear();
  dedup_.Clear();
  indexes_.clear();
  access_stats_.Reset();
  stats_.Clear();
}

const HashIndex* Relation::FindIndex(ColumnMask mask) const {
  for (const auto& idx : indexes_) {
    if (idx->mask() == mask) return idx.get();
  }
  return nullptr;
}

HashIndex* Relation::EnsureIndex(ColumnMask mask) {
  for (auto& idx : indexes_) {
    if (idx->mask() == mask) return idx.get();
  }
  auto idx = std::make_unique<HashIndex>(mask);
  for (uint32_t r = 0; r < num_rows(); ++r) {
    if (live_[r]) idx->Add(arena_, r);
  }
  counters_.indexes_built.fetch_add(1, std::memory_order_relaxed);
  indexes_.push_back(std::move(idx));
  return indexes_.back().get();
}

void Relation::ScanSelect(ColumnMask mask, RowView key,
                          std::vector<uint32_t>* out,
                          uint64_t* visited) const {
  for (uint32_t r = 0; r < num_rows(); ++r) {
    if (!live_[r]) continue;
    if (ProjectedEquals(mask, arena_.row(r), key)) out->push_back(r);
  }
  counters_.scan_rows.fetch_add(num_rows(), std::memory_order_relaxed);
  if (visited != nullptr) *visited += num_rows();
}

void Relation::Select(ColumnMask mask, RowView key, std::vector<uint32_t>* out,
                      uint64_t* visited) {
  assert(mask != 0);
  const HashIndex* idx = FindIndex(mask);
  if (idx == nullptr) {
    switch (policy_) {
      case IndexPolicy::kNeverIndex:
        ScanSelect(mask, key, out, visited);
        return;
      case IndexPolicy::kAlwaysIndex:
        idx = EnsureIndex(mask);
        break;
      case IndexPolicy::kAdaptive:
        // Paper §10: build the index once the cumulative scanning cost for
        // this column set reaches the cost of building the index.
        if (access_stats_.ShouldBuild(mask, size(), adaptive_cfg_)) {
          idx = EnsureIndex(mask);
        } else {
          access_stats_.RecordScan(mask, size());
          ScanSelect(mask, key, out, visited);
          return;
        }
        break;
    }
  }
  counters_.index_lookups.fetch_add(1, std::memory_order_relaxed);
  size_t probed = idx->Find(arena_, key, out);
  counters_.index_probe_rows.fetch_add(probed, std::memory_order_relaxed);
  if (visited != nullptr) *visited += probed;
}

void Relation::SelectConst(ColumnMask mask, RowView key,
                           std::vector<uint32_t>* out,
                           uint64_t* visited) const {
  const HashIndex* idx = FindIndex(mask);
  if (idx != nullptr) {
    counters_.index_lookups.fetch_add(1, std::memory_order_relaxed);
    size_t probed = idx->Find(arena_, key, out);
    counters_.index_probe_rows.fetch_add(probed, std::memory_order_relaxed);
    if (visited != nullptr) *visited += probed;
    return;
  }
  ScanSelect(mask, key, out, visited);
}

size_t Relation::UnionDiff(const Relation& src, Relation* delta) {
  assert(src.arity() == arity_);
  assert(&src != this);
  size_t added = 0;
  // Chunk-at-a-time walk: harvest each arena chunk's live row ids in one
  // tight pass over the live bitmap, then insert from the id batch. Same
  // ascending-row-id order (hence identical delta insertion order) as the
  // per-row iterator, without its per-step skip-dead branching.
  std::vector<uint32_t> rows;
  const TupleArena& arena = src.arena();
  for (uint32_t c = 0; c < arena.num_chunks(); ++c) {
    rows.clear();
    src.CollectLiveRows(arena.chunk_begin(c), arena.chunk_end(c), &rows);
    for (uint32_t r : rows) {
      RowView t = src.row(r);
      if (Insert(t)) {
        ++added;
        if (delta != nullptr) delta->Insert(t);
      }
    }
  }
  return added;
}

void Relation::AppendDistinctRows(const Relation& src,
                                  std::span<const uint32_t> rows) {
  assert(src.arity() == arity_);
  assert(&src != this);
  for (uint32_t r : rows) {
    RowView t = src.row(r);
    AppendNewRow(t, HashRow(t));
  }
}

size_t Relation::UnionAll(const Relation& src) {
  return UnionDiff(src, nullptr);
}

void Relation::CopyFrom(const Relation& src) {
  assert(src.arity() == arity_);
  assert(&src != this);
  Clear();
  if (src.empty()) return;
  if (src.num_rows() == src.size()) {
    // No dead rows: copy whole arena chunks and bulk-load the dedup table
    // without probing (src is duplicate-free by construction).
    arena_.CopyRowsFrom(src.arena_);
    live_.assign(src.num_rows(), true);
    auto hash_of = [this](uint32_t r) { return HashRow(arena_.row(r)); };
    dedup_.Reserve(src.size(), hash_of);
    for (uint32_t r = 0; r < arena_.num_rows(); ++r) {
      dedup_.Insert(HashRow(arena_.row(r)), r, hash_of);
    }
    // The contents are now an exact copy of src, so its statistics apply
    // verbatim — no per-row observation needed on the bulk path. This is
    // only sound because the fast path requires zero dead rows: every
    // erase leaves a dead row until Compact, so src's sketches observed
    // exactly the rows copied here and carry no erase debt.
    stats_ = src.stats_;
    version_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  for (RowView t : src) Insert(t);
}

std::vector<Tuple> Relation::SortedTuples(const TermPool& pool) const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (RowView t : *this) out.emplace_back(t.begin(), t.end());
  std::sort(out.begin(), out.end(), [&pool](const Tuple& a, const Tuple& b) {
    return CompareTuples(pool, a, b) < 0;
  });
  return out;
}

std::shared_ptr<const RelationSnapshot> Relation::Snapshot(
    const TermPool& pool) const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  uint64_t v = version();
  if (snap_cache_ != nullptr && snap_cache_->version == v) return snap_cache_;
  auto snap = std::make_shared<RelationSnapshot>();
  snap->name = name_;
  snap->arity = arity_;
  snap->version = v;
  snap->tuples = SortedTuples(pool);
  snap->stats = stats_.Estimate();
  snap_cache_ = std::move(snap);
  return snap_cache_;
}

void Relation::Compact() {
  TupleArena next(arity_);
  for (uint32_t r = 0; r < num_rows(); ++r) {
    if (live_[r]) next.Append(arena_.row(r));
  }
  std::vector<ColumnMask> masks;
  masks.reserve(indexes_.size());
  for (const auto& idx : indexes_) masks.push_back(idx->mask());
  indexes_.clear();
  arena_ = std::move(next);
  live_.assign(arena_.num_rows(), true);
  dedup_.Clear();
  auto hash_of = [this](uint32_t r) { return HashRow(arena_.row(r)); };
  dedup_.Reserve(arena_.num_rows(), hash_of);
  for (uint32_t r = 0; r < arena_.num_rows(); ++r) {
    dedup_.Insert(HashRow(arena_.row(r)), r, hash_of);
  }
  for (ColumnMask m : masks) EnsureIndex(m);
  // Compaction walks every live row anyway; refreshing the NDV sketches
  // here makes them exact again regardless of how much erase debt had
  // accumulated below the automatic-rebuild threshold.
  RebuildStatsSketches();
  version_.fetch_add(1, std::memory_order_acq_rel);
}

size_t Relation::arena_bytes() const {
  size_t n = arena_.allocated_bytes() + dedup_.allocated_bytes() +
             live_.capacity() / 8;
  for (const auto& idx : indexes_) n += idx->allocated_bytes();
  return n;
}

}  // namespace gluenail
