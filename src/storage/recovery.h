/// \file recovery.h
/// \brief Crash recovery: checkpoint load + WAL tail replay.
///
/// The durable on-disk state of an engine is two files in its data
/// directory: a checkpoint (the v2 EDB format SaveDatabaseToFile writes)
/// and a WAL of MutationBatch records appended since that checkpoint was
/// rotated in. Recovery rebuilds the database by loading the checkpoint
/// and replaying the log in LSN order.
///
/// Replay is idempotent: batch ops are set-level inserts/erases, and the
/// last op touching an element wins, so a log tail that overlaps what the
/// checkpoint already contains (a crash between checkpoint save and log
/// rotation) replays to the identical state. That is why no separate
/// checkpoint-LSN manifest is needed — the log's own start_lsn is enough.
///
/// Damage handling mirrors the persistence layer's RecoveryMode:
///  * a torn *final* record (crashed append) is tolerated by both modes —
///    replay stops at the last good record and reports the bytes dropped;
///  * corruption with valid records *after* it fails kStrict, while
///    kSalvage replays the prefix plus every later record the resync scan
///    could validate, and flags the log for rotation (needs_reset).

#ifndef GLUENAIL_STORAGE_RECOVERY_H_
#define GLUENAIL_STORAGE_RECOVERY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/database.h"
#include "src/storage/persistence.h"

namespace gluenail {

/// Process-wide recovery activity, exported through the engine's metrics
/// registry (global because recovery is a free function, like the
/// persistence counters).
struct RecoveryCounters {
  std::atomic<uint64_t> recoveries{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> records_replayed{0};
  std::atomic<uint64_t> records_salvaged{0};
  std::atomic<uint64_t> torn_bytes{0};
};

RecoveryCounters& GlobalRecoveryCounters();

struct RecoveryOptions {
  RecoveryMode mode = RecoveryMode::kStrict;
};

struct RecoveryReport {
  bool checkpoint_found = false;
  LoadReport checkpoint;
  bool wal_found = false;
  uint64_t wal_start_lsn = 1;
  uint64_t records_replayed = 0;
  uint64_t ops_applied = 0;
  /// Records recovered past a corrupt region (kSalvage only).
  uint64_t records_salvaged = 0;
  /// Trailing bytes discarded as a torn final record.
  uint64_t torn_bytes = 0;
  /// Highest LSN applied; a fresh log should start at last_lsn + 1.
  uint64_t last_lsn = 0;
  /// The log had damage beyond a torn tail: the caller must checkpoint
  /// and rotate to a fresh log rather than keep appending to this one.
  bool needs_reset = false;
  /// Human-readable notes: what was missing, truncated, or dropped.
  std::vector<std::string> notes;

  std::string Summary() const;
};

/// Rebuilds \p db from \p checkpoint_path + \p wal_path. Facts merge into
/// \p db (callers wanting a from-scratch rebuild clear it first — the
/// engine does, in place, so relation versions stay monotone). A missing
/// checkpoint or log is fine (noted, not an error): a fresh data
/// directory recovers to an empty database.
Result<RecoveryReport> RecoverDatabase(Database* db, TermPool* pool,
                                       const std::string& checkpoint_path,
                                       const std::string& wal_path,
                                       const RecoveryOptions& options = {});

}  // namespace gluenail

#endif  // GLUENAIL_STORAGE_RECOVERY_H_
