#include "src/common/strings.h"

namespace gluenail {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string EscapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\'':
        out += "\\'";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        default:
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace gluenail
