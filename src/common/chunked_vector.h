/// \file chunked_vector.h
/// \brief Append-only chunked storage with wait-free concurrent readers.
///
/// A ChunkedVector is a growable array that never moves an element once it
/// has been appended: storage is a geometric series of chunks (the k-th
/// chunk holds 2^k * kBaseCapacity elements), located through a fixed table
/// of atomic chunk pointers. That gives three properties the term pool and
/// interning shards rely on:
///
///   - operator[] is wait-free and safe to call from any thread for any
///     index that was published to that thread (see below) — no locks, no
///     hazard pointers, no reallocation races.
///   - Pointers and string_views into stored elements stay valid forever.
///   - Append is O(1) amortized and allocation happens at most once per
///     chunk (31 times over the full 2^32 id space).
///
/// Concurrency contract: appends must be externally serialized (the term
/// pool funnels all appends through one mutex). An element becomes visible
/// to readers through a release/acquire edge: Append publishes the new
/// size with std::memory_order_release after the element is fully written,
/// so a reader that either (a) loads size() or (b) learns the index through
/// any other synchronizing operation (a mutex, another atomic) reads fully
/// constructed data.

#ifndef GLUENAIL_COMMON_CHUNKED_VECTOR_H_
#define GLUENAIL_COMMON_CHUNKED_VECTOR_H_

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <utility>

namespace gluenail {

template <typename T>
class ChunkedVector {
 public:
  /// log2 of the first chunk's capacity: 4096 elements.
  static constexpr size_t kBaseShift = 12;
  /// 31 chunks cover 2^12 * (2^31 - 1) > 2^42 elements — far beyond the
  /// 32-bit id space the pool uses.
  static constexpr size_t kMaxChunks = 31;

  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  ~ChunkedVector() {
    for (auto& slot : chunks_) {
      delete[] slot.load(std::memory_order_relaxed);
    }
  }

  /// Number of published elements. Acquire-loads so indexes below the
  /// returned size are safe to read.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  bool empty() const { return size() == 0; }

  /// Wait-free read. \p i must have been published to the calling thread.
  const T& operator[](size_t i) const {
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    return chunks_[chunk].load(std::memory_order_acquire)[offset];
  }

  /// Appends one element and returns its index. Calls must be externally
  /// serialized; concurrent reads of previously published indexes are fine.
  size_t Append(T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    assert(chunk < kMaxChunks);
    T* data = chunks_[chunk].load(std::memory_order_relaxed);
    if (data == nullptr) {
      data = new T[ChunkCapacity(chunk)]();
      // Release: a reader that obtains this pointer sees initialized memory.
      chunks_[chunk].store(data, std::memory_order_release);
    }
    data[offset] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

 private:
  static constexpr size_t ChunkCapacity(size_t chunk) {
    return size_t{1} << (kBaseShift + chunk);
  }
  /// Chunk k spans global indexes [(2^k - 1) << kBaseShift,
  /// (2^(k+1) - 1) << kBaseShift).
  static void Locate(size_t i, size_t* chunk, size_t* offset) {
    size_t j = (i >> kBaseShift) + 1;
    size_t k = static_cast<size_t>(std::bit_width(j)) - 1;
    *chunk = k;
    *offset = i - (((size_t{1} << k) - 1) << kBaseShift);
  }

  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
};

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_CHUNKED_VECTOR_H_
