#include "src/common/fault_injector.h"

#include "src/common/strings.h"

namespace gluenail {

std::atomic<bool> FaultInjector::enabled_{false};

std::string_view FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kFsync:
      return "fsync";
    case FaultOp::kRename:
      return "rename";
    case FaultOp::kAlloc:
      return "alloc";
    case FaultOp::kTruncate:
      return "truncate";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::ArmNth(FaultOp op, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  int i = static_cast<int>(op);
  trigger_[i] = ops_[i] + (nth == 0 ? 1 : nth);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmSeeded(uint64_t seed, uint64_t period) {
  std::lock_guard<std::mutex> lock(mu_);
  seeded_ = true;
  // Avoid the all-zero LCG fixed point.
  lcg_ = seed == 0 ? 0x9e3779b97f4a7c15ULL : seed;
  period_ = period == 0 ? 1 : period;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumFaultOps; ++i) {
    trigger_[i] = 0;
    ops_[i] = 0;
    injected_[i] = 0;
  }
  seeded_ = false;
  lcg_ = 0;
  period_ = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

uint64_t FaultInjector::operations(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_[static_cast<int>(op)];
}

uint64_t FaultInjector::injected(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_[static_cast<int>(op)];
}

bool FaultInjector::ShouldFail(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  int i = static_cast<int>(op);
  ++ops_[i];
  bool fail = false;
  if (trigger_[i] != 0 && ops_[i] == trigger_[i]) {
    trigger_[i] = 0;  // one-shot
    fail = true;
  }
  if (seeded_) {
    // Knuth MMIX LCG: deterministic draw per operation, any kind.
    lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
    if ((lcg_ >> 33) % period_ == 0) fail = true;
  }
  if (fail) ++injected_[i];
  return fail;
}

Status InjectFault(FaultOp op, std::string_view what) {
  if (!FaultInjector::enabled()) return Status::OK();
  if (!FaultInjector::Instance().ShouldFail(op)) return Status::OK();
  return Status::IoError(
      StrCat("injected fault: ", FaultOpName(op), " failed (", what, ")"));
}

}  // namespace gluenail
