/// \file strings.h
/// \brief Small string utilities shared across the codebase.

#ifndef GLUENAIL_COMMON_STRINGS_H_
#define GLUENAIL_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gluenail {

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if \p s starts with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Splits on \p sep, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Escapes a string for quoting inside single quotes: ' -> \', \ -> \\,
/// newline -> \n, tab -> \t.
std::string EscapeQuoted(std::string_view s);

/// Inverse of EscapeQuoted.
std::string UnescapeQuoted(std::string_view s);

/// 64-bit FNV-1a hash, used as the base of all hashing in the storage layer.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value into a hash (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_STRINGS_H_
