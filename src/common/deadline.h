/// \file deadline.h
/// \brief Query guardrails: deadlines, cancellation tokens, resource
/// budgets, and the ExecControl bundle threaded through the executors.
///
/// A production engine cannot let one runaway recursive query take the
/// process down (cf. the LDL++ retrospective: resource control separated
/// deployable deductive databases from prototypes). Three cooperating
/// mechanisms bound a query:
///
///  * Deadline — a wall-clock point after which evaluation aborts with
///    Status::Cancelled ("deadline exceeded");
///  * CancelToken — a shared flag another thread flips to abort an
///    in-flight query with Status::Cancelled;
///  * ResourceLimits — tuple-count and arena-byte budgets checked against
///    the materialized IDB; exceeding one aborts with
///    Status::ResourceExhausted instead of OOM-ing.
///
/// The three are bundled into an ExecControl that the Engine builds from
/// QueryOptions and hands (borrowed, per query) to the executors and the
/// semi-naive fixpoint. Checks are cooperative: the fixpoint loop checks
/// once per iteration, the executors at every op boundary and every few
/// thousand scanned rows, so an abort lands within one fixpoint iteration.
/// All state an aborted query may have half-built (partial NAIL!
/// materializations) is memo-invalidated, so the session stays usable.

#ifndef GLUENAIL_COMMON_DEADLINE_H_
#define GLUENAIL_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "src/common/status.h"
#include "src/common/strings.h"

namespace gluenail {

/// A wall-clock evaluation bound. Default-constructed deadlines are
/// infinite and cost nothing to check (no clock read).
class Deadline {
 public:
  Deadline() = default;

  static Deadline After(std::chrono::nanoseconds d) {
    Deadline out;
    out.has_ = true;
    out.tp_ = std::chrono::steady_clock::now() + d;
    return out;
  }
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return !has_; }
  bool expired() const {
    return has_ && std::chrono::steady_clock::now() >= tp_;
  }

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point tp_{};
};

/// A copyable cancellation handle. A default-constructed token is inert
/// (never cancelled); Create() makes one with shared state that any copy
/// can trip from any thread.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Create() {
    CancelToken out;
    out.flag_ = std::make_shared<std::atomic<bool>>(false);
    return out;
  }

  /// True when this token carries shared state (i.e. can be cancelled).
  bool valid() const { return flag_ != nullptr; }
  void RequestCancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_release);
  }
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Evaluation budgets; 0 means unlimited. Both are checked against the
/// materialized IDB (storage + delta relations) during fixpoint
/// evaluation — the accounting the budgets bound is the same one
/// Engine::storage_stats() reports.
struct ResourceLimits {
  /// Bound on tuples materialized in the IDB during evaluation.
  uint64_t max_tuples = 0;
  /// Bound on bytes held by IDB tuple arenas, dedup tables, and indexes.
  uint64_t max_arena_bytes = 0;
  /// Bound on rows visited while evaluating one query: full-scan rows plus
  /// index probe-chain rows, so an index-heavy query cannot dodge the
  /// budget by never scanning.
  uint64_t max_rows_scanned = 0;

  bool unlimited() const {
    return max_tuples == 0 && max_arena_bytes == 0 && max_rows_scanned == 0;
  }
};

/// The per-query control block the Engine threads through the executors.
/// Borrowed (never owned) by executors; outlives the query evaluation it
/// guards.
struct ExecControl {
  Deadline deadline;
  CancelToken cancel;
  ResourceLimits limits;

  /// Cancellation + deadline; the cheap check inner loops run.
  Status Check() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("query cancelled");
    }
    if (deadline.expired()) {
      return Status::Cancelled("query deadline exceeded");
    }
    return Status::OK();
  }

  Status CheckTuples(uint64_t tuples) const {
    if (limits.max_tuples != 0 && tuples > limits.max_tuples) {
      return Status::ResourceExhausted(
          StrCat("tuple budget exceeded: ", tuples, " tuples materialized, ",
                 "limit ", limits.max_tuples));
    }
    return Status::OK();
  }

  Status CheckRowsScanned(uint64_t rows) const {
    if (limits.max_rows_scanned != 0 && rows > limits.max_rows_scanned) {
      return Status::ResourceExhausted(
          StrCat("row scan budget exceeded: ", rows, " rows visited, ",
                 "limit ", limits.max_rows_scanned));
    }
    return Status::OK();
  }

  Status CheckArenaBytes(uint64_t bytes) const {
    if (limits.max_arena_bytes != 0 && bytes > limits.max_arena_bytes) {
      return Status::ResourceExhausted(
          StrCat("arena byte budget exceeded: ", bytes, " bytes held, ",
                 "limit ", limits.max_arena_bytes));
    }
    return Status::OK();
  }
};

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_DEADLINE_H_
