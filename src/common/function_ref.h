/// \file function_ref.h
/// \brief Non-owning, allocation-free callable reference.
///
/// FunctionRef<R(Args...)> is a two-word (object pointer + thunk) view of
/// any callable. Unlike std::function it never allocates, never copies the
/// target, and costs one indirect call to invoke — which is why the
/// executors' per-row emit continuations use it: the tuple-at-a-time hot
/// path invokes an emit once per candidate row, and a std::function there
/// means type-erasure dispatch (and a potential heap allocation at every
/// construction site) on exactly the loop the benchmarks measure.
///
/// The referenced callable must outlive the FunctionRef. That holds
/// trivially for the executors' usage: emit lambdas live on the caller's
/// stack for the duration of the Stream call they are passed to.

#ifndef GLUENAIL_COMMON_FUNCTION_REF_H_
#define GLUENAIL_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace gluenail {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...). The enable_if keeps
  /// this constructor from hijacking the copy constructor.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        fn_(&Invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R Invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*fn_)(void*, Args...);
};

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_FUNCTION_REF_H_
