/// \file fault_injector.h
/// \brief Deterministic fault injection for robustness testing.
///
/// A process-wide seam that the storage layer's failure-prone operations
/// consult: file writes, fsyncs, renames (persistence.cc) and arena chunk
/// allocations (tuple_arena.h). Tests arm the injector to fail the Nth
/// subsequent operation of a kind, or seed a deterministic pseudo-random
/// schedule, then assert that every injected failure yields a clean error
/// status, an intact pre-existing on-disk file, and a still-usable engine
/// (tests/fault_injection_test.cc).
///
/// The disarmed fast path is a single relaxed atomic load, so production
/// code pays nothing; Arm*/Disarm and the per-operation bookkeeping are
/// mutex-serialized, making schedules deterministic even when several
/// threads hit the seams.

#ifndef GLUENAIL_COMMON_FAULT_INJECTOR_H_
#define GLUENAIL_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <new>
#include <string_view>

#include "src/common/status.h"

namespace gluenail {

/// Operation kinds the injector can fail.
enum class FaultOp : int {
  kWrite = 0,     ///< a file write in the persistence or WAL layer
  kFsync = 1,     ///< an fsync before the atomic rename / WAL group commit
  kRename = 2,    ///< the rename that publishes a saved file or rotated log
  kAlloc = 3,     ///< a tuple-arena chunk allocation
  kTruncate = 4,  ///< a WAL ftruncate (torn-tail or failed-append rollback)
};
inline constexpr int kNumFaultOps = 5;

std::string_view FaultOpName(FaultOp op);

class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Disarmed fast path for the seams: one relaxed load, no lock.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Arms a one-shot trigger: the \p nth (1-based) operation of kind
  /// \p op issued after this call fails; later ones succeed again.
  void ArmNth(FaultOp op, uint64_t nth);

  /// Arms a deterministic pseudo-random schedule: every operation of any
  /// kind draws from an LCG seeded with \p seed and fails when the draw
  /// is divisible by \p period. The same seed always produces the same
  /// failure schedule.
  void ArmSeeded(uint64_t seed, uint64_t period);

  /// Disarms every trigger and resets all counters.
  void Disarm();

  /// Operations of kind \p op observed since the last Disarm().
  uint64_t operations(FaultOp op) const;
  /// Failures injected into kind \p op since the last Disarm().
  uint64_t injected(FaultOp op) const;

  /// Records one operation of kind \p op and reports whether it must
  /// fail. Only call when enabled() — the seams guard on it.
  bool ShouldFail(FaultOp op);

  /// The arena seam: simulates allocation failure exactly like a real
  /// out-of-memory condition, by throwing std::bad_alloc. The engine
  /// converts it to Status::ResourceExhausted at the query boundary.
  static void MaybeFailAlloc() {
    if (enabled() && Instance().ShouldFail(FaultOp::kAlloc)) {
      throw std::bad_alloc();
    }
  }

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  /// Absolute operation count at which kind i fails next; 0 = not armed.
  uint64_t trigger_[kNumFaultOps] = {};
  uint64_t ops_[kNumFaultOps] = {};
  uint64_t injected_[kNumFaultOps] = {};
  bool seeded_ = false;
  uint64_t lcg_ = 0;
  uint64_t period_ = 0;

  static std::atomic<bool> enabled_;
};

/// Status-returning seam for the persistence layer: OK when disarmed or
/// not scheduled to fail, otherwise an IoError naming the operation.
Status InjectFault(FaultOp op, std::string_view what);

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_FAULT_INJECTOR_H_
