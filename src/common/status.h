/// \file status.h
/// \brief Error handling primitives for Glue-Nail.
///
/// Glue-Nail reports recoverable errors through Status / Result<T> rather
/// than exceptions, following the convention of other database codebases
/// (Arrow, RocksDB). A Status is cheap to move, carries an error code and a
/// human-readable message, and is [[nodiscard]] so that errors cannot be
/// silently dropped.

#ifndef GLUENAIL_COMMON_STATUS_H_
#define GLUENAIL_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace gluenail {

/// \brief Broad classification of an error.
enum class StatusCode : int {
  kOk = 0,
  /// Malformed source text (lexer/parser).
  kParseError = 1,
  /// Program is well-formed but violates a static rule (unresolved name,
  /// unbound variable, unsafe negation, unstratifiable program, ...).
  kCompileError = 2,
  /// A run-time evaluation failure (type error in arithmetic, arity
  /// mismatch on a dynamically dereferenced predicate, ...).
  kRuntimeError = 3,
  /// Filesystem / persistence failure.
  kIoError = 4,
  /// API misuse (calling into the engine in an invalid state).
  kInvalidArgument = 5,
  /// An internal invariant failed; indicates a bug in Glue-Nail itself.
  kInternal = 6,
  /// Requested entity does not exist.
  kNotFound = 7,
  /// Evaluation was abandoned: an explicit CancelToken fired or a query
  /// deadline expired. The engine's state is unaffected (partial NAIL!
  /// materializations are invalidated and recomputed on next demand).
  kCancelled = 8,
  /// A resource budget was exceeded (tuple or arena-byte limit) or an
  /// allocation failed; evaluation aborted instead of exhausting memory.
  kResourceExhausted = 9,
  /// The operation is valid in general but not against this endpoint in
  /// its current state — e.g. a mutation sent to a read replica (retry it
  /// at the primary), or replication asked of an engine with no WAL.
  kFailedPrecondition = 10,
};

/// \brief Returns a stable lowercase name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief The result of an operation that can fail but returns no value.
///
/// The OK state is represented by a null internal pointer, so returning and
/// testing an OK Status costs no allocation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a non-OK status. \p code must not be kOk.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : rep_->code; }
  /// Message text; empty for OK.
  const std::string& message() const;

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsCompileError() const { return code() == StatusCode::kCompileError; }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prefixes the message with \p context, keeping the code. OK stays OK.
  Status WithContext(std::string_view context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define GLUENAIL_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::gluenail::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_STATUS_H_
