/// \file result.h
/// \brief Result<T>: a value or a non-OK Status.

#ifndef GLUENAIL_COMMON_RESULT_H_
#define GLUENAIL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace gluenail {

/// \brief Holds either a value of type T or an error Status.
///
/// Typical use:
/// \code
///   Result<TermId> r = ParseTerm(text);
///   if (!r.ok()) return r.status();
///   TermId id = *r;
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a (non-OK) status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access; undefined behaviour if !ok().
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the value, or \p fallback if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Moves the value out; undefined behaviour if !ok().
  T MoveValue() { return *std::move(value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define GLUENAIL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(*tmp)

#define GLUENAIL_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define GLUENAIL_ASSIGN_OR_RETURN_NAME(a, b) GLUENAIL_ASSIGN_OR_RETURN_CAT(a, b)

#define GLUENAIL_ASSIGN_OR_RETURN(lhs, expr)                                 \
  GLUENAIL_ASSIGN_OR_RETURN_IMPL(                                            \
      GLUENAIL_ASSIGN_OR_RETURN_NAME(_gluenail_result_, __LINE__), lhs, expr)

}  // namespace gluenail

#endif  // GLUENAIL_COMMON_RESULT_H_
