#include "src/common/status.h"

namespace gluenail {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kCompileError:
      return "compile error";
    case StatusCode::kRuntimeError:
      return "runtime error";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message)
    : rep_(std::make_unique<Rep>(Rep{code, std::move(message)})) {}

Status::Status(const Status& other)
    : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(rep_->code));
  out += ": ";
  out += rep_->message;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return Status();
  std::string msg(context);
  msg += ": ";
  msg += rep_->message;
  return Status(rep_->code, std::move(msg));
}

}  // namespace gluenail
