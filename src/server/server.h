/// \file server.h
/// \brief The Glue-Nail network server: a multi-client socket front end
/// over the Command/Response surface.
///
/// Architecture (docs/ARCHITECTURE.md, "Service layer"):
///
///   * one accept-loop thread per listening socket;
///   * one worker thread per accepted connection, owning one Session —
///     so N connected clients read in parallel under the engine's shared
///     lock exactly like N in-process session threads, and mutations
///     serialize behind the writer lock;
///   * frames decoded by FrameDecoder, dispatched through
///     Session::Execute(Command), responses framed back. A protocol error
///     (bad magic / checksum / oversized length) sends a final error
///     response and drops the connection, since frame boundaries are lost.
///
/// An optional HTTP admin listener (plain HTTP/1.0, GET only) serves the
/// observability surface: /metrics (Prometheus text, ?format=json for
/// JSON), /slowlog, and /healthz — scrapable by curl or Prometheus with
/// no Glue-Nail client.
///
/// Stop() is graceful: stops accepting, wakes every worker via
/// shutdown(2) on its socket, and joins them — a worker mid-command
/// finishes that command (and writes its response) before exiting, so
/// in-flight work drains rather than being cut off.

#ifndef GLUENAIL_SERVER_SERVER_H_
#define GLUENAIL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/api/session.h"
#include "src/server/protocol.h"

namespace gluenail {

struct ServerOptions {
  /// TCP port for the wire protocol; 0 picks an ephemeral port (tests).
  uint16_t port = 0;
  /// HTTP admin port; negative disables the admin listener, 0 picks an
  /// ephemeral port.
  int admin_port = -1;
  /// listen(2) backlog.
  int backlog = 64;
  /// Per-frame payload bound handed to FrameDecoder.
  size_t max_frame_payload = kDefaultMaxPayload;
  /// Admission control: connections beyond this many live workers are
  /// answered with one kResourceExhausted response and closed, instead of
  /// spawning an unbounded thread per socket. 0 (the default) = unlimited.
  int max_connections = 0;
  /// Test seam: runs at the point the rejection response is written to a
  /// turned-away socket. A real peer that never reads can stall that send
  /// indefinitely; tests install a blocking hook here to emulate one and
  /// prove the accept loop keeps accepting regardless (the rejection is
  /// sent off-thread, outside conns_mu_). Never set in production.
  std::function<void()> reject_send_stall_for_testing;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(Engine* engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop(s). Fails with IoError if
  /// a port cannot be bound.
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight commands, join
  /// every thread. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Actual bound ports (useful with port 0). Valid after Start().
  uint16_t port() const { return port_; }
  uint16_t admin_port() const { return admin_port_; }

  /// Connections accepted / currently live / protocol errors observed —
  /// also exported through the engine's metrics registry as
  /// gluenail_server_* gauges and counters.
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t connections_live() const {
    return connections_live_.load(std::memory_order_relaxed);
  }
  uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  uint64_t commands_served() const {
    return commands_served_.load(std::memory_order_relaxed);
  }
  /// Connections turned away by ServerOptions::max_connections.
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::thread worker;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void AdminLoop();
  void ServeConnection(Connection* conn);
  void ServeAdminConnection(int fd);
  /// Streams WAL records to a subscribed replica until it disconnects or
  /// the server stops; runs on the connection's worker thread.
  /// \p subscribe_payload is the raw kReplSubscribe frame payload.
  void ServeReplicationSubscriber(Connection* conn,
                                  std::string_view subscribe_payload);
  /// Joins finished workers; under conns_mu_.
  void ReapFinishedLocked();

  Engine* engine_;
  ServerOptions options_;
  std::atomic<bool> running_{false};

  int listen_fd_ = -1;
  int admin_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;
  std::thread accept_thread_;
  std::thread admin_thread_;

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_live_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> commands_served_{0};
  std::atomic<uint64_t> connections_rejected_{0};

  /// Registry-owned mirrors (gluenail_server_*), registered in Start().
  Counter* m_connections_ = nullptr;
  Counter* m_commands_ = nullptr;
  Counter* m_proto_errors_ = nullptr;
  Gauge* m_live_ = nullptr;
  Counter* m_rejected_ = nullptr;
  /// Primary-side replication metrics (gluenail_repl_*_shipped etc.),
  /// registered in Start(); plain handles, never `this`-capturing pull
  /// lambdas — the registry outlives the Server.
  Gauge* m_repl_subscribers_ = nullptr;
  Counter* m_repl_shipped_ = nullptr;
  Counter* m_repl_snapshots_ = nullptr;
  Counter* m_repl_heartbeats_ = nullptr;
};

}  // namespace gluenail

#endif  // GLUENAIL_SERVER_SERVER_H_
