/// \file replication.h
/// \brief Log-shipping replication: a primary streams its durable WAL to
/// read replicas over the ordinary wire protocol.
///
/// Protocol (docs/PROTOCOL.md, "Replication"): a replica dials the
/// primary's normal port and sends one kReplSubscribe frame
/// ({u8 version, u64 from_lsn}). From then on the connection is a one-way
/// stream from the primary:
///
///   * kReplRecord {u8 kind=0 (batch), u64 lsn, string batch_text} — one
///     committed MutationBatch, in LSN order, durable on the primary;
///   * kReplRecord {u8 kind=1 (snapshot), u64 covers_lsn, string image} —
///     a whole checkpoint image, sent when the replica's from_lsn
///     predates the primary's WAL (a checkpoint rotated the prefix away);
///     the replica replaces its EDB and resumes from covers_lsn + 1;
///   * kReplHeartbeat {u64 durable_lsn} — keepalive carrying the
///     primary's durable watermark, so a caught-up replica still measures
///     its lag.
///
/// Only *durable* (fsynced) records ship. A replica therefore never holds
/// state the primary could lose in a crash: what the replica applied is
/// always a prefix of what the primary acked. Mutations sent to a replica
/// are refused with kFailedPrecondition — writes go to the primary.
///
/// The serving side lives in Server (a kReplSubscribe frame turns that
/// connection's worker into a subscriber loop). This header has the
/// payload codecs shared by both sides and the ReplicationClient a
/// replica runs to tail a primary, reconnecting with backoff and resuming
/// from its last applied LSN.

#ifndef GLUENAIL_SERVER_REPLICATION_H_
#define GLUENAIL_SERVER_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "src/api/engine.h"
#include "src/server/protocol.h"

namespace gluenail {

/// Bumped only for incompatible stream changes; a primary refuses
/// subscriptions from versions it does not speak.
inline constexpr uint8_t kReplProtocolVersion = 1;

/// First byte of a kReplRecord payload.
enum class ReplRecordKind : uint8_t {
  kBatch = 0,     ///< {u64 lsn, string batch_text}
  kSnapshot = 1,  ///< {u64 covers_lsn, string checkpoint_image}
};

// --- Payload codecs ------------------------------------------------------

std::string EncodeReplSubscribe(uint64_t from_lsn);
/// Validates the version byte; returns from_lsn.
Result<uint64_t> DecodeReplSubscribe(std::string_view payload);

std::string EncodeReplBatch(uint64_t lsn, std::string_view batch_text);
std::string EncodeReplSnapshot(uint64_t covers_lsn, std::string_view image);

/// One decoded kReplRecord. For kBatch, \p lsn is the record's LSN and
/// \p body the MutationBatch text; for kSnapshot, \p lsn is covers_lsn
/// and \p body the checkpoint image.
struct ReplRecord {
  ReplRecordKind kind = ReplRecordKind::kBatch;
  uint64_t lsn = 0;
  std::string body;
};
Result<ReplRecord> DecodeReplRecord(std::string_view payload);

std::string EncodeReplHeartbeat(uint64_t durable_lsn);
Result<uint64_t> DecodeReplHeartbeat(std::string_view payload);

// --- Replica-side client -------------------------------------------------

struct ReplicationClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reconnect backoff after a dropped stream: doubles from
  /// reconnect_initial up to reconnect_max, resetting whenever a
  /// connection makes progress.
  std::chrono::milliseconds reconnect_initial{50};
  std::chrono::milliseconds reconnect_max{2000};
  /// Frame cap for the inbound stream. Snapshot frames carry a whole
  /// checkpoint image, so this defaults far above kDefaultMaxPayload.
  size_t max_frame_payload = 512u << 20;
};

/// Tails a primary on a background thread and applies what arrives to a
/// replica Engine (EngineOptions::replica must be set). Batches go
/// through the engine's normal apply path, so NAIL! memos stay
/// incrementally maintained; snapshots replace the EDB wholesale.
///
/// The stream position is the engine's replica_applied_lsn(): every
/// (re)connection subscribes from applied + 1, so a dropped or torn
/// stream re-ships from exactly after the last applied batch and the
/// out-of-order guard in ApplyReplicatedBatch discards any overlap.
class ReplicationClient {
 public:
  /// The engine must outlive the client.
  ReplicationClient(Engine* engine, ReplicationClientOptions options);
  ~ReplicationClient();
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Validates the engine is a replica and spawns the tailing thread.
  /// The primary being unreachable is not a Start() error — the thread
  /// keeps dialing with backoff until Stop().
  Status Start();

  /// Stops tailing: interrupts any backoff sleep, shuts the stream
  /// socket down, joins the thread. Idempotent; also run by the
  /// destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Times a fresh stream was dialed after the first (i.e. recoveries).
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  uint64_t snapshots_applied() const {
    return snapshots_applied_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// One connection lifetime: dial, subscribe, apply until the stream
  /// breaks or Stop(). Returns why the stream ended. Sets *progressed
  /// when at least one record was applied (resets the backoff schedule).
  Status StreamOnce(bool* progressed);

  Engine* engine_;
  ReplicationClientOptions options_;
  std::atomic<bool> running_{false};
  /// Live stream socket, or -1; Stop() shutdown(2)s it to interrupt a
  /// blocking recv on the tailing thread.
  std::atomic<int> fd_{-1};
  std::thread thread_;
  /// Interruptible backoff sleep.
  std::mutex mu_;
  std::condition_variable cv_;

  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> snapshots_applied_{0};
};

}  // namespace gluenail

#endif  // GLUENAIL_SERVER_REPLICATION_H_
