#include "src/server/protocol.h"

#include <algorithm>
#include <cstring>

#include "src/common/strings.h"

namespace gluenail {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLE64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadLE32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t ReadLE64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

// --- Framing -------------------------------------------------------------

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(type));
  PutLE32(&out, static_cast<uint32_t>(payload.size()));
  PutLE64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Result<std::optional<WireFrame>> FrameDecoder::Next() {
  // Compact the consumed prefix occasionally so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  if (buffered() < kFrameHeaderSize) return std::optional<WireFrame>();
  const char* h = buf_.data() + pos_;
  if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("frame: bad magic (stream desynced?)");
  }
  uint8_t type = static_cast<uint8_t>(h[4]);
  if (type < static_cast<uint8_t>(FrameType::kCommand) ||
      type > static_cast<uint8_t>(FrameType::kReplHeartbeat)) {
    return Status::InvalidArgument(StrCat("frame: unknown type ", type));
  }
  uint32_t len = ReadLE32(h + 5);
  if (len > max_payload_) {
    // Reject before any allocation: the declared length never becomes a
    // buffer size until it passes this bound.
    return Status::ResourceExhausted(StrCat(
        "frame: declared payload of ", len, " bytes exceeds the ",
        max_payload_, "-byte limit"));
  }
  uint64_t declared_checksum = ReadLE64(h + 9);
  if (buffered() < kFrameHeaderSize + len) return std::optional<WireFrame>();
  const char* body = h + kFrameHeaderSize;
  uint64_t actual = Fnv1a64(body, len);
  if (actual != declared_checksum) {
    return Status::InvalidArgument("frame: payload checksum mismatch");
  }
  WireFrame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(body, len);
  pos_ += kFrameHeaderSize + len;
  return std::optional<WireFrame>(std::move(frame));
}

// --- Scalars / strings ---------------------------------------------------

void ByteWriter::PutU32(uint32_t v) { PutLE32(&out_, v); }
void ByteWriter::PutU64(uint64_t v) { PutLE64(&out_, v); }

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) {
    return Status::InvalidArgument("payload truncated reading u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("payload truncated reading u32");
  }
  uint32_t v = ReadLE32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return Status::InvalidArgument("payload truncated reading u64");
  }
  uint64_t v = ReadLE64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::GetString() {
  GLUENAIL_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) {
    return Status::InvalidArgument(
        StrCat("payload truncated reading ", len, "-byte string (",
               remaining(), " left)"));
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// --- Command encoding ----------------------------------------------------

namespace {

void PutWireQueryOptions(ByteWriter* w, const WireQueryOptions& o) {
  w->PutU8(static_cast<uint8_t>(o.strategy));
  w->PutU64(o.timeout_millis);
  w->PutU64(o.max_tuples);
  w->PutU64(o.max_arena_bytes);
  w->PutU64(o.max_rows_scanned);
  w->PutU8(o.trace ? 1 : 0);
}

Status GetWireQueryOptions(ByteReader* r, WireQueryOptions* o) {
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t strategy, r->GetU8());
  if (strategy > static_cast<uint8_t>(QueryStrategy::kMagic)) {
    return Status::InvalidArgument(
        StrCat("command: unknown query strategy ", strategy));
  }
  o->strategy = static_cast<QueryStrategy>(strategy);
  GLUENAIL_ASSIGN_OR_RETURN(o->timeout_millis, r->GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(o->max_tuples, r->GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(o->max_arena_bytes, r->GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(o->max_rows_scanned, r->GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t trace, r->GetU8());
  o->trace = trace != 0;
  return Status::OK();
}

}  // namespace

std::string EncodeCommand(const Command& cmd) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(cmd.kind));
  switch (cmd.kind) {
    case CommandKind::kPing:
    case CommandKind::kSlowlog:
      break;
    case CommandKind::kQuery:
      w.PutString(cmd.goal);
      PutWireQueryOptions(&w, cmd.options);
      break;
    case CommandKind::kMutate:
      w.PutString(cmd.statement);
      w.PutString(cmd.batch.empty() ? std::string() : cmd.batch.Serialize());
      PutWireQueryOptions(&w, cmd.options);
      break;
    case CommandKind::kExplain:
      w.PutString(cmd.statement);
      w.PutU8(cmd.analyze ? 1 : 0);
      break;
    case CommandKind::kLoad:
      w.PutU8(static_cast<uint8_t>(cmd.load_target));
      w.PutString(cmd.path);
      w.PutString(cmd.source);
      break;
    case CommandKind::kSave:
      w.PutString(cmd.path);
      break;
    case CommandKind::kMetrics:
      w.PutU8(static_cast<uint8_t>(cmd.metrics_format));
      break;
  }
  return w.Take();
}

Result<Command> DecodeCommand(std::string_view payload) {
  ByteReader r(payload);
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > static_cast<uint8_t>(CommandKind::kSlowlog)) {
    return Status::InvalidArgument(
        StrCat("command: unknown kind byte ", kind));
  }
  Command cmd;
  cmd.kind = static_cast<CommandKind>(kind);
  switch (cmd.kind) {
    case CommandKind::kPing:
    case CommandKind::kSlowlog:
      break;
    case CommandKind::kQuery: {
      GLUENAIL_ASSIGN_OR_RETURN(cmd.goal, r.GetString());
      GLUENAIL_RETURN_NOT_OK(GetWireQueryOptions(&r, &cmd.options));
      break;
    }
    case CommandKind::kMutate: {
      GLUENAIL_ASSIGN_OR_RETURN(cmd.statement, r.GetString());
      GLUENAIL_ASSIGN_OR_RETURN(std::string batch_text, r.GetString());
      if (!batch_text.empty()) {
        GLUENAIL_ASSIGN_OR_RETURN(cmd.batch, MutationBatch::Parse(batch_text));
      }
      GLUENAIL_RETURN_NOT_OK(GetWireQueryOptions(&r, &cmd.options));
      break;
    }
    case CommandKind::kExplain: {
      GLUENAIL_ASSIGN_OR_RETURN(cmd.statement, r.GetString());
      GLUENAIL_ASSIGN_OR_RETURN(uint8_t analyze, r.GetU8());
      cmd.analyze = analyze != 0;
      break;
    }
    case CommandKind::kLoad: {
      GLUENAIL_ASSIGN_OR_RETURN(uint8_t target, r.GetU8());
      if (target > static_cast<uint8_t>(LoadTarget::kEdb)) {
        return Status::InvalidArgument(
            StrCat("command: unknown load target ", target));
      }
      cmd.load_target = static_cast<LoadTarget>(target);
      GLUENAIL_ASSIGN_OR_RETURN(cmd.path, r.GetString());
      GLUENAIL_ASSIGN_OR_RETURN(cmd.source, r.GetString());
      break;
    }
    case CommandKind::kSave: {
      GLUENAIL_ASSIGN_OR_RETURN(cmd.path, r.GetString());
      break;
    }
    case CommandKind::kMetrics: {
      GLUENAIL_ASSIGN_OR_RETURN(uint8_t format, r.GetU8());
      if (format > static_cast<uint8_t>(MetricsFormat::kJson)) {
        return Status::InvalidArgument(
            StrCat("command: unknown metrics format ", format));
      }
      cmd.metrics_format = static_cast<MetricsFormat>(format);
      break;
    }
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument(
        StrCat("command: ", r.remaining(), " trailing bytes after payload"));
  }
  return cmd;
}

// --- Response encoding ---------------------------------------------------

std::string EncodeResponse(const Response& response, const TermPool& pool) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(WireErrorFromStatus(response.status.code())));
  w.PutString(response.status.ok() ? std::string_view()
                                   : response.status.message());
  w.PutString(response.text);
  w.PutU32(static_cast<uint32_t>(response.vars.size()));
  for (const std::string& v : response.vars) w.PutString(v);
  w.PutU32(static_cast<uint32_t>(response.rows.size()));
  std::string cell;
  for (const Tuple& row : response.rows) {
    w.PutU32(static_cast<uint32_t>(row.size()));
    for (TermId t : row) {
      cell.clear();
      pool.AppendTerm(t, &cell);
      w.PutString(cell);
    }
  }
  w.PutU64(response.applied);
  w.PutU64(response.inserted);
  w.PutU64(response.erased);
  return w.Take();
}

Result<WireResponse> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  WireResponse out;
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t wire_error, r.GetU8());
  GLUENAIL_ASSIGN_OR_RETURN(std::string message, r.GetString());
  StatusCode code = StatusCodeFromWireError(wire_error);
  out.status = code == StatusCode::kOk ? Status::OK()
                                       : Status(code, std::move(message));
  GLUENAIL_ASSIGN_OR_RETURN(out.text, r.GetString());
  GLUENAIL_ASSIGN_OR_RETURN(uint32_t nvars, r.GetU32());
  out.vars.reserve(std::min<size_t>(nvars, r.remaining() / 4 + 1));
  for (uint32_t i = 0; i < nvars; ++i) {
    GLUENAIL_ASSIGN_OR_RETURN(std::string v, r.GetString());
    out.vars.push_back(std::move(v));
  }
  GLUENAIL_ASSIGN_OR_RETURN(uint32_t nrows, r.GetU32());
  // Row/column counts are attacker-controlled until proven consistent
  // with the payload size; cap reserve() at what the bytes could hold.
  out.rows.reserve(std::min<size_t>(nrows, r.remaining() / 4 + 1));
  for (uint32_t i = 0; i < nrows; ++i) {
    GLUENAIL_ASSIGN_OR_RETURN(uint32_t ncols, r.GetU32());
    std::vector<std::string> row;
    row.reserve(std::min<size_t>(ncols, r.remaining() / 4 + 1));
    for (uint32_t c = 0; c < ncols; ++c) {
      GLUENAIL_ASSIGN_OR_RETURN(std::string cell, r.GetString());
      row.push_back(std::move(cell));
    }
    out.rows.push_back(std::move(row));
  }
  GLUENAIL_ASSIGN_OR_RETURN(out.applied, r.GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(out.inserted, r.GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(out.erased, r.GetU64());
  if (!r.exhausted()) {
    return Status::InvalidArgument(
        StrCat("response: ", r.remaining(), " trailing bytes after payload"));
  }
  return out;
}

}  // namespace gluenail
