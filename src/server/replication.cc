#include "src/server/replication.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/strings.h"
#include "src/server/client.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {

// --- Payload codecs ------------------------------------------------------

std::string EncodeReplSubscribe(uint64_t from_lsn) {
  ByteWriter w;
  w.PutU8(kReplProtocolVersion);
  w.PutU64(from_lsn);
  return w.Take();
}

Result<uint64_t> DecodeReplSubscribe(std::string_view payload) {
  ByteReader r(payload);
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kReplProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("replication protocol version ", static_cast<int>(version),
               " is not supported (this side speaks ",
               static_cast<int>(kReplProtocolVersion), ")"));
  }
  GLUENAIL_ASSIGN_OR_RETURN(uint64_t from_lsn, r.GetU64());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after subscribe payload");
  }
  return from_lsn;
}

std::string EncodeReplBatch(uint64_t lsn, std::string_view batch_text) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(ReplRecordKind::kBatch));
  w.PutU64(lsn);
  w.PutString(batch_text);
  return w.Take();
}

std::string EncodeReplSnapshot(uint64_t covers_lsn, std::string_view image) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(ReplRecordKind::kSnapshot));
  w.PutU64(covers_lsn);
  w.PutString(image);
  return w.Take();
}

Result<ReplRecord> DecodeReplRecord(std::string_view payload) {
  ByteReader r(payload);
  GLUENAIL_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind > static_cast<uint8_t>(ReplRecordKind::kSnapshot)) {
    return Status::InvalidArgument(
        StrCat("unknown replication record kind ", static_cast<int>(kind)));
  }
  ReplRecord rec;
  rec.kind = static_cast<ReplRecordKind>(kind);
  GLUENAIL_ASSIGN_OR_RETURN(rec.lsn, r.GetU64());
  GLUENAIL_ASSIGN_OR_RETURN(rec.body, r.GetString());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after replication record");
  }
  return rec;
}

std::string EncodeReplHeartbeat(uint64_t durable_lsn) {
  ByteWriter w;
  w.PutU64(durable_lsn);
  return w.Take();
}

Result<uint64_t> DecodeReplHeartbeat(std::string_view payload) {
  ByteReader r(payload);
  GLUENAIL_ASSIGN_OR_RETURN(uint64_t durable_lsn, r.GetU64());
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after heartbeat");
  }
  return durable_lsn;
}

// --- Replica-side client -------------------------------------------------

namespace {

/// Writes all of \p data; false on a broken connection.
bool SendAllFd(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ReplicationClient::ReplicationClient(Engine* engine,
                                     ReplicationClientOptions options)
    : engine_(engine), options_(std::move(options)) {}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Start() {
  if (engine_ == nullptr || !engine_->replica()) {
    return Status::InvalidArgument(
        "ReplicationClient needs an engine with EngineOptions::replica set");
  }
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::InvalidArgument("replication client already running");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ReplicationClient::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  {
    // Interrupt a backoff sleep and a blocking recv (shutdown under mu_
    // so we never race the tailing thread closing the fd).
    std::lock_guard<std::mutex> lock(mu_);
    int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ReplicationClient::Run() {
  auto delay = options_.reconnect_initial;
  bool first_attempt = true;
  while (running_.load(std::memory_order_acquire)) {
    if (!first_attempt) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
    }
    first_attempt = false;
    bool progressed = false;
    Status s = StreamOnce(&progressed);
    (void)s;  // stream errors are retried; stats tell the story
    if (!running_.load(std::memory_order_acquire)) break;
    if (progressed) delay = options_.reconnect_initial;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, delay, [this] {
        return !running_.load(std::memory_order_acquire);
      });
    }
    delay = std::min(delay * 2, options_.reconnect_max);
  }
}

Status ReplicationClient::StreamOnce(bool* progressed) {
  GLUENAIL_ASSIGN_OR_RETURN(int fd,
                            internal::DialOnce(options_.host, options_.port));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return Status::OK();
    }
    fd_.store(fd, std::memory_order_release);
  }
  // A short receive timeout keeps the loop re-checking running_, so
  // Stop() never waits on a silent primary.
  timeval tv{};
  tv.tv_usec = 250 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  auto finish = [this, fd](Status s) {
    std::lock_guard<std::mutex> lock(mu_);
    fd_.store(-1, std::memory_order_release);
    ::close(fd);
    return s;
  };

  // Resume from exactly after the last applied batch; the primary
  // re-ships everything from there.
  const uint64_t from = engine_->replica_applied_lsn() + 1;
  if (!SendAllFd(fd, EncodeFrame(FrameType::kReplSubscribe,
                                 EncodeReplSubscribe(from)))) {
    return finish(Status::IoError("subscribe: primary hung up"));
  }

  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 << 10];
  while (running_.load(std::memory_order_acquire)) {
    Result<std::optional<WireFrame>> next = decoder.Next();
    if (!next.ok()) {
      // Torn or corrupt stream: drop the connection and resubscribe from
      // the applied watermark — nothing partial was applied.
      return finish(next.status());
    }
    if (next->has_value()) {
      WireFrame& frame = **next;
      switch (frame.type) {
        case FrameType::kReplRecord: {
          Result<ReplRecord> rec = DecodeReplRecord(frame.payload);
          if (!rec.ok()) return finish(rec.status());
          // Arena growth inside the apply path reports OOM (real or
          // injected) as bad_alloc; surface it as a retryable stream
          // error — the applied watermark did not advance, so the next
          // subscription re-ships the same record.
          try {
            if (rec->kind == ReplRecordKind::kBatch) {
              Result<MutationBatch> batch = MutationBatch::Parse(rec->body);
              if (!batch.ok()) return finish(batch.status());
              Status applied =
                  engine_->ApplyReplicatedBatch(rec->lsn, *batch);
              if (!applied.ok()) return finish(applied);
              batches_applied_.fetch_add(1, std::memory_order_relaxed);
            } else {
              Status reset = engine_->ResetFromCheckpointImage(rec->lsn,
                                                               rec->body);
              if (!reset.ok()) return finish(reset);
              snapshots_applied_.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (const std::bad_alloc&) {
            return finish(Status::ResourceExhausted(
                "allocation failed applying a replicated record"));
          }
          // A shipped record is durable on the primary by contract.
          engine_->set_replica_primary_lsn(rec->lsn);
          *progressed = true;
          continue;
        }
        case FrameType::kReplHeartbeat: {
          Result<uint64_t> durable = DecodeReplHeartbeat(frame.payload);
          if (!durable.ok()) return finish(durable.status());
          engine_->set_replica_primary_lsn(*durable);
          continue;
        }
        case FrameType::kResponse: {
          // The primary refused the subscription (bad version, no WAL,
          // itself a replica, ...) with an ordinary error response.
          Result<WireResponse> resp = DecodeResponse(frame.payload);
          if (!resp.ok()) return finish(resp.status());
          return finish(resp->status.ok()
                            ? Status::InvalidArgument(
                                  "unexpected response on the "
                                  "replication stream")
                            : resp->status);
        }
        default:
          return finish(Status::InvalidArgument(
              "unexpected frame type on the replication stream"));
      }
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) {
      return finish(Status::IoError("primary closed the stream"));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // timeout
      return finish(
          Status::IoError(StrCat("recv: ", std::strerror(errno))));
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  return finish(Status::OK());
}

}  // namespace gluenail
