/// \file client.h
/// \brief A small blocking client for the Glue-Nail wire protocol — the
/// reference consumer used by tests, benchmarks, and simple tools.
///
/// One Client is one TCP connection speaking request/response in
/// lock-step: Execute() frames a Command, sends it, and blocks until the
/// matching Response frame arrives. Not thread-safe; open one Client per
/// thread (the server maps each connection to its own Session anyway, so
/// this mirrors the intended concurrency model).

#ifndef GLUENAIL_SERVER_CLIENT_H_
#define GLUENAIL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/server/protocol.h"

namespace gluenail {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to \p host:\p port ("127.0.0.1" or a hostname).
  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Sends one command, blocks for its response. A transport or framing
  /// failure closes the connection and returns the error; an engine-side
  /// failure comes back as WireResponse::status with the wire error code
  /// preserved.
  Result<WireResponse> Execute(const Command& cmd);

  /// Execute(Command::Ping()), reduced to a Status.
  Status Ping();

  void Close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace gluenail

#endif  // GLUENAIL_SERVER_CLIENT_H_
