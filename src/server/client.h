/// \file client.h
/// \brief A small blocking client for the Glue-Nail wire protocol — the
/// reference consumer used by tests, benchmarks, and simple tools.
///
/// One Client is one TCP connection speaking request/response in
/// lock-step: Execute() frames a Command, sends it, and blocks until the
/// matching Response frame arrives. Not thread-safe; open one Client per
/// thread (the server maps each connection to its own Session anyway, so
/// this mirrors the intended concurrency model).

#ifndef GLUENAIL_SERVER_CLIENT_H_
#define GLUENAIL_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "src/server/protocol.h"

namespace gluenail {

/// Dial behavior. The defaults are a single attempt — exactly the old
/// Connect(host, port); retries opt in.
struct ClientOptions {
  /// Re-dial attempts after the first connect fails (0 = fail fast). Also
  /// bounds Reconnect().
  int max_retries = 0;
  /// Delay before the first retry; doubles per attempt (exponential
  /// backoff) up to backoff_max.
  std::chrono::milliseconds backoff_initial{50};
  std::chrono::milliseconds backoff_max{2000};
  /// Seed for the jitter PRNG (each delay is scaled by a random factor in
  /// [0.5, 1.0] so a fleet of clients does not retry in lock-step).
  /// 0 derives a seed from host/port.
  uint64_t jitter_seed = 0;
  /// Largest response payload this client accepts. Must be at least the
  /// server's ServerOptions::max_frame_payload, or legal oversized
  /// responses are rejected as corrupt frames.
  size_t max_frame_payload = kDefaultMaxPayload;
};

namespace internal {
/// One dial attempt (resolve + connect + TCP_NODELAY), no retries; returns
/// the connected fd. Shared with the replication client
/// (src/server/replication.h), which runs its own reconnect schedule.
Result<int> DialOnce(const std::string& host, uint16_t port);
/// Guards a candidate PRNG seed away from zero — zero is xorshift64's
/// fixed point, and a stuck-at-zero PRNG would retry a whole fleet in
/// lock-step with no jitter at all. Nonzero seeds pass through.
uint64_t SanitizeJitterSeed(uint64_t seed);
/// Seed derivation for DialWithRetry's jitter PRNG, exposed for tests: an
/// explicit nonzero jitter_seed wins; otherwise the seed derives from
/// host/port. Either way the result is sanitized, so it is never zero.
uint64_t DeriveJitterSeed(uint64_t jitter_seed, std::string_view host,
                          uint16_t port);
}  // namespace internal

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to \p host:\p port ("127.0.0.1" or a hostname).
  static Result<Client> Connect(const std::string& host, uint16_t port) {
    return Connect(host, port, ClientOptions{});
  }
  /// Connect with bounded retry: on failure, re-dials up to
  /// options.max_retries times with exponential backoff + jitter.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options);

  /// Re-dials the address this client was connected to, with the same
  /// bounded backoff schedule, after a transport failure closed it. Any
  /// half-received response bytes are discarded (the protocol is
  /// request/response in lock-step, so a fresh connection starts clean).
  /// Commands are NOT replayed — the caller decides whether its last
  /// command is safe to retry.
  Status Reconnect();

  bool connected() const { return fd_ >= 0; }

  /// Sends one command, blocks for its response. A transport or framing
  /// failure closes the connection and returns the error; an engine-side
  /// failure comes back as WireResponse::status with the wire error code
  /// preserved.
  Result<WireResponse> Execute(const Command& cmd);

  /// Execute(Command::Ping()), reduced to a Status.
  Status Ping();

  void Close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  /// Remembered dial target + retry policy, for Reconnect().
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
};

}  // namespace gluenail

#endif  // GLUENAIL_SERVER_CLIENT_H_
