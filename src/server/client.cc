#include "src/server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/strings.h"

namespace gluenail {

namespace internal {

Result<int> DialOnce(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IoError(
        StrCat("resolve ", host, ": ", ::gai_strerror(rc)));
  }
  int fd = -1;
  Status last = Status::IoError(StrCat("no usable address for ", host));
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(StrCat("socket(): ", std::strerror(errno)));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::IoError(StrCat("connect ", host, ":", port, ": ",
                                  std::strerror(errno)));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace internal

namespace {

uint64_t Xorshift64(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

}  // namespace

namespace internal {

uint64_t SanitizeJitterSeed(uint64_t seed) {
  if (seed == 0) {
    // Zero is Xorshift64's fixed point: left there, every delay would use
    // the same degenerate draw. Any nonzero constant restores a real
    // sequence; the golden-ratio increment is the conventional choice.
    return 0x9e3779b97f4a7c15ULL;
  }
  return seed;
}

uint64_t DeriveJitterSeed(uint64_t jitter_seed, std::string_view host,
                          uint16_t port) {
  if (jitter_seed != 0) return jitter_seed;
  return SanitizeJitterSeed(Fnv1a64(host.data(), host.size()) ^ (port + 1));
}

}  // namespace internal

namespace {

/// Dials with the options' bounded backoff schedule.
Result<int> DialWithRetry(const std::string& host, uint16_t port,
                          const ClientOptions& options) {
  uint64_t rng =
      internal::DeriveJitterSeed(options.jitter_seed, host, port);
  Status last;
  for (int attempt = 0;; ++attempt) {
    Result<int> fd = internal::DialOnce(host, port);
    if (fd.ok()) return fd;
    last = fd.status();
    if (attempt >= options.max_retries) break;
    // Exponential backoff with jitter: delay doubles per attempt (capped),
    // then is scaled into [0.5, 1.0] so a fleet of clients desynchronizes.
    auto delay = options.backoff_initial * (int64_t{1} << std::min(attempt, 20));
    if (delay > options.backoff_max) delay = options.backoff_max;
    const int64_t us =
        std::chrono::duration_cast<std::chrono::microseconds>(delay).count();
    const int64_t jittered = us / 2 + static_cast<int64_t>(
                                          Xorshift64(&rng) % (us / 2 + 1));
    std::this_thread::sleep_for(std::chrono::microseconds(jittered));
  }
  if (options.max_retries > 0) {
    return last.WithContext(
        StrCat("after ", options.max_retries + 1, " attempts"));
  }
  return last;
}

}  // namespace

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  GLUENAIL_ASSIGN_OR_RETURN(int fd, DialWithRetry(host, port, options));
  Client client;
  client.fd_ = fd;
  client.host_ = host;
  client.port_ = port;
  client.options_ = options;
  client.decoder_ = FrameDecoder(options.max_frame_payload);
  return client;
}

Status Client::Reconnect() {
  if (host_.empty()) {
    return Status::InvalidArgument("client was never connected");
  }
  Close();
  GLUENAIL_ASSIGN_OR_RETURN(fd_, DialWithRetry(host_, port_, options_));
  // Drop any half-received frame bytes, keeping the configured payload cap
  // (a default-constructed decoder would silently shrink it back).
  decoder_ = FrameDecoder(options_.max_frame_payload);
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireResponse> Client::Execute(const Command& cmd) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string frame = EncodeFrame(FrameType::kCommand, EncodeCommand(cmd));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Status s = Status::IoError(
          StrCat("send: ", n < 0 ? std::strerror(errno) : "connection lost"));
      Close();
      return s;
    }
    off += static_cast<size_t>(n);
  }
  char buf[64 << 10];
  while (true) {
    Result<std::optional<WireFrame>> next = decoder_.Next();
    if (!next.ok()) {
      Close();
      return next.status();
    }
    if (next->has_value()) {
      if ((*next)->type != FrameType::kResponse) {
        Close();
        return Status::InvalidArgument(
            "protocol: expected a response frame");
      }
      return DecodeResponse((*next)->payload);
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IoError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IoError(StrCat("recv: ", std::strerror(errno)));
      Close();
      return s;
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Status Client::Ping() {
  GLUENAIL_ASSIGN_OR_RETURN(WireResponse r, Execute(Command::Ping()));
  if (!r.ok()) return r.status;
  if (r.text != "pong") {
    return Status::Internal(StrCat("ping answered '", r.text, "'"));
  }
  return Status::OK();
}

}  // namespace gluenail
