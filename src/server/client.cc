#include "src/server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/strings.h"

namespace gluenail {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &res);
  if (rc != 0) {
    return Status::IoError(
        StrCat("resolve ", host, ": ", ::gai_strerror(rc)));
  }
  int fd = -1;
  Status last = Status::IoError(StrCat("no usable address for ", host));
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(StrCat("socket(): ", std::strerror(errno)));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::IoError(StrCat("connect ", host, ":", port, ": ",
                                  std::strerror(errno)));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) return last;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireResponse> Client::Execute(const Command& cmd) {
  if (fd_ < 0) return Status::InvalidArgument("client is not connected");
  std::string frame = EncodeFrame(FrameType::kCommand, EncodeCommand(cmd));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Status s = Status::IoError(
          StrCat("send: ", n < 0 ? std::strerror(errno) : "connection lost"));
      Close();
      return s;
    }
    off += static_cast<size_t>(n);
  }
  char buf[64 << 10];
  while (true) {
    Result<std::optional<WireFrame>> next = decoder_.Next();
    if (!next.ok()) {
      Close();
      return next.status();
    }
    if (next->has_value()) {
      if ((*next)->type != FrameType::kResponse) {
        Close();
        return Status::InvalidArgument(
            "protocol: expected a response frame");
      }
      return DecodeResponse((*next)->payload);
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::IoError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::IoError(StrCat("recv: ", std::strerror(errno)));
      Close();
      return s;
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Status Client::Ping() {
  GLUENAIL_ASSIGN_OR_RETURN(WireResponse r, Execute(Command::Ping()));
  if (!r.ok()) return r.status;
  if (r.text != "pong") {
    return Status::Internal(StrCat("ping answered '", r.text, "'"));
  }
  return Status::OK();
}

}  // namespace gluenail
