#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/common/strings.h"
#include "src/server/replication.h"

namespace gluenail {

namespace {

/// Creates a listening TCP socket on \p port (0 = ephemeral); returns the
/// fd and writes the actual port to \p bound_port.
Result<int> BindListen(uint16_t port, int backlog, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrCat("socket(): ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IoError(
        StrCat("bind(port ", port, "): ", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = Status::IoError(StrCat("listen(): ", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

/// Writes all of \p data; false on a broken connection. MSG_NOSIGNAL so a
/// client that hung up surfaces as EPIPE, not a process-killing SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  return StrCat("HTTP/1.0 ", code, " ", reason,
                "\r\nContent-Type: ", content_type,
                "\r\nContent-Length: ", body.size(),
                "\r\nConnection: close\r\n\r\n", body);
}

}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  GLUENAIL_ASSIGN_OR_RETURN(
      listen_fd_, BindListen(options_.port, options_.backlog, &port_));
  if (options_.admin_port >= 0) {
    Result<int> admin = BindListen(static_cast<uint16_t>(options_.admin_port),
                                   options_.backlog, &admin_port_);
    if (!admin.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return admin.status();
    }
    admin_fd_ = *admin;
  }
  // Mirror server activity into the engine's registry so the admin
  // /metrics surface covers the service layer too. Handles are owned by
  // the registry (safe past this Server's lifetime); intended deployment
  // is one Server per Engine.
  MetricsRegistry& reg = engine_->metrics();
  m_connections_ = reg.RegisterCounter(
      "gluenail_server_connections_total", "client connections accepted");
  m_commands_ = reg.RegisterCounter("gluenail_server_commands_total",
                                    "wire commands served");
  m_proto_errors_ =
      reg.RegisterCounter("gluenail_server_protocol_errors_total",
                          "connections dropped on framing/decode errors");
  m_live_ = reg.RegisterGauge("gluenail_server_connections_live",
                              "currently connected clients");
  m_rejected_ = reg.RegisterCounter(
      "gluenail_server_rejected_connections_total",
      "connections turned away by max_connections admission control");
  m_repl_subscribers_ = reg.RegisterGauge(
      "gluenail_repl_subscribers", "replicas currently streaming the WAL");
  m_repl_shipped_ =
      reg.RegisterCounter("gluenail_repl_records_shipped_total",
                          "WAL batch + snapshot records shipped to replicas");
  m_repl_snapshots_ = reg.RegisterCounter(
      "gluenail_repl_snapshots_shipped_total",
      "checkpoint images shipped to replicas that fell behind the log");
  m_repl_heartbeats_ =
      reg.RegisterCounter("gluenail_repl_heartbeats_total",
                          "heartbeat frames sent to caught-up replicas");
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (admin_fd_ >= 0) {
    admin_thread_ = std::thread([this] { AdminLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Not started or already stopped; still join any leftover threads.
    if (accept_thread_.joinable()) accept_thread_.join();
    if (admin_thread_.joinable()) admin_thread_.join();
    return;
  }
  // shutdown(2) unblocks accept(2) in both loops; the fds are closed only
  // after the loops joined, so no loop ever races a reused descriptor.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (admin_fd_ >= 0) ::shutdown(admin_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (admin_thread_.joinable()) admin_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (admin_fd_ >= 0) {
    ::close(admin_fd_);
    admin_fd_ = -1;
  }
  // Drain the workers: shutting down a connection's read side makes its
  // next recv() return 0, so each worker finishes the command it is
  // executing (response included), then exits; join waits for that.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RD);
  }
  for (auto& conn : conns) {
    if (conn->worker.joinable()) conn->worker.join();
    ::close(conn->fd);
  }
}

void Server::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->worker.joinable()) (*it)->worker.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed (Stop) or fatal
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      ReapFinishedLocked();
      if (options_.max_connections > 0 &&
          conns_.size() >= static_cast<size_t>(options_.max_connections)) {
        reject = true;
      } else {
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        m_connections_->Add(1);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        conn->worker = std::thread([this, raw] { ServeConnection(raw); });
        conns_.push_back(std::move(conn));
      }
    }
    if (!reject) continue;
    // Admission control: answer with a clean wire-level error (so the
    // client sees *why* instead of a bare RST) and close. The rejected
    // socket never gets a worker thread or a Session — and the courtesy
    // response is written on a throwaway thread, never on this one: a
    // peer that fills its receive window and stops reading would
    // otherwise park the accept loop inside send() (holding conns_mu_,
    // pre-fix), wedging every future connection behind one bad client.
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    m_rejected_->Add(1);
    std::string frame =
        EncodeFrame(FrameType::kResponse,
                    EncodeResponse(Response::Error(Status::ResourceExhausted(
                                       StrCat("server at max_connections=",
                                              options_.max_connections,
                                              "; retry later"))),
                                   engine_->terms()));
    std::thread([fd, frame = std::move(frame),
                 stall = options_.reject_send_stall_for_testing] {
      // Best effort, time-bounded: the peer was told to go away; if it
      // will not even read that, give up after 200ms.
      timeval tv{};
      tv.tv_usec = 200 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      if (stall) stall();
      SendAll(fd, frame);
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }).detach();
  }
}

void Server::ServeConnection(Connection* conn) {
  connections_live_.fetch_add(1, std::memory_order_relaxed);
  m_live_->Add(1);
  Session session = engine_->OpenSession();
  FrameDecoder decoder(options_.max_frame_payload);
  char buf[64 << 10];
  bool alive = true;
  while (alive) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed (or Stop shut the read side down)
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (alive) {
      Result<std::optional<WireFrame>> next = decoder.Next();
      if (!next.ok()) {
        // Framing is lost: answer with the error so the client can log
        // something meaningful, then drop the connection.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        m_proto_errors_->Add(1);
        SendAll(conn->fd,
                EncodeFrame(FrameType::kResponse,
                            EncodeResponse(Response::Error(next.status()),
                                           engine_->terms())));
        alive = false;
        break;
      }
      if (!next->has_value()) break;  // need more bytes
      if ((*next)->type == FrameType::kReplSubscribe) {
        // The connection changes roles: from here on it is a one-way
        // record stream driven by this worker until the replica hangs up
        // or the server stops.
        ServeReplicationSubscriber(conn, (*next)->payload);
        alive = false;
        break;
      }
      Response response;
      if ((*next)->type != FrameType::kCommand) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        m_proto_errors_->Add(1);
        response = Response::Error(Status::InvalidArgument(
            "protocol: expected a command frame"));
        alive = false;
      } else {
        Result<Command> cmd = DecodeCommand((*next)->payload);
        if (!cmd.ok()) {
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          m_proto_errors_->Add(1);
          response = Response::Error(cmd.status());
          alive = false;  // cannot trust the stream past a bad payload
        } else {
          response = session.Execute(*cmd);
          commands_served_.fetch_add(1, std::memory_order_relaxed);
          m_commands_->Add(1);
        }
      }
      if (!SendAll(conn->fd, EncodeFrame(FrameType::kResponse,
                                         EncodeResponse(response,
                                                        engine_->terms())))) {
        alive = false;
      }
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);  // fd itself is closed by reap/Stop
  connections_live_.fetch_sub(1, std::memory_order_relaxed);
  m_live_->Add(-1);
  conn->done.store(true, std::memory_order_release);
}

void Server::ServeReplicationSubscriber(Connection* conn,
                                        std::string_view subscribe_payload) {
  Result<uint64_t> from = DecodeReplSubscribe(subscribe_payload);
  Status refuse;
  if (!from.ok()) {
    refuse = from.status();
  } else if (engine_->replica()) {
    refuse = Status::FailedPrecondition(
        "this server is itself a replica; subscribe to the primary");
  } else if (engine_->wal() == nullptr) {
    refuse = Status::FailedPrecondition(
        "replication needs durability: this server has no WAL to ship");
  }
  if (!refuse.ok()) {
    SendAll(conn->fd,
            EncodeFrame(FrameType::kResponse,
                        EncodeResponse(Response::Error(refuse),
                                       engine_->terms())));
    return;
  }
  // A replica that stops reading must not pin this worker past Stop():
  // bound each send, and poll running_ between rounds.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  m_repl_subscribers_->Add(1);
  const Wal* wal = engine_->wal();
  uint64_t next_lsn = *from == 0 ? 1 : *from;
  uint64_t last_heartbeat = UINT64_MAX;  // forces one initial heartbeat
  bool ok = true;
  while (ok && running_.load(std::memory_order_acquire)) {
    Result<Wal::TailChunk> tail = wal->ReadRecordsFrom(next_lsn);
    if (!tail.ok()) break;
    if (next_lsn < tail->start_lsn) {
      // The log was rotated past the replica's position; ship the
      // checkpoint image the rotation folded that prefix into.
      Result<Engine::CheckpointImage> img = engine_->ReadCheckpointImage();
      if (!img.ok()) break;
      if (!SendAll(conn->fd,
                   EncodeFrame(FrameType::kReplRecord,
                               EncodeReplSnapshot(img->covers_lsn,
                                                  img->bytes)))) {
        break;
      }
      m_repl_snapshots_->Add(1);
      m_repl_shipped_->Add(1);
      next_lsn = img->covers_lsn + 1;
      continue;
    }
    bool progressed = false;
    for (const Wal::TailRecord& rec : tail->records) {
      if (!SendAll(conn->fd,
                   EncodeFrame(FrameType::kReplRecord,
                               EncodeReplBatch(rec.lsn, rec.payload)))) {
        ok = false;
        break;
      }
      m_repl_shipped_->Add(1);
      next_lsn = rec.lsn + 1;
      progressed = true;
    }
    if (!ok || progressed) continue;
    // Caught up: tell the replica how far the primary's durable
    // watermark is (it measures lag from this), then idle briefly.
    if (tail->durable_lsn != last_heartbeat) {
      if (!SendAll(conn->fd,
                   EncodeFrame(FrameType::kReplHeartbeat,
                               EncodeReplHeartbeat(tail->durable_lsn)))) {
        break;
      }
      m_repl_heartbeats_->Add(1);
      last_heartbeat = tail->durable_lsn;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  m_repl_subscribers_->Add(-1);
}

void Server::AdminLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(admin_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // Admin requests are tiny and the handlers are O(metrics dump);
    // serving them inline keeps the listener single-threaded and simple.
    ServeAdminConnection(fd);
    ::close(fd);
  }
}

void Server::ServeAdminConnection(int fd) {
  std::string request;
  char buf[4096];
  while (request.size() < (16u << 10) &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t eol = request.find_first_of("\r\n");
  std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  // "GET /path HTTP/1.x"
  if (line.size() < 5 || line.substr(0, 4) != "GET ") {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is served here\n"));
    return;
  }
  std::string target = line.substr(4);
  size_t space = target.find(' ');
  if (space != std::string::npos) target = target.substr(0, space);
  std::string path = target, query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  if (path == "/healthz") {
    std::string body = "ok\n";
    if (engine_->replica()) {
      // Replication lag at a glance, curl-able without a metrics scrape.
      const uint64_t applied = engine_->replica_applied_lsn();
      const uint64_t primary = engine_->replica_primary_lsn();
      body = StrCat("ok\nrole=replica\napplied_lsn=", applied,
                    "\nprimary_durable_lsn=", primary, "\nlag=",
                    primary > applied ? primary - applied : 0, "\n");
    }
    SendAll(fd, HttpResponse(200, "OK", "text/plain", body));
  } else if (path == "/metrics") {
    bool json = query.find("format=json") != std::string::npos;
    SendAll(fd, HttpResponse(
                    200, "OK",
                    json ? "application/json"
                         : "text/plain; version=0.0.4; charset=utf-8",
                    engine_->DumpMetrics(json ? MetricsFormat::kJson
                                              : MetricsFormat::kPrometheus)));
  } else if (path == "/slowlog") {
    SendAll(fd, HttpResponse(200, "OK", "text/plain",
                             engine_->slow_query_log().Render()));
  } else {
    SendAll(fd, HttpResponse(404, "Not Found", "text/plain",
                             StrCat("no route for ", path, "\n")));
  }
}

}  // namespace gluenail
