/// \file protocol.h
/// \brief The Glue-Nail wire protocol: checksummed length-prefixed frames
/// carrying encoded Commands and Responses.
///
/// Frame layout (all integers little-endian; see docs/PROTOCOL.md):
///
///     offset  size  field
///     0       4     magic "GNP1"
///     4       1     frame type (1 = command, 2 = response)
///     5       4     payload length N (u32)
///     9       8     FNV-1a 64 checksum of the payload bytes (u64)
///     17      N     payload
///
/// The checksum reuses the same FNV-1a discipline the v2 EDB file format
/// and MutationBatch use, so every byte the engine persists or ships is
/// integrity-checked the same way. The decoder validates magic, bounds
/// the declared length *before* allocating, and verifies the checksum
/// before handing the payload up — a torn, truncated, or bit-flipped
/// frame surfaces as a Status, never as a bad parse downstream.
///
/// Payload encodings are flat binary: u8/u32/u64 little-endian scalars
/// and u32-length-prefixed strings (ByteWriter/ByteReader). Query result
/// rows cross the wire as term *text* per cell (`f(a,1)`), because TermIds
/// are meaningless outside the pool that interned them.

#ifndef GLUENAIL_SERVER_PROTOCOL_H_
#define GLUENAIL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/command.h"
#include "src/common/result.h"

namespace gluenail {

// --- Framing -------------------------------------------------------------

enum class FrameType : uint8_t {
  kCommand = 1,
  kResponse = 2,
  // Log-shipping replication (src/server/replication.h). A replica opens a
  // plain protocol connection and sends one kReplSubscribe; the primary
  // answers with a one-way stream of kReplRecord / kReplHeartbeat frames.
  kReplSubscribe = 3,  ///< replica -> primary: {u8 version, u64 from_lsn}
  kReplRecord = 4,     ///< primary -> replica: a batch record or snapshot
  kReplHeartbeat = 5,  ///< primary -> replica: {u64 durable_lsn} keepalive
};

inline constexpr char kFrameMagic[4] = {'G', 'N', 'P', '1'};
inline constexpr size_t kFrameHeaderSize = 4 + 1 + 4 + 8;
/// Frames whose header declares a payload larger than this are rejected
/// before any allocation happens (a malicious or corrupt 4-byte length
/// must not become a multi-gigabyte resize).
inline constexpr size_t kDefaultMaxPayload = 64u << 20;  // 64 MiB

struct WireFrame {
  FrameType type;
  std::string payload;
};

/// Wraps \p payload in a checksummed frame.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame parser for a byte stream. Feed() arbitrary chunks
/// (as they arrive from a socket); Next() yields completed frames,
/// std::nullopt when more bytes are needed, or an error for an
/// unrecoverable stream (bad magic, oversized length, bad checksum) —
/// after an error the connection must be dropped, since frame boundaries
/// are lost.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view bytes) { buf_.append(bytes.data(), bytes.size()); }

  Result<std::optional<WireFrame>> Next();

  /// Bytes buffered but not yet consumed by a completed frame.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

// --- Payload scalar/string encoding --------------------------------------

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u32 length + raw bytes.
  void PutString(std::string_view s);

  std::string Take() { return std::move(out_); }
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

/// Bounds-checked reader over one payload; every getter fails (rather
/// than reading past the end) on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();

  bool exhausted() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- Command / Response payloads -----------------------------------------

/// A Response as decoded on the *client* side of the wire: rows come back
/// as term text per cell (the server's TermIds do not survive the trip).
struct WireResponse {
  Status status;
  std::vector<std::string> vars;
  std::vector<std::vector<std::string>> rows;
  std::string text;
  uint64_t applied = 0;
  uint64_t inserted = 0;
  uint64_t erased = 0;

  bool ok() const { return status.ok(); }
};

std::string EncodeCommand(const Command& cmd);
Result<Command> DecodeCommand(std::string_view payload);

/// \p pool renders the response's Tuples to term text (the serving
/// engine's pool).
std::string EncodeResponse(const Response& response, const TermPool& pool);
Result<WireResponse> DecodeResponse(std::string_view payload);

}  // namespace gluenail

#endif  // GLUENAIL_SERVER_PROTOCOL_H_
