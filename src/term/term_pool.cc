#include "src/term/term_pool.h"

#include <cassert>
#include <cstring>

namespace gluenail {

namespace {
constexpr size_t kArenaChunkTerms = 4096;
}  // namespace

TermId TermPool::AddTerm(TermTag tag, uint32_t payload) {
  TermId id = static_cast<TermId>(tags_.size());
  tags_.push_back(tag);
  payload_.push_back(payload);
  return id;
}

TermId TermPool::MakeInt(int64_t value) {
  auto it = int_map_.find(value);
  if (it != int_map_.end()) return it->second;
  uint32_t payload = static_cast<uint32_t>(ints_.size());
  ints_.push_back(value);
  TermId id = AddTerm(TermTag::kInt, payload);
  int_map_.emplace(value, id);
  return id;
}

TermId TermPool::MakeFloat(double value) {
  auto it = float_map_.find(value);
  if (it != float_map_.end()) return it->second;
  uint32_t payload = static_cast<uint32_t>(floats_.size());
  floats_.push_back(value);
  TermId id = AddTerm(TermTag::kFloat, payload);
  float_map_.emplace(value, id);
  return id;
}

TermId TermPool::MakeSymbol(std::string_view name) {
  auto it = symbol_map_.find(name);
  if (it != symbol_map_.end()) return it->second;
  uint32_t payload = static_cast<uint32_t>(symbols_.size());
  symbols_.emplace_back(name);
  TermId id = AddTerm(TermTag::kSymbol, payload);
  symbol_map_.emplace(symbols_.back(), id);
  return id;
}

const TermId* TermPool::InternArgs(std::span<const TermId> args) {
  if (arg_arena_.empty() ||
      arg_arena_.back().size() + args.size() > arg_arena_.back().capacity()) {
    arg_arena_.emplace_back();
    arg_arena_.back().reserve(std::max(kArenaChunkTerms, args.size()));
  }
  std::vector<TermId>& chunk = arg_arena_.back();
  const TermId* out = chunk.data() + chunk.size();
  chunk.insert(chunk.end(), args.begin(), args.end());
  return out;
}

TermId TermPool::MakeCompound(TermId functor, std::span<const TermId> args) {
  assert(!args.empty() && "a compound term needs at least one argument");
  CompoundKey probe{functor, args};
  auto it = compound_map_.find(probe);
  if (it != compound_map_.end()) return it->second;
  const TermId* stable = InternArgs(args);
  uint32_t payload = static_cast<uint32_t>(compounds_.size());
  compounds_.push_back(
      CompoundRec{functor, stable, static_cast<uint32_t>(args.size())});
  TermId id = AddTerm(TermTag::kCompound, payload);
  compound_map_.emplace(CompoundKey{functor, {stable, args.size()}}, id);
  return id;
}

TermId TermPool::MakeCompound(std::string_view functor,
                              std::span<const TermId> args) {
  return MakeCompound(MakeSymbol(functor), args);
}

int TermPool::Compare(TermId a, TermId b) const {
  if (a == b) return 0;
  auto rank = [](TermTag t) {
    // Numbers sort together regardless of int/float tag.
    switch (t) {
      case TermTag::kInt:
      case TermTag::kFloat:
        return 0;
      case TermTag::kSymbol:
        return 1;
      case TermTag::kCompound:
        return 2;
    }
    return 3;
  };
  int ra = rank(tag(a)), rb = rank(tag(b));
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0: {
      double va = NumericValue(a), vb = NumericValue(b);
      if (va < vb) return -1;
      if (va > vb) return 1;
      // Same numeric value: int sorts before float (e.g. 1 < 1.0).
      int ta = IsFloat(a) ? 1 : 0, tb = IsFloat(b) ? 1 : 0;
      return ta - tb;
    }
    case 1: {
      int c = SymbolName(a).compare(SymbolName(b));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      size_t aa = Arity(a), ab = Arity(b);
      if (aa != ab) return aa < ab ? -1 : 1;
      int c = Compare(Functor(a), Functor(b));
      if (c != 0) return c;
      std::span<const TermId> xa = Args(a), xb = Args(b);
      for (size_t i = 0; i < aa; ++i) {
        c = Compare(xa[i], xb[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
}

}  // namespace gluenail
