#include "src/term/term_pool.h"

#include <cassert>
#include <cstring>

namespace gluenail {

namespace {
constexpr size_t kArenaChunkTerms = 4096;
}  // namespace

size_t TermPool::ShardOfFloat(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return static_cast<size_t>(HashCombine(0xc2b2ae3d27d4eb4fULL, bits)) %
         kNumShards;
}

TermId TermPool::AddTermLocked(TermTag tag, uint32_t payload) {
  return static_cast<TermId>(terms_.Append(TermRec{tag, payload}));
}

TermId TermPool::MakeInt(int64_t value) {
  auto& shard = int_shards_[ShardOfInt(value)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(value);
    if (it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(value);
  if (it != shard.map.end()) return it->second;
  TermId id;
  {
    std::lock_guard<std::mutex> append(append_mu_);
    uint32_t payload = static_cast<uint32_t>(ints_.Append(value));
    id = AddTermLocked(TermTag::kInt, payload);
  }
  shard.map.emplace(value, id);
  return id;
}

TermId TermPool::MakeFloat(double value) {
  auto& shard = float_shards_[ShardOfFloat(value)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(value);
    if (it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(value);
  if (it != shard.map.end()) return it->second;
  TermId id;
  {
    std::lock_guard<std::mutex> append(append_mu_);
    uint32_t payload = static_cast<uint32_t>(floats_.Append(value));
    id = AddTermLocked(TermTag::kFloat, payload);
  }
  shard.map.emplace(value, id);
  return id;
}

TermId TermPool::MakeSymbol(std::string_view name) {
  auto& shard = symbol_shards_[ShardOfString(name)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(name);
    if (it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(name);
  if (it != shard.map.end()) return it->second;
  TermId id;
  std::string_view stable;
  {
    std::lock_guard<std::mutex> append(append_mu_);
    uint32_t payload =
        static_cast<uint32_t>(symbols_.Append(std::string(name)));
    stable = symbols_[payload];
    id = AddTermLocked(TermTag::kSymbol, payload);
  }
  shard.map.emplace(stable, id);
  return id;
}

const TermId* TermPool::InternArgsLocked(std::span<const TermId> args) {
  if (arg_arena_.empty() ||
      arg_arena_.back().size() + args.size() > arg_arena_.back().capacity()) {
    arg_arena_.emplace_back();
    arg_arena_.back().reserve(std::max(kArenaChunkTerms, args.size()));
  }
  std::vector<TermId>& chunk = arg_arena_.back();
  const TermId* out = chunk.data() + chunk.size();
  chunk.insert(chunk.end(), args.begin(), args.end());
  return out;
}

TermId TermPool::MakeCompound(TermId functor, std::span<const TermId> args) {
  assert(!args.empty() && "a compound term needs at least one argument");
  CompoundKey probe{functor, args};
  auto& shard = compound_shards_[ShardOfCompound(probe)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(probe);
    if (it != shard.map.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(probe);
  if (it != shard.map.end()) return it->second;
  TermId id;
  const TermId* stable;
  {
    std::lock_guard<std::mutex> append(append_mu_);
    stable = InternArgsLocked(args);
    uint32_t payload = static_cast<uint32_t>(compounds_.Append(
        CompoundRec{functor, stable, static_cast<uint32_t>(args.size())}));
    id = AddTermLocked(TermTag::kCompound, payload);
  }
  shard.map.emplace(CompoundKey{functor, {stable, args.size()}}, id);
  return id;
}

TermId TermPool::MakeCompound(std::string_view functor,
                              std::span<const TermId> args) {
  return MakeCompound(MakeSymbol(functor), args);
}

int TermPool::Compare(TermId a, TermId b) const {
  if (a == b) return 0;
  auto rank = [](TermTag t) {
    // Numbers sort together regardless of int/float tag.
    switch (t) {
      case TermTag::kInt:
      case TermTag::kFloat:
        return 0;
      case TermTag::kSymbol:
        return 1;
      case TermTag::kCompound:
        return 2;
    }
    return 3;
  };
  int ra = rank(tag(a)), rb = rank(tag(b));
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0: {
      double va = NumericValue(a), vb = NumericValue(b);
      if (va < vb) return -1;
      if (va > vb) return 1;
      // Same numeric value: int sorts before float (e.g. 1 < 1.0).
      int ta = IsFloat(a) ? 1 : 0, tb = IsFloat(b) ? 1 : 0;
      return ta - tb;
    }
    case 1: {
      int c = SymbolName(a).compare(SymbolName(b));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      size_t aa = Arity(a), ab = Arity(b);
      if (aa != ab) return aa < ab ? -1 : 1;
      int c = Compare(Functor(a), Functor(b));
      if (c != 0) return c;
      std::span<const TermId> xa = Args(a), xb = Args(b);
      for (size_t i = 0; i < aa; ++i) {
        c = Compare(xa[i], xb[i]);
        if (c != 0) return c;
      }
      return 0;
    }
  }
}

}  // namespace gluenail
