/// \file term_pool.h
/// \brief Hash-consed storage for ground HiLog terms.
///
/// Glue-Nail relations contain only completely ground tuples (paper §2), so
/// every term a program ever touches is a ground term and can be interned.
/// The pool hash-conses terms: each structurally distinct term receives
/// exactly one TermId, making term equality a single integer comparison and
/// making HiLog set-name equality (paper §5.1: "a simple string-string
/// matching suffices") literally a word compare.
///
/// Following HiLog, a compound term's functor is itself an arbitrary term,
/// not just an atom: `students(cs99)` is a compound whose functor is the
/// symbol `students`, and it can in turn be the functor of
/// `students(cs99)(wilson)` or serve as a predicate *name*.
///
/// Per the paper (§2) there is no distinction between atoms and strings:
/// both are interned symbols.

#ifndef GLUENAIL_TERM_TERM_POOL_H_
#define GLUENAIL_TERM_TERM_POOL_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/chunked_vector.h"
#include "src/common/strings.h"

namespace gluenail {

/// \brief Identifier of an interned term. Equality of ids is equality of
/// terms within one pool.
using TermId = uint32_t;

/// Sentinel for "no term" (e.g. an unbound slot in a binding record).
inline constexpr TermId kNullTerm = 0xffffffffu;

/// \brief Discriminator for the four kinds of ground terms.
enum class TermTag : uint8_t {
  kInt = 0,
  kFloat = 1,
  /// An atom or string; the paper treats the two identically (§2).
  kSymbol = 2,
  /// functor(args...) where the functor is itself any term (HiLog, §5).
  kCompound = 3,
};

/// \brief Arena of interned ground terms.
///
/// Thread-safe: any number of threads may intern and read concurrently.
/// Accessors (tag, IntValue, SymbolName, Args, Compare, ToString, ...) are
/// wait-free — term records live in chunked storage that never moves, so a
/// TermId published to a thread can be dereferenced without locking.
/// Interning takes a shared lock on one of kNumShards hash shards for the
/// fast (already-interned) path and an exclusive shard lock plus a single
/// pool-wide append mutex for the slow (first-occurrence) path.
/// TermIds are only meaningful relative to the pool that produced them.
class TermPool {
 public:
  TermPool() = default;
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  /// Interns an integer term.
  TermId MakeInt(int64_t value);
  /// Interns a floating-point term.
  TermId MakeFloat(double value);
  /// Interns a symbol (atom/string).
  TermId MakeSymbol(std::string_view name);
  /// Interns a compound term with an arbitrary functor term (HiLog).
  /// \p args must be non-empty; a zero-argument "compound" is its functor.
  TermId MakeCompound(TermId functor, std::span<const TermId> args);
  /// Convenience: compound with a symbol functor.
  TermId MakeCompound(std::string_view functor, std::span<const TermId> args);

  TermTag tag(TermId id) const { return terms_[id].tag; }
  bool IsInt(TermId id) const { return tag(id) == TermTag::kInt; }
  bool IsFloat(TermId id) const { return tag(id) == TermTag::kFloat; }
  bool IsSymbol(TermId id) const { return tag(id) == TermTag::kSymbol; }
  bool IsCompound(TermId id) const { return tag(id) == TermTag::kCompound; }
  bool IsNumber(TermId id) const { return IsInt(id) || IsFloat(id); }

  /// Value accessors. Preconditions: the term has the matching tag.
  int64_t IntValue(TermId id) const { return ints_[terms_[id].payload]; }
  double FloatValue(TermId id) const { return floats_[terms_[id].payload]; }
  /// Numeric value of an int or float term, widened to double.
  double NumericValue(TermId id) const {
    return IsInt(id) ? static_cast<double>(IntValue(id)) : FloatValue(id);
  }
  std::string_view SymbolName(TermId id) const {
    return symbols_[terms_[id].payload];
  }
  /// Functor of a compound term.
  TermId Functor(TermId id) const {
    return compounds_[terms_[id].payload].functor;
  }
  /// Arguments of a compound term.
  std::span<const TermId> Args(TermId id) const {
    const CompoundRec& rec = compounds_[terms_[id].payload];
    return {rec.args, rec.arity};
  }
  /// Number of arguments; 0 for non-compound terms.
  size_t Arity(TermId id) const {
    return IsCompound(id) ? compounds_[terms_[id].payload].arity : 0;
  }

  /// Total order over all terms in this pool, used by min/max aggregation
  /// over non-numeric data, by `arbitrary` (smallest term, for determinism)
  /// and by the EDB persistence writer for canonical output.
  /// Order: numbers (by value; int before float on ties) < symbols
  /// (lexicographic) < compounds (arity, then functor, then args).
  /// Returns <0, 0, >0.
  int Compare(TermId a, TermId b) const;

  /// Number of distinct interned terms.
  size_t size() const { return terms_.size(); }

  /// Renders the term in source syntax (see term_printer.cc).
  std::string ToString(TermId id) const;
  /// Appends the source rendering of \p id to \p out.
  void AppendTerm(TermId id, std::string* out) const;

 private:
  /// Tag + index into the per-kind payload vector, stored together so the
  /// hot accessors do a single chunked-vector read.
  struct TermRec {
    TermTag tag = TermTag::kInt;
    uint32_t payload = 0;
  };

  struct CompoundRec {
    TermId functor = kNullTerm;
    /// Points into arg_arena_ chunks, whose storage is never reallocated.
    const TermId* args = nullptr;
    uint32_t arity = 0;
  };

  struct CompoundKey {
    TermId functor;
    std::span<const TermId> args;
  };
  struct CompoundKeyHash {
    size_t operator()(const CompoundKey& k) const {
      uint64_t h = HashCombine(0x9e3779b97f4a7c15ULL, k.functor);
      for (TermId a : k.args) h = HashCombine(h, a);
      return static_cast<size_t>(h);
    }
  };
  struct CompoundKeyEq {
    bool operator()(const CompoundKey& a, const CompoundKey& b) const {
      if (a.functor != b.functor || a.args.size() != b.args.size())
        return false;
      for (size_t i = 0; i < a.args.size(); ++i)
        if (a.args[i] != b.args[i]) return false;
      return true;
    }
  };

  struct StringViewHash {
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(Fnv1a64(s.data(), s.size()));
    }
  };

  /// One interning shard: a shared_mutex over one hash map. Writers hold
  /// the shard lock exclusively while (briefly) taking append_mu_; the
  /// shard lock is always acquired before append_mu_, never the reverse.
  template <typename Map>
  struct Shard {
    mutable std::shared_mutex mu;
    Map map;
  };

  static constexpr size_t kNumShards = 16;

  static size_t ShardOfInt(int64_t v) {
    return static_cast<size_t>(HashCombine(0x51ed270b0741d1abULL,
                                           static_cast<uint64_t>(v))) %
           kNumShards;
  }
  static size_t ShardOfFloat(double v);
  static size_t ShardOfString(std::string_view s) {
    return static_cast<size_t>(Fnv1a64(s.data(), s.size())) % kNumShards;
  }
  static size_t ShardOfCompound(const CompoundKey& k) {
    return CompoundKeyHash{}(k) % kNumShards;
  }

  /// Appends the term record; caller holds append_mu_.
  TermId AddTermLocked(TermTag tag, uint32_t payload);
  /// Copies \p args into the stable arena; caller holds append_mu_.
  const TermId* InternArgsLocked(std::span<const TermId> args);

  /// Immutable-once-published term storage, readable without locks.
  ChunkedVector<TermRec> terms_;
  ChunkedVector<int64_t> ints_;
  ChunkedVector<double> floats_;
  ChunkedVector<std::string> symbols_;
  ChunkedVector<CompoundRec> compounds_;

  /// Serializes all appends (terms_, payload vectors, arg_arena_) so ids
  /// and payload indexes stay consistent across kinds.
  std::mutex append_mu_;
  /// Chunked arena: chunks never move once allocated, so CompoundRec::args
  /// and the spans inside compound-shard keys stay valid forever. Guarded
  /// by append_mu_ (the outer vector may reallocate, but only the spine —
  /// published chunk storage is stable and read without locks).
  std::vector<std::vector<TermId>> arg_arena_;

  std::array<Shard<std::unordered_map<int64_t, TermId>>, kNumShards>
      int_shards_;
  std::array<Shard<std::unordered_map<double, TermId>>, kNumShards>
      float_shards_;
  /// Keys are views into symbols_ storage, which never moves.
  std::array<
      Shard<std::unordered_map<std::string_view, TermId, StringViewHash>>,
      kNumShards>
      symbol_shards_;
  std::array<Shard<std::unordered_map<CompoundKey, TermId, CompoundKeyHash,
                                      CompoundKeyEq>>,
             kNumShards>
      compound_shards_;
};

}  // namespace gluenail

#endif  // GLUENAIL_TERM_TERM_POOL_H_
