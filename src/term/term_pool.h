/// \file term_pool.h
/// \brief Hash-consed storage for ground HiLog terms.
///
/// Glue-Nail relations contain only completely ground tuples (paper §2), so
/// every term a program ever touches is a ground term and can be interned.
/// The pool hash-conses terms: each structurally distinct term receives
/// exactly one TermId, making term equality a single integer comparison and
/// making HiLog set-name equality (paper §5.1: "a simple string-string
/// matching suffices") literally a word compare.
///
/// Following HiLog, a compound term's functor is itself an arbitrary term,
/// not just an atom: `students(cs99)` is a compound whose functor is the
/// symbol `students`, and it can in turn be the functor of
/// `students(cs99)(wilson)` or serve as a predicate *name*.
///
/// Per the paper (§2) there is no distinction between atoms and strings:
/// both are interned symbols.

#ifndef GLUENAIL_TERM_TERM_POOL_H_
#define GLUENAIL_TERM_TERM_POOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/strings.h"

namespace gluenail {

/// \brief Identifier of an interned term. Equality of ids is equality of
/// terms within one pool.
using TermId = uint32_t;

/// Sentinel for "no term" (e.g. an unbound slot in a binding record).
inline constexpr TermId kNullTerm = 0xffffffffu;

/// \brief Discriminator for the four kinds of ground terms.
enum class TermTag : uint8_t {
  kInt = 0,
  kFloat = 1,
  /// An atom or string; the paper treats the two identically (§2).
  kSymbol = 2,
  /// functor(args...) where the functor is itself any term (HiLog, §5).
  kCompound = 3,
};

/// \brief Arena of interned ground terms.
///
/// Not thread-safe; each Engine owns one pool. TermIds are only meaningful
/// relative to the pool that produced them.
class TermPool {
 public:
  TermPool() = default;
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  /// Interns an integer term.
  TermId MakeInt(int64_t value);
  /// Interns a floating-point term.
  TermId MakeFloat(double value);
  /// Interns a symbol (atom/string).
  TermId MakeSymbol(std::string_view name);
  /// Interns a compound term with an arbitrary functor term (HiLog).
  /// \p args must be non-empty; a zero-argument "compound" is its functor.
  TermId MakeCompound(TermId functor, std::span<const TermId> args);
  /// Convenience: compound with a symbol functor.
  TermId MakeCompound(std::string_view functor, std::span<const TermId> args);

  TermTag tag(TermId id) const { return tags_[id]; }
  bool IsInt(TermId id) const { return tag(id) == TermTag::kInt; }
  bool IsFloat(TermId id) const { return tag(id) == TermTag::kFloat; }
  bool IsSymbol(TermId id) const { return tag(id) == TermTag::kSymbol; }
  bool IsCompound(TermId id) const { return tag(id) == TermTag::kCompound; }
  bool IsNumber(TermId id) const { return IsInt(id) || IsFloat(id); }

  /// Value accessors. Preconditions: the term has the matching tag.
  int64_t IntValue(TermId id) const { return ints_[payload_[id]]; }
  double FloatValue(TermId id) const { return floats_[payload_[id]]; }
  /// Numeric value of an int or float term, widened to double.
  double NumericValue(TermId id) const {
    return IsInt(id) ? static_cast<double>(IntValue(id)) : FloatValue(id);
  }
  std::string_view SymbolName(TermId id) const {
    return symbols_[payload_[id]];
  }
  /// Functor of a compound term.
  TermId Functor(TermId id) const { return compounds_[payload_[id]].functor; }
  /// Arguments of a compound term.
  std::span<const TermId> Args(TermId id) const {
    const CompoundRec& rec = compounds_[payload_[id]];
    return {rec.args, rec.arity};
  }
  /// Number of arguments; 0 for non-compound terms.
  size_t Arity(TermId id) const {
    return IsCompound(id) ? compounds_[payload_[id]].arity : 0;
  }

  /// Total order over all terms in this pool, used by min/max aggregation
  /// over non-numeric data, by `arbitrary` (smallest term, for determinism)
  /// and by the EDB persistence writer for canonical output.
  /// Order: numbers (by value; int before float on ties) < symbols
  /// (lexicographic) < compounds (arity, then functor, then args).
  /// Returns <0, 0, >0.
  int Compare(TermId a, TermId b) const;

  /// Number of distinct interned terms.
  size_t size() const { return tags_.size(); }

  /// Renders the term in source syntax (see term_printer.cc).
  std::string ToString(TermId id) const;
  /// Appends the source rendering of \p id to \p out.
  void AppendTerm(TermId id, std::string* out) const;

 private:
  struct CompoundRec {
    TermId functor;
    /// Points into arg_arena_ chunks, whose storage is never reallocated.
    const TermId* args;
    uint32_t arity;
  };

  struct CompoundKey {
    TermId functor;
    std::span<const TermId> args;
  };
  struct CompoundKeyHash {
    size_t operator()(const CompoundKey& k) const {
      uint64_t h = HashCombine(0x9e3779b97f4a7c15ULL, k.functor);
      for (TermId a : k.args) h = HashCombine(h, a);
      return static_cast<size_t>(h);
    }
  };
  struct CompoundKeyEq {
    bool operator()(const CompoundKey& a, const CompoundKey& b) const {
      if (a.functor != b.functor || a.args.size() != b.args.size())
        return false;
      for (size_t i = 0; i < a.args.size(); ++i)
        if (a.args[i] != b.args[i]) return false;
      return true;
    }
  };

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(Fnv1a64(s.data(), s.size()));
    }
    size_t operator()(const std::string& s) const {
      return operator()(std::string_view(s));
    }
  };
  struct StringEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  TermId AddTerm(TermTag tag, uint32_t payload);
  /// Copies \p args into the stable arena and returns the persistent slice.
  const TermId* InternArgs(std::span<const TermId> args);

  std::vector<TermTag> tags_;
  std::vector<uint32_t> payload_;

  std::vector<int64_t> ints_;
  std::unordered_map<int64_t, TermId> int_map_;

  std::vector<double> floats_;
  std::unordered_map<double, TermId> float_map_;

  std::vector<std::string> symbols_;
  std::unordered_map<std::string, TermId, StringHash, StringEq> symbol_map_;

  std::vector<CompoundRec> compounds_;
  /// Chunked arena: chunks never move once allocated, so CompoundRec::args
  /// and the spans inside compound_map_ keys stay valid forever.
  std::vector<std::vector<TermId>> arg_arena_;
  std::unordered_map<CompoundKey, TermId, CompoundKeyHash, CompoundKeyEq>
      compound_map_;
};

}  // namespace gluenail

#endif  // GLUENAIL_TERM_TERM_POOL_H_
