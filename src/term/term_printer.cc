/// \file term_printer.cc
/// \brief Renders interned terms back into source syntax.
///
/// The output is re-parseable by the Glue parser and is used by the
/// persistence writer, by `write`/`writeln`, and by error messages.

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/common/strings.h"
#include "src/term/term_pool.h"

namespace gluenail {

namespace {

/// A symbol prints unquoted iff it is a plain lowercase identifier
/// (the lexer would read it back as one token).
bool IsPlainIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::islower(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

void AppendFloat(double v, std::string* out) {
  char buf[64];
  // %.17g round-trips doubles exactly.
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string_view sv(buf, static_cast<size_t>(n));
  out->append(sv);
  // Keep floats lexically distinct from ints so the value re-parses as a
  // float (e.g. "1" vs "1.0").
  if (sv.find('.') == std::string_view::npos &&
      sv.find('e') == std::string_view::npos &&
      sv.find("inf") == std::string_view::npos &&
      sv.find("nan") == std::string_view::npos) {
    out->append(".0");
  }
}

}  // namespace

void TermPool::AppendTerm(TermId id, std::string* out) const {
  switch (tag(id)) {
    case TermTag::kInt:
      out->append(std::to_string(IntValue(id)));
      return;
    case TermTag::kFloat:
      AppendFloat(FloatValue(id), out);
      return;
    case TermTag::kSymbol: {
      std::string_view name = SymbolName(id);
      if (IsPlainIdentifier(name)) {
        out->append(name);
      } else {
        out->push_back('\'');
        out->append(EscapeQuoted(name));
        out->push_back('\'');
      }
      return;
    }
    case TermTag::kCompound: {
      TermId f = Functor(id);
      // HiLog functors that are themselves non-atomic print parenthesized,
      // e.g. (1)(a); compound functors print naturally: tas(cs99)(jones).
      bool paren = IsInt(f) || IsFloat(f);
      if (paren) out->push_back('(');
      AppendTerm(f, out);
      if (paren) out->push_back(')');
      out->push_back('(');
      std::span<const TermId> args = Args(id);
      for (size_t i = 0; i < args.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendTerm(args[i], out);
      }
      out->push_back(')');
      return;
    }
  }
}

std::string TermPool::ToString(TermId id) const {
  std::string out;
  AppendTerm(id, &out);
  return out;
}

}  // namespace gluenail
