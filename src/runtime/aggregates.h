/// \file aggregates.h
/// \brief The aggregate operators of paper §3.3:
/// min, max, mean, sum, product, arbitrary, std_dev, count.
///
/// Semantics (paper §3.3): an aggregator operates over the *supplementary
/// relation* — one contribution per supplementary tuple — never over a
/// projection, so duplicated values that arise from distinct bindings are
/// counted as many times as they occur. `arbitrary` must pick some element;
/// we pick the smallest in the pool's total term order so runs are
/// deterministic and testable.

#ifndef GLUENAIL_RUNTIME_AGGREGATES_H_
#define GLUENAIL_RUNTIME_AGGREGATES_H_

#include <optional>
#include <string_view>

#include "src/common/result.h"
#include "src/term/term_pool.h"

namespace gluenail {

enum class AggKind : uint8_t {
  kMin,
  kMax,
  kMean,
  kSum,
  kProduct,
  kArbitrary,
  kStdDev,
  kCount,
};

/// Maps a functor name ("min", "std_dev", ...) to its kind; nullopt if the
/// name is not an aggregate operator.
std::optional<AggKind> AggKindFromName(std::string_view name);
std::string_view AggKindName(AggKind kind);

/// \brief Streaming accumulator for one aggregate over one group.
///
/// Feed one value per supplementary tuple, then call Finish. Numeric
/// aggregates (mean, sum, product, std_dev) require numeric inputs;
/// min/max/arbitrary accept any term (total term order); count accepts
/// anything.
class Aggregator {
 public:
  Aggregator(AggKind kind, const TermPool* pool)
      : kind_(kind), pool_(pool) {}

  Status Add(TermId value);

  /// Result over the values fed so far. Aggregating an empty group is a
  /// runtime error for every operator except count (which yields 0):
  /// min/max/mean/... of nothing has no value. (In statement execution the
  /// situation cannot arise: an empty supplementary relation stops the
  /// statement before the aggregator runs, §3.2.)
  Result<TermId> Finish(TermPool* pool) const;

  size_t count() const { return count_; }

 private:
  AggKind kind_;
  const TermPool* pool_;
  size_t count_ = 0;
  TermId best_ = kNullTerm;      // min/max/arbitrary
  double sum_ = 0;               // mean/sum/std_dev
  double sum_sq_ = 0;            // std_dev
  double product_ = 1;           // product
  bool all_int_ = true;          // sum/product stay int when inputs are
  int64_t int_sum_ = 0;
  int64_t int_product_ = 1;
};

}  // namespace gluenail

#endif  // GLUENAIL_RUNTIME_AGGREGATES_H_
