/// \file string_builtins.h
/// \brief The string operators of paper §2: "the language has built-in
/// operators (concatenation, length, and substring)".
///
/// These are expression functors, usable wherever arithmetic is:
///   Full = concat(First, Last)
///   N = length(Name)
///   Prefix = substring(Name, 0, 3)
/// `concat` accepts numbers too (they render in source syntax), which makes
/// message formatting for `write` pleasant.

#ifndef GLUENAIL_RUNTIME_STRING_BUILTINS_H_
#define GLUENAIL_RUNTIME_STRING_BUILTINS_H_

#include "src/common/result.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// Returns true if \p functor names a string builtin (concat, length,
/// substring) of the given arity.
bool IsStringBuiltin(std::string_view functor, size_t arity);

/// Evaluates a string builtin over ground arguments.
Result<TermId> EvalStringBuiltin(TermPool* pool, std::string_view functor,
                                 std::span<const TermId> args);

}  // namespace gluenail

#endif  // GLUENAIL_RUNTIME_STRING_BUILTINS_H_
