#include "src/runtime/io.h"

#include <string>

#include "src/storage/persistence.h"

namespace gluenail {

std::optional<BuiltinProcInfo> FindBuiltinProc(std::string_view name,
                                               uint32_t arity) {
  if (name == "write" && arity == 1) {
    return BuiltinProcInfo{BuiltinProc::kWrite, 1, 0, true};
  }
  if (name == "writeln" && arity == 1) {
    return BuiltinProcInfo{BuiltinProc::kWriteln, 1, 0, true};
  }
  if (name == "nl" && arity == 0) {
    return BuiltinProcInfo{BuiltinProc::kNl, 0, 0, true};
  }
  if (name == "read" && arity == 1) {
    return BuiltinProcInfo{BuiltinProc::kRead, 0, 1, true};
  }
  if (name == "read_line" && arity == 1) {
    return BuiltinProcInfo{BuiltinProc::kReadLine, 0, 1, true};
  }
  if (name == "true" && arity == 0) {
    return BuiltinProcInfo{BuiltinProc::kTrue, 0, 0, false};
  }
  return std::nullopt;
}

namespace {

void PrintTerm(const TermPool& pool, TermId t, std::ostream* os) {
  if (pool.IsSymbol(t)) {
    *os << pool.SymbolName(t);
  } else {
    *os << pool.ToString(t);
  }
}

}  // namespace

Status ExecBuiltinProc(BuiltinProc proc, TermPool* pool, IoEnv* io,
                       const Relation& input, Relation* output) {
  switch (proc) {
    case BuiltinProc::kWrite:
    case BuiltinProc::kWriteln: {
      // Print in canonical order so output is deterministic even though
      // relation iteration order is not.
      for (const Tuple& t : input.SortedTuples(*pool)) {
        PrintTerm(*pool, t[0], io->out);
        if (proc == BuiltinProc::kWriteln) *io->out << "\n";
        output->Insert(t);
      }
      return Status::OK();
    }
    case BuiltinProc::kNl:
      *io->out << "\n";
      output->Insert(Tuple{});
      return Status::OK();
    case BuiltinProc::kTrue:
      output->Insert(Tuple{});
      return Status::OK();
    case BuiltinProc::kRead: {
      std::string line;
      if (!std::getline(*io->in, line)) {
        return Status::IoError("read: end of input");
      }
      Result<TermId> parsed = ParseGroundTerm(pool, line);
      // A line that is not term syntax reads as a plain symbol, so users
      // can type free text at prompts.
      TermId t = parsed.ok() ? *parsed : pool->MakeSymbol(line);
      output->Insert(Tuple{t});
      return Status::OK();
    }
    case BuiltinProc::kReadLine: {
      std::string line;
      if (!std::getline(*io->in, line)) {
        return Status::IoError("read_line: end of input");
      }
      output->Insert(Tuple{pool->MakeSymbol(line)});
      return Status::OK();
    }
  }
  return Status::Internal("unknown builtin procedure");
}

}  // namespace gluenail
