#include "src/runtime/string_builtins.h"

#include "src/common/strings.h"

namespace gluenail {

namespace {

/// Symbols contribute their raw text; other terms contribute their printed
/// form. This makes concat('x', 3) == 'x3'.
std::string TextOf(const TermPool& pool, TermId t) {
  if (pool.IsSymbol(t)) return std::string(pool.SymbolName(t));
  return pool.ToString(t);
}

}  // namespace

bool IsStringBuiltin(std::string_view functor, size_t arity) {
  if (functor == "concat") return arity == 2;
  if (functor == "length") return arity == 1;
  if (functor == "substring") return arity == 3;
  return false;
}

Result<TermId> EvalStringBuiltin(TermPool* pool, std::string_view functor,
                                 std::span<const TermId> args) {
  if (functor == "concat" && args.size() == 2) {
    return pool->MakeSymbol(
        StrCat(TextOf(*pool, args[0]), TextOf(*pool, args[1])));
  }
  if (functor == "length" && args.size() == 1) {
    if (!pool->IsSymbol(args[0])) {
      return Status::RuntimeError(StrCat("length of non-string ",
                                         pool->ToString(args[0])));
    }
    return pool->MakeInt(
        static_cast<int64_t>(pool->SymbolName(args[0]).size()));
  }
  if (functor == "substring" && args.size() == 3) {
    if (!pool->IsSymbol(args[0]) || !pool->IsInt(args[1]) ||
        !pool->IsInt(args[2])) {
      return Status::RuntimeError("substring expects (string, int, int)");
    }
    std::string_view s = pool->SymbolName(args[0]);
    int64_t start = pool->IntValue(args[1]);
    int64_t len = pool->IntValue(args[2]);
    if (start < 0 || len < 0 || static_cast<size_t>(start) > s.size()) {
      return Status::RuntimeError(
          StrCat("substring out of range: start ", start, " len ", len,
                 " on string of length ", s.size()));
    }
    size_t avail = s.size() - static_cast<size_t>(start);
    size_t take = std::min<size_t>(static_cast<size_t>(len), avail);
    return pool->MakeSymbol(s.substr(static_cast<size_t>(start), take));
  }
  return Status::Internal(StrCat("unknown string builtin ", functor, "/",
                                 args.size()));
}

}  // namespace gluenail
