#include "src/runtime/arith.h"

#include <cmath>

#include "src/common/strings.h"

namespace gluenail {

namespace {

Status TypeError(const TermPool& pool, std::string_view op, TermId a,
                 TermId b) {
  return Status::RuntimeError(StrCat("arithmetic on non-numbers: ",
                                     pool.ToString(a), " ", op, " ",
                                     pool.ToString(b)));
}

}  // namespace

Result<TermId> EvalArith(TermPool* pool, std::string_view op, TermId a,
                         TermId b) {
  if (!pool->IsNumber(a) || !pool->IsNumber(b)) {
    return TypeError(*pool, op, a, b);
  }
  bool both_int = pool->IsInt(a) && pool->IsInt(b);
  if (both_int) {
    int64_t x = pool->IntValue(a), y = pool->IntValue(b);
    if (op == "+") return pool->MakeInt(x + y);
    if (op == "-") return pool->MakeInt(x - y);
    if (op == "*") return pool->MakeInt(x * y);
    if (op == "/") {
      if (y == 0) return Status::RuntimeError("integer division by zero");
      return pool->MakeInt(x / y);
    }
    if (op == "mod") {
      if (y == 0) return Status::RuntimeError("mod by zero");
      return pool->MakeInt(x % y);
    }
  } else {
    double x = pool->NumericValue(a), y = pool->NumericValue(b);
    if (op == "+") return pool->MakeFloat(x + y);
    if (op == "-") return pool->MakeFloat(x - y);
    if (op == "*") return pool->MakeFloat(x * y);
    if (op == "/") {
      if (y == 0.0) return Status::RuntimeError("float division by zero");
      return pool->MakeFloat(x / y);
    }
    if (op == "mod") {
      if (y == 0.0) return Status::RuntimeError("mod by zero");
      return pool->MakeFloat(std::fmod(x, y));
    }
  }
  return Status::Internal(StrCat("unknown arithmetic operator '", op, "'"));
}

Result<TermId> EvalNegate(TermPool* pool, TermId a) {
  if (pool->IsInt(a)) return pool->MakeInt(-pool->IntValue(a));
  if (pool->IsFloat(a)) return pool->MakeFloat(-pool->FloatValue(a));
  return Status::RuntimeError(
      StrCat("cannot negate non-number ", pool->ToString(a)));
}

Result<bool> EvalCompare(const TermPool& pool, ast::CompareOp cmp, TermId a,
                         TermId b) {
  bool numeric = pool.IsNumber(a) && pool.IsNumber(b);
  switch (cmp) {
    case ast::CompareOp::kEq:
      return numeric ? pool.NumericValue(a) == pool.NumericValue(b) : a == b;
    case ast::CompareOp::kNe:
      return numeric ? pool.NumericValue(a) != pool.NumericValue(b) : a != b;
    default:
      break;
  }
  int c;
  if (numeric) {
    double x = pool.NumericValue(a), y = pool.NumericValue(b);
    c = x < y ? -1 : (x > y ? 1 : 0);
  } else {
    c = pool.Compare(a, b);
  }
  switch (cmp) {
    case ast::CompareOp::kLt:
      return c < 0;
    case ast::CompareOp::kLe:
      return c <= 0;
    case ast::CompareOp::kGt:
      return c > 0;
    case ast::CompareOp::kGe:
      return c >= 0;
    default:
      return Status::Internal("unreachable comparison");
  }
}

}  // namespace gluenail
