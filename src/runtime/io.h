/// \file io.h
/// \brief Predefined I/O procedures and the host (foreign) procedure
/// interface.
///
/// Paper §3.1: "The predefined I/O procedures are all fixed." They follow
/// the same calling convention as Glue procedures (§4): called once on the
/// whole set of input bindings, returning a relation of (bound ++ free)
/// tuples that is joined back into the supplementary relation.
///
/// Paper §10 lists a foreign-language interface as required future work
/// ("many applications use windowing systems, typically with a C
/// interface"); HostProcedure is that interface. The CAD example
/// (examples/cad_select.cc) registers `event`, `highlight`, `dehighlight`
/// as host procedures over a scripted event queue.

#ifndef GLUENAIL_RUNTIME_IO_H_
#define GLUENAIL_RUNTIME_IO_H_

#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "src/common/result.h"
#include "src/storage/relation.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// A foreign procedure registered on the Engine. `input` holds the deduped
/// projection of the supplementary relation onto the bound arguments
/// (arity bound_arity); the callback fills `output` with (bound ++ free)
/// tuples (arity bound_arity + free_arity).
struct HostProcedure {
  std::string name;
  uint32_t bound_arity = 0;
  uint32_t free_arity = 0;
  /// Fixed procedures are barriers for subgoal reordering and pipelining
  /// (§3.1). Anything with side effects must stay fixed.
  bool fixed = true;
  std::function<Status(TermPool* pool, const Relation& input,
                       Relation* output)>
      fn;
};

/// The predefined I/O procedures.
enum class BuiltinProc : uint8_t {
  kWrite,     ///< write(T):   bound 1, free 0 — prints each input term
  kWriteln,   ///< writeln(T): bound 1, free 0 — same, newline after each
  kNl,        ///< nl:         bound 0, free 0 — prints one newline
  kRead,      ///< read(T):    bound 0, free 1 — reads one term from input
  kReadLine,  ///< read_line(L): bound 0, free 1 — reads a raw line
  kTrue,      ///< true:       bound 0, free 0 — always succeeds (§3.2)
};

struct BuiltinProcInfo {
  BuiltinProc proc;
  uint32_t bound_arity;
  uint32_t free_arity;
  bool fixed;
};

/// Looks up a predefined procedure by name and total arity.
std::optional<BuiltinProcInfo> FindBuiltinProc(std::string_view name,
                                               uint32_t arity);

/// Injectable stream environment so tests and examples can script I/O.
struct IoEnv {
  std::ostream* out = &std::cout;
  std::istream* in = &std::cin;
};

/// Runs a predefined procedure: consumes `input` (arity = bound_arity),
/// produces `output` (arity = bound + free). Symbols print as their raw
/// text (write('This one?') prints This one?); other terms print in source
/// syntax.
Status ExecBuiltinProc(BuiltinProc proc, TermPool* pool, IoEnv* io,
                       const Relation& input, Relation* output);

}  // namespace gluenail

#endif  // GLUENAIL_RUNTIME_IO_H_
