#include "src/runtime/aggregates.h"

#include <cmath>

#include "src/common/strings.h"

namespace gluenail {

std::optional<AggKind> AggKindFromName(std::string_view name) {
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  if (name == "mean") return AggKind::kMean;
  if (name == "sum") return AggKind::kSum;
  if (name == "product") return AggKind::kProduct;
  if (name == "arbitrary") return AggKind::kArbitrary;
  if (name == "std_dev") return AggKind::kStdDev;
  if (name == "count") return AggKind::kCount;
  return std::nullopt;
}

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kMean:
      return "mean";
    case AggKind::kSum:
      return "sum";
    case AggKind::kProduct:
      return "product";
    case AggKind::kArbitrary:
      return "arbitrary";
    case AggKind::kStdDev:
      return "std_dev";
    case AggKind::kCount:
      return "count";
  }
  return "?";
}

Status Aggregator::Add(TermId value) {
  ++count_;
  switch (kind_) {
    case AggKind::kCount:
      return Status::OK();
    case AggKind::kMin:
      if (best_ == kNullTerm || pool_->Compare(value, best_) < 0) {
        best_ = value;
      }
      return Status::OK();
    case AggKind::kMax:
      if (best_ == kNullTerm || pool_->Compare(value, best_) > 0) {
        best_ = value;
      }
      return Status::OK();
    case AggKind::kArbitrary:
      // Deterministic choice: the smallest term.
      if (best_ == kNullTerm || pool_->Compare(value, best_) < 0) {
        best_ = value;
      }
      return Status::OK();
    default:
      break;
  }
  if (!pool_->IsNumber(value)) {
    return Status::RuntimeError(StrCat(AggKindName(kind_),
                                       " over non-number ",
                                       pool_->ToString(value)));
  }
  double v = pool_->NumericValue(value);
  if (!pool_->IsInt(value)) all_int_ = false;
  switch (kind_) {
    case AggKind::kMean:
    case AggKind::kStdDev:
      sum_ += v;
      sum_sq_ += v * v;
      return Status::OK();
    case AggKind::kSum:
      sum_ += v;
      if (all_int_) int_sum_ += pool_->IntValue(value);
      return Status::OK();
    case AggKind::kProduct:
      product_ *= v;
      if (all_int_) int_product_ *= pool_->IntValue(value);
      return Status::OK();
    default:
      return Status::Internal("unreachable aggregate kind");
  }
}

Result<TermId> Aggregator::Finish(TermPool* pool) const {
  if (kind_ == AggKind::kCount) {
    return pool->MakeInt(static_cast<int64_t>(count_));
  }
  if (count_ == 0) {
    return Status::RuntimeError(
        StrCat(AggKindName(kind_), " over an empty group"));
  }
  switch (kind_) {
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kArbitrary:
      return best_;
    case AggKind::kMean:
      return pool->MakeFloat(sum_ / static_cast<double>(count_));
    case AggKind::kSum:
      return all_int_ ? pool->MakeInt(int_sum_) : pool->MakeFloat(sum_);
    case AggKind::kProduct:
      return all_int_ ? pool->MakeInt(int_product_)
                      : pool->MakeFloat(product_);
    case AggKind::kStdDev: {
      double n = static_cast<double>(count_);
      double mean = sum_ / n;
      double var = sum_sq_ / n - mean * mean;
      if (var < 0) var = 0;  // numeric noise
      return pool->MakeFloat(std::sqrt(var));
    }
    case AggKind::kCount:
      break;
  }
  return Status::Internal("unreachable aggregate finish");
}

}  // namespace gluenail
