/// \file arith.h
/// \brief Arithmetic and comparison semantics over interned terms.
///
/// Numeric rules:
///  * int (op) int yields int for + - * and truncating / and mod;
///  * any float operand widens the operation to double;
///  * division by zero is a runtime error (Status), not UB.
///
/// Comparison rules:
///  * `=` / `!=` compare terms structurally, except that two numbers
///    compare by value (so 1 = 1.0 holds; 1 and 1.0 are still distinct
///    terms for storage purposes);
///  * `<  <=  >  >=` use numeric order between numbers and the pool's
///    total term order otherwise (symbols compare lexicographically,
///    which gives the string ordering a database needs).

#ifndef GLUENAIL_RUNTIME_ARITH_H_
#define GLUENAIL_RUNTIME_ARITH_H_

#include "src/ast/ast.h"
#include "src/common/result.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// Binary arithmetic: op is one of "+", "-", "*", "/", "mod".
Result<TermId> EvalArith(TermPool* pool, std::string_view op, TermId a,
                         TermId b);

/// Unary negation of a number.
Result<TermId> EvalNegate(TermPool* pool, TermId a);

/// Evaluates `a cmp b` under the comparison semantics above.
Result<bool> EvalCompare(const TermPool& pool, ast::CompareOp cmp, TermId a,
                         TermId b);

}  // namespace gluenail

#endif  // GLUENAIL_RUNTIME_ARITH_H_
