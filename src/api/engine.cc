#include "src/api/engine.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/analysis/binding.h"
#include "src/api/session.h"
#include "src/common/strings.h"
#include "src/nail/magic.h"
#include "src/parser/parser.h"
#include "src/plan/physical.h"
#include "src/plan/plan_printer.h"

namespace gluenail {

namespace {

/// Installs a control block on the writer-path executor for the duration
/// of one guarded call. Safe under the exclusive writer lock: nothing else
/// runs through executor_ while the scope is live.
class ControlScope {
 public:
  ControlScope(Executor* exec, const ExecControl* ctl) : exec_(exec) {
    if (exec_ != nullptr) exec_->set_control(ctl);
  }
  ~ControlScope() {
    if (exec_ != nullptr) exec_->set_control(nullptr);
  }
  ControlScope(const ControlScope&) = delete;
  ControlScope& operator=(const ControlScope&) = delete;

 private:
  Executor* exec_;
};

ExecControl MakeControl(const QueryOptions& options) {
  ExecControl ctl;
  ctl.deadline = options.deadline;
  ctl.cancel = options.cancel;
  ctl.limits = options.limits;
  return ctl;
}

}  // namespace

Engine::Engine() : Engine(EngineOptions{}) {}

Engine::Engine(EngineOptions options)
    : options_(options),
      edb_(&pool_),
      idb_(&pool_),
      ivm_log_(options.ivm_max_delta_rows),
      trace_ring_(options.trace_ring_capacity),
      slow_log_(options.slow_query_log_capacity) {
  edb_.set_default_index_policy(options_.index_policy);
  edb_.set_default_adaptive_config(options_.adaptive);
  idb_.set_default_index_policy(options_.index_policy);
  idb_.set_default_adaptive_config(options_.adaptive);
  RegisterBuiltinMetrics();
}

Engine::~Engine() {
  // Stop the group-commit pump first (it never takes state_mu_, so this
  // cannot deadlock with the drain below), then flush the tail of the log
  // so a clean shutdown loses nothing even under kAsync (best effort —
  // the Wal destructor fsyncs too, but draining here also settles the
  // commit mirrors while waiters could still exist).
  StopCommitPump();
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (WalActiveLocked()) (void)DrainCommitsLocked();
}

void Engine::RegisterBuiltinMetrics() {
  // Engine-owned handles: updated on the query path with single relaxed
  // atomic ops.
  m_queries_ = metrics_.RegisterCounter(
      "gluenail_queries_total", "queries and traced statements executed");
  m_traced_queries_ = metrics_.RegisterCounter(
      "gluenail_queries_traced_total",
      "queries traced explicitly (QueryOptions::trace)");
  m_slow_queries_ = metrics_.RegisterCounter(
      "gluenail_slow_queries_total",
      "queries over EngineOptions::slow_query_threshold");
  m_query_latency_ = metrics_.RegisterHistogram(
      "gluenail_query_latency_ns", "end-to-end query latency in nanoseconds");

  // Pull metrics: values the subsystems already maintain. The callbacks
  // run under DumpMetrics' shared lock, so they must read lock-free state
  // (atomics, the thread-safe pool) and never re-lock state_mu_.
  metrics_.RegisterPullGauge("gluenail_termpool_terms",
                             "terms interned in the pool", [this] {
                               return static_cast<int64_t>(pool_.size());
                             });
  metrics_.RegisterPullGauge("gluenail_storage_relations",
                             "relations across the EDB and IDB", [this] {
                               return static_cast<int64_t>(
                                   StorageStatsNoLock().relations);
                             });
  metrics_.RegisterPullGauge("gluenail_storage_live_tuples",
                             "live tuples across every relation", [this] {
                               return static_cast<int64_t>(
                                   StorageStatsNoLock().live_tuples);
                             });
  metrics_.RegisterPullGauge("gluenail_storage_arena_bytes",
                             "bytes held by arenas, dedup tables, indexes",
                             [this] {
                               return static_cast<int64_t>(
                                   StorageStatsNoLock().arena_bytes);
                             });
  metrics_.RegisterPullCounter(
      "gluenail_storage_scan_rows_total", "rows visited by full scans",
      [this] { return StorageStatsNoLock().scan_rows; });
  metrics_.RegisterPullCounter(
      "gluenail_storage_index_lookups_total", "keyed index lookups",
      [this] { return StorageStatsNoLock().index_lookups; });
  metrics_.RegisterPullCounter(
      "gluenail_storage_index_probe_rows_total",
      "rows walked along index probe chains",
      [this] { return StorageStatsNoLock().index_probe_rows; });
  metrics_.RegisterPullCounter(
      "gluenail_storage_indexes_built_total", "hash indexes built",
      [this] { return StorageStatsNoLock().indexes_built; });
  metrics_.RegisterPullCounter(
      "gluenail_storage_dedup_probes_total", "dedup-table probe steps",
      [this] { return StorageStatsNoLock().dedup_probes; });
  metrics_.RegisterPullCounter(
      "gluenail_storage_stats_rebuilds_total",
      "NDV-sketch rebuilds (erase churn or compaction)",
      [this] { return StorageStatsNoLock().stats_rebuilds; });

  // Writer-path executor counters (the long-lived executor; read sessions'
  // ephemeral executors are not aggregated here).
  auto exec_stat = [this](uint64_t ExecStats::* field) {
    return [this, field]() -> uint64_t {
      return executor_ != nullptr ? executor_->stats().*field : 0;
    };
  };
  metrics_.RegisterPullCounter("gluenail_exec_statements_total",
                               "statement plans executed",
                               exec_stat(&ExecStats::statements));
  metrics_.RegisterPullCounter("gluenail_exec_records_produced_total",
                               "binding records produced",
                               exec_stat(&ExecStats::records_produced));
  metrics_.RegisterPullCounter(
      "gluenail_exec_rows_scanned_total",
      "rows visited answering matches (scan + probe chains)",
      exec_stat(&ExecStats::rows_scanned));
  metrics_.RegisterPullCounter("gluenail_exec_control_checks_total",
                               "full guardrail checks",
                               exec_stat(&ExecStats::control_checks));
  metrics_.RegisterPullCounter("gluenail_exec_pipeline_breaks_total",
                               "pipelined-strategy materialization points",
                               exec_stat(&ExecStats::pipeline_breaks));
  metrics_.RegisterPullCounter("gluenail_exec_duplicates_removed_total",
                               "records dropped by dedup-at-breaks",
                               exec_stat(&ExecStats::duplicates_removed));
  metrics_.RegisterPullCounter("gluenail_exec_batch_segments_total",
                               "batch-at-a-time segments run",
                               exec_stat(&ExecStats::batch_segments));
  metrics_.RegisterPullCounter(
      "gluenail_exec_batch_rows_total",
      "binding records entering batch segments",
      exec_stat(&ExecStats::batch_rows));

  // Semi-naive driver counters.
  metrics_.RegisterPullCounter(
      "gluenail_nail_refreshes_total", "NAIL! memo refreshes", [this] {
        return nail_engine_ != nullptr ? nail_engine_->refresh_count() : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_iterations_total", "semi-naive fixpoint iterations",
      [this] {
        return nail_engine_ != nullptr ? nail_engine_->iteration_count() : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_parallel_batches_total",
      "parallel fixpoint iterations dispatched to workers", [this] {
        return nail_engine_ != nullptr ? nail_engine_->parallel_batches() : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_replans_total",
      "mid-evaluation SCC replans on cardinality drift", [this] {
        return nail_engine_ != nullptr ? nail_engine_->replan_count() : 0;
      });
  // Incremental view maintenance: how often refreshes were served from
  // captured deltas vs. recomputed, and how much the deltas moved.
  metrics_.RegisterPullCounter(
      "gluenail_nail_delta_refresh_total",
      "NAIL! memo refreshes patched incrementally from captured deltas",
      [this] {
        return nail_engine_ != nullptr ? nail_engine_->delta_refresh_count()
                                       : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_full_refresh_total",
      "NAIL! memo refreshes recomputed from scratch", [this] {
        return nail_engine_ != nullptr ? nail_engine_->full_refresh_count()
                                       : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_ivm_fallbacks_total",
      "full recomputes forced while delta maintenance was enabled", [this] {
        return nail_engine_ != nullptr ? nail_engine_->ivm_fallback_count()
                                       : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_ivm_delta_rows_in_total",
      "EDB delta rows consumed by incremental refreshes", [this] {
        return nail_engine_ != nullptr ? nail_engine_->ivm_delta_rows_in()
                                       : 0;
      });
  metrics_.RegisterPullCounter(
      "gluenail_nail_ivm_delta_rows_out_total",
      "memo rows changed by incremental refreshes", [this] {
        return nail_engine_ != nullptr ? nail_engine_->ivm_delta_rows_out()
                                       : 0;
      });

  // Process-wide planner and persistence counters (free-function layers).
  metrics_.RegisterPullCounter(
      "gluenail_planner_bodies_planned_total",
      "statement bodies ordered by the physical planner", [] {
        return GlobalPlannerCounters().bodies_planned.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_planner_index_builds_scheduled_total",
      "planner-decided index builds", [] {
        return GlobalPlannerCounters().index_builds_scheduled.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_persist_saves_total", "successful database file saves", [] {
        return GlobalPersistenceCounters().saves.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_persist_save_failures_total", "failed database file saves",
      [] {
        return GlobalPersistenceCounters().save_failures.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_persist_loads_total", "successful database file loads", [] {
        return GlobalPersistenceCounters().loads.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_persist_load_failures_total", "failed database file loads",
      [] {
        return GlobalPersistenceCounters().load_failures.load(
            std::memory_order_relaxed);
      });

  // Durability: engine-owned commit counters plus pulls over the WAL's and
  // the recovery layer's own counters. wal_ is guarded like executor_: the
  // callbacks run under DumpMetrics' shared lock, and only exclusive
  // holders replace the pointer.
  m_wal_commits_ = metrics_.RegisterCounter(
      "gluenail_wal_commits_total",
      "mutation batches committed through the WAL write path");
  m_wal_commit_failures_ = metrics_.RegisterCounter(
      "gluenail_wal_commit_failures_total",
      "mutation batches rejected or not made durable");
  m_checkpoints_ = metrics_.RegisterCounter(
      "gluenail_checkpoints_total", "checkpoint saves with WAL rotation");
  m_wal_group_size_ = metrics_.RegisterHistogram(
      "gluenail_wal_group_commit_batches",
      "batches made durable per fsync (group-commit amortization)");
  auto wal_count = [this](std::atomic<uint64_t> WalCounters::* field) {
    return [this, field]() -> uint64_t {
      return wal_ != nullptr
                 ? (wal_->counters().*field).load(std::memory_order_relaxed)
                 : 0;
    };
  };
  metrics_.RegisterPullCounter("gluenail_wal_appends_total",
                               "records appended to the WAL",
                               wal_count(&WalCounters::appends));
  metrics_.RegisterPullCounter("gluenail_wal_appended_bytes_total",
                               "bytes appended to the WAL",
                               wal_count(&WalCounters::appended_bytes));
  metrics_.RegisterPullCounter("gluenail_wal_append_failures_total",
                               "failed WAL appends",
                               wal_count(&WalCounters::append_failures));
  metrics_.RegisterPullCounter("gluenail_wal_syncs_total", "WAL fsyncs",
                               wal_count(&WalCounters::syncs));
  metrics_.RegisterPullCounter("gluenail_wal_sync_failures_total",
                               "failed WAL fsyncs (log marked broken)",
                               wal_count(&WalCounters::sync_failures));
  metrics_.RegisterPullCounter("gluenail_wal_rotations_total",
                               "WAL rotations behind checkpoints",
                               wal_count(&WalCounters::rotations));
  metrics_.RegisterPullCounter(
      "gluenail_recovery_runs_total", "successful crash recoveries", [] {
        return GlobalRecoveryCounters().recoveries.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_recovery_failures_total", "failed crash recoveries", [] {
        return GlobalRecoveryCounters().failures.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_recovery_records_replayed_total",
      "WAL records replayed during recovery", [] {
        return GlobalRecoveryCounters().records_replayed.load(
            std::memory_order_relaxed);
      });
  metrics_.RegisterPullCounter(
      "gluenail_recovery_torn_bytes_total",
      "torn-tail bytes discarded during recovery", [] {
        return GlobalRecoveryCounters().torn_bytes.load(
            std::memory_order_relaxed);
      });

  // Replication (replica side; the primary's stream counters live in the
  // server that owns the subscriber connections). The watermarks are
  // atomics, so the pulls stay lock-free under DumpMetrics' shared lock.
  if (options_.replica) {
    m_repl_batches_ = metrics_.RegisterCounter(
        "gluenail_repl_batches_applied_total",
        "WAL batches shipped from the primary and applied");
    m_repl_bootstraps_ = metrics_.RegisterCounter(
        "gluenail_repl_snapshot_bootstraps_total",
        "checkpoint-image bootstraps (requested LSN rotated away)");
    metrics_.RegisterPullGauge(
        "gluenail_repl_applied_lsn",
        "highest primary LSN applied on this replica", [this] {
          return static_cast<int64_t>(replica_applied_lsn());
        });
    metrics_.RegisterPullGauge(
        "gluenail_repl_primary_durable_lsn",
        "primary's durable LSN as of its last heartbeat", [this] {
          return static_cast<int64_t>(replica_primary_lsn());
        });
    metrics_.RegisterPullGauge(
        "gluenail_repl_lag", "primary durable LSN minus applied LSN",
        [this] {
          uint64_t primary = replica_primary_lsn();
          uint64_t applied = replica_applied_lsn();
          return static_cast<int64_t>(primary > applied ? primary - applied
                                                        : 0);
        });
  }
}

std::string Engine::DumpMetrics(MetricsFormat format) const {
  // Shared lock: pull callbacks read executor_/nail_engine_ and walk the
  // databases, which only writers (exclusive holders) replace or mutate.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return format == MetricsFormat::kJson ? metrics_.RenderJson()
                                        : metrics_.RenderPrometheus();
}

void Engine::BeginQueryObs(QueryObs* obs, bool want_trace) {
  obs->start = std::chrono::steady_clock::now();
  obs->want_trace = want_trace;
  obs->active = want_trace || options_.slow_query_threshold.count() > 0;
  if (!obs->active) return;
  obs->scope.emplace(&obs->sink);
}

void Engine::SampleReplanBaseline(QueryObs* obs) {
  // Separate from BeginQueryObs: sessions install the sink before taking
  // the engine lock (to trace the read-upgrade NAIL! refresh), but the
  // nail_engine_ pointer itself may only be dereferenced under the lock —
  // a concurrent LoadProgram can swap it.
  if (!obs->active) return;
  obs->replans_before =
      nail_engine_ != nullptr ? nail_engine_->replan_count() : 0;
  obs->refresh_seq_before =
      nail_engine_ != nullptr ? nail_engine_->refresh_seq() : 0;
}

void Engine::FinishQueryObs(QueryObs* obs, std::string_view query,
                            TraceRing* ring) {
  const auto total_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - obs->start)
          .count());
  m_queries_->Add(1);
  m_query_latency_->Observe(total_ns);
  if (!obs->active) return;
  obs->scope.reset();  // uninstall before freezing
  auto trace = std::make_shared<const QueryTrace>(
      obs->sink.Finish(std::string(query), total_ns));
  if (obs->want_trace) {
    m_traced_queries_->Add(1);
    if (ring != nullptr) ring->Push(trace);
  }
  const auto threshold = options_.slow_query_threshold;
  if (threshold.count() > 0 &&
      total_ns >= static_cast<uint64_t>(threshold.count())) {
    SlowQueryEntry entry;
    entry.query = trace->query;
    entry.seconds = static_cast<double>(total_ns) * 1e-9;
    const uint64_t replans_now =
        nail_engine_ != nullptr ? nail_engine_->replan_count() : 0;
    entry.replans = replans_now - obs->replans_before;
    if (nail_engine_ != nullptr &&
        nail_engine_->refresh_seq() != obs->refresh_seq_before) {
      // This query paid for a memo refresh; record how it ran.
      NailRefreshInfo info = nail_engine_->last_refresh();
      entry.nail_refresh_mode = info.mode;
      if (!info.fallback.empty()) {
        entry.nail_refresh_mode += StrCat(" (", info.fallback, ")");
      }
      entry.nail_delta_rows_in = info.delta_rows_in;
      entry.nail_delta_rows_out = info.delta_rows_out;
    }
    entry.plan = trace->plan;
    entry.top_spans = TopSpansByDuration(trace->spans, 3);
    m_slow_queries_->Add(1);
    slow_log_.Record(std::move(entry));
  }
  obs->active = false;
}

Session Engine::OpenSession() { return Session(this); }

Status Engine::RegisterHostProcedure(HostProcedure host) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (linked_ != nullptr) {
    return Status::InvalidArgument(
        "host procedures must be registered before LoadProgram");
  }
  if (!host.fn) {
    return Status::InvalidArgument(
        StrCat("host procedure ", host.name, " has no callback"));
  }
  hosts_.push_back(std::move(host));
  return Status::OK();
}

Status Engine::LoadProgram(std::string_view source) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return LoadProgramLocked(source);
}

Status Engine::LoadProgramLocked(std::string_view source) {
  auto start = std::chrono::steady_clock::now();
  GLUENAIL_ASSIGN_OR_RETURN(ast::Program parsed, ParseProgram(source));

  // The parallel evaluator partitions the direct fixpoint; the generated
  // Glue driver cannot be split, so multi-threading forces direct mode
  // (the modes are differential-tested equal).
  NailMode nail_mode = options_.nail_mode;
  if (options_.num_threads > 1 && nail_mode == NailMode::kCompiledGlue) {
    nail_mode = NailMode::kDirect;
  }

  LinkOptions link_opts;
  link_opts.planner = options_.planner;
  link_opts.nail_mode = nail_mode;
  link_opts.stats = &stats_provider_;
  GLUENAIL_ASSIGN_OR_RETURN(
      LinkedProgram linked, LinkProgram(parsed, hosts_, &pool_, link_opts));
  linked_ = std::make_unique<LinkedProgram>(std::move(linked));

  nail_engine_ = std::make_unique<NailEngine>(linked_->nail, &edb_, &idb_,
                                              &pool_);
  nail_engine_->set_mode(nail_mode);
  nail_engine_->set_num_threads(options_.num_threads);
  if (nail_mode == NailMode::kCompiledGlue) {
    nail_engine_->set_driver_proc(linked_->nail_driver_proc);
    if (options_.ivm_mode != IvmMode::kOff) {
      // Delta maintenance drives the direct rule-version plans even when
      // full refreshes run through the generated Glue driver, so compile
      // them too (the modes are differential-tested equal).
      GLUENAIL_RETURN_NOT_OK(nail_engine_->CompileDirect(
          linked_->builtin_scope.get(), options_.planner, &stats_provider_));
    }
  } else {
    GLUENAIL_RETURN_NOT_OK(nail_engine_->CompileDirect(
        linked_->builtin_scope.get(), options_.planner, &stats_provider_));
  }
  nail_engine_->ConfigureIvm(options_.ivm_mode,
                             options_.ivm_max_delta_fraction, &ivm_log_);
  // A new program means new memos; deltas captured against the old one
  // are meaningless (the first refresh rebases the log).
  ivm_log_.Invalidate();

  RuntimeEnv env;
  env.io = io_;
  env.hosts = &hosts_;
  env.nail = nail_engine_.get();
  executor_ = std::make_unique<Executor>(&linked_->program, &edb_, &idb_,
                                         &pool_, env, options_.exec);
  nail_engine_->set_executor(executor_.get());

  for (const auto& [name, tuple] : linked_->facts) {
    edb_.GetOrCreate(name, static_cast<uint32_t>(tuple.size()))
        ->Insert(tuple);
  }

  compile_stats_ = CompileStats{};
  compile_stats_.modules = parsed.modules.size();
  for (const CompiledProcedure& p : linked_->program.procedures) {
    if (p.generated) {
      ++compile_stats_.generated_procedures;
    } else {
      ++compile_stats_.procedures;
    }
    compile_stats_.statements += p.plans.size();
  }
  compile_stats_.nail_rules = linked_->nail.rules.size();
  compile_stats_.nail_predicates = linked_->nail.preds.size();
  compile_stats_.nail_strata = linked_->nail.scc_order.size();
  compile_stats_.compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return Status::OK();
}

Status Engine::LoadProgramFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::IoError(StrCat("cannot open ", path));
  }
  std::ostringstream text;
  text << f.rdbuf();
  return LoadProgram(text.str()).WithContext(path);
}

Status Engine::EnsureLoadedLocked() {
  if (linked_ == nullptr) {
    // An empty program: everything ad-hoc against the bare EDB.
    GLUENAIL_RETURN_NOT_OK(LoadProgramLocked("module main; end"));
  }
  return Status::OK();
}

bool Engine::ReadReadyLocked() const {
  return linked_ != nullptr &&
         (nail_engine_ == nullptr || nail_engine_->IsFresh());
}

Status Engine::PrepareForReadLocked() {
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  if (nail_engine_ != nullptr) {
    GLUENAIL_RETURN_NOT_OK(nail_engine_->EnsureAllNail());
  }
  return Status::OK();
}

Result<CompiledProcedure> Engine::CompileAdhoc(const ast::Statement& stmt) {
  ast::Procedure proc;
  proc.name = "$adhoc";
  proc.bound_arity = 0;
  proc.free_arity = 0;
  proc.body.push_back(stmt);
  return CompileProcedureAst(proc, *linked_->global_scope, &pool_, "$adhoc",
                             /*fixed=*/true, options_.planner,
                             /*implicit_edb=*/true, &stats_provider_);
}

Status Engine::ExecuteStatement(std::string_view statement) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return ExecuteStatementLocked(statement);
}

Status Engine::ExecuteStatement(std::string_view statement,
                                const QueryOptions& options) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  ExecControl ctl = MakeControl(options);
  const ExecControl* ctl_ptr = options.guarded() ? &ctl : nullptr;
  if (ctl_ptr != nullptr) GLUENAIL_RETURN_NOT_OK(ctl.Check());
  QueryObs obs;
  BeginQueryObs(&obs, options.trace);
  SampleReplanBaseline(&obs);
  Status st;
  try {
    ControlScope scope(executor_.get(), ctl_ptr);
    st = ExecuteStatementLocked(statement);
  } catch (const std::bad_alloc&) {
    st = Status::ResourceExhausted("allocation failed during statement");
  }
  FinishQueryObs(&obs, statement, &trace_ring_);
  return st;
}

Status Engine::ExecuteStatementLocked(std::string_view statement) {
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  ScopedSpan parse_span("stmt:parse");
  GLUENAIL_ASSIGN_OR_RETURN(ast::Statement stmt, ParseStatement(statement));
  parse_span.End();
  ScopedSpan compile_span("stmt:compile");
  GLUENAIL_ASSIGN_OR_RETURN(CompiledProcedure proc, CompileAdhoc(stmt));
  compile_span.End();
  // Under an active sink, profile every plan so the trace captures the
  // plan text with actual rows. The plans die with `proc`, so the
  // profiles (keyed by plan pointer) are dropped on every exit path.
  TraceSink* sink = TraceSink::Current();
  if (sink != nullptr) {
    for (const StatementPlan& plan : proc.plans) {
      executor_->EnableOpProfile(&plan);
    }
  }
  Frame frame(&proc);
  Status run = executor_->ExecBlock(proc.code, proc, &frame);
  if (sink != nullptr) {
    for (const StatementPlan& plan : proc.plans) {
      sink->AppendPlan(PlanToString(plan, pool_, executor_->OpProfile(&plan)));
      executor_->DisableOpProfile(&plan);
    }
  }
  return run;
}

Result<Engine::QueryResult> Engine::Query(std::string_view goal,
                                          const QueryOptions& options) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  ExecControl ctl = MakeControl(options);
  const ExecControl* ctl_ptr = options.guarded() ? &ctl : nullptr;
  if (ctl_ptr != nullptr) {
    // Fail fast on pre-cancelled tokens and already-expired deadlines.
    GLUENAIL_RETURN_NOT_OK(ctl.Check());
  }
  QueryObs obs;
  BeginQueryObs(&obs, options.trace);
  SampleReplanBaseline(&obs);
  // Arena growth reports OOM (real or injected) as bad_alloc; surface it
  // as a status so the engine stays usable. Any half-built NAIL! state is
  // memo-invalid (Refresh unwound) and recomputed on the next demand.
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    try {
      if (options.strategy == QueryStrategy::kMagic) {
        ExecOptions eo;
        eo.control = ctl_ptr;
        return QueryMagicWith(goal, eo);
      }
      ControlScope scope(executor_.get(), ctl_ptr);
      return QueryGoalWith(executor_.get(), goal);
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted("allocation failed during query");
    }
  }();
  FinishQueryObs(&obs, goal, &trace_ring_);
  return result;
}

Result<Engine::QueryResult> Engine::QueryGoalWith(Executor* exec,
                                                  std::string_view goal) {
  ScopedSpan parse_span("query:parse");
  GLUENAIL_ASSIGN_OR_RETURN(std::vector<ast::Subgoal> body, ParseGoal(goal));
  parse_span.End();

  // Head variables: every goal variable, in first-appearance order.
  std::vector<std::string> vars;
  for (const ast::Subgoal& g : body) {
    g.pred.CollectVariables(&vars);
    for (const ast::Term& a : g.args) a.CollectVariables(&vars);
    g.lhs.CollectVariables(&vars);
    g.rhs.CollectVariables(&vars);
  }

  ast::Assignment a;
  a.head_pred = ast::Term::Symbol("$query");
  for (const std::string& v : vars) {
    a.head_args.push_back(ast::Term::Variable(v));
  }
  a.op = ast::AssignOp::kClear;
  a.body = std::move(body);

  CompileEnv env;
  env.pool = &pool_;
  env.scope = linked_->global_scope.get();
  env.implicit_edb = true;
  env.stats = &stats_provider_;
  ScopedSpan plan_span("query:plan");
  GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                            PlanAssignment(a, env, options_.planner));
  plan_span.End();

  // Under an active sink, profile the ad-hoc plan so the trace can carry
  // its plan text with actual rows. The plan is stack-local, so the
  // profile (keyed by plan pointer) must be dropped on every exit path.
  TraceSink* sink = TraceSink::Current();
  if (sink != nullptr) exec->EnableOpProfile(&plan);

  Frame frame(nullptr);
  RecordSet sup;
  ScopedSpan exec_span("query:execute");
  Status run = exec->ExecuteBodyOnly(plan, &frame, &sup);
  exec_span.End();
  if (sink != nullptr) {
    sink->AppendPlan(PlanToString(plan, pool_, exec->OpProfile(&plan)));
    exec->DisableOpProfile(&plan);
  }
  GLUENAIL_RETURN_NOT_OK(run);

  // Evaluate the head expressions per record; dedupe and sort.
  ScopedSpan answers_span("query:answers");
  Relation answers("$answers", static_cast<uint32_t>(vars.size()));
  for (const Record& rec : sup.records) {
    Tuple row;
    row.reserve(plan.head.arg_exprs.size());
    for (ExprId e : plan.head.arg_exprs) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, e, rec, &pool_));
      row.push_back(v);
    }
    answers.Insert(row);
  }
  QueryResult out;
  out.vars = std::move(vars);
  out.rows = answers.SortedTuples(pool_);
  answers_span.AddRows(out.rows.size());
  return out;
}

Result<std::vector<Tuple>> Engine::Call(std::string_view name,
                                        const std::vector<Tuple>& inputs) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  return CallWith(executor_.get(), name, inputs);
}

Result<std::vector<Tuple>> Engine::CallWith(Executor* exec,
                                            std::string_view name,
                                            const std::vector<Tuple>& inputs) {
  // Find an exported procedure with this name (any arity; unique names).
  int index = -1;
  std::string prefix = StrCat(name, "/");
  for (const auto& [key, idx] : linked_->program.proc_by_export) {
    if (StartsWith(key, prefix)) {
      if (index >= 0) {
        return Status::InvalidArgument(
            StrCat("procedure name '", name, "' is ambiguous; qualify with "
                   "arity"));
      }
      index = idx;
    }
  }
  if (index < 0) {
    return Status::NotFound(
        StrCat("no exported procedure named '", name, "'"));
  }
  const CompiledProcedure& proc =
      linked_->program.procedures[static_cast<size_t>(index)];
  Relation input("in", proc.bound_arity);
  for (const Tuple& t : inputs) {
    if (t.size() != proc.bound_arity) {
      return Status::InvalidArgument(
          StrCat("input tuple arity ", t.size(), " != bound arity ",
                 proc.bound_arity, " of ", proc.name));
    }
    input.Insert(t);
  }
  Relation output("out", proc.arity());
  GLUENAIL_RETURN_NOT_OK(exec->CallProcedureByIndex(index, input, &output));
  return output.SortedTuples(pool_);
}

Result<Engine::QueryResult> Engine::QueryMagicWith(
    std::string_view goal, const ExecOptions& exec_opts) {
  GLUENAIL_ASSIGN_OR_RETURN(std::vector<ast::Subgoal> body, ParseGoal(goal));
  if (body.size() != 1 || body[0].kind != ast::SubgoalKind::kAtom ||
      !body[0].pred.IsSymbol()) {
    return Status::InvalidArgument(
        "a magic-strategy query takes a single atom over a NAIL! predicate");
  }
  const ast::Subgoal& atom = body[0];
  MagicQuery q;
  q.pred = atom.pred.name;
  QueryResult out;
  std::vector<size_t> free_columns;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const ast::Term& arg = atom.args[i];
    if (arg.IsGround()) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId value, InternGroundTerm(&pool_, arg));
      q.columns.push_back(value);
    } else if (arg.IsVariable() || arg.IsWildcard()) {
      q.columns.push_back(std::nullopt);
      out.vars.push_back(arg.IsVariable() ? arg.name
                                          : StrCat("_", i));
      free_columns.push_back(i);
    } else {
      return Status::InvalidArgument(
          "magic-strategy query arguments must be constants or variables");
    }
  }
  GLUENAIL_ASSIGN_OR_RETURN(
      std::vector<Tuple> rows,
      EvaluateWithMagic(linked_->nail.rules, q, &edb_, &pool_, exec_opts));
  for (const Tuple& row : rows) {
    Tuple projected;
    for (size_t c : free_columns) projected.push_back(row[c]);
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Result<std::string> Engine::ExplainStatement(std::string_view statement,
                                             const ExplainOptions& options) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GLUENAIL_RETURN_NOT_OK(EnsureLoadedLocked());
  GLUENAIL_ASSIGN_OR_RETURN(ast::Statement stmt, ParseStatement(statement));
  GLUENAIL_ASSIGN_OR_RETURN(CompiledProcedure proc, CompileAdhoc(stmt));
  std::string out;
  if (!options.analyze) {
    for (const StatementPlan& plan : proc.plans) {
      out += PlanToString(plan, pool_);
    }
    return out;
  }
  // ANALYZE: run the statement with per-op row profiling switched on, then
  // render each op's estimate next to the rows it actually produced.
  for (const StatementPlan& plan : proc.plans) {
    executor_->EnableOpProfile(&plan);
  }
  const uint64_t refresh_seq_before =
      nail_engine_ != nullptr ? nail_engine_->refresh_seq() : 0;
  Frame frame(&proc);
  Status run = executor_->ExecBlock(proc.code, proc, &frame);
  if (!run.ok()) {
    executor_->ClearOpProfiles();
    return run;
  }
  for (const StatementPlan& plan : proc.plans) {
    out += PlanToString(plan, pool_, executor_->OpProfile(&plan));
  }
  executor_->ClearOpProfiles();
  if (nail_engine_ != nullptr &&
      nail_engine_->refresh_seq() != refresh_seq_before) {
    // The statement demanded a stale NAIL! memo; show how the refresh ran
    // (full vs. delta-driven, and why a fallback recomputed).
    NailRefreshInfo info = nail_engine_->last_refresh();
    out += StrCat("nail refresh: mode=", info.mode);
    if (!info.fallback.empty()) out += StrCat(" fallback=", info.fallback);
    out += StrCat(" delta_rows_in=", info.delta_rows_in,
                  " delta_rows_out=", info.delta_rows_out, "\n");
  }
  return out;
}

Status Engine::AddFact(std::string_view fact) {
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (!WalActiveLocked()) return AddFactLocked(fact);
  }
  // Durability on: route through the logged write path so ad-hoc facts
  // honor the same ack promise as wire-protocol batches.
  MutationBatch batch;
  batch.Insert(fact);
  return ApplyBatch(batch).status();
}

Status Engine::AddFactLocked(std::string_view fact) {
  std::string text(fact);
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\n' || text.back() == '.')) {
    text.pop_back();
  }
  GLUENAIL_ASSIGN_OR_RETURN(TermId t, ParseGroundTerm(&pool_, text));
  TermId name;
  Tuple row;
  if (pool_.IsCompound(t)) {
    std::span<const TermId> args = pool_.Args(t);
    name = pool_.Functor(t);
    row.assign(args.begin(), args.end());
  } else if (pool_.IsSymbol(t)) {
    name = t;
  } else {
    return Status::InvalidArgument(
        "a fact must be a symbol or compound term");
  }
  const uint32_t arity = static_cast<uint32_t>(row.size());
  if (edb_.GetOrCreate(name, arity)->Insert(row)) {
    ivm_log_.CaptureInsert(name, arity, row);
    ivm_log_.SealBatch(SnapshotEdbVersion(edb_));
  }
  return Status::OK();
}

Result<MutationBatch::ApplyReport> Engine::ApplyBatchCapturedLocked(
    const MutationBatch& batch) {
  MutationBatch::ChangeObserver observer =
      [this](MutationBatch::OpKind kind, TermId name, uint32_t arity,
             RowView row) {
        if (kind == MutationBatch::OpKind::kInsert) {
          ivm_log_.CaptureInsert(name, arity, row);
        } else {
          ivm_log_.CaptureErase(name, arity, row);
        }
      };
  Result<MutationBatch::ApplyReport> applied =
      batch.Apply(&edb_, &pool_, &observer);
  if (applied.ok()) {
    ivm_log_.SealBatch(SnapshotEdbVersion(edb_));
  } else {
    // A failed apply can leave a captured prefix the watermark will never
    // catch up to; drop it.
    ivm_log_.Invalidate();
  }
  return applied;
}

Result<TermId> Engine::InternTerm(std::string_view text) {
  // The pool is thread-safe; no engine lock required.
  return ParseGroundTerm(&pool_, text);
}

Status Engine::Mutate(const std::function<Status(Database*, Database*,
                                                 TermPool*)>& fn) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return fn(&edb_, &idb_, &pool_);
}

Result<EngineSnapshot> Engine::snapshot() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  GLUENAIL_RETURN_NOT_OK(PrepareForReadLocked());
  return SnapshotLocked();
}

EngineSnapshot Engine::SnapshotLocked() {
  EngineSnapshot snap;
  snap.pool_ = &pool_;
  snap.edb_ = edb_.Snapshot();
  snap.idb_ = idb_.Snapshot();
  snap.guard_ = snapshot_token_;
  return snap;
}

Status Engine::SaveEdbFile(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  // Flush in-flight commits first so the saved image is at or ahead of the
  // log's durable point (ignore a broken log — memory is the truth, and
  // the save captures it either way).
  if (WalActiveLocked()) (void)DrainCommitsLocked();
  return SaveDatabaseToFile(edb_, path);
}

Status Engine::LoadEdbFile(const std::string& path) {
  return LoadEdbFile(path, LoadOptions{}).status();
}

Result<LoadReport> Engine::LoadEdbFile(const std::string& path,
                                       const LoadOptions& options) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  // Loading replaces relation contents out from under point-in-time
  // readers' feet semantically (their copies stay valid, but the engine
  // jumps to a different history mid-conversation) — refuse, like
  // Recover().
  const long live = snapshot_token_.use_count() - 1;
  if (live > 0) {
    return Status::InvalidArgument(
        StrCat("cannot load an EDB while ", live,
               " live snapshot(s) are outstanding; drop them first"));
  }
  GLUENAIL_ASSIGN_OR_RETURN(LoadReport report,
                            LoadDatabaseFromFile(&edb_, path, options));
  // The load rewrote relations wholesale (possibly salvaging only part of
  // a damaged file); captured deltas describe a history that no longer
  // exists. The version watermark would catch this too — invalidating is
  // the explicit belt-and-braces the salvage path demands.
  ivm_log_.Invalidate();
  if (nail_engine_ != nullptr) nail_engine_->Invalidate();
  // Loaded facts bypassed the log; checkpoint immediately so the durable
  // state includes them (otherwise a crash would silently undo the load).
  if (WalActiveLocked()) GLUENAIL_RETURN_NOT_OK(CheckpointLocked());
  return report;
}

Result<std::vector<Tuple>> Engine::RelationContents(
    std::string_view name_term, uint32_t arity) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (nail_engine_ != nullptr) {
    GLUENAIL_RETURN_NOT_OK(nail_engine_->EnsureAllNail());
  }
  return RelationContentsLocked(name_term, arity);
}

Result<std::vector<Tuple>> Engine::RelationContentsLocked(
    std::string_view name_term, uint32_t arity) {
  GLUENAIL_ASSIGN_OR_RETURN(TermId name, ParseGroundTerm(&pool_, name_term));
  Relation* rel = edb_.Find(name, arity);
  if (rel == nullptr) rel = idb_.Find(name, arity);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("no relation ", name_term, "/", arity));
  }
  return rel->SortedTuples(pool_);
}

void Engine::SetIo(std::ostream* out, std::istream* in) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (out != nullptr) io_.out = out;
  if (in != nullptr) io_.in = in;
  if (executor_ != nullptr) executor_->set_io(io_);
}

const ExecStats& Engine::exec_stats() const {
  static const ExecStats kEmpty{};
  return executor_ ? executor_->stats() : kEmpty;
}

void Engine::ResetExecStats() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (executor_ != nullptr) executor_->stats() = ExecStats{};
}

StorageStats Engine::storage_stats() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return StorageStatsNoLock();
}

StorageStats Engine::StorageStatsNoLock() const {
  StorageStats out;
  auto add = [&out](TermId, uint32_t, Relation* rel) {
    ++out.relations;
    out.live_tuples += rel->size();
    out.arena_bytes += rel->arena_bytes();
    const Relation::Counters& c = rel->counters();
    out.dedup_probes += c.dedup_probes.load(std::memory_order_relaxed);
    out.scan_rows += c.scan_rows.load(std::memory_order_relaxed);
    out.index_lookups += c.index_lookups.load(std::memory_order_relaxed);
    out.index_probe_rows +=
        c.index_probe_rows.load(std::memory_order_relaxed);
    out.indexes_built += c.indexes_built.load(std::memory_order_relaxed);
    out.stats_rebuilds += c.stats_rebuilds.load(std::memory_order_relaxed);
  };
  edb_.ForEach(add);
  idb_.ForEach(add);
  return out;
}

// --- Durability ------------------------------------------------------------
//
// Lock protocol. state_mu_ (outer) -> commit_mu_ (inner) -> the Wal's own
// mutex (innermost). Commit *leaders* — the thread that fsyncs for a group,
// and the kAsync piggyback syncer — hold only the commit_leader_ flag and
// the Wal's internals, never state_mu_, which is what makes
// DrainCommitsLocked (called with state_mu_ exclusive) deadlock-free: it
// waits for the flag to clear, and the flag's owner needs nothing we hold.
// Rotating or resetting wal_ happens only under state_mu_ *after* a drain,
// so no leader can be mid-fsync on a closing fd.

std::string Engine::checkpoint_path() const {
  return StrCat(options_.data_dir, "/checkpoint.facts");
}

std::string Engine::wal_path() const {
  return StrCat(options_.data_dir, "/wal.log");
}

uint64_t Engine::durable_lsn() const {
  std::lock_guard<std::mutex> ql(commit_mu_);
  return commit_durable_;
}

std::optional<RecoveryReport> Engine::last_recovery() const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  return last_recovery_;
}

Result<MutationBatch::ApplyReport> Engine::ApplyBatch(
    const MutationBatch& batch) {
  if (options_.replica) return ReplicaWriteFence("ApplyBatch");
  if (batch.empty()) return MutationBatch::ApplyReport{};
  auto commit_failed = [this](Status s) -> Status {
    if (!s.ok() && m_wal_commit_failures_ != nullptr) {
      m_wal_commit_failures_->Add();
    }
    return s;
  };

  uint64_t lsn = 0;
  uint64_t lsn_epoch = 0;
  Result<MutationBatch::ApplyReport> applied =
      MutationBatch::ApplyReport{};
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (!WalActiveLocked()) {
      // Durability off: the batch is just a structured multi-op apply.
      return ApplyBatchCapturedLocked(batch);
    }
    // Write-ahead: validate (so a malformed batch is never logged), log,
    // then apply to memory. The apply happens before the ack wait so the
    // writer lock is released during the fsync — the whole point of group
    // commit.
    GLUENAIL_RETURN_NOT_OK(commit_failed(batch.Validate(&pool_)));
    Result<uint64_t> appended = wal_->Append(batch);
    if (!appended.ok()) {
      std::lock_guard<std::mutex> ql(commit_mu_);
      commit_broken_ = commit_broken_ || wal_->broken();
      commit_cv_.notify_all();
      return commit_failed(appended.status());
    }
    lsn = *appended;
    {
      std::lock_guard<std::mutex> ql(commit_mu_);
      lsn_epoch = commit_epoch_;
      if (lsn > commit_appended_) commit_appended_ = lsn;
      if (pump_running_) pump_cv_.notify_one();
    }
    if (options_.durability == DurabilityLevel::kSync) {
      // The per-batch baseline: fsync inside the writer lock, commits
      // fully serialized. Group commit is benchmarked against this.
      Status synced = wal_->Sync();
      {
        std::lock_guard<std::mutex> ql(commit_mu_);
        if (wal_->durable_lsn() > commit_durable_) {
          commit_durable_ = wal_->durable_lsn();
        }
        commit_broken_ = commit_broken_ || wal_->broken();
        commit_cv_.notify_all();
      }
      GLUENAIL_RETURN_NOT_OK(commit_failed(std::move(synced)));
      if (m_wal_group_size_ != nullptr) m_wal_group_size_->Observe(1);
    }
    applied = ApplyBatchCapturedLocked(batch);
    if (!applied.ok()) {
      // Validate passed, so this cannot happen short of an engine bug —
      // but if it does, the log now has a record memory does not reflect.
      return commit_failed(applied.status().WithContext(
          "applied to log but not memory; recovery will replay it"));
    }
  }

  switch (options_.durability) {
    case DurabilityLevel::kGroupCommit:
      GLUENAIL_RETURN_NOT_OK(commit_failed(WaitDurable(lsn, lsn_epoch)));
      break;
    case DurabilityLevel::kAsync:
      MaybeAsyncSync();
      break;
    case DurabilityLevel::kSync:
    case DurabilityLevel::kNone:
      break;
  }
  if (m_wal_commits_ != nullptr) m_wal_commits_->Add();
  return applied;
}

Status Engine::WaitDurable(uint64_t lsn, uint64_t epoch) {
  std::unique_lock<std::mutex> ql(commit_mu_);
  for (;;) {
    if (commit_epoch_ != epoch) {
      // The log rotated while we waited: the checkpoint image that ended
      // our epoch captured this batch (it was applied to memory before
      // this wait), which is durability by other means. Our LSN is not
      // comparable to the rotated log's numbering, so stop watching it.
      return Status::OK();
    }
    if (commit_durable_ >= lsn) return Status::OK();
    if (commit_broken_) {
      return Status::IoError(StrCat(
          "wal is broken; commit lsn=", lsn,
          " is applied in memory but NOT durable — checkpoint to heal"));
    }
    if (!pump_running_ && !commit_leader_) {
      // No pump (it starts when the WAL opens in kGroupCommit mode, so
      // this is the bootstrap/fallback path): become the group's leader
      // and issue one fsync for everyone appended so far. Committers that
      // append while this leader waits on the disk park as followers and
      // are absorbed into the next group — the in-flight fsync is itself
      // a group window.
      commit_leader_ = true;
      LingerForGroupLocked(ql);
      if (commit_broken_) {
        commit_leader_ = false;
        commit_cv_.notify_all();
        continue;  // re-enter the broken branch above
      }
      const uint64_t durable_before = commit_durable_;
      ql.unlock();
      Status synced = wal_->Sync();
      ql.lock();
      commit_leader_ = false;
      if (wal_->durable_lsn() > commit_durable_) {
        commit_durable_ = wal_->durable_lsn();
      }
      commit_broken_ = commit_broken_ || wal_->broken();
      if (m_wal_group_size_ != nullptr &&
          commit_durable_ > durable_before) {
        m_wal_group_size_->Observe(commit_durable_ - durable_before);
      }
      commit_cv_.notify_all();
      if (!synced.ok() && commit_durable_ < lsn) return synced;
      continue;
    }
    // Follow: wait for the durable LSN to advance past us, the log to
    // break, or (when no pump runs) the leader seat to free up. With the
    // pump running the ack arrives on fsync cadence — around a hundred
    // microseconds — so a bounded yield-spin beats a futex park+wake:
    // yielding hands the CPU straight to the pump or a fellow committer,
    // and the whole group re-enters without paying per-thread wakeup
    // latency. Park on the cv only if the spin overruns a few fsyncs'
    // worth of time (slow disk, overloaded box).
    if (pump_running_) {
      constexpr auto kSpinCap = std::chrono::microseconds(1000);
      const auto spin_deadline = std::chrono::steady_clock::now() + kSpinCap;
      ql.unlock();
      bool done = false;
      for (;;) {
        // Lock-free poll: commit_durable_ is atomic precisely so this
        // spin never touches commit_mu_ (a broken log or a stopped pump
        // is caught by the locked re-check after the spin ends).
        if (commit_durable_.load(std::memory_order_acquire) >= lsn) {
          done = true;
          break;
        }
        if (std::chrono::steady_clock::now() >= spin_deadline) break;
        std::this_thread::yield();
      }
      ql.lock();
      if (done || commit_broken_) continue;  // re-enter the checks on top
    }
    commit_cv_.wait(ql, [this, lsn, epoch] {
      return commit_epoch_ != epoch || commit_durable_ >= lsn ||
             commit_broken_ || (!pump_running_ && !commit_leader_);
    });
  }
}

void Engine::LingerForGroupLocked(std::unique_lock<std::mutex>& ql) {
  if (options_.wal_group_linger.count() <= 0) return;
  // Yield-spin rather than a timed cv wait: the arrivals being collected
  // land microseconds apart, far below what timed waits can resolve. The
  // grace window refreshes on every new append and the lock is dropped
  // between checks so appenders can land.
  constexpr auto kGrace = std::chrono::microseconds(5);
  const auto start = std::chrono::steady_clock::now();
  const auto cap = start + options_.wal_group_linger;
  auto grace_end = start + kGrace;
  uint64_t group_end = commit_appended_;
  while (!commit_broken_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= cap || now >= grace_end) break;
    ql.unlock();
    std::this_thread::yield();
    ql.lock();
    if (commit_appended_ > group_end) {
      group_end = commit_appended_;
      grace_end = std::chrono::steady_clock::now() + kGrace;
    }
  }
}

void Engine::CommitPump() {
  std::unique_lock<std::mutex> ql(commit_mu_);
  for (;;) {
    pump_cv_.wait(ql, [this] {
      return pump_stop_ || (!commit_broken_ && !commit_leader_ &&
                            commit_durable_ < commit_appended_);
    });
    if (pump_stop_) return;
    // Claim the leader seat in the same critical section the wait
    // released in — DrainCommitsLocked and the kAsync piggyback syncer
    // respect it, and holding it is what keeps Rotate from closing the fd
    // under the fsync below (rotation needs state_mu_ plus a drain, and
    // the drain waits for this seat).
    commit_leader_ = true;
    LingerForGroupLocked(ql);
    const uint64_t durable_before = commit_durable_;
    ql.unlock();
    Status synced = wal_->Sync();
    (void)synced;  // a failure surfaces as commit_broken_ below
    ql.lock();
    commit_leader_ = false;
    if (wal_->durable_lsn() > commit_durable_) {
      commit_durable_ = wal_->durable_lsn();
    }
    commit_broken_ = commit_broken_ || wal_->broken();
    if (m_wal_group_size_ != nullptr && commit_durable_ > durable_before) {
      m_wal_group_size_->Observe(commit_durable_ - durable_before);
    }
    commit_cv_.notify_all();
    // Loop straight into the next wait: if commits landed during the
    // fsync, the predicate is already true and the next fsync starts
    // immediately — the in-flight fsync is the group window, and
    // back-to-back fsyncs fully overlap follower wakeup and re-entry.
  }
}

void Engine::StartCommitPumpLocked() {
  std::lock_guard<std::mutex> ql(commit_mu_);
  if (pump_running_) return;
  pump_running_ = true;
  pump_stop_ = false;
  commit_pump_ = std::thread([this] { CommitPump(); });
}

void Engine::StopCommitPump() {
  {
    std::lock_guard<std::mutex> ql(commit_mu_);
    if (!pump_running_) return;
    pump_stop_ = true;
    pump_cv_.notify_one();
  }
  commit_pump_.join();
  std::lock_guard<std::mutex> ql(commit_mu_);
  pump_running_ = false;
  pump_stop_ = false;
  // Any still-parked waiter may now self-elect as a leader.
  commit_cv_.notify_all();
}

void Engine::MaybeAsyncSync() {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const int64_t interval =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          options_.wal_fsync_interval)
          .count();
  int64_t last = last_async_sync_ns_.load(std::memory_order_relaxed);
  if (now - last < interval) return;
  {
    std::lock_guard<std::mutex> ql(commit_mu_);
    // Decide the sync will actually run BEFORE claiming the interval:
    // consuming it and then skipping would leave nothing synced until the
    // interval after next, stretching kAsync's worst-case un-synced
    // window toward two intervals. Skip entirely if someone is already
    // syncing (their in-flight fsync covers our appends or the very next
    // committer retries).
    if (commit_leader_ || commit_broken_ ||
        commit_durable_ >= commit_appended_) {
      return;
    }
    if (!last_async_sync_ns_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      return;  // another committer claimed this interval's sync
    }
    // Take the leader seat so Rotate can never close the fd under our
    // fsync.
    commit_leader_ = true;
  }
  Status synced = wal_->Sync();  // errors surface as broken on next commit
  (void)synced;
  std::lock_guard<std::mutex> ql(commit_mu_);
  commit_leader_ = false;
  if (wal_->durable_lsn() > commit_durable_) {
    commit_durable_ = wal_->durable_lsn();
  }
  commit_broken_ = commit_broken_ || wal_->broken();
  commit_cv_.notify_all();
}

Status Engine::DrainCommitsLocked() {
  if (!WalActiveLocked()) return Status::OK();
  std::unique_lock<std::mutex> ql(commit_mu_);
  commit_cv_.wait(ql, [this] { return !commit_leader_; });
  Status synced;
  if (!commit_broken_ && commit_durable_ < commit_appended_) {
    // Claim the seat in the same critical section the wait released in,
    // so no parked waiter can slip in between check and claim.
    commit_leader_ = true;
    ql.unlock();
    synced = wal_->Sync();
    ql.lock();
    commit_leader_ = false;
    if (wal_->durable_lsn() > commit_durable_) {
      commit_durable_ = wal_->durable_lsn();
    }
    commit_broken_ = commit_broken_ || wal_->broken();
    commit_cv_.notify_all();
  }
  // After this point no new leader can appear until state_mu_ is released:
  // every parked waiter's LSN is either durable (exits OK) or the log is
  // broken (exits with the error), and new appends need state_mu_.
  if (!synced.ok()) return synced.WithContext("draining wal commits");
  if (commit_broken_) {
    return Status::IoError("wal is broken; checkpoint to heal");
  }
  return Status::OK();
}

Status Engine::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return CheckpointLocked();
}

Status Engine::CheckpointLocked() {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument(
        "Checkpoint needs EngineOptions::data_dir");
  }
  // Drain best-effort: a broken log is exactly what a checkpoint heals
  // (memory is the truth and the image below captures it), so drain
  // errors do not stop the save.
  if (WalActiveLocked()) (void)DrainCommitsLocked();
  GLUENAIL_RETURN_NOT_OK(SaveDatabaseToFile(edb_, checkpoint_path()));
  if (options_.durability != DurabilityLevel::kNone) {
    if (WalActiveLocked()) {
      GLUENAIL_RETURN_NOT_OK(wal_->Rotate(wal_->next_lsn()));
    } else {
      // Durability configured but Recover() never ran (fresh directory
      // bootstrap): bring the log up now.
      GLUENAIL_ASSIGN_OR_RETURN(wal_, Wal::Create(wal_path(), 1));
    }
    std::lock_guard<std::mutex> ql(commit_mu_);
    // Everything appended so far is durable *via the checkpoint image*,
    // including batches whose fsync failed — but a failed sync also
    // rolled the log's next LSN back, so the old mirrors can sit ABOVE
    // the rotated log's numbering. Re-seed both from the log rather than
    // force-promoting commit_durable_: an inflated watermark would ack
    // post-rotation appends instantly with no fsync ever issued (the
    // pump's durable < appended predicate could never fire again). Any
    // waiter still parked on a pre-rotation LSN is released by the epoch
    // bump — its batch is in the image just saved.
    commit_epoch_++;
    commit_appended_ = wal_->next_lsn() - 1;
    commit_durable_ = commit_appended_;
    commit_broken_ = false;
    commit_cv_.notify_all();
  }
  if (WalActiveLocked() &&
      options_.durability == DurabilityLevel::kGroupCommit) {
    StartCommitPumpLocked();  // idempotent; covers the bootstrap path
  }
  if (m_checkpoints_ != nullptr) m_checkpoints_->Add();
  return Status::OK();
}

Result<RecoveryReport> Engine::Recover() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("Recover needs EngineOptions::data_dir");
  }
  // Refuse while point-in-time readers are live: their copies would stay
  // valid, but the engine swapping to a different history underneath a
  // reader mid-conversation is exactly the confusion snapshots exist to
  // prevent.
  const long live = snapshot_token_.use_count() - 1;
  if (live > 0) {
    return Status::InvalidArgument(
        StrCat("cannot recover while ", live,
               " live snapshot(s) are outstanding; drop them first"));
  }
  if (WalActiveLocked()) (void)DrainCommitsLocked();
  wal_.reset();
  {
    std::lock_guard<std::mutex> ql(commit_mu_);
    commit_appended_ = 0;
    commit_durable_ = 0;
    commit_broken_ = false;
  }
  // Clear in place so relation version counters stay monotone — cached
  // NAIL! memos and relation snapshots key off versions, and a fresh
  // Database would reset them.
  edb_.ForEach([](TermId, uint32_t, Relation* rel) { rel->Clear(); });
  idb_.ForEach([](TermId, uint32_t, Relation* rel) { rel->Clear(); });
  if (nail_engine_ != nullptr) nail_engine_->Invalidate();
  // Pre-recovery deltas describe the pre-crash history; a refresh against
  // them could serve memo rows the recovered (possibly salvaged) EDB never
  // derived. Drop them before the rebuild below.
  ivm_log_.Invalidate();

  RecoveryOptions ropts;
  ropts.mode = options_.wal_recovery;
  GLUENAIL_ASSIGN_OR_RETURN(
      RecoveryReport report,
      RecoverDatabase(&edb_, &pool_, checkpoint_path(), wal_path(), ropts));

  if (options_.durability != DurabilityLevel::kNone) {
    if (report.needs_reset) {
      // The old log is damaged past repair: capture the salvaged truth as
      // a fresh checkpoint and rotate to a clean log.
      GLUENAIL_RETURN_NOT_OK(SaveDatabaseToFile(edb_, checkpoint_path()));
      GLUENAIL_ASSIGN_OR_RETURN(
          wal_, Wal::Create(wal_path(), report.last_lsn + 1));
    } else {
      GLUENAIL_ASSIGN_OR_RETURN(
          wal_, Wal::Open(wal_path(), report.last_lsn + 1));
    }
    {
      std::lock_guard<std::mutex> ql(commit_mu_);
      commit_appended_ = wal_->next_lsn() - 1;
      commit_durable_ = wal_->durable_lsn();
      commit_broken_ = false;
    }
    if (options_.durability == DurabilityLevel::kGroupCommit) {
      StartCommitPumpLocked();
    }
  }
  last_recovery_ = report;
  return report;
}

// --- Replication ---------------------------------------------------------

Status Engine::ReplicaWriteFence(std::string_view op) const {
  std::string msg =
      StrCat(op, " refused: this engine is a read replica; apply "
                 "mutations at the primary");
  if (!options_.primary_hint.empty()) {
    msg = StrCat(msg, " (", options_.primary_hint, ")");
  }
  return Status::FailedPrecondition(std::move(msg));
}

Status Engine::ApplyReplicatedBatch(uint64_t lsn,
                                    const MutationBatch& batch) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (!options_.replica) {
    return Status::InvalidArgument(
        "ApplyReplicatedBatch on a non-replica engine");
  }
  const uint64_t applied =
      repl_applied_lsn_.load(std::memory_order_relaxed);
  if (lsn <= applied) {
    return Status::InvalidArgument(
        StrCat("replicated lsn ", lsn, " does not advance applied lsn ",
               applied, "; stream out of order"));
  }
  GLUENAIL_RETURN_NOT_OK(batch.Validate(&pool_));
  Result<MutationBatch::ApplyReport> report = ApplyBatchCapturedLocked(batch);
  if (!report.ok()) return report.status();
  repl_applied_lsn_.store(lsn, std::memory_order_release);
  if (m_repl_batches_ != nullptr) m_repl_batches_->Add();
  return Status::OK();
}

Status Engine::ResetFromCheckpointImage(uint64_t covers_lsn,
                                        std::string_view image) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  if (!options_.replica) {
    return Status::InvalidArgument(
        "ResetFromCheckpointImage on a non-replica engine");
  }
  const long live = snapshot_token_.use_count() - 1;
  if (live > 0) {
    return Status::InvalidArgument(
        StrCat("cannot bootstrap while ", live,
               " live snapshot(s) are outstanding; drop them first"));
  }
  // Validate into a scratch database first: the in-place clear below is
  // destructive, so a torn or corrupt image must be rejected before it
  // can take down the replica's current (stale but consistent) state.
  // Interning into the engine's pool is harmless — pools are append-only.
  Database staged(&pool_);
  std::istringstream in{std::string(image)};
  GLUENAIL_RETURN_NOT_OK(
      LoadDatabase(&staged, in).WithContext("checkpoint image"));
  // Same in-place clear Recover uses, keeping relation versions monotone
  // for cached memos and snapshots.
  edb_.ForEach([](TermId, uint32_t, Relation* rel) { rel->Clear(); });
  std::istringstream again{std::string(image)};
  GLUENAIL_RETURN_NOT_OK(
      LoadDatabase(&edb_, again).WithContext("checkpoint image"));
  if (nail_engine_ != nullptr) nail_engine_->Invalidate();
  ivm_log_.Invalidate();
  repl_applied_lsn_.store(covers_lsn, std::memory_order_release);
  if (m_repl_bootstraps_ != nullptr) m_repl_bootstraps_->Add();
  return Status::OK();
}

Result<Engine::CheckpointImage> Engine::ReadCheckpointImage() const {
  // Shared lock: CheckpointLocked saves the image and rotates the log
  // under the exclusive lock, so (file bytes, wal start_lsn) read here are
  // one consistent pair.
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "no WAL open; a primary needs durability on to ship snapshots");
  }
  CheckpointImage img;
  img.covers_lsn = wal_->start_lsn() - 1;
  std::ifstream in(checkpoint_path(), std::ios::binary);
  if (!in) {
    return Status::IoError(
        StrCat("cannot open checkpoint '", checkpoint_path(), "'"));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError(
        StrCat("error reading checkpoint '", checkpoint_path(), "'"));
  }
  img.bytes = std::move(buf).str();
  return img;
}

}  // namespace gluenail
