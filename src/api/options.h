/// \file options.h
/// \brief Engine-wide configuration knobs.
///
/// Every paper-relevant design choice is switchable so the benchmarks can
/// ablate it: execution strategy and early duplicate elimination (§9),
/// subgoal reordering (§3.1), NAIL! evaluation mode (§1/§10), and the
/// back-end index policy (§10).

#ifndef GLUENAIL_API_OPTIONS_H_
#define GLUENAIL_API_OPTIONS_H_

#include "src/exec/executor.h"
#include "src/nail/seminaive.h"
#include "src/plan/planner.h"
#include "src/storage/adaptive.h"

namespace gluenail {

struct EngineOptions {
  ExecOptions exec;
  PlannerOptions planner;
  /// How NAIL! predicates are evaluated (§1: the shipping architecture is
  /// compilation into Glue; direct and naive are test/bench baselines).
  NailMode nail_mode = NailMode::kCompiledGlue;
  /// Back-end index policy for newly created relations (§10).
  IndexPolicy index_policy = IndexPolicy::kAdaptive;
  AdaptiveConfig adaptive;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_OPTIONS_H_
