/// \file options.h
/// \brief Engine-wide configuration knobs.
///
/// Every paper-relevant design choice is switchable so the benchmarks can
/// ablate it: execution strategy and early duplicate elimination (§9),
/// subgoal reordering (§3.1), NAIL! evaluation mode (§1/§10), and the
/// back-end index policy (§10).

#ifndef GLUENAIL_API_OPTIONS_H_
#define GLUENAIL_API_OPTIONS_H_

#include <chrono>
#include <cstddef>
#include <string>

#include "src/exec/executor.h"
#include "src/nail/seminaive.h"
#include "src/plan/planner.h"
#include "src/storage/adaptive.h"
#include "src/storage/persistence.h"
#include "src/storage/wal.h"

namespace gluenail {

struct EngineOptions {
  ExecOptions exec;
  PlannerOptions planner;
  /// How NAIL! predicates are evaluated (§1: the shipping architecture is
  /// compilation into Glue; direct and naive are test/bench baselines).
  NailMode nail_mode = NailMode::kCompiledGlue;
  /// Back-end index policy for newly created relations (§10).
  IndexPolicy index_policy = IndexPolicy::kAdaptive;
  AdaptiveConfig adaptive;
  /// Worker threads for the parallel semi-naive evaluator: each fixpoint
  /// iteration partitions the delta across this many workers. 1 (the
  /// default) is exactly the old serial behavior. Values > 1 force the
  /// direct NAIL! mode (the compiled-Glue driver runs the fixpoint through
  /// generated Glue procedures, which the partitioner cannot split); the
  /// two modes are differential-tested equal.
  int num_threads = 1;

  // --- Incremental view maintenance (src/nail/ivm.cc,
  // docs/ARCHITECTURE.md "Incremental view maintenance") ------------------
  /// How stale NAIL! memos are refreshed. kAuto (the default) patches the
  /// memo from captured EDB deltas — counting maintenance for
  /// non-recursive predicates, DRed for recursive SCCs — whenever the
  /// structured write path (ApplyBatch / AddFact) captured every change
  /// since the last refresh and the deltas are small; anything else falls
  /// back to the full recompute. kOff restores the old
  /// always-recompute behavior; kForce skips the delta-size guard
  /// (tests/benches).
  IvmMode ivm_mode = IvmMode::kAuto;
  /// kAuto's fall-back guard: recompute fully when any relation's captured
  /// delta exceeds this fraction of its live size (delta joins stop paying
  /// off well before the delta reaches the base's size).
  double ivm_max_delta_fraction = 0.25;
  /// Per-relation cap on captured delta rows. An overflowing capture is
  /// dropped (bounded memory) and forces the next refresh to recompute.
  uint64_t ivm_max_delta_rows = 1u << 20;

  // --- Observability (src/obs/, docs/ARCHITECTURE.md "Observability") ----
  /// Queries and statements slower than this are captured in the engine's
  /// slow-query log (text, chosen plan with est vs. actual rows, replan
  /// count, top-3 spans). Zero (the default) disarms the log; while armed,
  /// every query is traced so slow ones have a trace to mine.
  std::chrono::nanoseconds slow_query_threshold{0};
  /// Finished traces kept per ring (the engine has one ring; each session
  /// has its own). Oldest evicted first.
  size_t trace_ring_capacity = 16;
  /// Entries kept by the slow-query log before eviction.
  size_t slow_query_log_capacity = 64;

  // --- Durability (src/storage/wal.h, docs/ARCHITECTURE.md "Failure
  // model & recovery") ----------------------------------------------------
  /// Directory holding the engine's durable state: `checkpoint.facts`
  /// (atomic EDB image) and `wal.log` (MutationBatch records appended
  /// since). Empty (the default) disables the WAL entirely; when set and
  /// durability > kNone, Engine::Recover() rebuilds from it and every
  /// batch applied through Session::Execute / Engine::ApplyBatch is logged
  /// before it touches memory.
  std::string data_dir;
  /// What a mutation ack promises (see DurabilityLevel): nothing (kNone),
  /// logged-not-yet-synced (kAsync), per-batch fsync (kSync), or shared
  /// leader fsync (kGroupCommit).
  DurabilityLevel durability = DurabilityLevel::kNone;
  /// kAsync only: minimum spacing between the piggybacked background
  /// fsyncs that bound how much a crash can lose.
  std::chrono::microseconds wal_fsync_interval{500};
  /// kGroupCommit only: cap on how long the commit pump lingers collecting
  /// followers before issuing a group's fsync. The linger is an adaptive
  /// yield-spin that keeps extending only while new appends keep arriving,
  /// so a solo writer stops after one empty grace slice and a full writer
  /// pool is collected into a single fsync; the cap only bounds the worst
  /// case. 0 disables it (pure absorption: the in-flight fsync is the
  /// only group window — smaller groups, slightly lower latency).
  std::chrono::microseconds wal_group_linger{50};
  /// How Engine::Recover() treats damage beyond a torn WAL tail: kStrict
  /// refuses, kSalvage keeps every record that checksums and rotates to a
  /// fresh log.
  RecoveryMode wal_recovery = RecoveryMode::kStrict;

  // --- Replication (src/server/replication.h, docs/ARCHITECTURE.md
  // "Replication") ---------------------------------------------------------
  /// Run as a read replica: client mutations are refused with
  /// kFailedPrecondition (apply them at the primary), and state arrives
  /// instead as WAL batches shipped from the primary, applied through
  /// Engine::ApplyReplicatedBatch — the same ApplyBatch/IVM path, so
  /// NAIL! memos stay incrementally fresh on replicas too.
  bool replica = false;
  /// Where the refusal points the client ("host:port"); advisory text
  /// only, set by --replicate-from.
  std::string primary_hint;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_OPTIONS_H_
