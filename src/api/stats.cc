#include "src/api/stats.h"

#include "src/common/strings.h"

namespace gluenail {

std::string FormatCompileStats(const CompileStats& stats) {
  return StrCat(stats.modules, " module(s), ", stats.procedures,
                " procedure(s) + ", stats.generated_procedures,
                " generated, ", stats.statements, " statement plan(s), ",
                stats.nail_rules, " NAIL! rule(s) in ", stats.nail_strata,
                " strata (", stats.compile_seconds, "s)");
}

std::string FormatExecStats(const ExecStats& stats) {
  return StrCat(stats.statements, " statements, ", stats.records_produced,
                " records, ", stats.pipeline_breaks, " pipeline breaks, ",
                stats.duplicates_removed, " dups removed, ",
                stats.proc_calls, " proc calls, ", stats.loop_iterations,
                " loop iterations, ", stats.head_tuples, " head tuples, ",
                stats.match_rows, " match rows, ", stats.compare_rows,
                " compare rows, ", stats.batch_segments,
                " batch segments");
}

std::string FormatStorageStats(const StorageStats& stats) {
  return StrCat(stats.relations, " relations, ", stats.live_tuples,
                " tuples, ", stats.arena_bytes, " arena bytes, ",
                stats.dedup_probes, " dedup probes, ", stats.scan_rows,
                " scan rows, ", stats.index_lookups, " index lookups, ",
                stats.index_probe_rows, " probe rows, ", stats.indexes_built,
                " indexes built, ", stats.stats_rebuilds, " stats rebuilds");
}

}  // namespace gluenail
