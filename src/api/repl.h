/// \file repl.h
/// \brief The interactive Glue-Nail shell (library part; tools/gluenail.cc
/// is the thin executable around it).
///
/// Input forms:
///   edge(1,2).                 insert a ground fact
///   p(X) := q(X) & X > 2.      execute a Glue statement (also += -= +=[])
///   repeat ... until ...;      execute a loop statement
///   ?- path(1, X).             query a conjunctive goal
///   :load FILE                 load (and link) a program file
///   :edb FILE | :save FILE     load / save the EDB (§10 persistence)
///   :explain STMT.             show the compiled plan
///   :relations                 list EDB relations
///   :stats                     execution statistics
///   :help   :quit
///
/// Multi-line input is supported: lines accumulate until a terminating
/// '.' or ';' (or a ':' command, which is always one line).

#ifndef GLUENAIL_API_REPL_H_
#define GLUENAIL_API_REPL_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "src/api/engine.h"
#include "src/api/session.h"

namespace gluenail {

struct ReplOptions {
  /// Print the "gluenail> " prompt (off when scripting).
  bool prompt = true;
  /// Echo errors to the output stream (always on; kept for symmetry).
  bool banner = true;
};

class Repl {
 public:
  Repl(Engine* engine, std::istream* in, std::ostream* out,
       ReplOptions options = {});

  /// Reads and executes until :quit or EOF. Returns OK on a clean exit;
  /// individual command errors are printed, not returned.
  Status Run();

  /// Executes one complete input (a statement/fact/query/command).
  /// Exposed for tests. Sets *quit on :quit.
  Status Execute(const std::string& input, bool* quit);

 private:
  void PrintQueryResult(const std::vector<std::string>& vars,
                        const std::vector<Tuple>& rows);
  /// Dispatches \p cmd through the unified Command surface and prints
  /// Response::text (the shared path for meta-commands and mutations).
  Status RunCommand(const Command& cmd);

  Engine* engine_;
  /// Queries, mutations, and meta-commands dispatch through this session's
  /// Execute(Command) — the same entry point the network server uses.
  Session session_;
  std::istream* in_;
  std::ostream* out_;
  ReplOptions options_;
  /// Most recent trace from either ring (session for queries, engine for
  /// statements); what `:trace` renders.
  std::shared_ptr<const QueryTrace> last_trace_;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_REPL_H_
