#include "src/api/session.h"

namespace gluenail {

Status Session::EnterRead(std::shared_lock<std::shared_mutex>* lock) {
  // Freshness retry loop: probe under a shared lock; if the engine is not
  // read-ready (no program linked yet, or the NAIL! memo is stale),
  // release, refresh under the writer lock, and re-probe. Another writer
  // can slip in between the two locks, hence the loop; it converges
  // because refreshes leave the engine read-ready and writers are finite.
  for (int attempt = 0; attempt < 64; ++attempt) {
    lock->lock();
    if (engine_->ReadReadyLocked()) return Status::OK();
    lock->unlock();
    {
      std::unique_lock<std::shared_mutex> writer(engine_->state_mu_);
      GLUENAIL_RETURN_NOT_OK(engine_->PrepareForReadLocked());
    }
  }
  return Status::RuntimeError(
      "session read could not reach a quiescent state (writer livelock?)");
}

Result<Engine::QueryResult> Session::Query(std::string_view goal,
                                           const QueryOptions& options) {
  // Install the sink before entering read state: when this session is the
  // reader that upgrades to refresh a stale NAIL! memo, the refresh's
  // fixpoint spans (usually the dominant cost) belong to this trace. The
  // sink is thread-local, so pre-lock installation races with nothing.
  Engine::QueryObs obs;
  engine_->BeginQueryObs(&obs, options.trace);
  std::shared_lock<std::shared_mutex> lock(engine_->state_mu_,
                                           std::defer_lock);
  GLUENAIL_RETURN_NOT_OK(EnterRead(&lock));
  engine_->SampleReplanBaseline(&obs);
  ExecControl ctl;
  ctl.deadline = options.deadline;
  ctl.cancel = options.cancel;
  ctl.limits = options.limits;
  const ExecControl* ctl_ptr = options.guarded() ? &ctl : nullptr;
  if (ctl_ptr != nullptr) {
    // Fail fast on pre-cancelled tokens / expired deadlines, before any
    // evaluation. A cancelled read releases the shared lock via RAII, so
    // the engine stays clean for the next query on this session.
    GLUENAIL_RETURN_NOT_OK(ctl.Check());
  }
  Result<Engine::QueryResult> result =
      [&]() -> Result<Engine::QueryResult> {
    try {
      if (options.strategy == QueryStrategy::kMagic) {
        // Magic evaluation writes only a private scratch IDB; the shared
        // EDB stays read-only.
        ExecOptions opts;
        opts.read_only_storage = true;
        opts.writable_private_idb = true;
        opts.control = ctl_ptr;
        return engine_->QueryMagicWith(goal, opts);
      }
      ExecOptions opts = engine_->options_.exec;
      opts.read_only_storage = true;
      opts.control = ctl_ptr;
      RuntimeEnv env;
      env.io = engine_->io_;
      env.hosts = &engine_->hosts_;
      env.nail = engine_->nail_engine_.get();
      Executor exec(&engine_->linked_->program, &engine_->edb_,
                    &engine_->idb_, &engine_->pool_, env, opts);
      return engine_->QueryGoalWith(&exec, goal);
    } catch (const std::bad_alloc&) {
      return Status::ResourceExhausted("allocation failed during query");
    }
  }();
  engine_->FinishQueryObs(&obs, goal, ring_.get());
  return result;
}

Result<std::vector<Tuple>> Session::Call(std::string_view name,
                                         const std::vector<Tuple>& inputs) {
  std::shared_lock<std::shared_mutex> lock(engine_->state_mu_,
                                           std::defer_lock);
  GLUENAIL_RETURN_NOT_OK(EnterRead(&lock));
  ExecOptions opts = engine_->options_.exec;
  opts.read_only_storage = true;
  RuntimeEnv env;
  env.io = engine_->io_;
  env.hosts = &engine_->hosts_;
  env.nail = engine_->nail_engine_.get();
  Executor exec(&engine_->linked_->program, &engine_->edb_, &engine_->idb_,
                &engine_->pool_, env, opts);
  return engine_->CallWith(&exec, name, inputs);
}

Result<std::vector<Tuple>> Session::RelationContents(
    std::string_view name_term, uint32_t arity) {
  std::shared_lock<std::shared_mutex> lock(engine_->state_mu_,
                                           std::defer_lock);
  GLUENAIL_RETURN_NOT_OK(EnterRead(&lock));
  return engine_->RelationContentsLocked(name_term, arity);
}

Result<EngineSnapshot> Session::Snapshot() {
  std::shared_lock<std::shared_mutex> lock(engine_->state_mu_,
                                           std::defer_lock);
  GLUENAIL_RETURN_NOT_OK(EnterRead(&lock));
  return engine_->SnapshotLocked();
}

Status Session::ExecuteStatement(std::string_view statement) {
  return engine_->ExecuteStatement(statement);
}

Status Session::AddFact(std::string_view fact) {
  return engine_->AddFact(fact);
}

}  // namespace gluenail
