/// \file stats.h
/// \brief Compile-time and aggregate engine statistics.

#ifndef GLUENAIL_API_STATS_H_
#define GLUENAIL_API_STATS_H_

#include <cstdint>
#include <string>

#include "src/exec/executor.h"

namespace gluenail {

struct CompileStats {
  uint64_t modules = 0;
  uint64_t procedures = 0;          ///< user procedures
  uint64_t generated_procedures = 0;///< NAIL! strata + driver
  uint64_t statements = 0;          ///< compiled statement plans
  uint64_t nail_rules = 0;
  uint64_t nail_predicates = 0;
  uint64_t nail_strata = 0;
  double compile_seconds = 0;
};

/// Aggregate storage-layer counters over every EDB and IDB relation
/// (Relation::counters() plus current arena footprints).
struct StorageStats {
  uint64_t relations = 0;
  uint64_t live_tuples = 0;
  /// Bytes currently held by tuple arenas, dedup tables, and indexes.
  uint64_t arena_bytes = 0;
  uint64_t dedup_probes = 0;
  uint64_t scan_rows = 0;
  uint64_t index_lookups = 0;
  /// Rows walked along index probe chains (hash-bucket collisions plus
  /// true key matches) — the index-side complement of scan_rows.
  uint64_t index_probe_rows = 0;
  uint64_t indexes_built = 0;
  /// NDV-sketch rebuilds triggered by erase churn or compaction.
  uint64_t stats_rebuilds = 0;
};

/// One-line human-readable summary (README quickstart prints this).
std::string FormatCompileStats(const CompileStats& stats);
std::string FormatExecStats(const ExecStats& stats);
std::string FormatStorageStats(const StorageStats& stats);

}  // namespace gluenail

#endif  // GLUENAIL_API_STATS_H_
