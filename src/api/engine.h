/// \file engine.h
/// \brief The Glue-Nail engine: the library's public entry point.
///
/// Typical use (see examples/quickstart.cc):
/// \code
///   gluenail::Engine engine;
///   engine.RegisterHostProcedure(...);             // optional
///   GLUENAIL_RETURN_NOT_OK(engine.LoadProgram(source_text));
///   engine.AddFact("edge(1,2).");
///   auto rows = engine.Query("tc_e(1, Y)");        // call a procedure
///   auto rows2 = engine.Query("path(1, Y)");       // or a NAIL! predicate
///   engine.ExecuteStatement("seen(X) += path(1,X).");
///   engine.SaveEdbFile("data.facts");              // §10 persistence
/// \endcode
///
/// Concurrency model (see docs/ARCHITECTURE.md, "Concurrency model"):
/// every Engine method is a *write* entry point — it takes the engine's
/// writer lock and is safe to call from any thread, one at a time.
/// Concurrent *readers* use Session handles (one per client thread,
/// Engine::OpenSession): Session reads take a shared lock and evaluate
/// against read-only storage, so any number of read sessions proceed in
/// parallel with each other and block only while a writer runs. Immutable
/// point-in-time views come from Engine::snapshot() / Session::Snapshot().

#ifndef GLUENAIL_API_ENGINE_H_
#define GLUENAIL_API_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/analysis/resolver.h"
#include "src/api/options.h"
#include "src/api/stats.h"
#include "src/common/deadline.h"
#include "src/obs/metrics.h"
#include "src/obs/slow_query.h"
#include "src/obs/trace.h"
#include "src/storage/database.h"
#include "src/storage/delta_log.h"
#include "src/storage/mutation_batch.h"
#include "src/storage/persistence.h"
#include "src/storage/recovery.h"
#include "src/storage/snapshot.h"
#include "src/storage/wal.h"

namespace gluenail {

class Session;

/// How Query evaluates its goal.
enum class QueryStrategy {
  /// Bottom-up: bring every NAIL! predicate to fixpoint, then filter.
  kBottomUp,
  /// Goal-directed magic-sets rewriting (E7); single-atom goals only.
  kMagic,
};

struct QueryOptions {
  QueryStrategy strategy = QueryStrategy::kBottomUp;

  // --- Guardrails (see src/common/deadline.h) ----------------------------
  /// Wall-clock bound; an expired deadline aborts with Status::Cancelled.
  Deadline deadline;
  /// Cooperative cancellation; trip from another thread to abort with
  /// Status::Cancelled. Default-constructed tokens are inert.
  CancelToken cancel;
  /// Tuple / arena-byte budgets; exceeding one aborts the query with
  /// Status::ResourceExhausted before memory runs away.
  ResourceLimits limits;

  /// True when any guardrail is active (the unguarded path stays
  /// zero-overhead).
  bool guarded() const {
    return !deadline.infinite() || cancel.valid() || !limits.unlimited();
  }

  // --- Observability -----------------------------------------------------
  /// Record a structured trace of this query (span tree + chosen plans with
  /// actual rows) into the engine's/session's trace ring. Queries also
  /// trace implicitly while the slow-query log is armed
  /// (EngineOptions::slow_query_threshold > 0), but only explicit traces
  /// are pushed to the ring.
  bool trace = false;
};

/// Export format for Engine::DumpMetrics.
enum class MetricsFormat {
  kPrometheus,  ///< text exposition format (# HELP / # TYPE + samples)
  kJson,
};

struct ExplainOptions {
  /// EXPLAIN ANALYZE: execute the statement and render per-op actual row
  /// counts alongside the planner's estimates.
  bool analyze = false;
};

/// An immutable, consistent view of the engine's databases at one point in
/// time. Copyable and cheap to pass around (relation contents are shared,
/// not duplicated); stays valid after the engine mutates or is destroyed —
/// except terms(), which borrows the engine's pool.
class EngineSnapshot {
 public:
  EngineSnapshot() = default;

  /// The engine's term pool (terms are append-only, so reading through a
  /// snapshot is always safe while the engine is alive).
  const TermPool& terms() const { return *pool_; }
  const DatabaseSnapshot& edb() const { return edb_; }
  const DatabaseSnapshot& idb() const { return idb_; }

 private:
  friend class Engine;
  const TermPool* pool_ = nullptr;
  DatabaseSnapshot edb_;
  DatabaseSnapshot idb_;
  /// Liveness token shared with the engine: while any snapshot copy is
  /// alive, Engine::Recover refuses to swap the state out from under it
  /// (the contents stay *valid* — relation data is copied — but readers
  /// holding a snapshot mid-conversation should not silently observe the
  /// engine jump to a different history).
  std::shared_ptr<const int> guard_;
};

class Engine {
 public:
  Engine();
  explicit Engine(EngineOptions options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Concurrent-read surface -------------------------------------------

  /// Opens a session handle. One per client thread; see session.h.
  Session OpenSession();

  /// Immutable view of the current EDB + IDB (NAIL! predicates brought up
  /// to date first). Cheap when nothing changed since the last snapshot.
  Result<EngineSnapshot> snapshot();

  /// Read-only access to the term pool. Interning and accessors are
  /// thread-safe, so this needs no locking.
  const TermPool& terms() const { return pool_; }

  /// Parses and interns a ground term, e.g. "f(a,1)" or "42". The pool is
  /// thread-safe, so this is callable from any thread at any time.
  Result<TermId> InternTerm(std::string_view text);

  /// Runs \p fn with exclusive access to the raw databases and pool — the
  /// explicit escape hatch for callers that need more than terms() /
  /// InternTerm() / snapshot() / AddFact(). Structured fact-level updates
  /// should prefer a MutationBatch dispatched through
  /// Session::Execute(Command) — the serializable surface the wire
  /// protocol, the REPL, and (soon) the WAL share; this hook remains the
  /// thin unstructured shim underneath it.
  Status Mutate(const std::function<Status(Database* edb, Database* idb,
                                           TermPool* pool)>& fn);

  // --- Write entry points (serialized behind the writer lock) ------------

  /// Registers a foreign procedure (§10 future work: the foreign-language
  /// interface). Must precede LoadProgram so imports can resolve to it.
  Status RegisterHostProcedure(HostProcedure host);

  /// Parses, links, and compiles \p source (one or more modules),
  /// replacing any previously loaded program. Module-level facts are
  /// inserted into the EDB.
  Status LoadProgram(std::string_view source);

  /// LoadProgram from a file.
  Status LoadProgramFile(const std::string& path);

  /// Executes one ad-hoc Glue statement (assignment or repeat loop)
  /// against the loaded program's exports, the EDB, and the NAIL!
  /// predicates. Unknown plain names resolve to EDB relations.
  Status ExecuteStatement(std::string_view statement);
  /// ExecuteStatement with guardrails and tracing (QueryOptions::trace
  /// lands the statement's trace in the engine's trace ring).
  Status ExecuteStatement(std::string_view statement,
                          const QueryOptions& options);

  /// Answer set of a conjunctive goal, e.g. "path(1,X) & X != 3".
  struct QueryResult {
    /// Goal variables in first-appearance order; one column each.
    std::vector<std::string> vars;
    /// Distinct answers in canonical term order.
    std::vector<Tuple> rows;
  };
  /// Convenience shim over the unified Command surface: equivalent to
  /// OpenSession().Execute(Command::Query(goal)) but running on the writer
  /// path with full QueryOptions (cancel tokens, absolute deadlines).
  Result<QueryResult> Query(std::string_view goal) {
    return Query(goal, QueryOptions{});
  }
  /// Query with an explicit evaluation strategy (kBottomUp | kMagic).
  Result<QueryResult> Query(std::string_view goal,
                            const QueryOptions& options);

  /// Calls an exported procedure by name on \p inputs (each of the
  /// procedure's bound arity); returns the full (bound+free) result rows.
  Result<std::vector<Tuple>> Call(std::string_view name,
                                  const std::vector<Tuple>& inputs);

  /// EXPLAIN: compiles \p statement ad-hoc and renders its plan(s) —
  /// access paths, keyed columns, barriers, head action, and the physical
  /// planner's estimated row count per op.
  Result<std::string> ExplainStatement(std::string_view statement) {
    return ExplainStatement(statement, ExplainOptions{});
  }
  /// EXPLAIN ANALYZE (options.analyze): additionally *runs* the statement
  /// — side effects included — and renders actual rows next to each op's
  /// estimate, so misestimates are visible at a glance.
  Result<std::string> ExplainStatement(std::string_view statement,
                                       const ExplainOptions& options);

  /// Inserts one ground fact, "edge(1,2)." (trailing dot optional).
  Status AddFact(std::string_view fact);

  /// §10: EDB persistence between runs. Saves are crash-safe (temp file +
  /// fsync + atomic rename); loads are all-or-nothing under kStrict.
  Status SaveEdbFile(const std::string& path);
  Status LoadEdbFile(const std::string& path);
  /// Load with explicit recovery options (RecoveryMode::kSalvage keeps the
  /// checksummed-good relations of a torn file); reports what was loaded
  /// and what was dropped.
  Result<LoadReport> LoadEdbFile(const std::string& path,
                                 const LoadOptions& options);

  // --- Durability (EngineOptions::data_dir + durability) ------------------

  /// Applies a MutationBatch with the configured durability: the batch is
  /// validated, appended to the WAL, applied to the EDB, and the call
  /// returns only once the ack's promise holds (kGroupCommit/kSync: the
  /// record is fsynced; kAsync: it is logged; kNone / no WAL: it is
  /// applied). This is the single write path the wire protocol, the REPL,
  /// and AddFact share when durability is on.
  Result<MutationBatch::ApplyReport> ApplyBatch(const MutationBatch& batch);

  /// Rebuilds the EDB from the data directory: loads the checkpoint,
  /// replays the WAL tail (EngineOptions::wal_recovery decides how much
  /// damage is tolerated), and opens the log for appending. Refuses while
  /// live EngineSnapshots are outstanding — readers must drop their views
  /// of the old history first. Call once at boot, before serving.
  Result<RecoveryReport> Recover();

  /// Writes an atomic checkpoint of the EDB to the data directory and
  /// rotates the WAL behind it (drains in-flight commits first). A broken
  /// log (failed sync) is healed by this: the checkpoint captures the
  /// in-memory truth and the rotation gives it a fresh file.
  Status Checkpoint();

  /// The open WAL, or nullptr when durability is off. The pointer stays
  /// valid while the engine is alive (Rotate happens in place).
  const Wal* wal() const { return wal_.get(); }
  /// Highest LSN known durable (0 = no WAL or nothing synced).
  uint64_t durable_lsn() const;
  /// The report of the last successful Recover(), if any.
  std::optional<RecoveryReport> last_recovery() const;
  /// Paths derived from EngineOptions::data_dir.
  std::string checkpoint_path() const;
  std::string wal_path() const;

  // --- Replication (EngineOptions::replica; src/server/replication.h) ----

  /// True when this engine is a read replica (EngineOptions::replica):
  /// mutations are refused and state arrives via ApplyReplicatedBatch.
  bool replica() const { return options_.replica; }
  /// The kFailedPrecondition a replica answers mutations with, pointing
  /// the client at the primary (EngineOptions::primary_hint).
  Status ReplicaWriteFence(std::string_view op) const;

  /// Applies one batch shipped from the primary's WAL (replica mode only;
  /// bypasses the write fence). Runs the same apply/IVM-capture path as
  /// ApplyBatch, then advances the replica's applied-LSN watermark to
  /// \p lsn. Out-of-order or replayed LSNs are refused — the stream must
  /// deliver the primary's durable prefix in order.
  Status ApplyReplicatedBatch(uint64_t lsn, const MutationBatch& batch);

  /// Replaces the EDB wholesale with a primary checkpoint image (snapshot
  /// bootstrap: the replica's cursor was rotated out of the primary's
  /// log). Refuses while live EngineSnapshots are outstanding, exactly
  /// like Recover. The applied watermark becomes \p covers_lsn.
  Status ResetFromCheckpointImage(uint64_t covers_lsn, std::string_view image);

  /// Replica progress, readable from any thread: highest LSN applied
  /// locally, and the primary's durable LSN as of its last heartbeat.
  /// Their difference is the replication lag /healthz and the
  /// gluenail_repl_* metrics report.
  uint64_t replica_applied_lsn() const {
    return repl_applied_lsn_.load(std::memory_order_acquire);
  }
  uint64_t replica_primary_lsn() const {
    return repl_primary_lsn_.load(std::memory_order_acquire);
  }
  /// Records the primary's durable LSN from a heartbeat (replication
  /// client only).
  void set_replica_primary_lsn(uint64_t lsn) {
    repl_primary_lsn_.store(lsn, std::memory_order_release);
  }

  /// Primary side: one consistent (checkpoint image, covered LSN) pair
  /// for bootstrapping a subscriber whose requested LSN was rotated away.
  /// The image is the checkpoint file's bytes; covers_lsn is the last LSN
  /// folded into it (wal start_lsn - 1).
  struct CheckpointImage {
    uint64_t covers_lsn = 0;
    std::string bytes;
  };
  Result<CheckpointImage> ReadCheckpointImage() const;

  /// Sorted contents of an EDB relation or NAIL! predicate instance.
  Result<std::vector<Tuple>> RelationContents(std::string_view name_term,
                                              uint32_t arity);

  /// Redirect the I/O builtins.
  void SetIo(std::ostream* out, std::istream* in);

  // --- Observability (src/obs/) ------------------------------------------

  /// Renders every registered metric — engine-owned query counters plus
  /// pull metrics over storage, executor, planner, semi-naive, and
  /// persistence counters. Takes the shared lock, so it is safe to call
  /// from a scrape thread while queries run.
  std::string DumpMetrics(MetricsFormat format = MetricsFormat::kPrometheus)
      const;
  /// The engine's metric registry, for callers registering their own.
  MetricsRegistry& metrics() { return metrics_; }
  /// Most recent explicitly traced query on the writer path (null when
  /// nothing was traced yet). Session traces land in the session's ring.
  std::shared_ptr<const QueryTrace> last_trace() const {
    return trace_ring_.Last();
  }
  TraceRing& trace_ring() { return trace_ring_; }
  const SlowQueryLog& slow_query_log() const { return slow_log_; }

  const CompileStats& compile_stats() const { return compile_stats_; }
  /// Statistics of the writer-path executor. Read while quiescent.
  const ExecStats& exec_stats() const;
  void ResetExecStats();
  /// Storage-layer counters aggregated over every EDB and IDB relation.
  StorageStats storage_stats() const;
  NailEngine* nail_engine() { return nail_engine_.get(); }
  const CompiledProgram* program() const {
    return linked_ ? &linked_->program : nullptr;
  }

 private:
  friend class Session;

  /// Per-query observability state: a sink installed thread-locally for
  /// the query's duration (when tracing is on, explicitly or via the armed
  /// slow-query log) plus the timing needed by the latency histogram and
  /// the slow-query check. Lives on the caller's stack; Begin/Finish
  /// bracket one query or statement.
  struct QueryObs {
    bool active = false;      ///< a sink is installed
    bool want_trace = false;  ///< push the finished trace to \p ring
    TraceSink sink;
    std::chrono::steady_clock::time_point start;
    uint64_t replans_before = 0;
    /// NAIL! refresh sequence at query start; a different value at finish
    /// means this query paid for a memo refresh, and the slow-query entry
    /// reports how it ran (full vs. counting vs. DRed, delta sizes).
    uint64_t refresh_seq_before = 0;
    std::optional<TraceScope> scope;
  };
  void BeginQueryObs(QueryObs* obs, bool want_trace);
  /// Records the replan counter the query started from, so the slow-query
  /// entry can report replans-during-query. Requires state_mu_ held (any
  /// mode) — unlike BeginQueryObs, which may run before the lock.
  void SampleReplanBaseline(QueryObs* obs);
  /// Observes latency, pushes the trace to \p ring (explicit traces only),
  /// and records a slow-query entry when over threshold. \p ring may be
  /// the engine's or a session's.
  void FinishQueryObs(QueryObs* obs, std::string_view query, TraceRing* ring);
  void RegisterBuiltinMetrics();
  /// storage_stats() body without locking (for metric pull callbacks,
  /// which run under DumpMetrics' shared lock).
  StorageStats StorageStatsNoLock() const;

  Status EnsureLoadedLocked();
  /// Compiles an ad-hoc statement by wrapping it in a throwaway procedure.
  Result<CompiledProcedure> CompileAdhoc(const ast::Statement& stmt);

  Status LoadProgramLocked(std::string_view source);
  Status ExecuteStatementLocked(std::string_view statement);
  Status AddFactLocked(std::string_view fact);
  /// Applies \p batch with every actual change captured into ivm_log_ and
  /// the log sealed at the post-batch EDB snapshot. The single apply both
  /// WAL paths of ApplyBatch share.
  Result<MutationBatch::ApplyReport> ApplyBatchCapturedLocked(
      const MutationBatch& batch);

  /// True when reads can proceed under a shared lock: a program is linked
  /// and the NAIL! materialization matches the current EDB.
  bool ReadReadyLocked() const;
  /// Brings the engine into ReadReady state; needs the writer lock.
  Status PrepareForReadLocked();

  /// Goal evaluation through \p exec (the writer path passes executor_,
  /// read sessions pass a private read-only executor).
  Result<QueryResult> QueryGoalWith(Executor* exec, std::string_view goal);
  Result<std::vector<Tuple>> CallWith(Executor* exec, std::string_view name,
                                      const std::vector<Tuple>& inputs);
  Result<QueryResult> QueryMagicWith(std::string_view goal,
                                     const ExecOptions& exec_opts);
  Result<std::vector<Tuple>> RelationContentsLocked(
      std::string_view name_term, uint32_t arity);
  EngineSnapshot SnapshotLocked();

  // --- Durability internals (see ApplyBatch in engine.cc for the lock
  // protocol: state_mu_ -> commit_mu_ nests; commit leaders take only
  // commit_mu_ + the WAL's internal mutex, never state_mu_) ---------------
  /// True when a WAL is open and mutations must be logged.
  bool WalActiveLocked() const { return wal_ != nullptr; }
  /// Blocks until every appended LSN is durable (or the log is broken).
  /// Called with state_mu_ held exclusively — safe because commit leaders
  /// never take state_mu_, so they can finish while we wait.
  Status DrainCommitsLocked();
  /// Group-commit wait: returns once \p lsn is durable, or once the log
  /// has rotated out from under the wait (\p epoch, captured under
  /// commit_mu_ when the LSN was appended, no longer matches) — a
  /// rotation means a checkpoint image captured the batch, which is
  /// durability by other means. While the commit pump runs, committers
  /// are pure followers; without it (pump not yet started, or after a
  /// failed start) waiters elect a leader among themselves that syncs
  /// once for the whole group and wakes everyone.
  Status WaitDurable(uint64_t lsn, uint64_t epoch);
  /// kAsync: piggybacked background sync, at most once per fsync interval.
  void MaybeAsyncSync();
  /// Optional pre-fsync linger (wal_group_linger > 0): yield-spins with
  /// commit_mu_ dropped between checks, extending while new appends keep
  /// arriving. \p ql must hold commit_mu_ and holds it again on return.
  void LingerForGroupLocked(std::unique_lock<std::mutex>& ql);
  /// The kGroupCommit syncer thread: back-to-back fsyncs whenever there
  /// are unsynced appends, so the in-flight fsync is the group window —
  /// commits landing during one fsync are absorbed into the next.
  void CommitPump();
  /// Starts the pump once (kGroupCommit; called when the WAL opens).
  void StartCommitPumpLocked();
  /// Stops and joins the pump; called before teardown drains.
  void StopCommitPump();
  /// Checkpoint body; requires state_mu_ held exclusively.
  Status CheckpointLocked();

  /// Single-writer / shared-reader lock over all engine state. Engine
  /// methods hold it exclusively; Session reads hold it shared.
  mutable std::shared_mutex state_mu_;

  EngineOptions options_;
  TermPool pool_;
  Database edb_;
  Database idb_;
  /// Cardinality estimates for the physical planner, answered from the
  /// live relations' incrementally maintained statistics (EDB first, then
  /// IDB for NAIL! storage relations).
  DatabasePairStatsProvider stats_provider_{&edb_, &idb_};
  std::vector<HostProcedure> hosts_;
  std::unique_ptr<LinkedProgram> linked_;
  std::unique_ptr<NailEngine> nail_engine_;
  /// Captured EDB deltas feeding delta-driven memo maintenance
  /// (src/nail/ivm.cc): the structured write path records every tuple that
  /// actually changed into it; the NAIL! refresh consumes and rebases it.
  /// Recover / LoadEdbFile invalidate it explicitly; unstructured writes
  /// (Mutate, ad-hoc statements) are caught by its version watermark.
  DeltaLog ivm_log_;
  std::unique_ptr<Executor> executor_;
  IoEnv io_;
  CompileStats compile_stats_;

  // --- Durability --------------------------------------------------------
  /// Open WAL (null when durability is off). Guarded by state_mu_ for
  /// open/rotate/reset; Append/Sync are internally synchronized so commit
  /// leaders use it without state_mu_.
  std::unique_ptr<Wal> wal_;
  /// Group-commit state. commit_mu_ nests *inside* state_mu_; the
  /// condition variable carries both "a new group leader may be needed"
  /// and "the durable LSN advanced".
  mutable std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  /// Mirrors of the WAL's progress, maintained under commit_mu_ so waiters
  /// never need the WAL's own mutex.
  uint64_t commit_appended_ = 0;  ///< highest LSN appended
  /// Highest LSN fsynced. Written under commit_mu_ like the rest, but
  /// atomic so WaitDurable's follower spin can poll it without taking the
  /// lock — eight spinners hammering commit_mu_ would starve the pump's
  /// post-fsync mirror update, which is exactly what they are waiting for.
  std::atomic<uint64_t> commit_durable_{0};
  bool commit_broken_ = false;    ///< sticky mirror of wal_->broken()
  bool commit_leader_ = false;    ///< a leader (pump/async/drain) owns the fd
  /// Bumped under commit_mu_ when a checkpoint rotates the log. LSNs from
  /// different epochs are not comparable (a failed sync rolls next_lsn
  /// back, so post-rotation LSNs can collide with pre-rotation ones), and
  /// a batch appended in an earlier epoch is durable via the checkpoint
  /// image that ended it. Captured at append time, checked by WaitDurable.
  uint64_t commit_epoch_ = 0;
  /// Last piggybacked async sync, for kAsync's interval gate
  /// (steady_clock ns; atomic so the check needs no lock).
  std::atomic<int64_t> last_async_sync_ns_{0};
  /// kGroupCommit's dedicated syncer (see CommitPump). pump_cv_ is the
  /// pump's wake channel: group-commit appends nudge it after updating
  /// commit_appended_. pump_running_ is guarded by commit_mu_.
  std::thread commit_pump_;
  std::condition_variable pump_cv_;
  bool pump_running_ = false;
  bool pump_stop_ = false;
  /// Live-snapshot guard: SnapshotLocked hands each EngineSnapshot a copy;
  /// use_count() - 1 is the number of outstanding snapshots Recover must
  /// refuse over.
  std::shared_ptr<const int> snapshot_token_ = std::make_shared<int>(0);
  std::optional<RecoveryReport> last_recovery_;

  // --- Replication -------------------------------------------------------
  /// Replica progress watermarks. Atomics: the replication client writes
  /// them, /healthz and the metric pull callbacks read them lock-free.
  std::atomic<uint64_t> repl_applied_lsn_{0};
  std::atomic<uint64_t> repl_primary_lsn_{0};

  // --- Observability -----------------------------------------------------
  MetricsRegistry metrics_;
  TraceRing trace_ring_;
  SlowQueryLog slow_log_;
  /// Engine-owned handles (registered in the constructor; single relaxed
  /// atomic ops on the query path).
  Counter* m_queries_ = nullptr;
  Counter* m_traced_queries_ = nullptr;
  Counter* m_slow_queries_ = nullptr;
  Histogram* m_query_latency_ = nullptr;
  Counter* m_wal_commits_ = nullptr;
  Counter* m_wal_commit_failures_ = nullptr;
  Counter* m_checkpoints_ = nullptr;
  /// Batches made durable per fsync — the group-commit amortization,
  /// directly observable.
  Histogram* m_wal_group_size_ = nullptr;
  /// Replica-mode handles (registered only when options_.replica).
  Counter* m_repl_batches_ = nullptr;
  Counter* m_repl_bootstraps_ = nullptr;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_ENGINE_H_
