/// \file engine.h
/// \brief The Glue-Nail engine: the library's public entry point.
///
/// Typical use (see examples/quickstart.cc):
/// \code
///   gluenail::Engine engine;
///   engine.RegisterHostProcedure(...);             // optional
///   GLUENAIL_RETURN_NOT_OK(engine.LoadProgram(source_text));
///   engine.AddFact("edge(1,2).");
///   auto rows = engine.Query("tc_e(1, Y)");        // call a procedure
///   auto rows2 = engine.Query("path(1, Y)");       // or a NAIL! predicate
///   engine.ExecuteStatement("seen(X) += path(1,X).");
///   engine.SaveEdbFile("data.facts");              // §10 persistence
/// \endcode

#ifndef GLUENAIL_API_ENGINE_H_
#define GLUENAIL_API_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/resolver.h"
#include "src/api/options.h"
#include "src/api/stats.h"
#include "src/storage/database.h"
#include "src/storage/persistence.h"

namespace gluenail {

class Engine {
 public:
  Engine();
  explicit Engine(EngineOptions options);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TermPool* pool() { return &pool_; }
  Database* edb() { return &edb_; }
  Database* idb() { return &idb_; }

  /// Registers a foreign procedure (§10 future work: the foreign-language
  /// interface). Must precede LoadProgram so imports can resolve to it.
  Status RegisterHostProcedure(HostProcedure host);

  /// Parses, links, and compiles \p source (one or more modules),
  /// replacing any previously loaded program. Module-level facts are
  /// inserted into the EDB.
  Status LoadProgram(std::string_view source);

  /// LoadProgram from a file.
  Status LoadProgramFile(const std::string& path);

  /// Executes one ad-hoc Glue statement (assignment or repeat loop)
  /// against the loaded program's exports, the EDB, and the NAIL!
  /// predicates. Unknown plain names resolve to EDB relations.
  Status ExecuteStatement(std::string_view statement);

  /// Answer set of a conjunctive goal, e.g. "path(1,X) & X != 3".
  struct QueryResult {
    /// Goal variables in first-appearance order; one column each.
    std::vector<std::string> vars;
    /// Distinct answers in canonical term order.
    std::vector<Tuple> rows;
  };
  Result<QueryResult> Query(std::string_view goal);

  /// Calls an exported procedure by name on \p inputs (each of the
  /// procedure's bound arity); returns the full (bound+free) result rows.
  Result<std::vector<Tuple>> Call(std::string_view name,
                                  const std::vector<Tuple>& inputs);

  /// Goal-directed evaluation of a single-atom NAIL! goal through the
  /// magic-set rewriting (experiment E7): constants become bound columns
  /// of the adornment, variables stay free. Example: "path(1, Y)".
  Result<QueryResult> QueryMagic(std::string_view goal);

  /// EXPLAIN: compiles \p statement ad-hoc and renders its plan(s) —
  /// access paths, keyed columns, barriers, head action.
  Result<std::string> ExplainStatement(std::string_view statement);

  /// Inserts one ground fact, "edge(1,2)." (trailing dot optional).
  Status AddFact(std::string_view fact);

  /// §10: EDB persistence between runs.
  Status SaveEdbFile(const std::string& path);
  Status LoadEdbFile(const std::string& path);

  /// Sorted contents of an EDB relation or NAIL! predicate instance.
  Result<std::vector<Tuple>> RelationContents(std::string_view name_term,
                                              uint32_t arity);

  /// Redirect the I/O builtins.
  void SetIo(std::ostream* out, std::istream* in);

  const CompileStats& compile_stats() const { return compile_stats_; }
  const ExecStats& exec_stats() const;
  void ResetExecStats();
  NailEngine* nail_engine() { return nail_engine_.get(); }
  const CompiledProgram* program() const {
    return linked_ ? &linked_->program : nullptr;
  }

 private:
  Status EnsureLoaded();
  /// Compiles an ad-hoc statement by wrapping it in a throwaway procedure.
  Result<CompiledProcedure> CompileAdhoc(const ast::Statement& stmt);

  EngineOptions options_;
  TermPool pool_;
  Database edb_;
  Database idb_;
  std::vector<HostProcedure> hosts_;
  std::unique_ptr<LinkedProgram> linked_;
  std::unique_ptr<NailEngine> nail_engine_;
  std::unique_ptr<Executor> executor_;
  IoEnv io_;
  CompileStats compile_stats_;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_ENGINE_H_
