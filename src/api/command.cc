#include "src/api/command.h"

#include <sstream>

#include "src/api/session.h"
#include "src/common/strings.h"

namespace gluenail {

std::string_view CommandKindToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kPing:
      return "ping";
    case CommandKind::kQuery:
      return "query";
    case CommandKind::kMutate:
      return "mutate";
    case CommandKind::kExplain:
      return "explain";
    case CommandKind::kLoad:
      return "load";
    case CommandKind::kSave:
      return "save";
    case CommandKind::kMetrics:
      return "metrics";
    case CommandKind::kSlowlog:
      return "slowlog";
  }
  return "unknown";
}

WireError WireErrorFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireError::kOk;
    case StatusCode::kParseError:
      return WireError::kParseError;
    case StatusCode::kCompileError:
      return WireError::kCompileError;
    case StatusCode::kRuntimeError:
      return WireError::kRuntimeError;
    case StatusCode::kIoError:
      return WireError::kIoError;
    case StatusCode::kInvalidArgument:
      return WireError::kInvalidArgument;
    case StatusCode::kInternal:
      return WireError::kInternal;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kCancelled:
      return WireError::kCancelled;
    case StatusCode::kResourceExhausted:
      return WireError::kResourceExhausted;
    case StatusCode::kFailedPrecondition:
      return WireError::kFailedPrecondition;
  }
  return WireError::kInternal;
}

StatusCode StatusCodeFromWireError(uint8_t wire) {
  switch (static_cast<WireError>(wire)) {
    case WireError::kOk:
      return StatusCode::kOk;
    case WireError::kParseError:
      return StatusCode::kParseError;
    case WireError::kCompileError:
      return StatusCode::kCompileError;
    case WireError::kRuntimeError:
      return StatusCode::kRuntimeError;
    case WireError::kIoError:
      return StatusCode::kIoError;
    case WireError::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireError::kInternal:
      return StatusCode::kInternal;
    case WireError::kNotFound:
      return StatusCode::kNotFound;
    case WireError::kCancelled:
      return StatusCode::kCancelled;
    case WireError::kResourceExhausted:
      return StatusCode::kResourceExhausted;
    case WireError::kFailedPrecondition:
      return StatusCode::kFailedPrecondition;
  }
  return StatusCode::kInternal;
}

QueryOptions WireQueryOptions::ToQueryOptions() const {
  QueryOptions q;
  q.strategy = strategy;
  if (timeout_millis != 0) {
    q.deadline = Deadline::After(std::chrono::milliseconds(timeout_millis));
  }
  q.limits.max_tuples = max_tuples;
  q.limits.max_arena_bytes = max_arena_bytes;
  q.limits.max_rows_scanned = max_rows_scanned;
  q.trace = trace;
  return q;
}

Command Command::Query(std::string goal, WireQueryOptions options) {
  Command c;
  c.kind = CommandKind::kQuery;
  c.goal = std::move(goal);
  c.options = options;
  return c;
}

Command Command::MutateStatement(std::string statement,
                                 WireQueryOptions options) {
  Command c;
  c.kind = CommandKind::kMutate;
  c.statement = std::move(statement);
  c.options = options;
  return c;
}

Command Command::MutateBatch(MutationBatch batch) {
  Command c;
  c.kind = CommandKind::kMutate;
  c.batch = std::move(batch);
  return c;
}

Command Command::Explain(std::string statement, bool analyze) {
  Command c;
  c.kind = CommandKind::kExplain;
  c.statement = std::move(statement);
  c.analyze = analyze;
  return c;
}

Command Command::LoadProgramText(std::string source) {
  Command c;
  c.kind = CommandKind::kLoad;
  c.load_target = LoadTarget::kProgram;
  c.source = std::move(source);
  return c;
}

Command Command::LoadProgramFile(std::string path) {
  Command c;
  c.kind = CommandKind::kLoad;
  c.load_target = LoadTarget::kProgram;
  c.path = std::move(path);
  return c;
}

Command Command::LoadEdbText(std::string source) {
  Command c;
  c.kind = CommandKind::kLoad;
  c.load_target = LoadTarget::kEdb;
  c.source = std::move(source);
  return c;
}

Command Command::LoadEdbFile(std::string path) {
  Command c;
  c.kind = CommandKind::kLoad;
  c.load_target = LoadTarget::kEdb;
  c.path = std::move(path);
  return c;
}

Command Command::SaveEdb(std::string path) {
  Command c;
  c.kind = CommandKind::kSave;
  c.path = std::move(path);
  return c;
}

Command Command::Metrics(MetricsFormat format) {
  Command c;
  c.kind = CommandKind::kMetrics;
  c.metrics_format = format;
  return c;
}

Command Command::Slowlog() {
  Command c;
  c.kind = CommandKind::kSlowlog;
  return c;
}

// --- The one dispatch point ----------------------------------------------
// Defined here (not session.cc) so everything Command-shaped lives in one
// translation unit; Session's read/write plumbing stays in session.cc.

Response Session::Execute(const Command& cmd) {
  switch (cmd.kind) {
    case CommandKind::kPing:
      return Response::Ok("pong");

    case CommandKind::kQuery: {
      Result<Engine::QueryResult> r =
          Query(cmd.goal, cmd.options.ToQueryOptions());
      if (!r.ok()) return Response::Error(r.status());
      Response resp;
      resp.vars = std::move(r->vars);
      resp.rows = std::move(r->rows);
      return resp;
    }

    case CommandKind::kMutate: {
      if (engine_->replica()) {
        return Response::Error(engine_->ReplicaWriteFence("mutate"));
      }
      Response resp;
      if (!cmd.batch.empty()) {
        // The durable write path: when a WAL is configured the batch is
        // logged (and, per the durability level, fsynced) before this
        // returns; otherwise it is a plain in-memory apply.
        Result<MutationBatch::ApplyReport> r =
            engine_->ApplyBatch(cmd.batch);
        if (!r.ok()) return Response::Error(r.status());
        resp.applied = r->applied;
        resp.inserted = r->inserted;
        resp.erased = r->erased;
      }
      if (!cmd.statement.empty()) {
        Status s = engine_->ExecuteStatement(cmd.statement,
                                             cmd.options.ToQueryOptions());
        if (!s.ok()) return Response::Error(std::move(s));
        ++resp.applied;
      }
      return resp;
    }

    case CommandKind::kExplain: {
      ExplainOptions eopts;
      eopts.analyze = cmd.analyze;
      Result<std::string> r =
          engine_->ExplainStatement(cmd.statement, eopts);
      if (!r.ok()) return Response::Error(r.status());
      return Response::Ok(std::move(*r));
    }

    case CommandKind::kLoad: {
      if (cmd.load_target == LoadTarget::kProgram) {
        Status s = cmd.source.empty() ? engine_->LoadProgramFile(cmd.path)
                                      : engine_->LoadProgram(cmd.source);
        if (!s.ok()) return Response::Error(std::move(s));
        return Response::Ok(
            StrCat("loaded: ", FormatCompileStats(engine_->compile_stats())));
      }
      if (cmd.source.empty()) {
        Status s = engine_->LoadEdbFile(cmd.path);
        if (!s.ok()) return Response::Error(std::move(s));
        return Response::Ok(StrCat("edb loaded from ", cmd.path));
      }
      std::istringstream in(cmd.source);
      Status s = engine_->Mutate(
          [&](Database* edb, Database* /*idb*/, TermPool* /*pool*/) {
            return LoadDatabase(edb, in);
          });
      if (!s.ok()) return Response::Error(std::move(s));
      return Response::Ok("edb loaded");
    }

    case CommandKind::kSave: {
      Status s = engine_->SaveEdbFile(cmd.path);
      if (!s.ok()) return Response::Error(std::move(s));
      return Response::Ok(StrCat("edb saved to ", cmd.path));
    }

    case CommandKind::kMetrics:
      return Response::Ok(engine_->DumpMetrics(cmd.metrics_format));

    case CommandKind::kSlowlog:
      return Response::Ok(engine_->slow_query_log().Render());
  }
  return Response::Error(Status::InvalidArgument(
      StrCat("unknown command kind ", static_cast<int>(cmd.kind))));
}

}  // namespace gluenail
