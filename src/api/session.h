/// \file session.h
/// \brief Per-client-thread handles for concurrent query serving.
///
/// A Session is a lightweight handle onto an Engine — open one per client
/// thread (Engine::OpenSession) and use it for the thread's queries.
/// Read operations (Query, Call, RelationContents, Snapshot) take the
/// engine's lock *shared*: any number of sessions read in parallel, each
/// through its own private read-only executor, so they never contend on
/// executor state, never build indexes, and never observe a half-applied
/// write. If the NAIL! materialization is stale (the EDB changed), the
/// first reader transparently upgrades to the writer lock, refreshes, and
/// retries — later readers piggyback on the fresh state.
///
/// Write operations (ExecuteStatement, AddFact) delegate to the Engine's
/// writer path and serialize behind the single-writer lock.
///
/// Sessions are cheap to copy and carry no state of their own; the Engine
/// must outlive every session. A single Session instance may be shared by
/// multiple threads, but the intended pattern is one per thread.

#ifndef GLUENAIL_API_SESSION_H_
#define GLUENAIL_API_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/api/command.h"
#include "src/api/engine.h"

namespace gluenail {

class Session {
 public:
  /// The one dispatch point every front end shares (in-process callers,
  /// the REPL, and the network server): executes one Command and returns
  /// its Response. Reads go through this session's shared-lock read path;
  /// mutations serialize behind the engine's writer lock. Never throws;
  /// failures come back in Response::status. See src/api/command.h.
  Response Execute(const Command& cmd);

  /// Answer set of a conjunctive goal; shared-lock read path.
  Result<Engine::QueryResult> Query(std::string_view goal,
                                    const QueryOptions& options = {});

  /// Calls an exported procedure. The procedure must be side-effect-free
  /// (local and return relations only): a statement writing a shared
  /// relation fails with a runtime error under the read-only discipline.
  Result<std::vector<Tuple>> Call(std::string_view name,
                                  const std::vector<Tuple>& inputs);

  /// Sorted contents of an EDB relation or NAIL! predicate instance.
  Result<std::vector<Tuple>> RelationContents(std::string_view name_term,
                                              uint32_t arity);

  /// Immutable view of the EDB + IDB; never observes a torn write.
  Result<EngineSnapshot> Snapshot();

  // --- Writes (serialized behind the engine's writer lock) ---------------

  Status ExecuteStatement(std::string_view statement);
  Status AddFact(std::string_view fact);

  // --- Observability -----------------------------------------------------

  /// Most recent explicitly traced query on this session (traces recorded
  /// with QueryOptions::trace land in the session's private ring, so
  /// concurrent sessions never see each other's traces). Null until the
  /// first traced query finishes.
  std::shared_ptr<const QueryTrace> last_trace() const {
    return ring_->Last();
  }
  TraceRing& trace_ring() { return *ring_; }

 private:
  friend class Engine;
  explicit Session(Engine* engine)
      : engine_(engine),
        ring_(std::make_shared<TraceRing>(
            engine->options_.trace_ring_capacity)) {}

  /// Acquires \p lock (shared) with the engine read-ready, upgrading to
  /// the writer lock to refresh stale state as needed. On success the
  /// shared lock is held.
  Status EnterRead(std::shared_lock<std::shared_mutex>* lock);

  Engine* engine_;
  /// Shared so Session stays cheap to copy (copies see the same ring).
  std::shared_ptr<TraceRing> ring_;
};

}  // namespace gluenail

#endif  // GLUENAIL_API_SESSION_H_
