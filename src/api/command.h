/// \file command.h
/// \brief The engine's unified Command/Response surface.
///
/// Every way into the engine — the in-process API, the REPL, and the
/// network server — funnels through one dispatch point:
///
///     Session session = engine.OpenSession();
///     Response r = session.Execute(Command::Query("path(1,X)"));
///
/// A Command is a tagged, *serializable* request: its payloads are plain
/// strings, numbers, and a MutationBatch, so the same value can be built
/// in-process, encoded onto a socket (src/server/protocol.h), and decoded
/// on the other side. Guardrails ride along as WireQueryOptions (a
/// serializable projection of QueryOptions: relative timeouts instead of
/// absolute deadlines, no cancel token — in-process callers needing a
/// CancelToken use Engine/Session::Query directly).
///
/// A Response always carries a Status; result data comes back as typed
/// fields (query variables + rows, or a text blob for plans, metrics,
/// slow-log dumps). Response rows are pool-relative Tuples — render them
/// with the owning engine's TermPool; the wire codec does exactly that
/// when shipping a response to a remote client.
///
/// The wire error enum (WireError) freezes one stable byte per StatusCode
/// so remote clients can distinguish kCancelled / kResourceExhausted /
/// parse errors programmatically even as StatusCode grows; see
/// docs/PROTOCOL.md.

#ifndef GLUENAIL_API_COMMAND_H_
#define GLUENAIL_API_COMMAND_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/engine.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {

enum class CommandKind : uint8_t {
  kPing = 0,     ///< liveness check; responds with text "pong"
  kQuery = 1,    ///< conjunctive goal -> vars + rows
  kMutate = 2,   ///< a MutationBatch and/or a Glue statement
  kExplain = 3,  ///< plan text for a statement (optionally ANALYZE)
  kLoad = 4,     ///< load a program (inline text or file) or an EDB file
  kSave = 5,     ///< save the EDB to a file
  kMetrics = 6,  ///< DumpMetrics (Prometheus or JSON) -> text
  kSlowlog = 7,  ///< slow-query log -> text
};

std::string_view CommandKindToString(CommandKind kind);

/// \brief Stable wire representation of StatusCode.
///
/// The numeric values are frozen independently of StatusCode: adding or
/// reordering StatusCode members must not change what goes on the wire.
/// Round-trip invariant (tested in tests/server_test.cc):
///   StatusCodeFromWireError(WireErrorFromStatus(c)) == c  for every c.
enum class WireError : uint8_t {
  kOk = 0,
  kParseError = 1,
  kCompileError = 2,
  kRuntimeError = 3,
  kIoError = 4,
  kInvalidArgument = 5,
  kInternal = 6,
  kNotFound = 7,
  kCancelled = 8,
  kResourceExhausted = 9,
  kFailedPrecondition = 10,
};

WireError WireErrorFromStatus(StatusCode code);
/// Unknown bytes (a newer server talking to an older client) map to
/// kInternal rather than failing the decode.
StatusCode StatusCodeFromWireError(uint8_t wire);

/// Serializable projection of QueryOptions (also honored by kMutate and
/// kExplain-analyze executions).
struct WireQueryOptions {
  QueryStrategy strategy = QueryStrategy::kBottomUp;
  /// Relative deadline; 0 = none. Converted to an absolute Deadline when
  /// the command executes, not when it is built.
  uint64_t timeout_millis = 0;
  /// ResourceLimits projections; 0 = unlimited.
  uint64_t max_tuples = 0;
  uint64_t max_arena_bytes = 0;
  uint64_t max_rows_scanned = 0;
  bool trace = false;

  QueryOptions ToQueryOptions() const;
};

/// What kLoad loads.
enum class LoadTarget : uint8_t {
  kProgram = 0,  ///< Glue-Nail source (replaces the loaded program)
  kEdb = 1,      ///< §10 fact file (merged into the EDB)
};

/// A tagged request. Only the fields of the active kind matter; the
/// factory functions below build well-formed commands.
struct Command {
  CommandKind kind = CommandKind::kPing;

  // kQuery: the goal; options also govern kMutate/kExplain execution.
  std::string goal;
  WireQueryOptions options;

  // kMutate: `batch` applies first, then `statement` (either may be
  // empty; an entirely empty mutate is a no-op).
  std::string statement;  // also the kExplain target
  MutationBatch batch;

  // kExplain
  bool analyze = false;

  // kLoad / kSave: when `source` is non-empty it is inline text;
  // otherwise `path` names a server-side file.
  LoadTarget load_target = LoadTarget::kProgram;
  std::string path;
  std::string source;

  // kMetrics
  MetricsFormat metrics_format = MetricsFormat::kPrometheus;

  static Command Ping() { return Command{}; }
  static Command Query(std::string goal, WireQueryOptions options = {});
  static Command MutateStatement(std::string statement,
                                 WireQueryOptions options = {});
  static Command MutateBatch(MutationBatch batch);
  static Command Explain(std::string statement, bool analyze = false);
  static Command LoadProgramText(std::string source);
  static Command LoadProgramFile(std::string path);
  static Command LoadEdbText(std::string source);
  static Command LoadEdbFile(std::string path);
  static Command SaveEdb(std::string path);
  static Command Metrics(MetricsFormat format = MetricsFormat::kPrometheus);
  static Command Slowlog();
};

/// The engine's answer to one Command. `status` is always meaningful; the
/// data fields depend on the command kind (and are empty on error).
struct Response {
  Status status;

  /// kQuery: goal variables (first-appearance order) and distinct answer
  /// rows in canonical term order. Rows are Tuples over the *serving*
  /// engine's TermPool.
  std::vector<std::string> vars;
  std::vector<Tuple> rows;

  /// kExplain plan text, kMetrics blob, kSlowlog dump, kPing "pong",
  /// kLoad/kSave human-readable summary.
  std::string text;

  /// kMutate: ops applied / tuples actually inserted / erased (batch
  /// path; statement mutations report applied = 1).
  uint64_t applied = 0;
  uint64_t inserted = 0;
  uint64_t erased = 0;

  bool ok() const { return status.ok(); }

  static Response Error(Status s) {
    Response r;
    r.status = std::move(s);
    return r;
  }
  static Response Ok(std::string text = "") {
    Response r;
    r.text = std::move(text);
    return r;
  }
};

}  // namespace gluenail

#endif  // GLUENAIL_API_COMMAND_H_
