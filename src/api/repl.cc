#include "src/api/repl.h"

#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace gluenail {

namespace {

constexpr std::string_view kHelp = R"(commands:
  fact.                     insert a ground fact        e.g. edge(1,2).
  head := body.             run a Glue statement        (also += -= +=[K])
  repeat ... until C;       run a loop statement
  ?- goal.                  query a conjunctive goal    e.g. ?- path(1,X).
  :load FILE                load and link a program
  :edb FILE                 load facts into the EDB
  :save FILE                save the EDB
  :explain STMT.            show the compiled plan of a statement
  :explain analyze STMT.    run it; show estimated vs. actual rows per op
  :relations                list EDB relations
  :stats                    execution statistics
  :metrics [json]           dump every engine metric (Prometheus or JSON)
  :trace last               span tree of the last traced query
  :trace chrome             last trace as Chrome trace_event JSON
  :slowlog                  queries over the slow-query threshold
  :help                     this text
  :quit                     leave
)";

std::string Trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

/// True when the accumulated input is a complete unit: ends with '.' or
/// ';', or is a one-line ':' command.
bool IsComplete(const std::string& input) {
  std::string t = Trim(input);
  if (t.empty()) return false;
  if (t[0] == ':') return true;
  return t.back() == '.' || t.back() == ';';
}

/// A fact is a single ground atom: cheap syntactic test — no operator at
/// the top level and no ":-".
bool LooksLikeFact(const std::string& t) {
  int depth = 0;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    char c = t[i];
    if (c == '\'') {
      // Skip quoted symbol.
      for (++i; i + 1 < t.size() && t[i] != '\''; ++i) {
        if (t[i] == '\\') ++i;
      }
      continue;
    }
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth == 0) {
      if ((c == ':' && (t[i + 1] == '=' || t[i + 1] == '-')) ||
          (c == '+' && t[i + 1] == '=') || (c == '-' && t[i + 1] == '=')) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Repl::Repl(Engine* engine, std::istream* in, std::ostream* out,
           ReplOptions options)
    : engine_(engine),
      session_(engine->OpenSession()),
      in_(in),
      out_(out),
      options_(options) {}

void Repl::PrintQueryResult(const std::vector<std::string>& vars,
                            const std::vector<Tuple>& rows) {
  if (rows.empty()) {
    *out_ << "no\n";
    return;
  }
  if (vars.empty()) {
    *out_ << "yes\n";
    return;
  }
  for (const Tuple& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) *out_ << ", ";
      *out_ << vars[i] << " = " << engine_->terms().ToString(row[i]);
    }
    *out_ << "\n";
  }
  *out_ << rows.size() << " answer(s)\n";
}

Status Repl::RunCommand(const Command& cmd) {
  Response resp = session_.Execute(cmd);
  if (!resp.ok()) return resp.status;
  if (!resp.text.empty()) {
    *out_ << resp.text;
    if (resp.text.back() != '\n') *out_ << "\n";
  }
  return Status::OK();
}

Status Repl::Execute(const std::string& raw, bool* quit) {
  *quit = false;
  std::string input = Trim(raw);
  if (input.empty()) return Status::OK();

  if (input[0] == ':') {
    std::string cmd = input, arg;
    size_t space = input.find(' ');
    if (space != std::string::npos) {
      cmd = input.substr(0, space);
      arg = Trim(input.substr(space + 1));
    }
    if (cmd == ":quit" || cmd == ":q") {
      *quit = true;
      return Status::OK();
    }
    if (cmd == ":help" || cmd == ":h") {
      *out_ << kHelp;
      return Status::OK();
    }
    if (cmd == ":load") {
      return RunCommand(Command::LoadProgramFile(arg));
    }
    if (cmd == ":edb") {
      return RunCommand(Command::LoadEdbFile(arg));
    }
    if (cmd == ":save") {
      return RunCommand(Command::SaveEdb(arg));
    }
    if (cmd == ":explain") {
      bool analyze = false;
      std::string stmt = arg;
      if (StartsWith(stmt, "analyze ") || StartsWith(stmt, "analyze\t")) {
        analyze = true;
        stmt = Trim(stmt.substr(8));
      }
      return RunCommand(Command::Explain(std::move(stmt), analyze));
    }
    if (cmd == ":relations") {
      std::vector<std::string> names;
      GLUENAIL_ASSIGN_OR_RETURN(EngineSnapshot snap, engine_->snapshot());
      snap.edb().ForEach(
          [&](TermId name, uint32_t arity, const RelationSnapshot& r) {
            names.push_back(StrCat(engine_->terms().ToString(name), "/",
                                   arity, "  (", r.size(), " tuples)"));
          });
      std::sort(names.begin(), names.end());
      for (const std::string& n : names) *out_ << n << "\n";
      return Status::OK();
    }
    if (cmd == ":stats") {
      *out_ << FormatExecStats(engine_->exec_stats()) << "\n";
      return Status::OK();
    }
    if (cmd == ":metrics") {
      return RunCommand(Command::Metrics(arg == "json"
                                             ? MetricsFormat::kJson
                                             : MetricsFormat::kPrometheus));
    }
    if (cmd == ":trace") {
      // Query traces land in this REPL's session ring, statement traces on
      // the engine's writer ring; last_trace_ remembers whichever finished
      // most recently.
      std::shared_ptr<const QueryTrace> trace =
          last_trace_ != nullptr ? last_trace_ : engine_->last_trace();
      if (trace == nullptr) {
        *out_ << "no trace recorded yet (queries here are traced; run "
                 "one first)\n";
        return Status::OK();
      }
      if (arg == "chrome") {
        *out_ << trace->RenderChromeJson() << "\n";
      } else {
        *out_ << trace->RenderTree();
      }
      return Status::OK();
    }
    if (cmd == ":slowlog") {
      return RunCommand(Command::Slowlog());
    }
    return Status::InvalidArgument(
        StrCat("unknown command ", cmd, " (try :help)"));
  }

  // REPL evaluation always traces, so `:trace last` works out of the box
  // without re-running the query.
  WireQueryOptions qopts;
  qopts.trace = true;

  if (StartsWith(input, "?-")) {
    std::string goal = Trim(input.substr(2));
    if (!goal.empty() && goal.back() == '.') goal.pop_back();
    Response resp = session_.Execute(Command::Query(goal, qopts));
    if (!resp.ok()) return resp.status;
    last_trace_ = session_.last_trace();
    PrintQueryResult(resp.vars, resp.rows);
    return Status::OK();
  }

  if (input.back() == '.' && LooksLikeFact(input)) {
    MutationBatch batch;
    batch.Insert(input);
    Response resp = session_.Execute(Command::MutateBatch(std::move(batch)));
    return resp.status;
  }
  Response resp = session_.Execute(Command::MutateStatement(input, qopts));
  if (resp.ok()) last_trace_ = engine_->last_trace();
  return resp.status;
}

Status Repl::Run() {
  std::string pending;
  std::string line;
  while (true) {
    if (options_.prompt) {
      *out_ << (pending.empty() ? "gluenail> " : "      ... ");
      out_->flush();
    }
    if (!std::getline(*in_, line)) return Status::OK();  // EOF
    pending += line;
    pending += "\n";
    if (!IsComplete(pending)) continue;
    bool quit = false;
    Status s = Execute(pending, &quit);
    if (!s.ok()) *out_ << s << "\n";
    pending.clear();
    if (quit) return Status::OK();
  }
}

}  // namespace gluenail
