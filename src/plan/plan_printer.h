/// \file plan_printer.h
/// \brief Human-readable rendering of compiled plans (EXPLAIN).
///
/// Developers of the original system debugged through the Prolog VM's
/// code; this is the native equivalent: a stable text form of the op
/// sequence the executors interpret, showing access paths (scan vs keyed
/// selection and on which columns), barriers, binding structure, and the
/// head action. Engine::ExplainStatement exposes it.

#ifndef GLUENAIL_PLAN_PLAN_PRINTER_H_
#define GLUENAIL_PLAN_PLAN_PRINTER_H_

#include <string>

#include "src/plan/plan.h"

namespace gluenail {

/// Renders a statement plan, one op per line, e.g.:
///
///   slots: X=0 Y=1 W=2
///   0: match edb s keyed[] cols(bind:0, bind:2)
///   1: match edb t keyed[c0] cols(_, bind:1)          ; barrier=no
///   2: compare slot0 != slot1
///   head: += edb r cols 2
std::string PlanToString(const StatementPlan& plan, const TermPool& pool);

/// Renders a whole compiled procedure: locals, statements, loop structure.
std::string ProcedureToString(const CompiledProcedure& proc,
                              const TermPool& pool);

}  // namespace gluenail

#endif  // GLUENAIL_PLAN_PLAN_PRINTER_H_
