/// \file plan_printer.h
/// \brief Human-readable rendering of compiled plans (EXPLAIN).
///
/// Developers of the original system debugged through the Prolog VM's
/// code; this is the native equivalent: a stable text form of the op
/// sequence the executors interpret, showing access paths (scan vs keyed
/// selection and on which columns), barriers, binding structure, and the
/// head action. Engine::ExplainStatement exposes it.

#ifndef GLUENAIL_PLAN_PLAN_PRINTER_H_
#define GLUENAIL_PLAN_PLAN_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/plan/plan.h"

namespace gluenail {

/// Renders a statement plan, one op per line, e.g.:
///
///   slots: X=0 Y=1 W=2
///   0: match edb s keyed[] cols(bind:0, bind:2)  ; est=40
///   1: match edb t keyed[c0] cols(_, bind:1)  ; est=4
///   2: compare slot0 != slot1
///   head: += edb r cols 2
///
/// Ops carry the physical planner's estimated output cardinality
/// (`; est=N`, omitted when the plan was built without annotations) and a
/// `build-index` marker when the planner scheduled an index build.
std::string PlanToString(const StatementPlan& plan, const TermPool& pool);

/// EXPLAIN ANALYZE rendering: like PlanToString, but each op line also
/// shows the rows it actually produced (`; est=N actual=M`).
/// \p actual_rows is indexed by op position (Executor::OpProfile); a null
/// pointer degrades to the estimate-only form.
std::string PlanToString(const StatementPlan& plan, const TermPool& pool,
                         const std::vector<uint64_t>* actual_rows);

/// Renders a whole compiled procedure: locals, statements, loop structure.
std::string ProcedureToString(const CompiledProcedure& proc,
                              const TermPool& pool);

}  // namespace gluenail

#endif  // GLUENAIL_PLAN_PLAN_PRINTER_H_
