/// \file plan.h
/// \brief The compiled representation of Glue code: the virtual machine's
/// instruction set.
///
/// The original system compiled Glue into code for "a small virtual
/// machine" (paper §9). Here a statement body compiles to a sequence of
/// PlanOps over the statement's variable slots; conceptually op i computes
/// supplementary relation sup_i from sup_{i-1} (§3.2). The two executors
/// (exec/materialized.cc, exec/pipelined.cc) interpret the same plan:
/// materialized realizes every sup_i; pipelined fuses runs of non-fixed
/// ops and breaks at fixed ones exactly as §9 describes.
///
/// Procedures compile to a small control program (CInstr): straight-line
/// statement execution plus repeat/until loops.

#ifndef GLUENAIL_PLAN_PLAN_H_
#define GLUENAIL_PLAN_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.h"
#include "src/runtime/aggregates.h"
#include "src/storage/index.h"
#include "src/term/term_pool.h"

namespace gluenail {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// Index into StatementPlan::exprs.
using ExprId = int32_t;
inline constexpr ExprId kNoExpr = -1;

enum class ExprKind : uint8_t {
  kConst,     ///< interned ground term
  kSlot,      ///< value of a bound variable slot
  kArith,     ///< binary + - * / mod (runtime/arith.h)
  kNegate,    ///< unary minus
  kStringOp,  ///< concat / length / substring (runtime/string_builtins.h)
  kBuild,     ///< construct a compound term: children[0] functor, rest args
};

struct ExprNode {
  ExprKind kind = ExprKind::kConst;
  TermId const_term = kNullTerm;
  int slot = -1;
  /// Operator name for kArith/kStringOp.
  std::string op;
  std::vector<ExprId> children;
};

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

/// Compiled structural pattern, matched against a ground term. Binding vs
/// checking is decided at compile time from binding analysis (possible
/// because relations hold only ground tuples — paper §2: matching, never
/// unification).
struct MatchNode {
  enum class Kind : uint8_t {
    kWildcard,  ///< matches anything
    kConst,     ///< equals an interned term
    kBind,      ///< first occurrence of a variable: store into slot
    kCheck,     ///< later occurrence: term-equal to slot value
    kStruct,    ///< compound: children[0] matches the functor, rest args
  };
  Kind kind = Kind::kWildcard;
  TermId const_term = kNullTerm;
  int slot = -1;
  std::vector<MatchNode> children;
};

// ---------------------------------------------------------------------------
// Predicate access paths
// ---------------------------------------------------------------------------

/// How an op reaches the tuples of a predicate at run time.
struct PredicateAccess {
  enum class Kind : uint8_t {
    kNone,
    kEdb,      ///< EDB relation with a compile-time-ground name
    kLocal,    ///< frame-local relation (paper §4) by index
    kIn,       ///< the frame's `in` relation
    kReturn,   ///< the frame's `return` relation (heads only)
    kNail,     ///< NAIL! predicate: flattened storage relation in the IDB
    kDynamic,  ///< HiLog: name computed per record, looked up at run time
  };
  Kind kind = Kind::kNone;
  /// Ground relation name (kEdb / kNail).
  TermId name = kNullTerm;
  uint32_t arity = 0;
  /// Frame-local index (kLocal).
  int local_index = -1;
  /// Name expression (kDynamic with a fully bound name), evaluated per
  /// record.
  ExprId name_expr = kNoExpr;
  /// kDynamic with unbound name variables: index into
  /// StatementPlan::name_patterns; the op enumerates candidate predicates
  /// of matching arity and matches their name term against this pattern,
  /// binding the name variables (HiLog, §5).
  int name_pattern_index = -1;
  /// kNail: number of HiLog parameter columns prepended to the flattened
  /// storage relation (students(ID)(S) stores as 2 columns: ID, S).
  uint32_t nail_params = 0;
};

// ---------------------------------------------------------------------------
// Ops
// ---------------------------------------------------------------------------

enum class OpKind : uint8_t {
  kMatch,     ///< join the sup with a predicate's tuples
  kNegMatch,  ///< filter records with no matching tuple
  kCompare,   ///< comparison / binding-equality over expressions
  kAggregate, ///< aggregate over the sup (or each group), §3.3
  kGroupBy,   ///< partition the sup, §3.3.1
  kCall,      ///< Glue / host / builtin procedure call, §4
  kUpdate,    ///< per-record ++p / --p body update
};

enum class CalleeKind : uint8_t { kGlueProc, kHost, kBuiltin };

struct PlanOp {
  OpKind kind = OpKind::kMatch;
  /// Fixed ops are pipeline barriers and cannot be reordered (§3.1, §9).
  bool fixed = false;
  ast::SourceLoc loc;

  /// Physical-planner annotation: estimated rows flowing out of this op
  /// (-1 = no estimate was computed). Rendered by EXPLAIN ANALYZE against
  /// the executors' actual per-op row counts.
  double est_rows = -1;
  /// Physical-planner decision: build the index for bound_mask before the
  /// first probe because the cost model says it pays for itself (§10
  /// adaptive policy folded into planning; the runtime policy remains the
  /// fallback when this is false).
  bool build_index = false;
  /// Physical-planner decision: run this op batch-at-a-time (the
  /// vectorized executor in exec/vector/) because the estimated work is
  /// large enough to amortize batch setup. Honored under
  /// ExecOptions::BatchMode::kAuto; kAlways/kOff override it. Ops the
  /// batch runner cannot express (dynamic HiLog access, structural
  /// patterns) fall back to tuple-at-a-time regardless.
  bool batch = false;

  // -- kMatch / kNegMatch / kUpdate: the relation being read or written.
  PredicateAccess access;
  /// Columns whose pattern is fully bound at this point; such columns form
  /// the selection key (index-eligible; adaptive policy applies).
  ColumnMask bound_mask = 0;
  /// One key expression per bound column, in ascending column order.
  std::vector<ExprId> key_exprs;
  /// One pattern per column; bound columns hold kWildcard (already
  /// filtered by the key).
  std::vector<MatchNode> col_patterns;

  // -- kCompare / kAggregate result handling.
  ExprId lhs = kNoExpr;
  ExprId rhs = kNoExpr;
  ast::CompareOp cmp = ast::CompareOp::kEq;
  /// For Eq with an unbound single-variable side: the slot it binds
  /// (-1 => pure filter).
  int bind_slot = -1;

  // -- kAggregate.
  AggKind agg = AggKind::kCount;
  ExprId agg_arg = kNoExpr;

  // -- kGroupBy.
  std::vector<int> group_slots;

  // -- kCall.
  CalleeKind callee = CalleeKind::kGlueProc;
  /// Procedure table index / host table index / BuiltinProc value.
  int callee_index = -1;
  uint32_t callee_bound_arity = 0;
  uint32_t callee_free_arity = 0;
  /// Bound-argument expressions (evaluated per record, projected, deduped
  /// into the single input relation — call-once semantics, §4).
  std::vector<ExprId> call_in_exprs;
  /// Patterns for the free result columns.
  std::vector<MatchNode> call_out_patterns;

  // -- kUpdate.
  bool update_insert = false;
  std::vector<ExprId> update_exprs;
};

// ---------------------------------------------------------------------------
// Heads and statements
// ---------------------------------------------------------------------------

struct HeadPlan {
  PredicateAccess access;
  ast::AssignOp op = ast::AssignOp::kClear;
  /// Head columns that form the update key for +=[Z...].
  ColumnMask modify_mask = 0;
  /// One expression per head column.
  std::vector<ExprId> arg_exprs;
  /// kNone unless this statement captures its inserted tuples (uniondiff).
  PredicateAccess delta_access;
  /// Assigning to `return` exits the procedure (§4).
  bool is_return = false;
};

struct StatementPlan {
  int num_slots = 0;
  /// Slot index -> variable name, for diagnostics and query answers.
  std::vector<std::string> slot_names;
  std::vector<ExprNode> exprs;
  std::vector<PlanOp> ops;
  /// Patterns referenced by PredicateAccess::name_pattern_index.
  std::vector<MatchNode> name_patterns;
  HeadPlan head;
  ast::SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Loop conditions and procedure control
// ---------------------------------------------------------------------------

struct CondPlan {
  ast::UntilCond::Kind kind = ast::UntilCond::Kind::kNonEmpty;
  /// Leaf tests: the relation and a (binding-free) pattern per column.
  PredicateAccess access;
  std::vector<MatchNode> patterns;
  /// For kUnchanged: index into the frame's per-site version table.
  int unchanged_site = -1;
  std::vector<CondPlan> children;
};

struct CInstr {
  enum class Kind : uint8_t { kExec, kLoop };
  Kind kind = Kind::kExec;
  /// kExec: index into CompiledProcedure::plans.
  int plan_index = -1;
  /// kLoop.
  std::vector<CInstr> body;
  CondPlan cond;
};

struct CompiledProcedure {
  std::string module;
  std::string name;
  uint32_t bound_arity = 0;
  uint32_t free_arity = 0;
  /// Local relation declarations: (name, arity). Each invocation gets
  /// fresh instances (paper §4).
  std::vector<std::pair<std::string, uint32_t>> locals;
  std::vector<StatementPlan> plans;
  std::vector<CInstr> code;
  /// True if any statement contains a fixed subgoal (transitively), §3.1.
  bool fixed = false;
  int num_unchanged_sites = 0;
  /// Generated procedures (NAIL! strata) are hidden from exports.
  bool generated = false;

  uint32_t arity() const { return bound_arity + free_arity; }
};

/// A fully linked program: every procedure of every module, compiled.
struct CompiledProgram {
  std::vector<CompiledProcedure> procedures;
  /// "module.name/arity" -> index.
  std::unordered_map<std::string, int> proc_by_qualified;
  /// "name/arity" -> index for exported procedures (unique names enforced
  /// at link time).
  std::unordered_map<std::string, int> proc_by_export;

  const CompiledProcedure* FindExport(const std::string& key) const {
    auto it = proc_by_export.find(key);
    return it == proc_by_export.end() ? nullptr : &procedures[it->second];
  }
};

}  // namespace gluenail

#endif  // GLUENAIL_PLAN_PLAN_H_
