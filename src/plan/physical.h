/// \file physical.h
/// \brief The physical planning phase: cost-based subgoal ordering.
///
/// Compilation is split into a logical phase and a physical phase. The
/// logical phase (plan/planner.h) translates AST subgoals into PlanOps —
/// pattern compilation, expression compilation, access-path resolution.
/// The physical phase, here, decides *in what order* the subgoals of a
/// statement body run and *which indexes* to build up front, and produces
/// the per-op cardinality estimates that EXPLAIN ANALYZE renders.
///
/// Ordering respects the same invariants as the §3.1 syntactic reorderer
/// (analysis/reorder.h): fixed subgoals are barriers that keep their
/// written position, a subgoal is only scheduled once its required
/// variables are bound, and a binding '=' keeps its written order relative
/// to earlier binders of the same variable. Within those constraints the
/// statistics model greedily picks, per step, the subgoal minimizing the
/// estimated number of rows flowing into the rest of the segment:
///
///   est_out(match)   = est_in * rows(rel) * prod over bound columns c of
///                      (1 / ndv_c)          -- selectivity from NDV
///   est_out(filter)  = est_in * 0.5          -- comparisons, negation
///   est_out(binder)  = est_in                -- '=' that binds
///
/// Relation cardinalities come from CompileEnv::stats (a StatsProvider,
/// storage/stats.h); unknown relations fall back to
/// PlannerOptions::default_relation_rows. Procedure calls rank after all
/// relation subgoals regardless of estimate ("Procedure calls are
/// expensive", §9).

#ifndef GLUENAIL_PLAN_PHYSICAL_H_
#define GLUENAIL_PLAN_PHYSICAL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/analysis/binding.h"
#include "src/analysis/scope.h"
#include "src/ast/ast.h"
#include "src/common/result.h"
#include "src/plan/planner.h"

namespace gluenail {

/// Process-wide planner activity counters, exported through the engine's
/// metrics registry. Global (not per-Engine) because PlanBodyOrder is a free
/// function shared by every compilation path.
struct PlannerCounters {
  std::atomic<uint64_t> bodies_planned{0};
  std::atomic<uint64_t> index_builds_scheduled{0};
};

PlannerCounters& GlobalPlannerCounters();

/// One scheduled subgoal: its position in the written body, the estimated
/// rows flowing out of it, and whether the planner decided to build the
/// index for its bound columns before the first probe.
struct PhysicalChoice {
  size_t body_index = 0;
  double est_rows = -1;
  bool build_index = false;
  /// Estimated work is large enough that batch-at-a-time execution
  /// (exec/vector/) amortizes its setup — see PlannerOptions::batch_min_work.
  bool batch = false;
};

/// Orders the subgoals of one statement body. Honors opts.reorder (off =
/// written order, estimates still annotated) and opts.cost_model
/// (kSyntactic delegates ordering to ReorderBody and only annotates).
/// The result is a permutation of [0, body.size()).
Result<std::vector<PhysicalChoice>> PlanBodyOrder(
    const std::vector<ast::Subgoal>& body, const CompileEnv& env,
    const BoundSet& initially_bound, const PlannerOptions& opts);

}  // namespace gluenail

#endif  // GLUENAIL_PLAN_PHYSICAL_H_
