/// \file planner.h
/// \brief Compiles AST statements and procedures into plans (plan.h).
///
/// The planner performs, per statement:
///   1. optional subgoal reordering (analysis/reorder.h);
///   2. binding-time analysis left to right (§2, §3.1);
///   3. pattern compilation: fully bound argument columns become keyed
///      selections (index-eligible), the rest become structural match
///      programs — matching, never unification (§2);
///   4. expression compilation for heads, comparisons, and call inputs;
///   5. head planning, including the implicit `in` subgoal of return
///      statements (§4) and uniondiff delta capture (§10).
///
/// Semantics notes (documented in docs/LANGUAGE.md):
///  * body atom arguments match *structurally*: p(X+1) matches tuples whose
///    column is literally the compound '+' (X,1);
///  * head arguments, comparison operands, update arguments, and procedure
///    call inputs are *evaluated*: h(X+1) inserts the sum.

#ifndef GLUENAIL_PLAN_PLANNER_H_
#define GLUENAIL_PLAN_PLANNER_H_

#include "src/analysis/scope.h"
#include "src/ast/ast.h"
#include "src/common/result.h"
#include "src/plan/plan.h"

namespace gluenail {

struct PlannerOptions {
  /// Reorder non-fixed subgoals (§3.1). Off = paper's "naive" baseline,
  /// used by bench E8.
  bool reorder = true;

  /// How the physical phase ranks subgoals within a segment.
  enum class CostModel {
    /// The original syntactic heuristic (analysis/reorder.h): filters
    /// first, then matches by bound-column count. Kept selectable for A/B
    /// comparison and for tests that pin the heuristic's order.
    kSyntactic,
    /// Cardinality-driven: greedily minimize estimated output rows using
    /// relation statistics (storage/stats.h) from CompileEnv::stats.
    kStatistics,
  };
  CostModel cost_model = CostModel::kStatistics;

  /// Assumed row count for relations the stats provider cannot answer for
  /// (locals, `in`, dynamic predicates, relations not yet created).
  double default_relation_rows = 1000.0;

  /// Minimum estimated work (input rows x relation rows for matches,
  /// input rows for filters) before the physical phase marks an op for
  /// batch-at-a-time execution (PlanOp::batch). One arena chunk — 4096
  /// rows — is the point where batch setup amortizes; below it the
  /// tuple-at-a-time path wins.
  double batch_min_work = 4096.0;
};

/// Compiles one assignment statement.
Result<StatementPlan> PlanAssignment(const ast::Assignment& a,
                                     const CompileEnv& env,
                                     const PlannerOptions& opts);

/// Compiles a loop condition. \p site_counter numbers `unchanged` sites
/// within the enclosing procedure.
Result<CondPlan> PlanUntilCond(const ast::UntilCond& c, const CompileEnv& env,
                               int* site_counter);

/// Compiles a whole procedure body against \p module_scope. The caller
/// supplies the procedure's position-independent metadata (module name,
/// table index is implied by where the result is stored) and the
/// transitively computed fixed flag.
Result<CompiledProcedure> CompileProcedureAst(const ast::Procedure& p,
                                              const Scope& module_scope,
                                              TermPool* pool,
                                              std::string module_name,
                                              bool fixed,
                                              const PlannerOptions& opts,
                                              bool implicit_edb = false,
                                              const StatsProvider* stats =
                                                  nullptr);

}  // namespace gluenail

#endif  // GLUENAIL_PLAN_PLANNER_H_
