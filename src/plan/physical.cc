#include "src/plan/physical.h"

#include <algorithm>

#include "src/analysis/reorder.h"
#include "src/storage/stats.h"

namespace gluenail {

namespace {

/// HiLog parameter argument terms of a predicate-name chain, in column
/// order (mirrors the logical planner's CollectPredParams).
void CollectPredParams(const ast::Term& pred,
                       std::vector<const ast::Term*>* out) {
  if (!pred.IsApply()) return;
  CollectPredParams(pred.functor(), out);
  for (size_t i = 0; i < pred.apply_arity(); ++i) {
    out->push_back(&pred.arg(i));
  }
}

/// Cardinality facts about one atom-shaped subgoal, resolved the same way
/// the logical planner resolves its access path but without compiling
/// anything.
struct AtomCard {
  /// Stats lookup succeeded (stored relation with a compile-time name).
  bool known = false;
  /// Stored-relation access (kEdb / kNail): eligible for planned index
  /// builds even when stats are unknown.
  bool stored = false;
  CardEstimate card;
  /// Effective columns: NAIL! parameters then arguments.
  std::vector<const ast::Term*> columns;
};

/// Resolves the relation behind an atom / negated atom and queries the
/// stats provider. Resolution failures are not errors here — the subgoal
/// just gets default cardinality and the logical planner reports any real
/// problem with a source location.
AtomCard ResolveAtomCard(const ast::Subgoal& g, const SubgoalInfo& info,
                         const CompileEnv& env) {
  AtomCard out;
  for (const ast::Term& a : g.args) out.columns.push_back(&a);

  TermId name = kNullTerm;
  uint32_t arity = static_cast<uint32_t>(g.args.size());
  std::string root;
  uint32_t params = 0;
  bool static_name = StaticPredName(g.pred, &root, &params);
  bool pred_ground = VarsOf(g.pred).empty();

  if (info.binding != nullptr) {
    switch (info.binding->cls) {
      case PredClass::kEdb:
        if (pred_ground) {
          Result<TermId> id = InternGroundTerm(env.pool, g.pred);
          if (id.ok()) {
            name = *id;
            out.stored = true;
          }
        }
        break;
      case PredClass::kNail: {
        name = info.binding->name;
        arity = info.binding->nail_params + arity;
        out.stored = true;
        std::vector<const ast::Term*> cols;
        CollectPredParams(g.pred, &cols);
        for (const ast::Term& a : g.args) cols.push_back(&a);
        out.columns = std::move(cols);
        break;
      }
      default:
        break;  // locals / in: no global statistics
    }
  } else if (static_name && params == 0 && env.implicit_edb) {
    name = env.pool->MakeSymbol(root);
    out.stored = true;
  } else if (pred_ground) {
    Result<TermId> id = InternGroundTerm(env.pool, g.pred);
    if (id.ok()) {
      name = *id;
      out.stored = true;
    }
  }

  if (name != kNullTerm && env.stats != nullptr) {
    out.known = env.stats->Estimate(name, arity, &out.card);
  }
  return out;
}

bool IsProcCall(const SubgoalInfo& info) {
  return info.binding != nullptr &&
         (info.binding->cls == PredClass::kGlueProc ||
          info.binding->cls == PredClass::kHostProc ||
          info.binding->cls == PredClass::kBuiltinProc);
}

/// One candidate's estimate: rows flowing out given \p est_in rows in, and
/// whether a planned index build is worthwhile.
struct CostedStep {
  double est_out = 0;
  bool build_index = false;
  bool is_call = false;
  /// Estimated work clears PlannerOptions::batch_min_work, so the op is
  /// worth running batch-at-a-time (PlanOp::batch).
  bool batch = false;
};

CostedStep EstimateStep(const ast::Subgoal& g, const SubgoalInfo& info,
                        const CompileEnv& env, const BoundSet& bound,
                        double est_in, const PlannerOptions& opts) {
  CostedStep out;
  switch (g.kind) {
    case ast::SubgoalKind::kComparison:
      // A binding '=' passes every record through; anything else filters.
      // 0.5 is the classic "unknown predicate" selectivity.
      out.est_out = info.binds.empty() ? est_in * 0.5 : est_in;
      // A filter's work is one evaluation per input record.
      out.batch = est_in >= opts.batch_min_work;
      return out;
    case ast::SubgoalKind::kAtom:
      if (IsProcCall(info)) {
        out.is_call = true;
        out.est_out = est_in;
        return out;
      }
      break;
    case ast::SubgoalKind::kNegatedAtom:
      break;
    default:
      // Fixed kinds (group_by, updates) never reach the greedy chooser;
      // they are barriers costed as pass-through when annotated.
      out.est_out = est_in;
      return out;
  }

  AtomCard atom = ResolveAtomCard(g, info, env);
  double rel_rows =
      atom.known ? atom.card.rows : opts.default_relation_rows;
  double selectivity = 1.0;
  int bound_cols = 0;
  for (size_t c = 0; c < atom.columns.size(); ++c) {
    if (c >= 32 || !IsFullyBoundPattern(*atom.columns[c], bound)) continue;
    ++bound_cols;
    double ndv = atom.known && c < atom.card.ndv.size() && atom.card.ndv[c] >= 1
                     ? atom.card.ndv[c]
                     : 10.0;  // default: each bound column keeps 1/10th
    selectivity /= ndv;
  }

  // A match's (or negated match's) work scales with input rows times the
  // rows each input visits — the quantity that must clear batch_min_work
  // before batch-at-a-time execution amortizes its setup.
  out.batch = est_in * rel_rows >= opts.batch_min_work;

  if (g.kind == ast::SubgoalKind::kNegatedAtom) {
    // Negation filters the input; a bigger relation rejects more. Cap the
    // pass-through fraction at the comparison selectivity.
    out.est_out = est_in * 0.5;
    return out;
  }

  out.est_out = est_in * rel_rows * selectivity;
  // Planned index build (§10 folded into the planner): pays off when the
  // key is probed more than once against a relation big enough that a
  // scan per probe beats the build cost. 64 rows matches the threshold
  // the parallel semi-naive driver already uses.
  out.build_index = atom.stored && bound_cols > 0 && est_in >= 2.0 &&
                    atom.known && atom.card.rows >= 64;
  return out;
}

/// Annotates an already-decided order with estimates (used for the
/// syntactic model and for reorder=false, so EXPLAIN always has est_rows).
Result<std::vector<PhysicalChoice>> AnnotateOrder(
    const std::vector<size_t>& order, const std::vector<ast::Subgoal>& body,
    const CompileEnv& env, const BoundSet& initially_bound,
    const PlannerOptions& opts) {
  std::vector<PhysicalChoice> out;
  out.reserve(order.size());
  BoundSet bound = initially_bound;
  double est_in = 1.0;
  for (size_t idx : order) {
    GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                              AnalyzeSubgoal(body[idx], env, bound));
    CostedStep step = EstimateStep(body[idx], info, env, bound, est_in, opts);
    PhysicalChoice choice;
    choice.body_index = idx;
    choice.est_rows = step.est_out;
    // The syntactic model predates planned builds; leave the runtime
    // adaptive policy in charge there so the A/B isolates ordering.
    choice.build_index = false;
    // Batch mode, by contrast, is orthogonal to ordering, so both cost
    // models annotate it: the A/B stays an ordering comparison.
    choice.batch = step.batch;
    out.push_back(choice);
    est_in = step.est_out;
    for (const std::string& v : info.binds) bound.insert(v);
  }
  return out;
}

}  // namespace

PlannerCounters& GlobalPlannerCounters() {
  static PlannerCounters counters;
  return counters;
}

Result<std::vector<PhysicalChoice>> PlanBodyOrder(
    const std::vector<ast::Subgoal>& body, const CompileEnv& env,
    const BoundSet& initially_bound, const PlannerOptions& opts) {
  GlobalPlannerCounters().bodies_planned.fetch_add(1,
                                                   std::memory_order_relaxed);
  if (!opts.reorder ||
      opts.cost_model == PlannerOptions::CostModel::kSyntactic) {
    std::vector<size_t> order;
    if (opts.reorder) {
      GLUENAIL_ASSIGN_OR_RETURN(order,
                                ReorderBody(body, env, initially_bound));
    } else {
      for (size_t i = 0; i < body.size(); ++i) order.push_back(i);
    }
    return AnnotateOrder(order, body, env, initially_bound, opts);
  }

  std::vector<PhysicalChoice> out;
  out.reserve(body.size());
  BoundSet bound = initially_bound;
  double est_in = 1.0;

  auto emit = [&](size_t idx, double est_out, bool build_index,
                  bool batch) -> Status {
    PhysicalChoice choice;
    choice.body_index = idx;
    choice.est_rows = est_out;
    choice.build_index = build_index;
    choice.batch = batch;
    if (build_index) {
      GlobalPlannerCounters().index_builds_scheduled.fetch_add(
          1, std::memory_order_relaxed);
    }
    out.push_back(choice);
    est_in = est_out;
    GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                              AnalyzeSubgoal(body[idx], env, bound));
    for (const std::string& v : info.binds) bound.insert(v);
    return Status::OK();
  };

  // Same segment structure as the syntactic reorderer: fixed subgoals are
  // barriers; only the non-fixed subgoals between them may move.
  size_t seg_start = 0;
  while (seg_start < body.size()) {
    size_t seg_end = body.size();  // exclusive of the barrier
    for (size_t i = seg_start; i < body.size(); ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                                AnalyzeSubgoal(body[i], env, bound));
      if (info.fixed) {
        seg_end = i;
        break;
      }
    }

    std::vector<size_t> pending;
    for (size_t i = seg_start; i < seg_end; ++i) pending.push_back(i);
    while (!pending.empty()) {
      std::vector<SubgoalInfo> infos(pending.size());
      for (size_t p = 0; p < pending.size(); ++p) {
        GLUENAIL_ASSIGN_OR_RETURN(
            infos[p], AnalyzeSubgoal(body[pending[p]], env, bound));
      }
      size_t best_pos = pending.size();  // sentinel: none schedulable
      CostedStep best_step;
      for (size_t p = 0; p < pending.size(); ++p) {
        const SubgoalInfo& info = infos[p];
        if (!IsSchedulable(info.required, bound)) continue;
        // Semantics guard shared with the syntactic reorderer: a binding
        // '=' keeps its written order relative to written-earlier binders
        // of the same variable (binding installs the evaluated term;
        // running after a match would turn it into a numeric filter).
        if (body[pending[p]].kind == ast::SubgoalKind::kComparison &&
            !info.binds.empty()) {
          bool conflict = false;
          for (size_t q = 0; q < pending.size() && !conflict; ++q) {
            if (q == p || pending[q] > pending[p]) continue;
            for (const std::string& v : infos[q].binds) {
              if (std::find(info.binds.begin(), info.binds.end(), v) !=
                  info.binds.end()) {
                conflict = true;
                break;
              }
            }
          }
          if (conflict) continue;
        }
        CostedStep step =
            EstimateStep(body[pending[p]], info, env, bound, est_in, opts);
        // Rank: relation subgoals before procedure calls (§9), then by
        // ascending estimated output; ties keep written order (pending is
        // sorted by body index, so strict '<' does exactly that).
        bool better =
            best_pos == pending.size() ||
            (step.is_call != best_step.is_call
                 ? !step.is_call
                 : step.est_out < best_step.est_out);
        if (better) {
          best_pos = p;
          best_step = step;
        }
      }
      if (best_pos == pending.size()) {
        // Nothing schedulable: emit the rest in written order and let the
        // logical planner report the first binding violation precisely.
        for (size_t idx : pending) {
          GLUENAIL_RETURN_NOT_OK(
              emit(idx, est_in, /*build_index=*/false, /*batch=*/false));
        }
        break;
      }
      size_t chosen = pending[best_pos];
      pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_pos));
      GLUENAIL_RETURN_NOT_OK(emit(chosen, best_step.est_out,
                                  best_step.build_index, best_step.batch));
    }

    if (seg_end < body.size()) {
      // The barrier itself: pass-through estimate, no planned build.
      GLUENAIL_RETURN_NOT_OK(
          emit(seg_end, est_in, /*build_index=*/false, /*batch=*/false));
      seg_start = seg_end + 1;
    } else {
      seg_start = body.size();
    }
  }
  return out;
}

}  // namespace gluenail
