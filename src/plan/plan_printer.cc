#include "src/plan/plan_printer.h"

#include "src/common/strings.h"

namespace gluenail {

namespace {

void AppendMatchNode(const MatchNode& n, std::string* out) {
  switch (n.kind) {
    case MatchNode::Kind::kWildcard:
      out->push_back('_');
      return;
    case MatchNode::Kind::kConst:
      out->append(StrCat("const#", n.const_term));
      return;
    case MatchNode::Kind::kBind:
      out->append(StrCat("bind:", n.slot));
      return;
    case MatchNode::Kind::kCheck:
      out->append(StrCat("check:", n.slot));
      return;
    case MatchNode::Kind::kStruct: {
      out->append("struct(");
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendMatchNode(n.children[i], out);
      }
      out->push_back(')');
      return;
    }
  }
}

void AppendAccess(const PredicateAccess& a, const TermPool& pool,
                  std::string* out) {
  switch (a.kind) {
    case PredicateAccess::Kind::kNone:
      out->append("none");
      return;
    case PredicateAccess::Kind::kEdb:
      out->append(StrCat("edb ", pool.ToString(a.name), "/", a.arity));
      return;
    case PredicateAccess::Kind::kLocal:
      out->append(StrCat("local#", a.local_index, "/", a.arity));
      return;
    case PredicateAccess::Kind::kIn:
      out->append(StrCat("in/", a.arity));
      return;
    case PredicateAccess::Kind::kReturn:
      out->append(StrCat("return/", a.arity));
      return;
    case PredicateAccess::Kind::kNail:
      out->append(StrCat("nail ", pool.ToString(a.name), "/", a.arity,
                         a.nail_params != 0
                             ? StrCat(" params=", a.nail_params)
                             : std::string()));
      return;
    case PredicateAccess::Kind::kDynamic:
      if (a.name_expr != kNoExpr) {
        out->append(StrCat("dynamic expr#", a.name_expr, "/", a.arity));
      } else {
        out->append(StrCat("dynamic enumerate/", a.arity, " pattern#",
                           a.name_pattern_index));
      }
      return;
  }
}

void AppendKeyedColumns(const PlanOp& op, std::string* out) {
  out->append(" keyed[");
  bool first = true;
  for (uint32_t c = 0; c < 32; ++c) {
    if (op.bound_mask & (1u << c)) {
      if (!first) out->push_back(',');
      out->append(StrCat("c", c));
      first = false;
    }
  }
  out->append("] cols(");
  for (size_t c = 0; c < op.col_patterns.size(); ++c) {
    if (c != 0) out->push_back(',');
    AppendMatchNode(op.col_patterns[c], out);
  }
  out->push_back(')');
}

void AppendOp(const PlanOp& op, const TermPool& pool, std::string* out) {
  switch (op.kind) {
    case OpKind::kMatch:
      out->append("match ");
      AppendAccess(op.access, pool, out);
      AppendKeyedColumns(op, out);
      break;
    case OpKind::kNegMatch:
      out->append("negmatch ");
      AppendAccess(op.access, pool, out);
      AppendKeyedColumns(op, out);
      break;
    case OpKind::kCompare:
      if (op.bind_slot >= 0) {
        out->append(StrCat("bind slot", op.bind_slot, " = expr#", op.rhs));
      } else {
        out->append(StrCat("filter expr#", op.lhs, " ",
                           ast::CompareOpName(op.cmp), " expr#", op.rhs));
      }
      break;
    case OpKind::kAggregate:
      out->append(StrCat("aggregate ", AggKindName(op.agg), "(expr#",
                         op.agg_arg, ") -> "));
      if (op.bind_slot >= 0) {
        out->append(StrCat("slot", op.bind_slot));
      } else {
        out->append(StrCat("filter = expr#", op.lhs));
      }
      break;
    case OpKind::kGroupBy: {
      out->append("group_by slots(");
      for (size_t i = 0; i < op.group_slots.size(); ++i) {
        if (i != 0) out->push_back(',');
        out->append(std::to_string(op.group_slots[i]));
      }
      out->push_back(')');
      break;
    }
    case OpKind::kCall: {
      const char* kinds[] = {"glue", "host", "builtin"};
      out->append(StrCat("call ", kinds[static_cast<int>(op.callee)], "#",
                         op.callee_index, " (", op.callee_bound_arity, ":",
                         op.callee_free_arity, ")"));
      break;
    }
    case OpKind::kUpdate:
      out->append(op.update_insert ? "insert into " : "delete from ");
      AppendAccess(op.access, pool, out);
      break;
  }
  if (op.fixed) out->append("  ; fixed");
  if (op.build_index) out->append("  ; build-index");
  if (op.batch) out->append("  ; batch");
}

/// The est/actual annotation: estimates are fractional internally but read
/// better rounded; -1 means the plan predates annotation.
void AppendRowCounts(const PlanOp& op, const uint64_t* actual,
                     std::string* out) {
  if (op.est_rows >= 0) {
    out->append(StrCat("  ; est=",
                       static_cast<uint64_t>(op.est_rows + 0.5)));
    if (actual != nullptr) out->append(StrCat(" actual=", *actual));
  } else if (actual != nullptr) {
    out->append(StrCat("  ; actual=", *actual));
  }
}

}  // namespace

std::string PlanToString(const StatementPlan& plan, const TermPool& pool) {
  return PlanToString(plan, pool, nullptr);
}

std::string PlanToString(const StatementPlan& plan, const TermPool& pool,
                         const std::vector<uint64_t>* actual_rows) {
  std::string out = "slots:";
  for (size_t i = 0; i < plan.slot_names.size(); ++i) {
    out.append(StrCat(" ", plan.slot_names[i], "=", i));
  }
  out.push_back('\n');
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    out.append(StrCat("  ", i, ": "));
    AppendOp(plan.ops[i], pool, &out);
    const uint64_t* actual =
        actual_rows != nullptr && i < actual_rows->size()
            ? &(*actual_rows)[i]
            : nullptr;
    AppendRowCounts(plan.ops[i], actual, &out);
    out.push_back('\n');
  }
  out.append("  head: ");
  out.append(ast::AssignOpName(plan.head.op));
  out.push_back(' ');
  if (plan.head.is_return) {
    out.append("return");
  } else {
    AppendAccess(plan.head.access, pool, &out);
  }
  out.append(StrCat(" cols ", plan.head.arg_exprs.size()));
  if (plan.head.modify_mask != 0) {
    out.append(StrCat(" key_mask=", plan.head.modify_mask));
  }
  if (plan.head.delta_access.kind != PredicateAccess::Kind::kNone) {
    out.append(" uniondiff -> ");
    AppendAccess(plan.head.delta_access, pool, &out);
  }
  out.push_back('\n');
  return out;
}

namespace {

void AppendInstr(const CInstr& instr, const CompiledProcedure& proc,
                 const TermPool& pool, int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent), ' ');
  if (instr.kind == CInstr::Kind::kExec) {
    out->append(StrCat(pad, "stmt ", instr.plan_index, ":\n"));
    std::string body =
        PlanToString(proc.plans[static_cast<size_t>(instr.plan_index)], pool);
    // Indent the plan body.
    size_t start = 0;
    while (start < body.size()) {
      size_t nl = body.find('\n', start);
      out->append(pad);
      out->append(body, start, nl - start + 1);
      start = nl + 1;
    }
  } else {
    out->append(StrCat(pad, "repeat\n"));
    for (const CInstr& inner : instr.body) {
      AppendInstr(inner, proc, pool, indent + 2, out);
    }
    out->append(StrCat(pad, "until <cond>\n"));
  }
}

}  // namespace

std::string ProcedureToString(const CompiledProcedure& proc,
                              const TermPool& pool) {
  std::string out = StrCat("proc ", proc.module, ".", proc.name, " (",
                           proc.bound_arity, ":", proc.free_arity, ")",
                           proc.fixed ? " fixed" : "", "\n");
  for (size_t i = 0; i < proc.locals.size(); ++i) {
    out.append(StrCat("  local#", i, " ", proc.locals[i].first, "/",
                      proc.locals[i].second, "\n"));
  }
  for (const CInstr& instr : proc.code) {
    AppendInstr(instr, proc, pool, 2, &out);
  }
  return out;
}

}  // namespace gluenail
