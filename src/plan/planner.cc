#include "src/plan/planner.h"

#include <functional>
#include <map>

#include "src/analysis/binding.h"
#include "src/common/strings.h"
#include "src/plan/physical.h"
#include "src/runtime/aggregates.h"
#include "src/runtime/io.h"
#include "src/runtime/string_builtins.h"

namespace gluenail {

namespace {

using ast::Term;
using ast::TermKind;

Status LocError(const ast::SourceLoc& loc, std::string_view msg) {
  return Status::CompileError(
      StrCat("line ", loc.line, ", col ", loc.col, ": ", msg));
}

bool IsArithFunctor(const Term& t) {
  if (!t.functor().IsSymbol()) return false;
  const std::string& n = t.functor().name;
  if (t.apply_arity() == 2) {
    return n == "+" || n == "-" || n == "*" || n == "/" || n == "mod";
  }
  return t.apply_arity() == 1 && n == "-";
}

bool IsAggregateFunctor(const Term& t) {
  return t.functor().IsSymbol() && t.apply_arity() == 1 &&
         AggKindFromName(t.functor().name).has_value();
}

/// Collects the HiLog parameter argument terms of a predicate-name chain:
/// for f(a)(B) yields [a, B] in column order.
void CollectPredParams(const Term& pred, std::vector<const Term*>* out) {
  if (!pred.IsApply()) return;
  CollectPredParams(pred.functor(), out);
  for (size_t i = 0; i < pred.apply_arity(); ++i) {
    out->push_back(&pred.arg(i));
  }
}

class StatementPlanner {
 public:
  StatementPlanner(const CompileEnv& env, const PlannerOptions& opts)
      : env_(env), opts_(opts) {}

  Result<StatementPlan> Plan(const ast::Assignment& a) {
    plan_.loc = a.loc;

    bool is_return = a.head_pred.IsSymbol() && a.head_pred.name == "return";
    if (is_return) {
      GLUENAIL_RETURN_NOT_OK(PlanImplicitIn(a));
    } else if (a.head_colon >= 0) {
      return LocError(a.loc, "':' in a head is only allowed on return");
    }

    // Physical phase: choose the body order and per-subgoal cardinality
    // estimates (plan/physical.h), then compile each subgoal logically in
    // that order, annotating the op it produced. Each CompileSubgoal call
    // pushes exactly one op.
    GLUENAIL_ASSIGN_OR_RETURN(std::vector<PhysicalChoice> order,
                              PlanBodyOrder(a.body, env_, bound_, opts_));
    for (const PhysicalChoice& choice : order) {
      GLUENAIL_RETURN_NOT_OK(CompileSubgoal(a.body[choice.body_index]));
      PlanOp& op = plan_.ops.back();
      op.est_rows = choice.est_rows;
      // The physical phase predicts bound columns with the same analysis
      // CompileMatch uses; the mask check is a safety net.
      op.build_index = choice.build_index &&
                       (op.kind == OpKind::kMatch ||
                        op.kind == OpKind::kNegMatch) &&
                       op.bound_mask != 0;
      // Batch execution only exists for the three pipelineable op kinds;
      // the runtime additionally falls back per op when the batch runner
      // cannot express it (dynamic access, structural patterns).
      op.batch = choice.batch && (op.kind == OpKind::kMatch ||
                                  op.kind == OpKind::kNegMatch ||
                                  op.kind == OpKind::kCompare);
    }

    GLUENAIL_RETURN_NOT_OK(PlanHead(a, is_return));

    plan_.num_slots = static_cast<int>(plan_.slot_names.size());
    return std::move(plan_);
  }

 private:
  // --- Slots -------------------------------------------------------------

  int SlotOf(const std::string& name) {
    auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    int slot = static_cast<int>(plan_.slot_names.size());
    plan_.slot_names.push_back(name);
    slots_.emplace(name, slot);
    return slot;
  }

  bool IsBound(const std::string& name) const {
    return bound_.count(name) != 0;
  }

  // --- Terms ---------------------------------------------------------------

  Result<TermId> GroundTermId(const Term& t) {
    switch (t.kind) {
      case TermKind::kInt:
        return env_.pool->MakeInt(t.int_value);
      case TermKind::kFloat:
        return env_.pool->MakeFloat(t.float_value);
      case TermKind::kSymbol:
        return env_.pool->MakeSymbol(t.name);
      case TermKind::kApply: {
        GLUENAIL_ASSIGN_OR_RETURN(TermId f, GroundTermId(t.functor()));
        std::vector<TermId> args;
        for (size_t i = 0; i < t.apply_arity(); ++i) {
          GLUENAIL_ASSIGN_OR_RETURN(TermId a, GroundTermId(t.arg(i)));
          args.push_back(a);
        }
        if (args.empty()) {
          return LocError(t.loc, "empty argument list in term");
        }
        return env_.pool->MakeCompound(f, args);
      }
      default:
        return LocError(t.loc, "expected a ground term");
    }
  }

  ExprId AddExpr(ExprNode node) {
    plan_.exprs.push_back(std::move(node));
    return static_cast<ExprId>(plan_.exprs.size() - 1);
  }

  Result<ExprId> ConstExpr(const Term& t) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId id, GroundTermId(t));
    ExprNode n;
    n.kind = ExprKind::kConst;
    n.const_term = id;
    return AddExpr(std::move(n));
  }

  /// Evaluation semantics: arithmetic / string builtins are computed.
  Result<ExprId> CompileExpr(const Term& t) {
    switch (t.kind) {
      case TermKind::kInt:
      case TermKind::kFloat:
      case TermKind::kSymbol:
        return ConstExpr(t);
      case TermKind::kVariable: {
        if (!IsBound(t.name)) {
          return LocError(t.loc,
                          StrCat("variable ", t.name, " is not bound here"));
        }
        ExprNode n;
        n.kind = ExprKind::kSlot;
        n.slot = SlotOf(t.name);
        return AddExpr(std::move(n));
      }
      case TermKind::kWildcard:
        return LocError(t.loc, "'_' cannot appear in an expression");
      case TermKind::kApply: {
        if (IsAggregateFunctor(t)) {
          return LocError(t.loc,
                          "aggregates are only allowed as the right side "
                          "of 'V = agg(T)'");
        }
        if (IsArithFunctor(t)) {
          ExprNode n;
          n.kind = t.apply_arity() == 1 ? ExprKind::kNegate : ExprKind::kArith;
          n.op = t.functor().name;
          for (size_t i = 0; i < t.apply_arity(); ++i) {
            GLUENAIL_ASSIGN_OR_RETURN(ExprId c, CompileExpr(t.arg(i)));
            n.children.push_back(c);
          }
          return AddExpr(std::move(n));
        }
        if (t.functor().IsSymbol() &&
            IsStringBuiltin(t.functor().name, t.apply_arity())) {
          ExprNode n;
          n.kind = ExprKind::kStringOp;
          n.op = t.functor().name;
          for (size_t i = 0; i < t.apply_arity(); ++i) {
            GLUENAIL_ASSIGN_OR_RETURN(ExprId c, CompileExpr(t.arg(i)));
            n.children.push_back(c);
          }
          return AddExpr(std::move(n));
        }
        return CompileBuild(t, /*allow_ops=*/true);
      }
    }
    return Status::Internal("unreachable term kind");
  }

  /// Construction semantics: every application builds a compound term; no
  /// operator is evaluated. Used for match keys, dynamic predicate names,
  /// and update/head positions that are data.
  Result<ExprId> CompileConstruct(const Term& t) {
    switch (t.kind) {
      case TermKind::kInt:
      case TermKind::kFloat:
      case TermKind::kSymbol:
        return ConstExpr(t);
      case TermKind::kVariable: {
        if (!IsBound(t.name)) {
          return LocError(t.loc,
                          StrCat("variable ", t.name, " is not bound here"));
        }
        ExprNode n;
        n.kind = ExprKind::kSlot;
        n.slot = SlotOf(t.name);
        return AddExpr(std::move(n));
      }
      case TermKind::kWildcard:
        return LocError(t.loc, "'_' cannot appear here");
      case TermKind::kApply:
        return CompileBuild(t, /*allow_ops=*/false);
    }
    return Status::Internal("unreachable term kind");
  }

  Result<ExprId> CompileBuild(const Term& t, bool allow_ops) {
    if (t.IsGround()) return ConstExpr(t);
    if (t.apply_arity() == 0) {
      return LocError(t.loc, "empty argument list in term");
    }
    ExprNode n;
    n.kind = ExprKind::kBuild;
    GLUENAIL_ASSIGN_OR_RETURN(
        ExprId f, allow_ops ? CompileExpr(t.functor())
                            : CompileConstruct(t.functor()));
    n.children.push_back(f);
    for (size_t i = 0; i < t.apply_arity(); ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(ExprId c, allow_ops
                                              ? CompileExpr(t.arg(i))
                                              : CompileConstruct(t.arg(i)));
      n.children.push_back(c);
    }
    return AddExpr(std::move(n));
  }

  /// Pattern compilation; binds first occurrences of variables.
  Result<MatchNode> CompilePattern(const Term& t) {
    MatchNode n;
    switch (t.kind) {
      case TermKind::kWildcard:
        n.kind = MatchNode::Kind::kWildcard;
        return n;
      case TermKind::kInt:
      case TermKind::kFloat:
      case TermKind::kSymbol: {
        n.kind = MatchNode::Kind::kConst;
        GLUENAIL_ASSIGN_OR_RETURN(n.const_term, GroundTermId(t));
        return n;
      }
      case TermKind::kVariable: {
        n.slot = SlotOf(t.name);
        if (IsBound(t.name)) {
          n.kind = MatchNode::Kind::kCheck;
        } else {
          n.kind = MatchNode::Kind::kBind;
          bound_.insert(t.name);
        }
        return n;
      }
      case TermKind::kApply: {
        if (t.IsGround()) {
          n.kind = MatchNode::Kind::kConst;
          GLUENAIL_ASSIGN_OR_RETURN(n.const_term, GroundTermId(t));
          return n;
        }
        if (t.apply_arity() == 0) {
          return LocError(t.loc, "empty argument list in pattern");
        }
        n.kind = MatchNode::Kind::kStruct;
        GLUENAIL_ASSIGN_OR_RETURN(MatchNode f, CompilePattern(t.functor()));
        n.children.push_back(std::move(f));
        for (size_t i = 0; i < t.apply_arity(); ++i) {
          GLUENAIL_ASSIGN_OR_RETURN(MatchNode c, CompilePattern(t.arg(i)));
          n.children.push_back(std::move(c));
        }
        return n;
      }
    }
    return Status::Internal("unreachable pattern kind");
  }

  // --- Relation access resolution -----------------------------------------

  struct ResolvedAtom {
    PredicateAccess access;
    /// Effective column terms: NAIL! parameter columns followed by the
    /// subgoal arguments.
    std::vector<const Term*> columns;
    const PredBinding* binding = nullptr;
  };

  /// Resolves an atom-shaped (pred, args) pair used as a relation read or
  /// write target. \p for_write restricts the admissible classes.
  Result<ResolvedAtom> ResolveRelationAtom(const Term& pred,
                                           const std::vector<Term>& args,
                                           bool for_write,
                                           const ast::SourceLoc& loc) {
    ResolvedAtom out;
    for (const Term& a : args) out.columns.push_back(&a);

    std::string root;
    uint32_t params = 0;
    bool static_name = StaticPredName(pred, &root, &params);
    bool pred_ground = VarsOf(pred).empty();
    const PredBinding* b =
        static_name ? env_.scope->Lookup(
                          root, params, static_cast<uint32_t>(args.size()))
                    : nullptr;
    if (b != nullptr) {
      out.binding = b;
      switch (b->cls) {
        case PredClass::kIn:
          if (for_write) return LocError(loc, "cannot assign to 'in'");
          out.access.kind = PredicateAccess::Kind::kIn;
          out.access.arity = b->arity();
          return out;
        case PredClass::kLocal:
          out.access.kind = PredicateAccess::Kind::kLocal;
          out.access.local_index = b->index;
          out.access.arity = b->arity();
          return out;
        case PredClass::kEdb: {
          if (pred_ground) {
            out.access.kind = PredicateAccess::Kind::kEdb;
            GLUENAIL_ASSIGN_OR_RETURN(out.access.name, GroundTermId(pred));
            out.access.arity = static_cast<uint32_t>(args.size());
            return out;
          }
          break;  // parameterized EDB instance: dynamic below
        }
        case PredClass::kNail: {
          if (for_write && !b->assignable) {
            return LocError(loc, StrCat("cannot assign to NAIL! predicate '",
                                        root, "'"));
          }
          out.access.kind = PredicateAccess::Kind::kNail;
          out.access.name = b->name;
          out.access.nail_params = b->nail_params;
          out.access.arity =
              b->nail_params + static_cast<uint32_t>(args.size());
          // Parameter columns precede the argument columns.
          std::vector<const Term*> cols;
          CollectPredParams(pred, &cols);
          for (const Term& a : args) cols.push_back(&a);
          out.columns = std::move(cols);
          return out;
        }
        case PredClass::kReturn:
          return LocError(loc, "return is written by return statements only");
        default:
          return LocError(loc, StrCat("'", root, "' is a ",
                                      PredClassName(b->cls),
                                      ", not a relation"));
      }
    } else if (static_name && params == 0) {
      if (env_.implicit_edb) {
        out.access.kind = PredicateAccess::Kind::kEdb;
        out.access.name = env_.pool->MakeSymbol(root);
        out.access.arity = static_cast<uint32_t>(args.size());
        return out;
      }
      return LocError(loc, StrCat("unresolved predicate '", root, "/",
                                  args.size(), "'"));
    } else if (pred_ground) {
      // Ground compound name with no declaration: an EDB family instance,
      // e.g. students(cs99).
      out.access.kind = PredicateAccess::Kind::kEdb;
      GLUENAIL_ASSIGN_OR_RETURN(out.access.name, GroundTermId(pred));
      out.access.arity = static_cast<uint32_t>(args.size());
      return out;
    }

    // Dynamic (HiLog) dereference.
    out.access.kind = PredicateAccess::Kind::kDynamic;
    out.access.arity = static_cast<uint32_t>(args.size());
    if (IsFullyBoundPattern(pred, bound_)) {
      GLUENAIL_ASSIGN_OR_RETURN(out.access.name_expr, CompileConstruct(pred));
    } else {
      if (for_write) {
        return LocError(loc,
                        "a written predicate name must be fully bound");
      }
      // Unbound name variables: the subgoal enumerates candidate
      // predicates; the name pattern binds them.
      GLUENAIL_ASSIGN_OR_RETURN(MatchNode pat, CompilePattern(pred));
      name_patterns_.push_back(std::move(pat));
      out.access.name_expr = kNoExpr;
      out.access.name_pattern_index =
          static_cast<int>(name_patterns_.size() - 1);
    }
    return out;
  }

  // --- Subgoal compilation -----------------------------------------------

  Status CompileSubgoal(const ast::Subgoal& g) {
    GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                              AnalyzeSubgoal(g, env_, bound_));
    if (!IsSchedulable(info.required, bound_)) {
      std::string missing;
      for (const std::string& v : info.required) {
        if (!IsBound(v)) {
          if (!missing.empty()) missing += ", ";
          missing += v;
        }
      }
      return LocError(g.loc, StrCat("unbound variable(s) ", missing, " in ",
                                    ast::ToString(g)));
    }
    switch (g.kind) {
      case ast::SubgoalKind::kAtom:
        if (info.binding != nullptr &&
            (info.binding->cls == PredClass::kGlueProc ||
             info.binding->cls == PredClass::kHostProc ||
             info.binding->cls == PredClass::kBuiltinProc)) {
          return CompileCall(g, *info.binding);
        }
        return CompileMatch(g, /*negated=*/false);
      case ast::SubgoalKind::kNegatedAtom:
        return CompileMatch(g, /*negated=*/true);
      case ast::SubgoalKind::kComparison:
        return CompileComparison(g, info);
      case ast::SubgoalKind::kGroupBy:
        return CompileGroupBy(g);
      case ast::SubgoalKind::kInsert:
      case ast::SubgoalKind::kDelete:
        return CompileUpdate(g);
    }
    return Status::Internal("unreachable subgoal kind");
  }

  Status CompileMatch(const ast::Subgoal& g, bool negated) {
    PlanOp op;
    op.kind = negated ? OpKind::kNegMatch : OpKind::kMatch;
    op.loc = g.loc;
    GLUENAIL_ASSIGN_OR_RETURN(
        ResolvedAtom atom,
        ResolveRelationAtom(g.pred, g.args, /*for_write=*/false, g.loc));
    op.access = atom.access;
    // Decide bound columns against the *pre-subgoal* binding state: key
    // expressions are evaluated on the input record.
    std::vector<bool> is_key(atom.columns.size(), false);
    for (size_t c = 0; c < atom.columns.size(); ++c) {
      if (c < 32 && IsFullyBoundPattern(*atom.columns[c], bound_)) {
        is_key[c] = true;
      }
    }
    for (size_t c = 0; c < atom.columns.size(); ++c) {
      if (is_key[c]) {
        op.bound_mask |= (1u << c);
        GLUENAIL_ASSIGN_OR_RETURN(ExprId key,
                                  CompileConstruct(*atom.columns[c]));
        op.key_exprs.push_back(key);
        op.col_patterns.emplace_back();  // wildcard placeholder
      } else {
        GLUENAIL_ASSIGN_OR_RETURN(MatchNode pat,
                                  CompilePattern(*atom.columns[c]));
        op.col_patterns.push_back(std::move(pat));
      }
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status CompileCall(const ast::Subgoal& g, const PredBinding& b) {
    PlanOp op;
    op.kind = OpKind::kCall;
    op.loc = g.loc;
    op.fixed = b.fixed;
    switch (b.cls) {
      case PredClass::kGlueProc:
        op.callee = CalleeKind::kGlueProc;
        break;
      case PredClass::kHostProc:
        op.callee = CalleeKind::kHost;
        break;
      default:
        op.callee = CalleeKind::kBuiltin;
        break;
    }
    op.callee_index = b.index;
    op.callee_bound_arity = b.bound_arity;
    op.callee_free_arity = b.free_arity;
    for (uint32_t i = 0; i < b.bound_arity; ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(ExprId e, CompileExpr(g.args[i]));
      op.call_in_exprs.push_back(e);
    }
    for (uint32_t i = b.bound_arity; i < b.arity(); ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(MatchNode pat, CompilePattern(g.args[i]));
      op.call_out_patterns.push_back(std::move(pat));
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status CompileComparison(const ast::Subgoal& g, const SubgoalInfo& info) {
    PlanOp op;
    op.loc = g.loc;
    if (info.is_aggregate) {
      op.kind = OpKind::kAggregate;
      op.fixed = true;
      op.agg = *AggKindFromName(g.rhs.functor().name);
      GLUENAIL_ASSIGN_OR_RETURN(op.agg_arg, CompileExpr(g.rhs.arg(0)));
      if (IsBound(g.lhs.name)) {
        // T = min(T): aggregate then filter (join), §3.3.
        GLUENAIL_ASSIGN_OR_RETURN(op.lhs, CompileExpr(g.lhs));
        op.bind_slot = -1;
      } else {
        op.bind_slot = SlotOf(g.lhs.name);
        bound_.insert(g.lhs.name);
      }
      plan_.ops.push_back(std::move(op));
      return Status::OK();
    }
    op.kind = OpKind::kCompare;
    op.cmp = g.cmp;
    bool lv = IsSingleVariable(g.lhs) && !IsBound(g.lhs.name);
    bool rv = IsSingleVariable(g.rhs) && !IsBound(g.rhs.name);
    if (g.cmp == ast::CompareOp::kEq && (lv || rv)) {
      const Term& target = lv ? g.lhs : g.rhs;
      const Term& source = lv ? g.rhs : g.lhs;
      GLUENAIL_ASSIGN_OR_RETURN(op.rhs, CompileExpr(source));
      op.bind_slot = SlotOf(target.name);
      bound_.insert(target.name);
    } else {
      GLUENAIL_ASSIGN_OR_RETURN(op.lhs, CompileExpr(g.lhs));
      GLUENAIL_ASSIGN_OR_RETURN(op.rhs, CompileExpr(g.rhs));
      op.bind_slot = -1;
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status CompileGroupBy(const ast::Subgoal& g) {
    PlanOp op;
    op.kind = OpKind::kGroupBy;
    op.fixed = true;
    op.loc = g.loc;
    for (const Term& v : g.args) {
      op.group_slots.push_back(SlotOf(v.name));
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status CompileUpdate(const ast::Subgoal& g) {
    PlanOp op;
    op.kind = OpKind::kUpdate;
    op.fixed = true;
    op.loc = g.loc;
    op.update_insert = g.kind == ast::SubgoalKind::kInsert;
    GLUENAIL_ASSIGN_OR_RETURN(
        ResolvedAtom atom,
        ResolveRelationAtom(g.pred, g.args, /*for_write=*/true, g.loc));
    if (atom.access.kind == PredicateAccess::Kind::kNail) {
      return LocError(g.loc, "cannot update a NAIL! predicate");
    }
    op.access = atom.access;
    for (const Term* col : atom.columns) {
      GLUENAIL_ASSIGN_OR_RETURN(ExprId e, CompileExpr(*col));
      op.update_exprs.push_back(e);
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  // --- Heads ---------------------------------------------------------------

  Status PlanImplicitIn(const ast::Assignment& a) {
    if (!env_.in_procedure) {
      return LocError(a.loc, "return outside a procedure");
    }
    if (a.head_colon < 0 ||
        static_cast<uint32_t>(a.head_colon) != env_.proc_bound_arity ||
        a.head_args.size() != env_.proc_arity) {
      return LocError(
          a.loc, StrCat("return head must match the procedure arity (",
                        env_.proc_bound_arity, ":",
                        env_.proc_arity - env_.proc_bound_arity, ")"));
    }
    if (env_.proc_bound_arity == 0) return Status::OK();
    // The implicit `in` subgoal (§4): restrict to tuples extending the
    // input relation.
    PlanOp op;
    op.kind = OpKind::kMatch;
    op.access.kind = PredicateAccess::Kind::kIn;
    op.access.arity = env_.proc_bound_arity;
    for (uint32_t i = 0; i < env_.proc_bound_arity; ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(MatchNode pat,
                                CompilePattern(a.head_args[i]));
      op.col_patterns.push_back(std::move(pat));
    }
    plan_.ops.push_back(std::move(op));
    return Status::OK();
  }

  Status PlanHead(const ast::Assignment& a, bool is_return) {
    HeadPlan& head = plan_.head;
    head.op = a.op;
    if (is_return) {
      head.is_return = true;
      head.access.kind = PredicateAccess::Kind::kReturn;
      head.access.arity = static_cast<uint32_t>(a.head_args.size());
      for (const Term& arg : a.head_args) {
        GLUENAIL_ASSIGN_OR_RETURN(ExprId e, CompileExpr(arg));
        head.arg_exprs.push_back(e);
      }
      if (a.has_delta) {
        return LocError(a.loc, "return cannot capture a delta");
      }
      return Status::OK();
    }

    GLUENAIL_ASSIGN_OR_RETURN(
        ResolvedAtom atom,
        ResolveRelationAtom(a.head_pred, a.head_args, /*for_write=*/true,
                            a.loc));
    if (atom.binding != nullptr && atom.binding->cls == PredClass::kEdb &&
        !atom.binding->assignable) {
      return LocError(a.loc, "cannot assign to this relation");
    }
    if (atom.binding != nullptr && atom.binding->cls == PredClass::kLocal &&
        !atom.binding->assignable) {
      return LocError(a.loc, "cannot assign to this relation");
    }
    head.access = atom.access;
    for (const Term* col : atom.columns) {
      GLUENAIL_ASSIGN_OR_RETURN(ExprId e, CompileExpr(*col));
      head.arg_exprs.push_back(e);
    }

    if (a.op == ast::AssignOp::kModify) {
      for (const std::string& key : a.modify_key) {
        bool found = false;
        for (size_t c = 0; c < atom.columns.size(); ++c) {
          if (IsSingleVariable(*atom.columns[c]) &&
              atom.columns[c]->name == key) {
            if (c >= 32) return LocError(a.loc, "key column beyond 32");
            head.modify_mask |= (1u << c);
            found = true;
          }
        }
        if (!found) {
          return LocError(a.loc, StrCat("+=[", key, "]: '", key,
                                        "' is not a head variable"));
        }
      }
    }

    if (a.has_delta) {
      if (a.op != ast::AssignOp::kInsert) {
        return LocError(a.loc, "delta capture requires '+='");
      }
      GLUENAIL_ASSIGN_OR_RETURN(
          ResolvedAtom datom,
          ResolveRelationAtom(a.delta_into, a.head_args, /*for_write=*/true,
                              a.loc));
      if (datom.access.arity != head.access.arity &&
          datom.access.kind != PredicateAccess::Kind::kNail) {
        return LocError(a.loc, "delta relation arity mismatch");
      }
      head.delta_access = datom.access;
    }
    return Status::OK();
  }

 public:
  /// Name patterns for dynamic predicates with unbound name variables;
  /// owned by the plan (moved in at the end).
  std::vector<MatchNode> name_patterns_;

 private:
  CompileEnv env_;
  PlannerOptions opts_;
  StatementPlan plan_;
  std::map<std::string, int> slots_;
  BoundSet bound_;
};

}  // namespace

Result<StatementPlan> PlanAssignment(const ast::Assignment& a,
                                     const CompileEnv& env,
                                     const PlannerOptions& opts) {
  StatementPlanner planner(env, opts);
  GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan, planner.Plan(a));
  plan.name_patterns = std::move(planner.name_patterns_);
  return plan;
}

Result<CondPlan> PlanUntilCond(const ast::UntilCond& c, const CompileEnv& env,
                               int* site_counter) {
  CondPlan out;
  out.kind = c.kind;
  switch (c.kind) {
    case ast::UntilCond::Kind::kAnd:
    case ast::UntilCond::Kind::kOr: {
      for (const ast::UntilCond& child : c.children) {
        GLUENAIL_ASSIGN_OR_RETURN(CondPlan cp,
                                  PlanUntilCond(child, env, site_counter));
        out.children.push_back(std::move(cp));
      }
      return out;
    }
    case ast::UntilCond::Kind::kNot: {
      GLUENAIL_ASSIGN_OR_RETURN(
          CondPlan cp, PlanUntilCond(c.children[0], env, site_counter));
      out.children.push_back(std::move(cp));
      return out;
    }
    default:
      break;
  }
  // Leaf test. Compile a throwaway assignment-free planner to reuse the
  // resolution machinery: conditions carry no bindings, so variables act
  // as wildcards.
  std::string root;
  uint32_t params = 0;
  if (!StaticPredName(c.pred, &root, &params)) {
    return Status::CompileError(
        "loop conditions need statically named predicates");
  }
  const PredBinding* b = env.scope->Lookup(
      root, params, static_cast<uint32_t>(c.args.size()));
  if (b == nullptr) {
    if (!env.implicit_edb || params != 0) {
      return Status::CompileError(StrCat("unresolved predicate '", root, "/",
                                         c.args.size(),
                                         "' in loop condition"));
    }
    out.access.kind = PredicateAccess::Kind::kEdb;
    out.access.name = env.pool->MakeSymbol(root);
    out.access.arity = static_cast<uint32_t>(c.args.size());
  } else {
    switch (b->cls) {
      case PredClass::kEdb:
        out.access.kind = PredicateAccess::Kind::kEdb;
        out.access.name = b->name != kNullTerm
                              ? b->name
                              : env.pool->MakeSymbol(root);
        out.access.arity = b->arity();
        break;
      case PredClass::kLocal:
        out.access.kind = PredicateAccess::Kind::kLocal;
        out.access.local_index = b->index;
        out.access.arity = b->arity();
        break;
      case PredClass::kIn:
        out.access.kind = PredicateAccess::Kind::kIn;
        out.access.arity = b->arity();
        break;
      case PredClass::kNail:
        if (c.kind == ast::UntilCond::Kind::kUnchanged) {
          return Status::CompileError(
              "unchanged() applies to stored relations, not NAIL! "
              "predicates");
        }
        out.access.kind = PredicateAccess::Kind::kNail;
        out.access.name = b->name;
        out.access.nail_params = b->nail_params;
        out.access.arity = b->nail_params + static_cast<uint32_t>(
                                                c.args.size());
        break;
      default:
        return Status::CompileError(
            StrCat("'", root, "' is a ", PredClassName(b->cls),
                   "; loop conditions test relations"));
    }
  }
  // Patterns: constants match, variables and wildcards match anything.
  std::vector<const ast::Term*> cols;
  if (out.access.kind == PredicateAccess::Kind::kNail) {
    CollectPredParams(c.pred, &cols);
  }
  for (const ast::Term& a : c.args) cols.push_back(&a);
  for (const ast::Term* col : cols) {
    MatchNode n;
    if (col->IsGround()) {
      n.kind = MatchNode::Kind::kConst;
      // Conditions only contain ground terms or variables; intern here.
      std::function<Result<TermId>(const ast::Term&)> intern =
          [&](const ast::Term& t) -> Result<TermId> {
        switch (t.kind) {
          case ast::TermKind::kInt:
            return env.pool->MakeInt(t.int_value);
          case ast::TermKind::kFloat:
            return env.pool->MakeFloat(t.float_value);
          case ast::TermKind::kSymbol:
            return env.pool->MakeSymbol(t.name);
          case ast::TermKind::kApply: {
            GLUENAIL_ASSIGN_OR_RETURN(TermId f, intern(t.functor()));
            std::vector<TermId> args;
            for (size_t i = 0; i < t.apply_arity(); ++i) {
              GLUENAIL_ASSIGN_OR_RETURN(TermId x, intern(t.arg(i)));
              args.push_back(x);
            }
            return env.pool->MakeCompound(f, args);
          }
          default:
            return Status::Internal("non-ground in ground intern");
        }
      };
      GLUENAIL_ASSIGN_OR_RETURN(n.const_term, intern(*col));
    } else {
      n.kind = MatchNode::Kind::kWildcard;
    }
    out.patterns.push_back(std::move(n));
  }
  if (c.kind == ast::UntilCond::Kind::kUnchanged) {
    if (out.access.kind != PredicateAccess::Kind::kEdb &&
        out.access.kind != PredicateAccess::Kind::kLocal &&
        out.access.kind != PredicateAccess::Kind::kIn) {
      return Status::CompileError(
          "unchanged() applies to stored relations");
    }
    out.unchanged_site = (*site_counter)++;
  }
  return out;
}

Result<CompiledProcedure> CompileProcedureAst(const ast::Procedure& p,
                                              const Scope& module_scope,
                                              TermPool* pool,
                                              std::string module_name,
                                              bool fixed,
                                              const PlannerOptions& opts,
                                              bool implicit_edb,
                                              const StatsProvider* stats) {
  CompiledProcedure proc;
  proc.module = std::move(module_name);
  proc.name = p.name;
  proc.bound_arity = p.bound_arity;
  proc.free_arity = p.free_arity;
  proc.fixed = fixed;

  Scope scope(&module_scope);
  for (size_t i = 0; i < p.locals.size(); ++i) {
    const ast::LocalRelation& local = p.locals[i];
    PredBinding b;
    b.cls = PredClass::kLocal;
    b.free_arity = local.arity;
    b.index = static_cast<int>(i);
    b.assignable = true;
    scope.Declare(local.name, 0, local.arity, b);
    proc.locals.emplace_back(local.name, local.arity);
  }
  {
    PredBinding in;
    in.cls = PredClass::kIn;
    in.free_arity = p.bound_arity;
    scope.Declare("in", 0, p.bound_arity, in);
    PredBinding ret;
    ret.cls = PredClass::kReturn;
    ret.free_arity = p.arity();
    scope.Declare("return", 0, p.arity(), ret);
  }

  CompileEnv env;
  env.pool = pool;
  env.scope = &scope;
  env.implicit_edb = implicit_edb;
  env.in_procedure = true;
  env.proc_bound_arity = p.bound_arity;
  env.proc_arity = p.arity();
  env.stats = stats;

  int site_counter = 0;
  std::function<Result<std::vector<CInstr>>(
      const std::vector<ast::Statement>&)>
      compile_block =
          [&](const std::vector<ast::Statement>& stmts)
      -> Result<std::vector<CInstr>> {
    std::vector<CInstr> code;
    for (const ast::Statement& s : stmts) {
      if (s.is_assignment()) {
        GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                                  PlanAssignment(s.assignment(), env, opts));
        proc.plans.push_back(std::move(plan));
        CInstr instr;
        instr.kind = CInstr::Kind::kExec;
        instr.plan_index = static_cast<int>(proc.plans.size() - 1);
        code.push_back(std::move(instr));
      } else {
        const ast::RepeatUntil& rep = s.repeat();
        CInstr instr;
        instr.kind = CInstr::Kind::kLoop;
        GLUENAIL_ASSIGN_OR_RETURN(instr.body, compile_block(rep.body));
        GLUENAIL_ASSIGN_OR_RETURN(instr.cond,
                                  PlanUntilCond(rep.cond, env, &site_counter));
        code.push_back(std::move(instr));
      }
    }
    return code;
  };

  GLUENAIL_ASSIGN_OR_RETURN(proc.code, compile_block(p.body));
  proc.num_unchanged_sites = site_counter;
  return proc;
}

}  // namespace gluenail
