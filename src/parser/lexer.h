/// \file lexer.h
/// \brief Tokenizer for Glue / NAIL! source text.
///
/// Lexical rules (docs/LANGUAGE.md):
///  * identifiers starting with a lower-case letter are symbols/names;
///  * identifiers starting with an upper-case letter or '_' are variables
///    (the bare '_' is the wildcard);
///  * 'quoted text' is a symbol (atoms and strings are the same thing, §2);
///  * numbers: 123, -0 handled by the parser via unary minus, 2.5, 1e-3;
///  * '%' starts a comment running to end of line;
///  * multi-character operators: :=  +=  -=  :-  ++  --  !=  <=  >= .

#ifndef GLUENAIL_PARSER_LEXER_H_
#define GLUENAIL_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/ast/ast.h"
#include "src/common/result.h"

namespace gluenail {

enum class TokKind : uint8_t {
  kIdent,     ///< lower-case identifier (symbol or keyword — see text)
  kVariable,  ///< upper-case / underscore identifier; "_" is the wildcard
  kInt,
  kFloat,
  kString,  ///< quoted symbol
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kAmp,    ///< &
  kDot,    ///< statement terminator
  kSemi,   ///< ;
  kColon,  ///< arity split in signatures and return heads
  kBang,   ///< ! negation
  kPipe,   ///< | in until conditions
  kAssign,       ///< :=
  kPlusAssign,   ///< +=
  kMinusAssign,  ///< -=
  kRuleArrow,    ///< :-
  kPlusPlus,     ///< ++ body insertion
  kMinusMinus,   ///< -- body deletion
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

/// Stable token-kind name for error messages.
std::string_view TokKindName(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEof;
  /// Identifier / variable / string text.
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  ast::SourceLoc loc;

  /// True if this is the identifier \p kw. Keywords ("module", "proc",
  /// "repeat", ...) are contextual: they lex as plain identifiers and the
  /// parser decides, so `end`, `in`, `return` can still name predicates.
  bool IsIdent(std::string_view kw) const {
    return kind == TokKind::kIdent && text == kw;
  }
};

/// Tokenizes \p src. On success the final token is kEof.
Result<std::vector<Token>> Lex(std::string_view src);

}  // namespace gluenail

#endif  // GLUENAIL_PARSER_LEXER_H_
