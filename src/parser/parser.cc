#include "src/parser/parser.h"

#include <utility>

#include "src/common/strings.h"
#include "src/parser/lexer.h"

namespace gluenail {

namespace {

using ast::Assignment;
using ast::AssignOp;
using ast::CompareOp;
using ast::EdbDecl;
using ast::ImportDecl;
using ast::LocalRelation;
using ast::Module;
using ast::NailRule;
using ast::PredicateSig;
using ast::Procedure;
using ast::Program;
using ast::RepeatUntil;
using ast::SourceLoc;
using ast::Statement;
using ast::Subgoal;
using ast::Term;
using ast::UntilCond;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program prog;
    while (!At(TokKind::kEof)) {
      GLUENAIL_ASSIGN_OR_RETURN(Module m, ParseModule());
      prog.modules.push_back(std::move(m));
    }
    if (prog.modules.empty()) {
      return Error("expected at least one module");
    }
    return prog;
  }

  Result<Module> ParseModule() {
    Module mod;
    mod.loc = Here();
    GLUENAIL_RETURN_NOT_OK(ExpectIdent("module"));
    GLUENAIL_ASSIGN_OR_RETURN(mod.name, ExpectName("module name"));
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kSemi));
    while (!Cur().IsIdent("end")) {
      if (At(TokKind::kEof)) return Error("unterminated module (missing end)");
      GLUENAIL_RETURN_NOT_OK(ParseModuleItem(&mod));
    }
    Next();  // consume 'end'
    return mod;
  }

  Result<Statement> ParseSingleStatement() {
    GLUENAIL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
    GLUENAIL_RETURN_NOT_OK(ExpectEof());
    return s;
  }

  Result<NailRule> ParseSingleRule() {
    GLUENAIL_ASSIGN_OR_RETURN(HeadInfo head, ParseHead());
    if (head.colon >= 0) return Error("NAIL! rule heads have no ':'");
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRuleArrow));
    NailRule rule;
    rule.loc = head.loc;
    rule.head_pred = std::move(head.pred);
    rule.head_args = std::move(head.args);
    GLUENAIL_ASSIGN_OR_RETURN(rule.body, ParseBody());
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kDot));
    GLUENAIL_RETURN_NOT_OK(ExpectEof());
    return rule;
  }

  Result<std::vector<Subgoal>> ParseSingleGoal() {
    GLUENAIL_ASSIGN_OR_RETURN(std::vector<Subgoal> body, ParseBody());
    if (At(TokKind::kDot)) Next();
    GLUENAIL_RETURN_NOT_OK(ExpectEof());
    return body;
  }

  Result<Term> ParseSingleTerm() {
    GLUENAIL_ASSIGN_OR_RETURN(Term t, ParseExpr());
    GLUENAIL_RETURN_NOT_OK(ExpectEof());
    return t;
  }

 private:
  // --- Token plumbing ----------------------------------------------------

  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokKind k) const { return Cur().kind == k; }
  Token Next() { return tokens_[pos_++]; }
  SourceLoc Here() const { return Cur().loc; }

  Status Error(std::string_view msg) const {
    const Token& t = Cur();
    return Status::ParseError(StrCat("line ", t.loc.line, ", col ", t.loc.col,
                                     ": ", msg, " (found ",
                                     TokKindName(t.kind),
                                     t.text.empty() ? "" : " '", t.text,
                                     t.text.empty() ? "" : "'", ")"));
  }

  Status Expect(TokKind k) {
    if (!At(k)) return Error(StrCat("expected ", TokKindName(k)));
    Next();
    return Status::OK();
  }

  Status ExpectIdent(std::string_view kw) {
    if (!Cur().IsIdent(kw)) return Error(StrCat("expected '", kw, "'"));
    Next();
    return Status::OK();
  }

  Result<std::string> ExpectName(std::string_view what) {
    if (!At(TokKind::kIdent)) return Error(StrCat("expected ", what));
    return Next().text;
  }

  Status ExpectEof() {
    if (!At(TokKind::kEof)) return Error("unexpected trailing input");
    return Status::OK();
  }

  // --- Module items -------------------------------------------------------

  Status ParseModuleItem(Module* mod) {
    if (Cur().IsIdent("export")) return ParseExport(mod);
    if (Cur().IsIdent("from")) return ParseImport(mod);
    if (Cur().IsIdent("edb")) return ParseEdbDecl(mod);
    if (Cur().IsIdent("procedure") || Cur().IsIdent("proc")) {
      GLUENAIL_ASSIGN_OR_RETURN(Procedure p, ParseProcedure());
      mod->procedures.push_back(std::move(p));
      return Status::OK();
    }
    return ParseRuleOrFact(mod);
  }

  Status ParseExport(Module* mod) {
    Next();  // 'export'
    while (true) {
      GLUENAIL_ASSIGN_OR_RETURN(PredicateSig sig, ParseSig());
      mod->exports.push_back(std::move(sig));
      if (At(TokKind::kComma)) {
        Next();
        continue;
      }
      return Expect(TokKind::kSemi);
    }
  }

  Status ParseImport(Module* mod) {
    Next();  // 'from'
    GLUENAIL_ASSIGN_OR_RETURN(std::string from, ExpectName("module name"));
    GLUENAIL_RETURN_NOT_OK(ExpectIdent("import"));
    while (true) {
      GLUENAIL_ASSIGN_OR_RETURN(PredicateSig sig, ParseSig());
      mod->imports.push_back(ImportDecl{from, std::move(sig)});
      if (At(TokKind::kComma)) {
        Next();
        continue;
      }
      return Expect(TokKind::kSemi);
    }
  }

  Status ParseEdbDecl(Module* mod) {
    Next();  // 'edb'
    while (true) {
      EdbDecl decl;
      decl.loc = Here();
      GLUENAIL_ASSIGN_OR_RETURN(decl.name, ExpectName("EDB relation name"));
      GLUENAIL_ASSIGN_OR_RETURN(decl.arity, ParseAritySig());
      mod->edb.push_back(std::move(decl));
      if (At(TokKind::kComma)) {
        Next();
        continue;
      }
      return Expect(TokKind::kSemi);
    }
  }

  /// Parses "(A,B,...)" counting names; "()" or absence means arity 0.
  Result<uint32_t> ParseAritySig() {
    if (!At(TokKind::kLParen)) return 0u;
    Next();
    uint32_t arity = 0;
    if (!At(TokKind::kRParen)) {
      while (true) {
        if (!At(TokKind::kVariable) && !At(TokKind::kIdent)) {
          return Error("expected an attribute name");
        }
        Next();
        ++arity;
        if (At(TokKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
    }
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRParen));
    return arity;
  }

  /// Parses "name(B1,..,Bm : F1,..,Fn)". A missing colon means all
  /// arguments are free (the usual case for imported EDB relations).
  Result<PredicateSig> ParseSig() {
    PredicateSig sig;
    sig.loc = Here();
    GLUENAIL_ASSIGN_OR_RETURN(sig.name, ExpectName("predicate name"));
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kLParen));
    uint32_t before_colon = 0, after_colon = 0;
    bool saw_colon = false;
    while (!At(TokKind::kRParen)) {
      if (At(TokKind::kColon)) {
        if (saw_colon) return Error("duplicate ':' in signature");
        saw_colon = true;
        Next();
        continue;
      }
      if (!At(TokKind::kVariable) && !At(TokKind::kIdent)) {
        return Error("expected an argument name in signature");
      }
      Next();
      if (saw_colon) {
        ++after_colon;
      } else {
        ++before_colon;
      }
      if (At(TokKind::kComma)) Next();
    }
    Next();  // ')'
    if (saw_colon) {
      sig.bound_arity = before_colon;
      sig.free_arity = after_colon;
    } else {
      sig.bound_arity = 0;
      sig.free_arity = before_colon;
    }
    return sig;
  }

  Status ParseRuleOrFact(Module* mod) {
    GLUENAIL_ASSIGN_OR_RETURN(HeadInfo head, ParseHead());
    if (At(TokKind::kRuleArrow)) {
      if (head.colon >= 0) return Error("NAIL! rule heads have no ':'");
      Next();
      NailRule rule;
      rule.loc = head.loc;
      rule.head_pred = std::move(head.pred);
      rule.head_args = std::move(head.args);
      GLUENAIL_ASSIGN_OR_RETURN(rule.body, ParseBody());
      GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kDot));
      mod->rules.push_back(std::move(rule));
      return Status::OK();
    }
    if (At(TokKind::kDot)) {
      Next();
      if (head.colon >= 0) return Error("facts have no ':'");
      Term fact = head.args.empty()
                      ? head.pred
                      : Term::Apply(head.pred, std::move(head.args), head.loc);
      if (!fact.IsGround()) return Error("facts must be ground");
      mod->facts.push_back(std::move(fact));
      return Status::OK();
    }
    return Error("expected ':-' (rule) or '.' (fact) after head");
  }

  // --- Procedures -----------------------------------------------------------

  Result<Procedure> ParseProcedure() {
    Procedure proc;
    proc.loc = Here();
    Next();  // 'procedure' | 'proc'
    GLUENAIL_ASSIGN_OR_RETURN(proc.name, ExpectName("procedure name"));
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kLParen));
    bool saw_colon = false;
    while (!At(TokKind::kRParen)) {
      if (At(TokKind::kColon)) {
        if (saw_colon) return Error("duplicate ':' in procedure signature");
        saw_colon = true;
        Next();
        continue;
      }
      if (!At(TokKind::kVariable)) {
        return Error("expected a formal parameter (variable)");
      }
      Next();
      if (saw_colon) {
        ++proc.free_arity;
      } else {
        ++proc.bound_arity;
      }
      if (At(TokKind::kComma)) Next();
    }
    Next();  // ')'
    if (!saw_colon) {
      return Error("procedure signature needs ':' (bound:free split)");
    }
    if (Cur().IsIdent("rels")) {
      Next();
      while (true) {
        LocalRelation local;
        local.loc = Here();
        GLUENAIL_ASSIGN_OR_RETURN(local.name,
                                  ExpectName("local relation name"));
        GLUENAIL_ASSIGN_OR_RETURN(local.arity, ParseAritySig());
        proc.locals.push_back(std::move(local));
        if (At(TokKind::kComma)) {
          Next();
          continue;
        }
        GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kSemi));
        break;
      }
    }
    while (!Cur().IsIdent("end")) {
      if (At(TokKind::kEof)) {
        return Error("unterminated procedure (missing end)");
      }
      GLUENAIL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      proc.body.push_back(std::move(s));
    }
    Next();  // 'end'
    return proc;
  }

  // --- Statements -----------------------------------------------------------

  Result<Statement> ParseStatement() {
    if (Cur().IsIdent("repeat")) return ParseRepeat();
    GLUENAIL_ASSIGN_OR_RETURN(Assignment a, ParseAssignment());
    Statement s;
    s.node = std::move(a);
    return s;
  }

  Result<Statement> ParseRepeat() {
    RepeatUntil rep;
    rep.loc = Here();
    Next();  // 'repeat'
    while (!Cur().IsIdent("until")) {
      if (At(TokKind::kEof)) return Error("repeat without until");
      GLUENAIL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      rep.body.push_back(std::move(s));
    }
    Next();  // 'until'
    bool braced = At(TokKind::kLBrace);
    if (braced) Next();
    GLUENAIL_ASSIGN_OR_RETURN(rep.cond, ParseOrCond());
    if (braced) GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRBrace));
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kSemi));
    Statement s;
    s.node = std::move(rep);
    return s;
  }

  Result<Assignment> ParseAssignment() {
    GLUENAIL_ASSIGN_OR_RETURN(HeadInfo head, ParseHead());
    Assignment a;
    a.loc = head.loc;
    a.head_pred = std::move(head.pred);
    a.head_args = std::move(head.args);
    a.head_colon = head.colon;
    switch (Cur().kind) {
      case TokKind::kAssign:
        a.op = AssignOp::kClear;
        Next();
        break;
      case TokKind::kMinusAssign:
        a.op = AssignOp::kDelete;
        Next();
        break;
      case TokKind::kPlusAssign: {
        Next();
        if (At(TokKind::kLBracket)) {
          a.op = AssignOp::kModify;
          Next();
          while (!At(TokKind::kRBracket)) {
            if (!At(TokKind::kVariable)) {
              return Error("expected key variable in +=[...]");
            }
            a.modify_key.push_back(Next().text);
            if (At(TokKind::kComma)) Next();
          }
          Next();  // ']'
          if (a.modify_key.empty()) return Error("empty key in +=[...]");
        } else {
          a.op = AssignOp::kInsert;
        }
        break;
      }
      default:
        return Error("expected ':=', '+=', or '-='");
    }
    GLUENAIL_ASSIGN_OR_RETURN(a.body, ParseBody());
    GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kDot));
    return a;
  }

  // --- Heads ---------------------------------------------------------------

  struct HeadInfo {
    Term pred;
    std::vector<Term> args;
    int colon = -1;
    SourceLoc loc;
  };

  /// Parses a head: primary applied zero or more times; the final argument
  /// list may contain one ':' (return heads, §4).
  Result<HeadInfo> ParseHead() {
    HeadInfo head;
    head.loc = Here();
    GLUENAIL_ASSIGN_OR_RETURN(Term pred, ParsePrimary());
    if (!At(TokKind::kLParen)) {
      // Arity-0 head, e.g. "initialized := true." style flags.
      head.pred = std::move(pred);
      return head;
    }
    while (At(TokKind::kLParen)) {
      Next();  // '('
      std::vector<Term> args;
      int colon = -1;
      while (!At(TokKind::kRParen)) {
        if (At(TokKind::kColon)) {
          if (colon >= 0) return Error("duplicate ':' in head");
          colon = static_cast<int>(args.size());
          Next();
          continue;
        }
        GLUENAIL_ASSIGN_OR_RETURN(Term arg, ParseExpr());
        args.push_back(std::move(arg));
        if (At(TokKind::kComma)) Next();
      }
      Next();  // ')'
      bool more = At(TokKind::kLParen);
      if (more) {
        if (colon >= 0) return Error("':' allowed only in the final head args");
        pred = Term::Apply(std::move(pred), std::move(args), head.loc);
      } else {
        head.pred = std::move(pred);
        head.args = std::move(args);
        head.colon = colon;
        return head;
      }
    }
    return Error("unreachable head state");
  }

  // --- Bodies & subgoals -----------------------------------------------------

  Result<std::vector<Subgoal>> ParseBody() {
    std::vector<Subgoal> body;
    while (true) {
      GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, ParseSubgoal());
      body.push_back(std::move(g));
      if (At(TokKind::kAmp)) {
        Next();
        continue;
      }
      return body;
    }
  }

  Result<Subgoal> ParseSubgoal() {
    SourceLoc loc = Here();
    if (At(TokKind::kBang)) {
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(Term t, ParseApplyChain());
      GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, AtomFromTerm(std::move(t), loc));
      g.kind = ast::SubgoalKind::kNegatedAtom;
      return g;
    }
    if (At(TokKind::kPlusPlus) || At(TokKind::kMinusMinus)) {
      bool insert = At(TokKind::kPlusPlus);
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(Term t, ParseApplyChain());
      GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, AtomFromTerm(std::move(t), loc));
      g.kind = insert ? ast::SubgoalKind::kInsert : ast::SubgoalKind::kDelete;
      return g;
    }
    GLUENAIL_ASSIGN_OR_RETURN(Term lhs, ParseExpr());
    CompareOp op;
    switch (Cur().kind) {
      case TokKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokKind::kGe:
        op = CompareOp::kGe;
        break;
      default: {
        // No comparison operator: the expression must be an atom.
        GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, AtomFromTerm(std::move(lhs), loc));
        // group_by(C) is surface syntax for the partitioning subgoal.
        if (g.pred.IsSymbol() && g.pred.name == "group_by") {
          for (const Term& v : g.args) {
            if (!v.IsVariable()) {
              return Error("group_by arguments must be variables");
            }
          }
          g.kind = ast::SubgoalKind::kGroupBy;
        }
        return g;
      }
    }
    Next();  // the comparison operator
    GLUENAIL_ASSIGN_OR_RETURN(Term rhs, ParseExpr());
    return Subgoal::Comparison(std::move(lhs), op, std::move(rhs), loc);
  }

  /// Splits the outermost application of \p t into predicate + args:
  ///   e(X,Y)        -> pred e, args [X,Y]
  ///   T(TA)         -> pred T (HiLog variable), args [TA]
  ///   tas(ID)(Who)  -> pred tas(ID), args [Who]
  ///   flag          -> pred flag, args []
  Result<Subgoal> AtomFromTerm(Term t, SourceLoc loc) {
    if (t.kind == ast::TermKind::kApply) {
      Term pred = std::move(t.children[0]);
      std::vector<Term> args(std::make_move_iterator(t.children.begin() + 1),
                             std::make_move_iterator(t.children.end()));
      return Subgoal::Atom(std::move(pred), std::move(args), loc);
    }
    if (t.IsSymbol() || t.IsVariable()) {
      return Subgoal::Atom(std::move(t), {}, loc);
    }
    return Error("expected a predicate subgoal");
  }

  // --- Until conditions --------------------------------------------------

  Result<UntilCond> ParseOrCond() {
    GLUENAIL_ASSIGN_OR_RETURN(UntilCond left, ParseAndCond());
    while (At(TokKind::kPipe)) {
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(UntilCond right, ParseAndCond());
      UntilCond node;
      node.kind = UntilCond::Kind::kOr;
      node.children.push_back(std::move(left));
      node.children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<UntilCond> ParseAndCond() {
    GLUENAIL_ASSIGN_OR_RETURN(UntilCond left, ParseUnaryCond());
    while (At(TokKind::kAmp)) {
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(UntilCond right, ParseUnaryCond());
      UntilCond node;
      node.kind = UntilCond::Kind::kAnd;
      node.children.push_back(std::move(left));
      node.children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<UntilCond> ParseUnaryCond() {
    SourceLoc loc = Here();
    if (At(TokKind::kBang)) {
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(UntilCond inner, ParseUnaryCond());
      UntilCond node;
      node.kind = UntilCond::Kind::kNot;
      node.loc = loc;
      node.children.push_back(std::move(inner));
      return node;
    }
    if (At(TokKind::kLParen)) {
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(UntilCond inner, ParseOrCond());
      GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRParen));
      return inner;
    }
    if (Cur().IsIdent("unchanged") || Cur().IsIdent("empty")) {
      bool unchanged = Cur().IsIdent("unchanged");
      Next();
      GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kLParen));
      GLUENAIL_ASSIGN_OR_RETURN(Term t, ParseApplyChain());
      GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRParen));
      GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, AtomFromTerm(std::move(t), loc));
      UntilCond node;
      node.kind = unchanged ? UntilCond::Kind::kUnchanged
                            : UntilCond::Kind::kEmpty;
      node.pred = std::move(g.pred);
      node.args = std::move(g.args);
      node.loc = loc;
      return node;
    }
    GLUENAIL_ASSIGN_OR_RETURN(Term t, ParseApplyChain());
    GLUENAIL_ASSIGN_OR_RETURN(Subgoal g, AtomFromTerm(std::move(t), loc));
    UntilCond node;
    node.kind = UntilCond::Kind::kNonEmpty;
    node.pred = std::move(g.pred);
    node.args = std::move(g.args);
    node.loc = loc;
    return node;
  }

  // --- Expressions ---------------------------------------------------------
  //
  // Binary operators parse by precedence climbing in one routine instead
  // of a ParseAdd → ParseMul → ParseApplyChain cascade: a parenthesized
  // sub-expression costs two or three stack frames per nesting level
  // rather than six, so legitimate deep nesting (robustness_test goes
  // 2000 levels) fits comfortably in a default thread stack, and the
  // explicit depth guard turns adversarial nesting into a parse error
  // instead of a blown stack.

  /// Deepest expression nesting accepted. At ~1–2 KiB of parser frames
  /// per level (unoptimized build), this keeps the worst case a few MiB
  /// under the common 8 MiB stack limit.
  static constexpr int kMaxExprDepth = 3000;

  /// RAII depth guard for the mutually recursive expression routines.
  struct DepthScope {
    explicit DepthScope(int* depth) : depth(depth) { ++*depth; }
    ~DepthScope() { --*depth; }
    int* depth;
  };

  Result<Term> ParseExpr() { return ParseBinary(0); }

  /// Operator precedence: 0 = none, 1 = +/-, 2 = * / mod.
  int BinaryPrec() {
    if (At(TokKind::kPlus) || At(TokKind::kMinus)) return 1;
    if (At(TokKind::kStar) || At(TokKind::kSlash) || Cur().IsIdent("mod")) {
      return 2;
    }
    return 0;
  }

  /// Parses a (left-associative) binary expression whose operators all
  /// bind at least as tightly as \p min_prec.
  Result<Term> ParseBinary(int min_prec) {
    GLUENAIL_ASSIGN_OR_RETURN(Term left, ParseUnary());
    for (int prec = BinaryPrec(); prec != 0 && prec >= min_prec;
         prec = BinaryPrec()) {
      SourceLoc loc = Here();
      const char* op = At(TokKind::kPlus)    ? "+"
                       : At(TokKind::kMinus) ? "-"
                       : At(TokKind::kStar)  ? "*"
                       : At(TokKind::kSlash) ? "/"
                                             : "mod";
      Next();
      GLUENAIL_ASSIGN_OR_RETURN(Term right, ParseBinary(prec + 1));
      std::vector<Term> args;
      args.push_back(std::move(left));
      args.push_back(std::move(right));
      left = Term::Apply(op, std::move(args), loc);
    }
    return left;
  }

  /// unary-minus* primary ('(' args ')')*
  ///
  /// The depth guard lives here (and only here): every route deeper into
  /// the expression grammar — a parenthesized sub-expression, a unary
  /// minus, a binary right-hand side — passes through ParseUnary exactly
  /// once per level, so expr_depth_ tracks the real nesting depth.
  Result<Term> ParseUnary() {
    DepthScope scope(&expr_depth_);
    if (expr_depth_ > kMaxExprDepth) {
      return Error(StrCat("expression nesting exceeds ", kMaxExprDepth,
                          " levels"));
    }
    if (At(TokKind::kMinus)) {
      SourceLoc loc = Here();
      Next();
      // Fold the sign into numeric literals so "-2" is a literal, not an
      // expression — required for literals in matching positions.
      if (At(TokKind::kInt)) {
        Token t = Next();
        return Term::Int(-t.int_value, loc);
      }
      if (At(TokKind::kFloat)) {
        Token t = Next();
        return Term::Float(-t.float_value, loc);
      }
      GLUENAIL_ASSIGN_OR_RETURN(Term inner, ParseUnary());
      std::vector<Term> args;
      args.push_back(std::move(inner));
      return Term::Apply("-", std::move(args), loc);
    }
    return ParseApplyChain();
  }

  /// primary ('(' args ')')*
  ///
  /// Also called directly where the grammar wants an atom (negated /
  /// delta subgoals, until-conditions) rather than a full expression.
  Result<Term> ParseApplyChain() {
    SourceLoc loc = Here();
    GLUENAIL_ASSIGN_OR_RETURN(Term t, ParsePrimary());
    while (At(TokKind::kLParen)) {
      Next();
      std::vector<Term> args;
      while (!At(TokKind::kRParen)) {
        GLUENAIL_ASSIGN_OR_RETURN(Term arg, ParseExpr());
        args.push_back(std::move(arg));
        if (At(TokKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
      GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRParen));
      t = Term::Apply(std::move(t), std::move(args), loc);
    }
    return t;
  }

  Result<Term> ParsePrimary() {
    SourceLoc loc = Here();
    switch (Cur().kind) {
      case TokKind::kInt: {
        Token t = Next();
        return Term::Int(t.int_value, loc);
      }
      case TokKind::kFloat: {
        Token t = Next();
        return Term::Float(t.float_value, loc);
      }
      case TokKind::kString: {
        Token t = Next();
        return Term::Symbol(std::move(t.text), loc);
      }
      case TokKind::kIdent: {
        Token t = Next();
        return Term::Symbol(std::move(t.text), loc);
      }
      case TokKind::kVariable: {
        Token t = Next();
        if (t.text == "_") return Term::Wildcard(loc);
        return Term::Variable(std::move(t.text), loc);
      }
      case TokKind::kLParen: {
        Next();
        GLUENAIL_ASSIGN_OR_RETURN(Term inner, ParseExpr());
        GLUENAIL_RETURN_NOT_OK(Expect(TokKind::kRParen));
        return inner;
      }
      default:
        return Error("expected a term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

Result<Parser> MakeParser(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(src));
  return Parser(std::move(tokens));
}

}  // namespace

Result<ast::Program> ParseProgram(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(Parser p, MakeParser(src));
  return p.ParseProgram();
}

Result<ast::Module> ParseModule(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(ast::Program prog, ParseProgram(src));
  if (prog.modules.size() != 1) {
    return Status::ParseError("expected exactly one module");
  }
  return std::move(prog.modules[0]);
}

Result<ast::Statement> ParseStatement(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(Parser p, MakeParser(src));
  return p.ParseSingleStatement();
}

Result<ast::NailRule> ParseRule(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(Parser p, MakeParser(src));
  return p.ParseSingleRule();
}

Result<std::vector<ast::Subgoal>> ParseGoal(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(Parser p, MakeParser(src));
  return p.ParseSingleGoal();
}

Result<ast::Term> ParseTermText(std::string_view src) {
  GLUENAIL_ASSIGN_OR_RETURN(Parser p, MakeParser(src));
  return p.ParseSingleTerm();
}

}  // namespace gluenail
