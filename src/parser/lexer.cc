#include "src/parser/lexer.h"

#include <cctype>
#include <charconv>

#include "src/common/strings.h"

namespace gluenail {

std::string_view TokKindName(TokKind kind) {
  switch (kind) {
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kVariable:
      return "variable";
    case TokKind::kInt:
      return "integer";
    case TokKind::kFloat:
      return "float";
    case TokKind::kString:
      return "quoted symbol";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kComma:
      return "','";
    case TokKind::kAmp:
      return "'&'";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kBang:
      return "'!'";
    case TokKind::kPipe:
      return "'|'";
    case TokKind::kAssign:
      return "':='";
    case TokKind::kPlusAssign:
      return "'+='";
    case TokKind::kMinusAssign:
      return "'-='";
    case TokKind::kRuleArrow:
      return "':-'";
    case TokKind::kPlusPlus:
      return "'++'";
    case TokKind::kMinusMinus:
      return "'--'";
    case TokKind::kEq:
      return "'='";
    case TokKind::kNe:
      return "'!='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kEof:
      return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      ast::SourceLoc loc{line_, col_};
      if (AtEnd()) {
        out.push_back(Token{TokKind::kEof, "", 0, 0, loc});
        return out;
      }
      GLUENAIL_ASSIGN_OR_RETURN(Token tok, Next());
      tok.loc = loc;
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError(
        StrCat("line ", line_, ", col ", col_, ": ", msg));
  }

  Token Simple(TokKind kind) {
    Advance();
    return Token{kind, "", 0, 0, {}};
  }

  Token Pair(TokKind kind) {
    Advance();
    Advance();
    return Token{kind, "", 0, 0, {}};
  }

  Result<Token> Next() {
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) return Number();
    if (c == '\'') return Quoted();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return Identifier();
    }
    switch (c) {
      case '(':
        return Simple(TokKind::kLParen);
      case ')':
        return Simple(TokKind::kRParen);
      case '[':
        return Simple(TokKind::kLBracket);
      case ']':
        return Simple(TokKind::kRBracket);
      case '{':
        return Simple(TokKind::kLBrace);
      case '}':
        return Simple(TokKind::kRBrace);
      case ',':
        return Simple(TokKind::kComma);
      case '&':
        return Simple(TokKind::kAmp);
      case ';':
        return Simple(TokKind::kSemi);
      case '|':
        return Simple(TokKind::kPipe);
      case '.':
        return Simple(TokKind::kDot);
      case '*':
        return Simple(TokKind::kStar);
      case '/':
        return Simple(TokKind::kSlash);
      case ':':
        if (Peek(1) == '=') return Pair(TokKind::kAssign);
        if (Peek(1) == '-') return Pair(TokKind::kRuleArrow);
        return Simple(TokKind::kColon);
      case '+':
        if (Peek(1) == '=') return Pair(TokKind::kPlusAssign);
        if (Peek(1) == '+') return Pair(TokKind::kPlusPlus);
        return Simple(TokKind::kPlus);
      case '-':
        if (Peek(1) == '=') return Pair(TokKind::kMinusAssign);
        if (Peek(1) == '-') return Pair(TokKind::kMinusMinus);
        return Simple(TokKind::kMinus);
      case '!':
        if (Peek(1) == '=') return Pair(TokKind::kNe);
        return Simple(TokKind::kBang);
      case '=':
        return Simple(TokKind::kEq);
      case '<':
        if (Peek(1) == '=') return Pair(TokKind::kLe);
        return Simple(TokKind::kLt);
      case '>':
        if (Peek(1) == '=') return Pair(TokKind::kGe);
        return Simple(TokKind::kGt);
      default:
        return Error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }

  Result<Token> Number() {
    size_t start = pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    bool is_float = false;
    // '.' continues the number only if a digit follows; a bare '.' is the
    // statement terminator ("matrix(X,X, 1.0):= row(X)." ends with kDot).
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      int save_line = line_, save_col = col_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      } else {
        pos_ = save;
        line_ = save_line;
        col_ = save_col;
      }
    }
    std::string_view lit = src_.substr(start, pos_ - start);
    Token tok;
    if (is_float) {
      tok.kind = TokKind::kFloat;
      auto [p, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), tok.float_value);
      if (ec != std::errc() || p != lit.data() + lit.size()) {
        return Error(StrCat("malformed float literal '", lit, "'"));
      }
    } else {
      tok.kind = TokKind::kInt;
      auto [p, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), tok.int_value);
      if (ec != std::errc() || p != lit.data() + lit.size()) {
        return Error(StrCat("malformed integer literal '", lit, "'"));
      }
    }
    return tok;
  }

  Result<Token> Quoted() {
    Advance();  // opening quote
    std::string raw;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        raw += Advance();
        raw += Advance();
        continue;
      }
      if (c == '\'') {
        Advance();
        return Token{TokKind::kString, UnescapeQuoted(raw), 0, 0, {}};
      }
      raw += Advance();
    }
    return Error("unterminated quoted symbol");
  }

  Result<Token> Identifier() {
    size_t start = pos_;
    char first = Peek();
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        Advance();
      } else {
        break;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    bool is_var = std::isupper(static_cast<unsigned char>(first)) ||
                  first == '_';
    Token tok;
    tok.kind = is_var ? TokKind::kVariable : TokKind::kIdent;
    tok.text = std::move(text);
    return tok;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  return Lexer(src).Run();
}

}  // namespace gluenail
