/// \file parser.h
/// \brief Recursive-descent parser for Glue and NAIL! source.
///
/// The complete grammar is documented in docs/LANGUAGE.md. Both languages
/// parse into the shared AST (src/ast/ast.h); a statement whose connective
/// is `:-` is a NAIL! rule, while `:=`, `+=`, `-=`, and `+=[key]` form Glue
/// assignment statements.

#ifndef GLUENAIL_PARSER_PARSER_H_
#define GLUENAIL_PARSER_PARSER_H_

#include <string_view>

#include "src/ast/ast.h"
#include "src/common/result.h"

namespace gluenail {

/// Parses a whole source file: one or more modules.
Result<ast::Program> ParseProgram(std::string_view src);

/// Parses exactly one module.
Result<ast::Module> ParseModule(std::string_view src);

/// Parses a single Glue statement (assignment or repeat loop); used by the
/// Engine's ad-hoc statement API and by tests.
Result<ast::Statement> ParseStatement(std::string_view src);

/// Parses a single NAIL! rule ("h(X) :- b(X).").
Result<ast::NailRule> ParseRule(std::string_view src);

/// Parses a conjunctive goal ("path(1,X) & X < 5") for ad-hoc queries.
Result<std::vector<ast::Subgoal>> ParseGoal(std::string_view src);

/// Parses one (possibly non-ground) term.
Result<ast::Term> ParseTermText(std::string_view src);

}  // namespace gluenail

#endif  // GLUENAIL_PARSER_PARSER_H_
