/// \file binding.h
/// \brief Binding-time analysis of subgoals (paper §2, §3.1).
///
/// Because relations hold only ground tuples, the compiler can decide for
/// every variable occurrence whether it is bound at that point ("This
/// restriction is also very important for the code optimizer, because it
/// allows the system to know at compile time when a variable in an
/// assignment statement becomes bound", §2).
///
/// AnalyzeSubgoal classifies one subgoal given the set of already-bound
/// variables: which variables it *requires* bound, which it *binds*,
/// whether it is *fixed* (may not be reordered; pipeline barrier), and how
/// its predicate resolves. The reorderer and the planner both consume this.

#ifndef GLUENAIL_ANALYSIS_BINDING_H_
#define GLUENAIL_ANALYSIS_BINDING_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/scope.h"
#include "src/ast/ast.h"
#include "src/common/result.h"

namespace gluenail {

using BoundSet = std::set<std::string>;

struct SubgoalInfo {
  /// Pipeline barrier / unreorderable (paper §3.1).
  bool fixed = false;
  /// Variables that must already be bound for the subgoal to execute.
  std::vector<std::string> required;
  /// Variables newly bound by executing it.
  std::vector<std::string> binds;
  /// Resolved predicate (atom-like subgoals with a static name); nullptr
  /// for comparisons / group_by / dynamic predicates.
  const PredBinding* binding = nullptr;
  /// HiLog: the predicate name contains variables and is dereferenced at
  /// run time.
  bool dynamic_pred = false;
  /// kComparison whose right side is an aggregate call (§3.3).
  bool is_aggregate = false;
};

/// Classifies \p g against \p bound. Structural errors (unknown predicate,
/// arity mismatch, aggregate in a bad position, writes to read-only
/// predicates) surface here. Binding violations do NOT: a subgoal whose
/// `required` set is not covered is simply not schedulable yet — the
/// reorderer uses that, and the planner reports leftover violations with
/// source locations.
Result<SubgoalInfo> AnalyzeSubgoal(const ast::Subgoal& g,
                                   const CompileEnv& env,
                                   const BoundSet& bound);

/// True when every name in \p required is in \p bound.
bool IsSchedulable(const std::vector<std::string>& required,
                   const BoundSet& bound);

/// Variables of a term, helper shared with the planner.
std::vector<std::string> VarsOf(const ast::Term& t);

/// Whether \p t is exactly one variable occurrence.
bool IsSingleVariable(const ast::Term& t);

/// True if \p t contains no wildcards and all its variables are in
/// \p bound — i.e. evaluating it at run time yields a single ground term,
/// so a match on it can be a keyed (indexable) selection.
bool IsFullyBoundPattern(const ast::Term& t, const BoundSet& bound);

/// Interns a ground AST term into the pool. Errors on variables,
/// wildcards, and empty argument lists.
Result<TermId> InternGroundTerm(TermPool* pool, const ast::Term& t);

/// Whether \p t (in predicate position) names its predicate statically:
/// a symbol, or a left-nested application of symbols to ground arguments.
/// Returns the root name and parameter arity when static.
bool StaticPredName(const ast::Term& t, std::string* root_name,
                    uint32_t* param_arity);

}  // namespace gluenail

#endif  // GLUENAIL_ANALYSIS_BINDING_H_
