#include "src/analysis/binding.h"

#include <algorithm>

#include "src/runtime/aggregates.h"
#include "src/runtime/string_builtins.h"

namespace gluenail {

namespace {

void AddVars(const ast::Term& t, std::vector<std::string>* out) {
  t.CollectVariables(out);
}

void AddAllVars(const std::vector<ast::Term>& ts,
                std::vector<std::string>* out) {
  for (const ast::Term& t : ts) AddVars(t, out);
}

/// Is this term an aggregate call (min(T), count(X), ...)?
bool IsAggregateCall(const ast::Term& t, AggKind* kind) {
  if (!t.IsApply() || !t.functor().IsSymbol() || t.apply_arity() != 1) {
    return false;
  }
  std::optional<AggKind> k = AggKindFromName(t.functor().name);
  if (!k.has_value()) return false;
  *kind = *k;
  return true;
}

Status LocError(const ast::SourceLoc& loc, std::string_view msg) {
  return Status::CompileError(
      StrCat("line ", loc.line, ", col ", loc.col, ": ", msg));
}

}  // namespace

std::vector<std::string> VarsOf(const ast::Term& t) {
  std::vector<std::string> out;
  t.CollectVariables(&out);
  return out;
}

bool IsSingleVariable(const ast::Term& t) {
  return t.kind == ast::TermKind::kVariable;
}

bool IsFullyBoundPattern(const ast::Term& t, const BoundSet& bound) {
  switch (t.kind) {
    case ast::TermKind::kWildcard:
      return false;
    case ast::TermKind::kVariable:
      return bound.count(t.name) != 0;
    case ast::TermKind::kApply:
      for (const ast::Term& c : t.children) {
        if (!IsFullyBoundPattern(c, bound)) return false;
      }
      return true;
    default:
      return true;
  }
}

bool StaticPredName(const ast::Term& t, std::string* root_name,
                    uint32_t* param_arity) {
  if (t.IsSymbol()) {
    *root_name = t.name;
    *param_arity = 0;
    return true;
  }
  if (t.IsApply()) {
    uint32_t inner = 0;
    if (!StaticPredName(t.functor(), root_name, &inner)) return false;
    *param_arity = inner + static_cast<uint32_t>(t.apply_arity());
    return true;
  }
  return false;
}

Result<TermId> InternGroundTerm(TermPool* pool, const ast::Term& t) {
  switch (t.kind) {
    case ast::TermKind::kInt:
      return pool->MakeInt(t.int_value);
    case ast::TermKind::kFloat:
      return pool->MakeFloat(t.float_value);
    case ast::TermKind::kSymbol:
      return pool->MakeSymbol(t.name);
    case ast::TermKind::kApply: {
      GLUENAIL_ASSIGN_OR_RETURN(TermId f,
                                InternGroundTerm(pool, t.functor()));
      std::vector<TermId> args;
      for (size_t i = 0; i < t.apply_arity(); ++i) {
        GLUENAIL_ASSIGN_OR_RETURN(TermId a, InternGroundTerm(pool, t.arg(i)));
        args.push_back(a);
      }
      if (args.empty()) {
        return LocError(t.loc, "empty argument list in term");
      }
      return pool->MakeCompound(f, args);
    }
    default:
      return LocError(t.loc, "expected a ground term");
  }
}

bool IsSchedulable(const std::vector<std::string>& required,
                   const BoundSet& bound) {
  return std::all_of(required.begin(), required.end(),
                     [&bound](const std::string& v) {
                       return bound.count(v) != 0;
                     });
}

Result<SubgoalInfo> AnalyzeSubgoal(const ast::Subgoal& g,
                                   const CompileEnv& env,
                                   const BoundSet& bound) {
  SubgoalInfo info;
  switch (g.kind) {
    case ast::SubgoalKind::kAtom:
    case ast::SubgoalKind::kNegatedAtom: {
      bool negated = g.kind == ast::SubgoalKind::kNegatedAtom;
      std::string root;
      uint32_t params = 0;
      bool static_name = StaticPredName(g.pred, &root, &params);
      const PredBinding* b =
          static_name ? env.scope->Lookup(root, params,
                                          static_cast<uint32_t>(g.args.size()))
                      : nullptr;
      // A statically named family whose parameters contain variables still
      // resolves statically for NAIL! predicates (flattened storage) but is
      // a run-time dereference otherwise.
      bool pred_has_vars = !VarsOf(g.pred).empty();
      if (b == nullptr) {
        if (static_name && params == 0 && env.implicit_edb) {
          // Ad-hoc mode: unknown plain names are EDB relations.
          info.binding = nullptr;
          info.dynamic_pred = false;
          // Treated as kEdb downstream by the planner (re-resolved there).
        } else if (!pred_has_vars && static_name && params > 0) {
          // A ground HiLog family instance (students(cs99)): an EDB
          // relation named by the compound term. Never declared — HiLog
          // set names refer to relations by value (§5.1).
        } else if (pred_has_vars || !static_name) {
          info.dynamic_pred = true;
        } else {
          return LocError(
              g.loc, StrCat("unresolved predicate '", ast::ToString(g.pred),
                            "/", g.args.size(), "'"));
        }
      } else {
        info.binding = b;
        if (pred_has_vars && b->cls != PredClass::kNail) {
          // e.g. an EDB family instance with variable parameters: resolved
          // per record at run time.
          info.dynamic_pred = true;
          info.binding = nullptr;
        }
      }

      if (info.binding != nullptr &&
          (info.binding->cls == PredClass::kGlueProc ||
           info.binding->cls == PredClass::kHostProc ||
           info.binding->cls == PredClass::kBuiltinProc)) {
        if (negated) {
          return LocError(g.loc, "cannot negate a procedure call");
        }
        const PredBinding& pb = *info.binding;
        if (g.args.size() != pb.arity()) {
          return LocError(g.loc,
                          StrCat("procedure '", root, "' has arity ",
                                 pb.bound_arity, ":", pb.free_arity,
                                 " but is called with ", g.args.size(),
                                 " arguments"));
        }
        info.fixed = pb.fixed;
        for (uint32_t i = 0; i < pb.bound_arity; ++i) {
          AddVars(g.args[i], &info.required);
        }
        for (uint32_t i = pb.bound_arity; i < pb.arity(); ++i) {
          AddVars(g.args[i], &info.binds);
        }
        return info;
      }
      if (info.binding != nullptr &&
          info.binding->cls == PredClass::kReturn) {
        return LocError(g.loc, "the return relation cannot be read");
      }
      // Relation-style access (EDB / local / in / NAIL! / dynamic).
      if (negated) {
        // Safe negation: everything must be bound; wildcards are fine.
        AddVars(g.pred, &info.required);
        AddAllVars(g.args, &info.required);
      } else {
        if (info.dynamic_pred) {
          // Name variables may be bound (direct lookup) or not (the
          // subgoal then enumerates candidate predicates, binding them) —
          // nothing is *required*; unbound name vars are bound by it.
          AddVars(g.pred, &info.binds);
        } else if (info.binding != nullptr &&
                   info.binding->cls == PredClass::kNail) {
          AddVars(g.pred, &info.binds);  // parameter columns
        }
        AddAllVars(g.args, &info.binds);
      }
      return info;
    }

    case ast::SubgoalKind::kComparison: {
      AggKind agg;
      if (IsAggregateCall(g.rhs, &agg)) {
        if (g.cmp != ast::CompareOp::kEq) {
          return LocError(g.loc, "aggregates may only appear in '='");
        }
        if (!IsSingleVariable(g.lhs)) {
          return LocError(
              g.loc, "the left side of 'V = agg(T)' must be a variable");
        }
        info.is_aggregate = true;
        info.fixed = true;  // §3.1: aggregators are fixed subgoals
        AddVars(g.rhs.arg(0), &info.required);
        if (bound.count(g.lhs.name) == 0) {
          info.binds.push_back(g.lhs.name);
        }
        return info;
      }
      AggKind dummy;
      if (IsAggregateCall(g.lhs, &dummy)) {
        return LocError(g.loc,
                        "aggregates must be on the right side of '='");
      }
      if (g.cmp == ast::CompareOp::kEq) {
        bool lv = IsSingleVariable(g.lhs) && bound.count(g.lhs.name) == 0;
        bool rv = IsSingleVariable(g.rhs) && bound.count(g.rhs.name) == 0;
        if (lv && rv) {
          // Unbound = unbound: not schedulable until one side binds.
          AddVars(g.rhs, &info.required);
          info.binds.push_back(g.lhs.name);
          return info;
        }
        if (lv) {
          AddVars(g.rhs, &info.required);
          info.binds.push_back(g.lhs.name);
          return info;
        }
        if (rv) {
          AddVars(g.lhs, &info.required);
          info.binds.push_back(g.rhs.name);
          return info;
        }
      }
      AddVars(g.lhs, &info.required);
      AddVars(g.rhs, &info.required);
      return info;
    }

    case ast::SubgoalKind::kGroupBy: {
      info.fixed = true;
      AddAllVars(g.args, &info.required);
      return info;
    }

    case ast::SubgoalKind::kInsert:
    case ast::SubgoalKind::kDelete: {
      info.fixed = true;
      AddVars(g.pred, &info.required);
      AddAllVars(g.args, &info.required);
      std::string root;
      uint32_t params = 0;
      if (StaticPredName(g.pred, &root, &params) &&
          VarsOf(g.pred).empty()) {
        const PredBinding* b = env.scope->Lookup(
            root, params, static_cast<uint32_t>(g.args.size()));
        if (b == nullptr) {
          // Allowed without a declaration: ad-hoc plain names, and ground
          // HiLog family instances (EDB relations named by compound terms).
          if (!(env.implicit_edb && params == 0) && params == 0) {
            return LocError(g.loc, StrCat("unresolved update target '",
                                          ast::ToString(g.pred), "/",
                                          g.args.size(), "'"));
          }
        } else {
          if (!b->assignable) {
            return LocError(g.loc,
                            StrCat("cannot update ", PredClassName(b->cls),
                                   " '", root, "'"));
          }
          info.binding = b;
        }
      } else {
        info.dynamic_pred = true;
      }
      return info;
    }
  }
  return Status::Internal("unreachable subgoal kind");
}

}  // namespace gluenail
