/// \file fixedness.h
/// \brief Transitive fixedness of procedures (paper §3.1).
///
/// "A Glue procedure is fixed if it contains a fixed subgoal." Fixed
/// subgoals are EDB updates, group_by, aggregators, I/O, and calls to
/// procedures that are themselves fixed — so fixedness propagates through
/// the call graph; this file implements that fixpoint.

#ifndef GLUENAIL_ANALYSIS_FIXEDNESS_H_
#define GLUENAIL_ANALYSIS_FIXEDNESS_H_

#include <vector>

#include "src/ast/ast.h"

namespace gluenail {

/// True for subgoal kinds that are fixed regardless of resolution:
/// body updates, group_by, and aggregate comparisons.
bool IsIntrinsicallyFixedSubgoal(const ast::Subgoal& g);

/// Call-graph fixpoint: \p intrinsic[i] is true if procedure i directly
/// contains a fixed subgoal other than a Glue call; \p calls[i] lists the
/// procedures i calls. Returns the final fixed flags.
std::vector<bool> PropagateFixedness(
    const std::vector<bool>& intrinsic,
    const std::vector<std::vector<int>>& calls);

}  // namespace gluenail

#endif  // GLUENAIL_ANALYSIS_FIXEDNESS_H_
