/// \file reorder.h
/// \brief Compile-time subgoal reordering (paper §3.1).
///
/// "A Glue system is free to reorder the non-fixed subgoals, although
/// procedures must still have their input arguments bound, and subgoals
/// cannot be moved past an aggregator."
///
/// We take the conservative reading: every fixed subgoal (update, I/O,
/// group_by, aggregator, fixed procedure call) is a barrier that keeps its
/// position relative to other fixed subgoals, and non-fixed subgoals may
/// only permute within their barrier-delimited segment. (Moving a read
/// across an update to the same relation would change its meaning, so
/// treating all fixed subgoals as barriers — not only aggregators — is the
/// only safe choice.)
///
/// Within a segment the order is greedy: pure filters (comparisons,
/// negations) as soon as their variables are bound, then matches with the
/// most bound argument columns.

#ifndef GLUENAIL_ANALYSIS_REORDER_H_
#define GLUENAIL_ANALYSIS_REORDER_H_

#include <vector>

#include "src/analysis/binding.h"

namespace gluenail {

/// Returns the execution order as a permutation of body indices.
/// Subgoals that can never be scheduled keep their original positions so
/// the planner reports the binding error at the right place.
Result<std::vector<size_t>> ReorderBody(const std::vector<ast::Subgoal>& body,
                                        const CompileEnv& env,
                                        const BoundSet& initially_bound);

}  // namespace gluenail

#endif  // GLUENAIL_ANALYSIS_REORDER_H_
