/// \file resolver.h
/// \brief Program linking: modules -> one compiled program.
///
/// Modules are purely a compile-time concept (paper §6); linking
///   1. indexes every procedure (qualified and exported names),
///   2. merges all NAIL! rules into one stratified program,
///   3. builds scopes (builtins+hosts <- all EDB declarations <- module
///      declarations and imports),
///   4. computes transitive procedure fixedness (§3.1),
///   5. plans every procedure, and — in compiled-Glue mode — the
///      generated NAIL! evaluation procedures, through the same planner
///      ("the Glue optimizer runs over all the code", §11).

#ifndef GLUENAIL_ANALYSIS_RESOLVER_H_
#define GLUENAIL_ANALYSIS_RESOLVER_H_

#include <memory>
#include <vector>

#include "src/analysis/scope.h"
#include "src/ast/ast.h"
#include "src/nail/rule_graph.h"
#include "src/nail/seminaive.h"
#include "src/plan/planner.h"
#include "src/runtime/io.h"
#include "src/storage/tuple.h"

namespace gluenail {

struct LinkOptions {
  PlannerOptions planner;
  NailMode nail_mode = NailMode::kCompiledGlue;
  /// Cardinality oracle handed to the physical planner; may be nullptr
  /// (plans fall back to default cardinalities).
  const StatsProvider* stats = nullptr;
};

struct LinkedProgram {
  CompiledProgram program;
  NailProgram nail;
  /// Generated NAIL! driver procedure (compiled-Glue mode), else -1.
  int nail_driver_proc = -1;
  /// Module-level facts, to be inserted into the EDB.
  std::vector<std::pair<TermId, Tuple>> facts;
  /// Scopes kept alive for ad-hoc statement compilation: global_scope sees
  /// builtins, hosts, every EDB declaration, every export, and every NAIL!
  /// predicate.
  std::unique_ptr<Scope> builtin_scope;
  std::unique_ptr<Scope> edb_scope;
  std::unique_ptr<Scope> global_scope;
};

Result<LinkedProgram> LinkProgram(const ast::Program& program,
                                  const std::vector<HostProcedure>& hosts,
                                  TermPool* pool, const LinkOptions& opts);

/// Declares the predefined procedures (write, writeln, nl, read,
/// read_line, true) into \p scope. Exposed for standalone NAIL!
/// evaluation (magic-set queries, tests).
void DeclareBuiltinScope(Scope* scope);

}  // namespace gluenail

#endif  // GLUENAIL_ANALYSIS_RESOLVER_H_
