#include "src/analysis/reorder.h"

#include <algorithm>

namespace gluenail {

namespace {

/// Greedy desirability of a schedulable subgoal. Filters first, then
/// matches with the most bound columns; procedure calls last ("Procedure
/// calls are expensive", §9).
int Score(const ast::Subgoal& g, const SubgoalInfo& info,
          const BoundSet& bound) {
  int base;
  switch (g.kind) {
    case ast::SubgoalKind::kComparison:
      base = 1000;
      break;
    case ast::SubgoalKind::kNegatedAtom:
      base = 900;
      break;
    case ast::SubgoalKind::kAtom:
      if (info.binding != nullptr &&
          (info.binding->cls == PredClass::kGlueProc ||
           info.binding->cls == PredClass::kHostProc ||
           info.binding->cls == PredClass::kBuiltinProc)) {
        base = 0;
      } else {
        base = info.dynamic_pred ? 50 : 100;
      }
      break;
    default:
      base = 0;
      break;
  }
  // Count argument columns whose patterns are fully bound (selective).
  int bound_cols = 0;
  for (const ast::Term& a : g.args) {
    if (IsFullyBoundPattern(a, bound)) ++bound_cols;
  }
  return base + 5 * bound_cols - static_cast<int>(g.args.size());
}

}  // namespace

Result<std::vector<size_t>> ReorderBody(const std::vector<ast::Subgoal>& body,
                                        const CompileEnv& env,
                                        const BoundSet& initially_bound) {
  std::vector<size_t> order;
  order.reserve(body.size());
  BoundSet bound = initially_bound;

  // Split into segments ending at (and including) each fixed subgoal.
  size_t seg_start = 0;
  while (seg_start < body.size()) {
    // Find the end of this segment: the first fixed subgoal at or after
    // seg_start (analysis may depend on `bound` only for aggregates, which
    // are always fixed regardless, so a preliminary scan is safe).
    size_t seg_end = body.size();  // exclusive of the barrier
    for (size_t i = seg_start; i < body.size(); ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                                AnalyzeSubgoal(body[i], env, bound));
      if (info.fixed) {
        seg_end = i;
        break;
      }
    }

    // Greedily order the non-fixed subgoals in [seg_start, seg_end).
    std::vector<size_t> pending;
    for (size_t i = seg_start; i < seg_end; ++i) pending.push_back(i);
    while (!pending.empty()) {
      // Precompute per-candidate info once per round.
      std::vector<SubgoalInfo> infos(pending.size());
      for (size_t p = 0; p < pending.size(); ++p) {
        GLUENAIL_ASSIGN_OR_RETURN(infos[p],
                                  AnalyzeSubgoal(body[pending[p]], env,
                                                 bound));
      }
      int best_score = 0;
      size_t best_pos = pending.size();  // sentinel: none schedulable
      for (size_t p = 0; p < pending.size(); ++p) {
        const SubgoalInfo& info = infos[p];
        if (!IsSchedulable(info.required, bound)) continue;
        // Semantics guard: an '=' that binds a variable keeps its written
        // order relative to any subgoal that binds the same variable.
        // Binding installs the evaluated term (later matches check term
        // equality), whereas running after a match turns it into a
        // numeric filter — different results for mixed int/float data.
        // So: defer the '=' while a *written-earlier* binder of the same
        // variable is still pending; subgoals written after it keep
        // seeing it bind first, as written.
        if (body[pending[p]].kind == ast::SubgoalKind::kComparison &&
            !info.binds.empty()) {
          bool conflict = false;
          for (size_t q = 0; q < pending.size() && !conflict; ++q) {
            if (q == p || pending[q] > pending[p]) continue;
            for (const std::string& v : infos[q].binds) {
              if (std::find(info.binds.begin(), info.binds.end(), v) !=
                  info.binds.end()) {
                conflict = true;
                break;
              }
            }
          }
          if (conflict) continue;
        }
        int s = Score(body[pending[p]], info, bound);
        if (best_pos == pending.size() || s > best_score) {
          best_score = s;
          best_pos = p;
        }
      }
      if (best_pos == pending.size()) {
        // Nothing schedulable: emit the rest in original order; the
        // planner will report the first binding violation precisely.
        for (size_t idx : pending) order.push_back(idx);
        break;
      }
      size_t chosen = pending[best_pos];
      pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_pos));
      order.push_back(chosen);
      GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                                AnalyzeSubgoal(body[chosen], env, bound));
      for (const std::string& v : info.binds) bound.insert(v);
    }

    // Then the barrier itself (if any), updating bindings through it.
    if (seg_end < body.size()) {
      order.push_back(seg_end);
      GLUENAIL_ASSIGN_OR_RETURN(SubgoalInfo info,
                                AnalyzeSubgoal(body[seg_end], env, bound));
      for (const std::string& v : info.binds) bound.insert(v);
      seg_start = seg_end + 1;
    } else {
      seg_start = body.size();
    }
  }
  return order;
}

}  // namespace gluenail
