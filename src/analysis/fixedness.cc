#include "src/analysis/fixedness.h"

#include "src/runtime/aggregates.h"

namespace gluenail {

bool IsIntrinsicallyFixedSubgoal(const ast::Subgoal& g) {
  switch (g.kind) {
    case ast::SubgoalKind::kInsert:
    case ast::SubgoalKind::kDelete:
    case ast::SubgoalKind::kGroupBy:
      return true;
    case ast::SubgoalKind::kComparison:
      return g.rhs.IsApply() && g.rhs.functor().IsSymbol() &&
             g.rhs.apply_arity() == 1 &&
             AggKindFromName(g.rhs.functor().name).has_value();
    default:
      return false;
  }
}

std::vector<bool> PropagateFixedness(
    const std::vector<bool>& intrinsic,
    const std::vector<std::vector<int>>& calls) {
  std::vector<bool> fixed = intrinsic;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < fixed.size(); ++i) {
      if (fixed[i]) continue;
      for (int callee : calls[i]) {
        if (callee >= 0 && fixed[static_cast<size_t>(callee)]) {
          fixed[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return fixed;
}

}  // namespace gluenail
