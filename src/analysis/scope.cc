#include "src/analysis/scope.h"

namespace gluenail {

std::string_view PredClassName(PredClass cls) {
  switch (cls) {
    case PredClass::kEdb:
      return "EDB relation";
    case PredClass::kLocal:
      return "local relation";
    case PredClass::kNail:
      return "NAIL! predicate";
    case PredClass::kGlueProc:
      return "Glue procedure";
    case PredClass::kHostProc:
      return "host procedure";
    case PredClass::kBuiltinProc:
      return "predefined procedure";
    case PredClass::kIn:
      return "in relation";
    case PredClass::kReturn:
      return "return relation";
  }
  return "?";
}

}  // namespace gluenail
