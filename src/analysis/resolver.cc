#include "src/analysis/resolver.h"

#include <unordered_map>
#include <unordered_set>

#include "src/analysis/binding.h"
#include "src/analysis/fixedness.h"
#include "src/common/strings.h"
#include "src/nail/nail_to_glue.h"

namespace gluenail {

void DeclareBuiltinScope(Scope* scope) {
  struct Entry {
    const char* name;
    uint32_t arity;
  };
  for (const Entry& e : std::initializer_list<Entry>{
           {"write", 1}, {"writeln", 1}, {"nl", 0}, {"read", 1},
           {"read_line", 1}, {"true", 0}}) {
    std::optional<BuiltinProcInfo> info = FindBuiltinProc(e.name, e.arity);
    PredBinding b;
    b.cls = PredClass::kBuiltinProc;
    b.bound_arity = info->bound_arity;
    b.free_arity = info->free_arity;
    b.index = static_cast<int>(info->proc);
    b.fixed = info->fixed;
    scope->Declare(e.name, 0, e.arity, b);
  }
}

namespace {

void DeclareHosts(Scope* scope, const std::vector<HostProcedure>& hosts) {
  for (size_t i = 0; i < hosts.size(); ++i) {
    const HostProcedure& h = hosts[i];
    PredBinding b;
    b.cls = PredClass::kHostProc;
    b.bound_arity = h.bound_arity;
    b.free_arity = h.free_arity;
    b.index = static_cast<int>(i);
    b.fixed = h.fixed;
    scope->Declare(h.name, 0, h.bound_arity + h.free_arity, b);
  }
}

struct ProcRef {
  int module;      // index into program.modules
  int local_index; // index into that module's procedures
  int global;      // index into CompiledProgram::procedures
};

/// Walks every subgoal of a procedure body, including nested loops.
void ForEachSubgoal(const std::vector<ast::Statement>& body,
                    const std::function<void(const ast::Subgoal&)>& fn) {
  for (const ast::Statement& s : body) {
    if (s.is_assignment()) {
      for (const ast::Subgoal& g : s.assignment().body) fn(g);
    } else {
      ForEachSubgoal(s.repeat().body, fn);
    }
  }
}

}  // namespace

Result<LinkedProgram> LinkProgram(const ast::Program& program,
                                  const std::vector<HostProcedure>& hosts,
                                  TermPool* pool, const LinkOptions& opts) {
  LinkedProgram out;

  // --- Scaffolding scopes -------------------------------------------------
  out.builtin_scope = std::make_unique<Scope>();
  DeclareBuiltinScope(out.builtin_scope.get());
  DeclareHosts(out.builtin_scope.get(), hosts);

  // All EDB declarations are globally visible: the EDB is the shared
  // database (paper §2); `edb` clauses declare schema, not ownership.
  out.edb_scope = std::make_unique<Scope>(out.builtin_scope.get());
  for (const ast::Module& mod : program.modules) {
    for (const ast::EdbDecl& decl : mod.edb) {
      PredBinding b;
      b.cls = PredClass::kEdb;
      b.free_arity = decl.arity;
      b.name = pool->MakeSymbol(decl.name);
      b.assignable = true;
      out.edb_scope->Declare(decl.name, 0, decl.arity, b);
    }
  }

  // --- Procedure table ------------------------------------------------------
  std::vector<ProcRef> proc_refs;
  for (size_t m = 0; m < program.modules.size(); ++m) {
    const ast::Module& mod = program.modules[m];
    std::unordered_set<std::string> local_names;
    for (size_t p = 0; p < mod.procedures.size(); ++p) {
      const ast::Procedure& proc = mod.procedures[p];
      std::string key = StrCat(proc.name, "/", proc.arity());
      if (!local_names.insert(key).second) {
        return Status::CompileError(StrCat("module ", mod.name,
                                           " defines '", key, "' twice"));
      }
      int global = static_cast<int>(proc_refs.size());
      proc_refs.push_back(
          ProcRef{static_cast<int>(m), static_cast<int>(p), global});
      out.program.proc_by_qualified.emplace(
          StrCat(mod.name, ".", proc.name, "/", proc.arity()), global);
    }
  }

  // Exports: "name/arity" -> proc index (procedures only; exported NAIL!
  // predicates are handled during import resolution).
  for (size_t m = 0; m < program.modules.size(); ++m) {
    const ast::Module& mod = program.modules[m];
    for (const ast::PredicateSig& sig : mod.exports) {
      auto it = out.program.proc_by_qualified.find(
          StrCat(mod.name, ".", sig.name, "/", sig.arity()));
      if (it == out.program.proc_by_qualified.end()) continue;  // NAIL!/EDB
      std::string key = StrCat(sig.name, "/", sig.arity());
      auto [pos, inserted] =
          out.program.proc_by_export.emplace(key, it->second);
      if (!inserted && pos->second != it->second) {
        return Status::CompileError(
            StrCat("two modules export '", key, "'"));
      }
    }
  }

  // --- NAIL! program --------------------------------------------------------
  std::vector<ast::NailRule> all_rules;
  for (const ast::Module& mod : program.modules) {
    for (const ast::NailRule& r : mod.rules) all_rules.push_back(r);
  }
  GLUENAIL_ASSIGN_OR_RETURN(out.nail,
                            BuildNailProgram(std::move(all_rules), pool));

  // --- Module scopes ----------------------------------------------------------
  // Builder parameterized by the final fixedness flags so we can run it
  // twice: once preliminarily for call-graph extraction, once for real.
  auto build_module_scope =
      [&](const ast::Module& mod,
          const std::vector<bool>& proc_fixed) -> Result<Scope> {
    Scope scope(out.edb_scope.get());
    // Own NAIL! predicates (read-only in user code).
    for (const ast::NailRule& rule : mod.rules) {
      std::string root;
      uint32_t params = 0;
      StaticPredName(rule.head_pred, &root, &params);
      int id = out.nail.FindPred(root, params,
                                 static_cast<uint32_t>(rule.head_args.size()));
      const NailPred& pred = out.nail.preds[static_cast<size_t>(id)];
      PredBinding b;
      b.cls = PredClass::kNail;
      b.free_arity = pred.arity;
      b.name = pred.storage;
      b.nail_params = pred.params;
      scope.Declare(pred.root, pred.params, pred.arity, b);
    }
    // Own procedures.
    for (const ProcRef& ref : proc_refs) {
      if (&program.modules[static_cast<size_t>(ref.module)] != &mod) continue;
      const ast::Procedure& proc =
          mod.procedures[static_cast<size_t>(ref.local_index)];
      PredBinding b;
      b.cls = PredClass::kGlueProc;
      b.bound_arity = proc.bound_arity;
      b.free_arity = proc.free_arity;
      b.index = ref.global;
      b.fixed = proc_fixed.empty() ? false
                                   : proc_fixed[static_cast<size_t>(
                                         ref.global)];
      scope.Declare(proc.name, 0, proc.arity(), b);
    }
    // Imports.
    for (const ast::ImportDecl& imp : mod.imports) {
      const ast::PredicateSig& sig = imp.sig;
      // (a) A procedure exported by the named module.
      auto it = out.program.proc_by_qualified.find(
          StrCat(imp.from_module, ".", sig.name, "/", sig.arity()));
      if (it != out.program.proc_by_qualified.end()) {
        // Verify it is actually exported.
        bool exported = false;
        for (const ast::Module& other : program.modules) {
          if (other.name != imp.from_module) continue;
          for (const ast::PredicateSig& e : other.exports) {
            if (e.name == sig.name && e.arity() == sig.arity()) {
              exported = true;
            }
          }
        }
        if (!exported) {
          return Status::CompileError(
              StrCat("module ", imp.from_module, " does not export '",
                     sig.name, "/", sig.arity(), "'"));
        }
        int global = it->second;
        const ProcRef& ref = proc_refs[static_cast<size_t>(global)];
        const ast::Procedure& proc =
            program.modules[static_cast<size_t>(ref.module)]
                .procedures[static_cast<size_t>(ref.local_index)];
        PredBinding b;
        b.cls = PredClass::kGlueProc;
        b.bound_arity = proc.bound_arity;
        b.free_arity = proc.free_arity;
        b.index = global;
        b.fixed = proc_fixed.empty()
                      ? false
                      : proc_fixed[static_cast<size_t>(global)];
        scope.Declare(sig.name, 0, sig.arity(), b);
        continue;
      }
      // (b) A NAIL! predicate defined (and exported) by the named module.
      int nail_id = out.nail.FindPred(sig.name, 0, sig.arity());
      if (nail_id >= 0) {
        const NailPred& pred = out.nail.preds[static_cast<size_t>(nail_id)];
        PredBinding b;
        b.cls = PredClass::kNail;
        b.free_arity = pred.arity;
        b.name = pred.storage;
        b.nail_params = pred.params;
        scope.Declare(sig.name, 0, sig.arity(), b);
        continue;
      }
      // (c) An EDB relation declared elsewhere: already globally visible.
      if (out.edb_scope->Lookup(sig.name, 0, sig.arity()) != nullptr) {
        continue;
      }
      // (d) A host procedure (the paper's foreign modules, e.g. the
      // `windows` and `graphics` modules of Figure 1).
      if (out.builtin_scope->Lookup(sig.name, 0, sig.arity()) != nullptr) {
        continue;
      }
      return Status::CompileError(
          StrCat("cannot resolve import of '", sig.name, "/", sig.arity(),
                 "' from module ", imp.from_module));
    }
    return scope;
  };

  // Validate every module's declarations and imports, even for modules
  // with no procedures (imports must resolve regardless).
  {
    std::vector<bool> no_flags;
    for (const ast::Module& mod : program.modules) {
      Result<Scope> scope = build_module_scope(mod, no_flags);
      if (!scope.ok()) {
        return scope.status().WithContext(StrCat("module ", mod.name));
      }
    }
  }

  // --- Fixedness (two-phase) ------------------------------------------------
  size_t num_procs = proc_refs.size();
  std::vector<bool> intrinsic(num_procs, false);
  std::vector<std::vector<int>> calls(num_procs);
  {
    std::vector<bool> no_flags;
    for (const ProcRef& ref : proc_refs) {
      const ast::Module& mod =
          program.modules[static_cast<size_t>(ref.module)];
      GLUENAIL_ASSIGN_OR_RETURN(Scope scope,
                                build_module_scope(mod, no_flags));
      const ast::Procedure& proc =
          mod.procedures[static_cast<size_t>(ref.local_index)];
      ForEachSubgoal(proc.body, [&](const ast::Subgoal& g) {
        if (IsIntrinsicallyFixedSubgoal(g)) {
          intrinsic[static_cast<size_t>(ref.global)] = true;
          return;
        }
        if (g.kind != ast::SubgoalKind::kAtom) return;
        std::string root;
        uint32_t params = 0;
        if (!StaticPredName(g.pred, &root, &params) || params != 0) return;
        const PredBinding* b =
            scope.Lookup(root, 0, static_cast<uint32_t>(g.args.size()));
        if (b == nullptr) return;
        if ((b->cls == PredClass::kBuiltinProc ||
             b->cls == PredClass::kHostProc) &&
            b->fixed) {
          intrinsic[static_cast<size_t>(ref.global)] = true;
        } else if (b->cls == PredClass::kGlueProc) {
          calls[static_cast<size_t>(ref.global)].push_back(b->index);
        }
      });
    }
  }
  std::vector<bool> proc_fixed = PropagateFixedness(intrinsic, calls);

  // --- Plan user procedures ---------------------------------------------------
  out.program.procedures.resize(num_procs);
  for (const ProcRef& ref : proc_refs) {
    const ast::Module& mod = program.modules[static_cast<size_t>(ref.module)];
    GLUENAIL_ASSIGN_OR_RETURN(Scope scope,
                              build_module_scope(mod, proc_fixed));
    const ast::Procedure& proc =
        mod.procedures[static_cast<size_t>(ref.local_index)];
    Result<CompiledProcedure> compiled = CompileProcedureAst(
        proc, scope, pool, mod.name,
        proc_fixed[static_cast<size_t>(ref.global)], opts.planner,
        /*implicit_edb=*/false, opts.stats);
    if (!compiled.ok()) {
      return compiled.status().WithContext(
          StrCat("module ", mod.name, ", procedure ", proc.name));
    }
    out.program.procedures[static_cast<size_t>(ref.global)] =
        std::move(*compiled);
  }

  // --- Generated NAIL! evaluation procedures (compiled-Glue mode) -----------
  if (!out.nail.empty() && opts.nail_mode == NailMode::kCompiledGlue) {
    Scope nail_scope(out.edb_scope.get());
    DeclareNailScope(out.nail, &nail_scope);
    // Compile each SCC procedure.
    std::vector<int> scc_indices;
    for (size_t s = 0; s < out.nail.scc_order.size(); ++s) {
      ast::Procedure proc =
          BuildSccProcedure(out.nail, static_cast<int>(s));
      Result<CompiledProcedure> compiled =
          CompileProcedureAst(proc, nail_scope, pool, "$nail", false,
                              opts.planner, /*implicit_edb=*/true,
                              opts.stats);
      if (!compiled.ok()) {
        return compiled.status().WithContext(
            StrCat("generated NAIL! stratum ", s));
      }
      compiled->generated = true;
      scc_indices.push_back(static_cast<int>(out.program.procedures.size()));
      out.program.procedures.push_back(std::move(*compiled));
    }
    // The driver needs bindings for the SCC procedures.
    Scope driver_scope(&nail_scope);
    for (size_t s = 0; s < scc_indices.size(); ++s) {
      PredBinding b;
      b.cls = PredClass::kGlueProc;
      b.index = scc_indices[s];
      driver_scope.Declare(SccProcedureName(static_cast<int>(s)), 0, 0, b);
    }
    ast::Procedure driver = BuildDriverProcedure(out.nail);
    Result<CompiledProcedure> compiled =
        CompileProcedureAst(driver, driver_scope, pool, "$nail", false,
                            opts.planner, /*implicit_edb=*/true,
                            opts.stats);
    if (!compiled.ok()) {
      return compiled.status().WithContext("generated NAIL! driver");
    }
    compiled->generated = true;
    out.nail_driver_proc = static_cast<int>(out.program.procedures.size());
    out.program.procedures.push_back(std::move(*compiled));
  }

  // --- Global (ad-hoc) scope and facts -------------------------------------
  out.global_scope = std::make_unique<Scope>(out.edb_scope.get());
  for (const auto& [key, index] : out.program.proc_by_export) {
    const CompiledProcedure& proc =
        out.program.procedures[static_cast<size_t>(index)];
    PredBinding b;
    b.cls = PredClass::kGlueProc;
    b.bound_arity = proc.bound_arity;
    b.free_arity = proc.free_arity;
    b.index = index;
    b.fixed = proc.fixed;
    out.global_scope->Declare(proc.name, 0, proc.arity(), b);
  }
  for (const NailPred& pred : out.nail.preds) {
    PredBinding b;
    b.cls = PredClass::kNail;
    b.free_arity = pred.arity;
    b.name = pred.storage;
    b.nail_params = pred.params;
    out.global_scope->Declare(pred.root, pred.params, pred.arity, b);
  }

  for (const ast::Module& mod : program.modules) {
    for (const ast::Term& fact : mod.facts) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId whole, InternGroundTerm(pool, fact));
      if (pool->IsCompound(whole)) {
        std::span<const TermId> args = pool->Args(whole);
        out.facts.emplace_back(pool->Functor(whole),
                               Tuple(args.begin(), args.end()));
      } else {
        out.facts.emplace_back(whole, Tuple{});
      }
    }
  }

  return out;
}

}  // namespace gluenail
