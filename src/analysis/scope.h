/// \file scope.h
/// \brief Compile-time name resolution tables.
///
/// Paper §6: modules "give the Glue compiler valuable information
/// concerning which predicates are visible at any point in a program",
/// letting predicate dereferencing happen at compile time. §9: "in Glue it
/// is possible at compile time to determine which predicate classes (i.e.
/// EDB, IDB, Glue procedure, or reference) a statically unbound name ...
/// could refer to at run time."
///
/// A Scope maps (name, HiLog parameter arity, arity) to a PredBinding.
/// Scopes nest: procedure scope (locals, in, return) -> module scope
/// (own declarations + imports) -> builtin scope (I/O procedures, true).

#ifndef GLUENAIL_ANALYSIS_SCOPE_H_
#define GLUENAIL_ANALYSIS_SCOPE_H_

#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/strings.h"
#include "src/term/term_pool.h"

namespace gluenail {

class StatsProvider;

/// The predicate classes of paper §2 (plus implementation-level refinements
/// of "Glue procedure": host and predefined I/O procedures share the same
/// calling convention).
enum class PredClass : uint8_t {
  kEdb,
  kLocal,
  kNail,
  kGlueProc,
  kHostProc,
  kBuiltinProc,
  kIn,
  kReturn,
};

std::string_view PredClassName(PredClass cls);

struct PredBinding {
  PredClass cls = PredClass::kEdb;
  /// For procedure-like classes: the (bound : free) split. For relations
  /// bound_arity is 0 and free_arity the relation arity.
  uint32_t bound_arity = 0;
  uint32_t free_arity = 0;
  /// Procedure table / host table / local table index, or BuiltinProc.
  int index = -1;
  /// Side-effecting (paper §3.1: fixed subgoals).
  bool fixed = false;
  /// Interned relation name (kEdb) or flattened storage name (kNail).
  TermId name = kNullTerm;
  /// HiLog parameter arity (kNail): students(ID)(S) has 1.
  uint32_t nail_params = 0;
  /// Statement heads may write to this predicate. True for EDB and locals;
  /// true for kNail only inside generated NAIL!-evaluation procedures.
  bool assignable = false;

  uint32_t arity() const { return bound_arity + free_arity; }
};

class Scope {
 public:
  explicit Scope(const Scope* parent = nullptr) : parent_(parent) {}

  /// Registers a binding; later declarations in the same scope win (paper
  /// §4: local declarations "hide" outer predicates they unify with).
  void Declare(std::string_view name, uint32_t param_arity, uint32_t arity,
               PredBinding binding) {
    table_[Key(name, param_arity, arity)] = binding;
  }

  /// Innermost binding for (name, param_arity, arity), or nullptr.
  const PredBinding* Lookup(std::string_view name, uint32_t param_arity,
                            uint32_t arity) const {
    auto it = table_.find(Key(name, param_arity, arity));
    if (it != table_.end()) return &it->second;
    return parent_ != nullptr ? parent_->Lookup(name, param_arity, arity)
                              : nullptr;
  }

 private:
  static std::string Key(std::string_view name, uint32_t param_arity,
                         uint32_t arity) {
    return StrCat(name, "/", param_arity, "/", arity);
  }

  const Scope* parent_;
  std::unordered_map<std::string, PredBinding> table_;
};

/// Everything the subgoal analyzer and planner need to compile one
/// statement.
struct CompileEnv {
  TermPool* pool = nullptr;
  const Scope* scope = nullptr;
  /// Ad-hoc mode (Engine::ExecuteStatement): unresolved simple names
  /// resolve to EDB relations created on demand.
  bool implicit_edb = false;
  /// Inside a procedure: `in` and `return` are meaningful.
  bool in_procedure = false;
  uint32_t proc_bound_arity = 0;
  uint32_t proc_arity = 0;
  /// Cardinality oracle for the physical planner; nullptr means no
  /// statistics are available (the planner falls back to defaults).
  const StatsProvider* stats = nullptr;
};

}  // namespace gluenail

#endif  // GLUENAIL_ANALYSIS_SCOPE_H_
