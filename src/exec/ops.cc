#include "src/exec/ops.h"

#include "src/common/strings.h"
#include "src/runtime/arith.h"

namespace gluenail {

bool IsInternalPredicateName(const TermPool& pool, TermId name) {
  TermId root = name;
  while (pool.IsCompound(root)) root = pool.Functor(root);
  return pool.IsSymbol(root) && StartsWith(pool.SymbolName(root), "$");
}

Status OpRunner::Stream(const PlanOp& op, Record* rec, uint32_t group,
                        EmitFn emit) {
  switch (op.kind) {
    case OpKind::kMatch:
      return StreamMatch(op, rec, group, emit);
    case OpKind::kNegMatch:
      return StreamNegMatch(op, rec, group, emit);
    case OpKind::kCompare:
      return StreamCompare(op, rec, group, emit);
    default:
      return Status::Internal("barrier op streamed");
  }
}

Status OpRunner::EvalKey(const PlanOp& op, const Record& rec, Tuple* key) {
  key->clear();
  for (ExprId e : op.key_exprs) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId v,
                              EvalExpr(plan_, e, rec, exec_->pool_));
    key->push_back(v);
  }
  return Status::OK();
}

OpRunner::Scratch* OpRunner::AcquireScratch() {
  if (scratch_depth_ == scratch_pool_.size()) {
    scratch_pool_.emplace_back();
  }
  Scratch* out = &scratch_pool_[scratch_depth_++];
  out->rows.clear();
  return out;
}

void OpRunner::ReleaseScratch() { --scratch_depth_; }

Status OpRunner::StreamMatchRelation(const PlanOp& op, Relation* rel,
                                     Record* rec, uint32_t group,
                                     EmitFn emit) {
  if (rel == nullptr || rel->empty()) return Status::OK();
  BindUndo undo;
  if (op.bound_mask != 0) {
    // Planner-decided index build (§10 folded into planning): build before
    // the first probe instead of waiting for the adaptive policy to amortize
    // scans. Shared readers never build; kNeverIndex still wins.
    if (op.build_index && !exec_->options_.read_only_storage &&
        rel->index_policy() != IndexPolicy::kNeverIndex) {
      rel->EnsureIndex(op.bound_mask);
    }
    Scratch* scratch = AcquireScratch();
    Status key_st = EvalKey(op, *rec, &scratch->key);
    if (!key_st.ok()) {
      ReleaseScratch();
      return key_st;
    }
    Status st = exec_->SelectRows(rel, op.bound_mask, scratch->key,
                                  &scratch->rows);
    if (!st.ok()) {
      ReleaseScratch();
      return st;
    }
    for (uint32_t row : scratch->rows) {
      st = exec_->TickControl();
      if (!st.ok()) break;
      undo.clear();
      if (MatchColumns(op.col_patterns, rel->row(row), *exec_->pool_, rec,
                       &undo)) {
        st = emit(rec, group);
        if (!st.ok()) break;
      }
      UnbindAll(undo, rec);
    }
    ReleaseScratch();
    return st;
  }
  for (RowView tuple : *rel) {
    GLUENAIL_RETURN_NOT_OK(exec_->TickScanRow());
    undo.clear();
    if (MatchColumns(op.col_patterns, tuple, *exec_->pool_, rec, &undo)) {
      GLUENAIL_RETURN_NOT_OK(emit(rec, group));
    }
    UnbindAll(undo, rec);
  }
  return Status::OK();
}

Status OpRunner::StreamMatch(const PlanOp& op, Record* rec, uint32_t group,
                             EmitFn emit) {
  if (op.access.kind != PredicateAccess::Kind::kDynamic) {
    GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                              exec_->ResolveRead(op.access, frame_));
    return StreamMatchRelation(op, rel, rec, group, emit);
  }

  // Dynamic (HiLog) dereference.
  if (op.access.name_expr != kNoExpr) {
    GLUENAIL_ASSIGN_OR_RETURN(
        TermId name, EvalExpr(plan_, op.access.name_expr, *rec, exec_->pool_));
    Relation* rel = exec_->edb_->Find(name, op.access.arity);
    if (rel == nullptr && exec_->env_.nail != nullptr) {
      GLUENAIL_RETURN_NOT_OK(exec_->env_.nail->EnsureAllNail());
      rel = exec_->idb_->Find(name, op.access.arity);
    }
    return StreamMatchRelation(op, rel, rec, group, emit);
  }

  // Unbound name variables: enumerate every candidate predicate of the
  // right arity — paper §5.1: "predicate variables can only range over
  // predicate names", which are always finitely many.
  const MatchNode& name_pattern =
      plan_.name_patterns[static_cast<size_t>(op.access.name_pattern_index)];
  if (exec_->env_.nail != nullptr) {
    GLUENAIL_RETURN_NOT_OK(exec_->env_.nail->EnsureAllNail());
  }
  for (Database* db : {exec_->edb_, exec_->idb_}) {
    if (db == nullptr) continue;
    for (auto& [name, rel] : db->RelationsWithArity(op.access.arity)) {
      if (IsInternalPredicateName(*exec_->pool_, name)) continue;
      BindUndo name_undo;
      if (MatchTerm(name_pattern, name, *exec_->pool_, rec, &name_undo)) {
        GLUENAIL_RETURN_NOT_OK(
            StreamMatchRelation(op, rel, rec, group, emit));
      }
      UnbindAll(name_undo, rec);
    }
  }
  return Status::OK();
}

Result<bool> OpRunner::HasMatch(const PlanOp& op, Relation* rel,
                                Record* rec) {
  if (rel == nullptr || rel->empty()) return false;
  BindUndo undo;
  if (op.bound_mask != 0) {
    Scratch* scratch = AcquireScratch();
    Status key_st = EvalKey(op, *rec, &scratch->key);
    if (!key_st.ok()) {
      ReleaseScratch();
      return key_st;
    }
    Status sel_st = exec_->SelectRows(rel, op.bound_mask, scratch->key,
                                      &scratch->rows);
    if (!sel_st.ok()) {
      ReleaseScratch();
      return sel_st;
    }
    bool found = false;
    for (uint32_t row : scratch->rows) {
      undo.clear();
      bool ok = MatchColumns(op.col_patterns, rel->row(row), *exec_->pool_,
                             rec, &undo);
      UnbindAll(undo, rec);
      if (ok) {
        found = true;
        break;
      }
    }
    ReleaseScratch();
    return found;
  }
  for (RowView tuple : *rel) {
    GLUENAIL_RETURN_NOT_OK(exec_->TickScanRow());
    undo.clear();
    bool ok = MatchColumns(op.col_patterns, tuple, *exec_->pool_, rec, &undo);
    UnbindAll(undo, rec);
    if (ok) return true;
  }
  return false;
}

Status OpRunner::StreamNegMatch(const PlanOp& op, Record* rec, uint32_t group,
                                EmitFn emit) {
  Relation* rel = nullptr;
  if (op.access.kind == PredicateAccess::Kind::kDynamic) {
    GLUENAIL_ASSIGN_OR_RETURN(
        TermId name, EvalExpr(plan_, op.access.name_expr, *rec, exec_->pool_));
    rel = exec_->edb_->Find(name, op.access.arity);
    if (rel == nullptr && exec_->env_.nail != nullptr) {
      GLUENAIL_RETURN_NOT_OK(exec_->env_.nail->EnsureAllNail());
      rel = exec_->idb_->Find(name, op.access.arity);
    }
  } else {
    GLUENAIL_ASSIGN_OR_RETURN(rel, exec_->ResolveRead(op.access, frame_));
  }
  GLUENAIL_ASSIGN_OR_RETURN(bool exists, HasMatch(op, rel, rec));
  if (!exists) return emit(rec, group);
  return Status::OK();
}

Status OpRunner::StreamCompare(const PlanOp& op, Record* rec, uint32_t group,
                               EmitFn emit) {
  if (op.bind_slot >= 0) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId v,
                              EvalExpr(plan_, op.rhs, *rec, exec_->pool_));
    size_t slot = static_cast<size_t>(op.bind_slot);
    TermId old = (*rec)[slot];
    (*rec)[slot] = v;
    Status st = emit(rec, group);
    (*rec)[slot] = old;
    return st;
  }
  GLUENAIL_ASSIGN_OR_RETURN(TermId a,
                            EvalExpr(plan_, op.lhs, *rec, exec_->pool_));
  GLUENAIL_ASSIGN_OR_RETURN(TermId b,
                            EvalExpr(plan_, op.rhs, *rec, exec_->pool_));
  GLUENAIL_ASSIGN_OR_RETURN(bool pass,
                            EvalCompare(*exec_->pool_, op.cmp, a, b));
  if (pass) return emit(rec, group);
  return Status::OK();
}

}  // namespace gluenail
