/// \file frame.h
/// \brief Procedure invocation frames.
///
/// Paper §4: "Each invocation of a procedure has its own copies of its
/// local relations", plus the special `in` and `return` relations. The
/// frame also tracks the per-call-site state behind `unchanged`.

#ifndef GLUENAIL_EXEC_FRAME_H_
#define GLUENAIL_EXEC_FRAME_H_

#include <memory>
#include <vector>

#include "src/plan/plan.h"
#include "src/storage/relation.h"

namespace gluenail {

class Frame {
 public:
  /// Builds the frame for \p proc: fresh locals, empty in/return.
  /// \p proc may be nullptr for ad-hoc statement execution (no locals, no
  /// in/return; unchanged sites per engine-supplied count).
  explicit Frame(const CompiledProcedure* proc);

  Relation* local(int index) { return locals_[index].get(); }
  Relation* in() { return in_.get(); }
  Relation* ret() { return return_.get(); }

  bool returned = false;

  /// unchanged(p) bookkeeping: last observed version per site.
  struct UnchangedSite {
    bool seen = false;
    uint64_t version = 0;
  };
  std::vector<UnchangedSite> unchanged_sites;

 private:
  std::vector<std::unique_ptr<Relation>> locals_;
  std::unique_ptr<Relation> in_;
  std::unique_ptr<Relation> return_;
};

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_FRAME_H_
