/// \file eval.h
/// \brief Expression evaluation and pattern matching over binding records.

#ifndef GLUENAIL_EXEC_EVAL_H_
#define GLUENAIL_EXEC_EVAL_H_

#include <span>
#include <vector>

#include "src/common/result.h"
#include "src/exec/bindings.h"
#include "src/plan/plan.h"
#include "src/storage/tuple.h"

namespace gluenail {

/// Evaluates expression \p id of \p plan against \p rec. All slots an
/// expression reads are guaranteed bound by the planner. Takes the record
/// as a span so both representations of a binding record work: a tuple
/// executor's Record (std::vector) and a batch executor's flat lane.
Result<TermId> EvalExpr(const StatementPlan& plan, ExprId id,
                        std::span<const TermId> rec, TermPool* pool);

/// Undo log for bindings made while matching; unwound between candidate
/// tuples so one scratch record serves a whole scan.
using BindUndo = std::vector<std::pair<int, TermId>>;

/// Matches \p value against \p node. kBind entries write into \p rec and
/// log into \p undo; the caller unwinds with UnbindAll on failure or after
/// consuming the match.
bool MatchTerm(const MatchNode& node, TermId value, const TermPool& pool,
               Record* rec, BindUndo* undo);

/// Matches \p tuple column-wise against \p patterns (same length).
bool MatchColumns(const std::vector<MatchNode>& patterns, RowView tuple,
                  const TermPool& pool, Record* rec, BindUndo* undo);

/// Reverts the bindings recorded in \p undo (restores previous values).
void UnbindAll(const BindUndo& undo, Record* rec);

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_EVAL_H_
