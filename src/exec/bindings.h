/// \file bindings.h
/// \brief Binding records: the run-time form of supplementary relations.
///
/// A Record holds one value per variable slot of a statement (kNullTerm =
/// not yet bound). A RecordSet is a materialized supplementary relation
/// sup_i (paper §3.2), with a parallel group id per record once a
/// group_by has partitioned it (§3.3.1). Cascading group_bys refine ids.

#ifndef GLUENAIL_EXEC_BINDINGS_H_
#define GLUENAIL_EXEC_BINDINGS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/strings.h"
#include "src/term/term_pool.h"

namespace gluenail {

using Record = std::vector<TermId>;

struct RecordSet {
  std::vector<Record> records;
  /// groups[i] is the group id of records[i]; empty set <=> one implicit
  /// group 0 for everything.
  std::vector<uint32_t> groups;
  /// Number of distinct group ids (1 before any group_by).
  uint32_t num_groups = 1;

  void Clear() {
    records.clear();
    groups.clear();
    num_groups = 1;
  }
  bool empty() const { return records.empty(); }
  size_t size() const { return records.size(); }

  void Add(Record rec, uint32_t group) {
    records.push_back(std::move(rec));
    groups.push_back(group);
  }
};

/// Removes duplicate (record, group) pairs in place, preserving first
/// occurrences. Returns the number removed — §9's early duplicate
/// elimination statistic.
size_t DedupRecords(RecordSet* set);

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_BINDINGS_H_
