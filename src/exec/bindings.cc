#include "src/exec/bindings.h"

namespace gluenail {

namespace {

struct KeyView {
  const Record* rec;
  uint32_t group;
};

struct KeyHashEq {
  size_t operator()(const KeyView& k) const {
    uint64_t h = k.group;
    for (TermId v : *k.rec) h = HashCombine(h, v);
    return static_cast<size_t>(h);
  }
  bool operator()(const KeyView& a, const KeyView& b) const {
    return a.group == b.group && *a.rec == *b.rec;
  }
};

}  // namespace

size_t DedupRecords(RecordSet* set) {
  std::unordered_set<KeyView, KeyHashEq, KeyHashEq> seen;
  std::vector<Record> out_records;
  std::vector<uint32_t> out_groups;
  out_records.reserve(set->records.size());
  size_t removed = 0;
  for (size_t i = 0; i < set->records.size(); ++i) {
    uint32_t g = set->groups.empty() ? 0 : set->groups[i];
    // Note: KeyView points at the record in its *final* vector so the set
    // stays valid; insert after moving.
    out_records.push_back(std::move(set->records[i]));
    out_groups.push_back(g);
    KeyView key{&out_records.back(), g};
    if (!seen.insert(key).second) {
      out_records.pop_back();
      out_groups.pop_back();
      ++removed;
    }
  }
  set->records = std::move(out_records);
  set->groups = std::move(out_groups);
  return removed;
}

}  // namespace gluenail
