#include "src/exec/frame.h"

namespace gluenail {

Frame::Frame(const CompiledProcedure* proc) {
  if (proc == nullptr) return;
  locals_.reserve(proc->locals.size());
  for (const auto& [name, arity] : proc->locals) {
    locals_.push_back(std::make_unique<Relation>(name, arity));
  }
  in_ = std::make_unique<Relation>("in", proc->bound_arity);
  return_ = std::make_unique<Relation>("return", proc->arity());
  unchanged_sites.resize(static_cast<size_t>(proc->num_unchanged_sites));
}

}  // namespace gluenail
