/// \file materialized.cc
/// \brief The materialized strategy: realize every supplementary relation.
///
/// This is the literal §3.2 semantics: sup_0 = {ε}; op i maps sup_{i-1} to
/// sup_i, fully computed before op i+1 starts. Execution stops as soon as
/// a supplementary relation is empty.

#include <optional>

#include "src/exec/executor.h"
#include "src/exec/ops.h"
#include "src/exec/vector/batch_runner.h"

namespace gluenail {

Status Executor::RunMaterialized(const StatementPlan& plan, Frame* frame,
                                 RecordSet* out) {
  RecordSet cur;
  cur.Add(Record(static_cast<size_t>(plan.num_slots), kNullTerm), 0);

  OpRunner runner(this, plan, frame);
  // Lazily constructed: most statements never take the batch path.
  std::optional<BatchRunner> batcher;
  for (const PlanOp& op : plan.ops) {
    if (cur.empty()) break;  // §3.2: empty sup stops the statement
    GLUENAIL_RETURN_NOT_OK(CheckControl(cur.records.size()));
    switch (op.kind) {
      case OpKind::kMatch:
      case OpKind::kNegMatch:
      case OpKind::kCompare: {
        RecordSet next;
        next.num_groups = cur.num_groups;
        if (UseBatchFor(plan, op)) {
          // Batch-at-a-time: single-op segments here, because this
          // strategy dedups between ops and a fused segment would skip
          // those intermediate dedups.
          if (!batcher) batcher.emplace(this, plan, frame);
          ++stats_.batch_segments;
          stats_.batch_rows += cur.records.size();
          size_t idx = static_cast<size_t>(&op - plan.ops.data());
          GLUENAIL_RETURN_NOT_OK(
              batcher->RunSegment(idx, idx + 1, cur, &next));
        } else {
          for (size_t i = 0; i < cur.records.size(); ++i) {
            uint32_t g = cur.groups.empty() ? 0 : cur.groups[i];
            GLUENAIL_RETURN_NOT_OK(runner.Stream(
                op, &cur.records[i], g, [&](Record* rec, uint32_t group) {
                  runner.CountRow(op);
                  next.Add(*rec, group);
                  return Status::OK();
                }));
          }
        }
        cur = std::move(next);
        break;
      }
      case OpKind::kAggregate:
        // A supplementary relation is a *relation* (§3.2): duplicates in
        // the record vector are representation artifacts and must not be
        // visible to aggregates, so dedup here is mandatory even when the
        // performance knob has it off elsewhere.
        if (!options_.dedup_at_breaks) {
          stats_.duplicates_removed += DedupRecords(&cur);
        }
        GLUENAIL_RETURN_NOT_OK(ApplyAggregate(plan, op, &cur));
        break;
      case OpKind::kGroupBy:
        GLUENAIL_RETURN_NOT_OK(ApplyGroupBy(op, &cur));
        break;
      case OpKind::kCall: {
        RecordSet next;
        GLUENAIL_RETURN_NOT_OK(ApplyCall(plan, op, frame, cur, &next));
        cur = std::move(next);
        break;
      }
      case OpKind::kUpdate:
        GLUENAIL_RETURN_NOT_OK(ApplyUpdate(plan, op, frame, &cur));
        break;
    }
    if (IsBarrier(op)) CountOpRows(plan, op, cur.records.size());
    if (options_.dedup_at_breaks) {
      stats_.duplicates_removed += DedupRecords(&cur);
    }
  }
  *out = std::move(cur);
  return Status::OK();
}

}  // namespace gluenail
