#include "src/exec/worker_pool.h"

namespace gluenail {

WorkerPool::WorkerPool(int num_workers) {
  int helpers = num_workers > 1 ? num_workers - 1 : 0;
  helpers_.reserve(static_cast<size_t>(helpers));
  for (int i = 0; i < helpers; ++i) {
    helpers_.emplace_back([this] { HelperLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void WorkerPool::Run(int count, const std::function<void(int)>& fn) {
  if (helpers_.empty()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    busy_helpers_ = static_cast<int>(helpers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a worker too.
  for (;;) {
    int i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return busy_helpers_ == 0; });
  job_ = nullptr;
}

void WorkerPool::HelperLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(int)>* job = job_;
    int count = count_;
    lock.unlock();
    for (;;) {
      int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*job)(i);
    }
    lock.lock();
    if (--busy_helpers_ == 0) done_cv_.notify_one();
  }
}

}  // namespace gluenail
