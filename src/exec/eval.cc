#include "src/exec/eval.h"

#include "src/common/strings.h"
#include "src/runtime/arith.h"
#include "src/runtime/string_builtins.h"

namespace gluenail {

namespace {

// EvalExpr recurses as deep as expressions nest, and unoptimized builds
// give every branch's locals a slot in the one recursive frame — so the
// rare, allocation-heavy branches (argument vectors, error-string
// formatting) live in these out-of-line helpers, keeping the recursive
// frame lean enough for thousands of levels within a default 8 MiB stack
// (robustness_test exercises 2000).

[[gnu::noinline]] Status UnboundSlotError(int slot) {
  return Status::Internal(StrCat("unbound slot ", slot, " read at run time"));
}

[[gnu::noinline]] Result<TermId> EvalStringOpExpr(
    const StatementPlan& plan, const ExprNode& n, std::span<const TermId> rec,
    TermPool* pool) {
  std::vector<TermId> args;
  args.reserve(n.children.size());
  for (ExprId c : n.children) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, c, rec, pool));
    args.push_back(v);
  }
  return EvalStringBuiltin(pool, n.op, args);
}

[[gnu::noinline]] Result<TermId> EvalBuildExpr(const StatementPlan& plan,
                                               const ExprNode& n,
                                               std::span<const TermId> rec,
                                               TermPool* pool) {
  GLUENAIL_ASSIGN_OR_RETURN(TermId f,
                            EvalExpr(plan, n.children[0], rec, pool));
  std::vector<TermId> args;
  args.reserve(n.children.size() - 1);
  for (size_t i = 1; i < n.children.size(); ++i) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId v,
                              EvalExpr(plan, n.children[i], rec, pool));
    args.push_back(v);
  }
  return pool->MakeCompound(f, args);
}

}  // namespace

Result<TermId> EvalExpr(const StatementPlan& plan, ExprId id,
                        std::span<const TermId> rec, TermPool* pool) {
  const ExprNode& n = plan.exprs[static_cast<size_t>(id)];
  switch (n.kind) {
    case ExprKind::kConst:
      return n.const_term;
    case ExprKind::kSlot: {
      TermId v = rec[static_cast<size_t>(n.slot)];
      if (v == kNullTerm) return UnboundSlotError(n.slot);
      return v;
    }
    case ExprKind::kArith: {
      GLUENAIL_ASSIGN_OR_RETURN(TermId a,
                                EvalExpr(plan, n.children[0], rec, pool));
      GLUENAIL_ASSIGN_OR_RETURN(TermId b,
                                EvalExpr(plan, n.children[1], rec, pool));
      return EvalArith(pool, n.op, a, b);
    }
    case ExprKind::kNegate: {
      GLUENAIL_ASSIGN_OR_RETURN(TermId a,
                                EvalExpr(plan, n.children[0], rec, pool));
      return EvalNegate(pool, a);
    }
    case ExprKind::kStringOp:
      return EvalStringOpExpr(plan, n, rec, pool);
    case ExprKind::kBuild:
      return EvalBuildExpr(plan, n, rec, pool);
  }
  return Status::Internal("unreachable expression kind");
}

bool MatchTerm(const MatchNode& node, TermId value, const TermPool& pool,
               Record* rec, BindUndo* undo) {
  switch (node.kind) {
    case MatchNode::Kind::kWildcard:
      return true;
    case MatchNode::Kind::kConst:
      return value == node.const_term;
    case MatchNode::Kind::kBind: {
      size_t slot = static_cast<size_t>(node.slot);
      undo->emplace_back(node.slot, (*rec)[slot]);
      (*rec)[slot] = value;
      return true;
    }
    case MatchNode::Kind::kCheck:
      return (*rec)[static_cast<size_t>(node.slot)] == value;
    case MatchNode::Kind::kStruct: {
      if (!pool.IsCompound(value)) return false;
      size_t arity = node.children.size() - 1;
      if (pool.Arity(value) != arity) return false;
      if (!MatchTerm(node.children[0], pool.Functor(value), pool, rec,
                     undo)) {
        return false;
      }
      std::span<const TermId> args = pool.Args(value);
      for (size_t i = 0; i < arity; ++i) {
        if (!MatchTerm(node.children[i + 1], args[i], pool, rec, undo)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool MatchColumns(const std::vector<MatchNode>& patterns, RowView tuple,
                  const TermPool& pool, Record* rec, BindUndo* undo) {
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!MatchTerm(patterns[i], tuple[i], pool, rec, undo)) return false;
  }
  return true;
}

void UnbindAll(const BindUndo& undo, Record* rec) {
  // Restore in reverse so repeated bindings of one slot unwind correctly.
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    (*rec)[static_cast<size_t>(it->first)] = it->second;
  }
}

}  // namespace gluenail
