#include "src/exec/executor.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/exec/ops.h"
#include "src/exec/vector/batch_runner.h"
#include "src/obs/trace.h"
#include "src/runtime/arith.h"

namespace gluenail {

// ---------------------------------------------------------------------------
// Batch-mode selection
// ---------------------------------------------------------------------------

bool Executor::UseBatchFor(const StatementPlan& plan, const PlanOp& op) const {
  switch (options_.batch_mode) {
    case ExecOptions::BatchMode::kOff:
      return false;
    case ExecOptions::BatchMode::kAlways:
      return BatchRunner::OpEligible(plan, op);
    case ExecOptions::BatchMode::kAuto:
      return op.batch && BatchRunner::OpEligible(plan, op);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Relation resolution
// ---------------------------------------------------------------------------

Result<Relation*> Executor::ResolveRead(const PredicateAccess& access,
                                        Frame* frame) {
  if (!read_overrides_.empty() &&
      (access.kind == PredicateAccess::Kind::kEdb ||
       access.kind == PredicateAccess::Kind::kNail)) {
    auto it = read_overrides_.find(access.name);
    if (it != read_overrides_.end()) return it->second;
  }
  switch (access.kind) {
    case PredicateAccess::Kind::kEdb:
      return edb_->Find(access.name, access.arity);
    case PredicateAccess::Kind::kLocal:
      return frame->local(access.local_index);
    case PredicateAccess::Kind::kIn:
      return frame->in();
    case PredicateAccess::Kind::kNail: {
      if (options_.read_only_storage && !options_.writable_private_idb) {
        // The engine guarantees the IDB is fresh before a read-only
        // executor runs, so a plain lookup suffices.
        return idb_->Find(access.name, access.arity);
      }
      if (env_.nail == nullptr) {
        return Status::Internal("NAIL! predicate read without an evaluator");
      }
      ++stats_.nail_refreshes;
      return env_.nail->EnsureNail(access.name, access.arity);
    }
    default:
      return Status::Internal("unexpected access kind in ResolveRead");
  }
}

Result<Relation*> Executor::ResolveWrite(const PredicateAccess& access,
                                         Frame* frame, TermId dynamic_name) {
  if (options_.read_only_storage) {
    bool allowed = access.kind == PredicateAccess::Kind::kLocal ||
                   access.kind == PredicateAccess::Kind::kReturn ||
                   (access.kind == PredicateAccess::Kind::kNail &&
                    options_.writable_private_idb);
    if (!allowed) {
      return Status::RuntimeError(
          "read-only session: the statement writes a shared relation; use a "
          "write entry point (Engine::ExecuteStatement / Session write "
          "methods)");
    }
  }
  switch (access.kind) {
    case PredicateAccess::Kind::kEdb:
      return edb_->GetOrCreate(access.name, access.arity);
    case PredicateAccess::Kind::kLocal:
      return frame->local(access.local_index);
    case PredicateAccess::Kind::kReturn:
      return frame->ret();
    case PredicateAccess::Kind::kNail:
      return idb_->GetOrCreate(access.name, access.arity);
    case PredicateAccess::Kind::kDynamic:
      return edb_->GetOrCreate(dynamic_name, access.arity);
    default:
      return Status::Internal("unexpected access kind in ResolveWrite");
  }
}

// ---------------------------------------------------------------------------
// Barrier ops
// ---------------------------------------------------------------------------

Status Executor::ApplyAggregate(const StatementPlan& plan, const PlanOp& op,
                                RecordSet* set) {
  // One accumulator per group; aggregates see one contribution per
  // supplementary tuple (§3.3), never a projection.
  std::unordered_map<uint32_t, Aggregator> accs;
  for (size_t i = 0; i < set->records.size(); ++i) {
    uint32_t g = set->groups.empty() ? 0 : set->groups[i];
    auto [it, unused] = accs.try_emplace(g, op.agg, pool_);
    GLUENAIL_ASSIGN_OR_RETURN(
        TermId v, EvalExpr(plan, op.agg_arg, set->records[i], pool_));
    GLUENAIL_RETURN_NOT_OK(it->second.Add(v));
  }
  std::unordered_map<uint32_t, TermId> results;
  for (auto& [g, acc] : accs) {
    GLUENAIL_ASSIGN_OR_RETURN(TermId v, acc.Finish(pool_));
    results.emplace(g, v);
  }
  RecordSet out;
  out.num_groups = set->num_groups;
  for (size_t i = 0; i < set->records.size(); ++i) {
    uint32_t g = set->groups.empty() ? 0 : set->groups[i];
    TermId value = results.at(g);
    if (op.bind_slot >= 0) {
      Record rec = set->records[i];
      rec[static_cast<size_t>(op.bind_slot)] = value;
      out.Add(std::move(rec), g);
    } else {
      // "T = min(T)" with T bound: filter, i.e. the §3.3 aggregation+join.
      GLUENAIL_ASSIGN_OR_RETURN(
          TermId lhs, EvalExpr(plan, op.lhs, set->records[i], pool_));
      GLUENAIL_ASSIGN_OR_RETURN(
          bool eq, EvalCompare(*pool_, ast::CompareOp::kEq, lhs, value));
      if (eq) out.Add(set->records[i], g);
    }
  }
  *set = std::move(out);
  return Status::OK();
}

Status Executor::ApplyGroupBy(const PlanOp& op, RecordSet* set) {
  // Refine existing groups by the key slots; cascade semantics (§3.3.1).
  std::map<std::pair<uint32_t, Tuple>, uint32_t> ids;
  std::vector<uint32_t> new_groups(set->records.size());
  uint32_t next = 0;
  for (size_t i = 0; i < set->records.size(); ++i) {
    uint32_t g = set->groups.empty() ? 0 : set->groups[i];
    Tuple key;
    key.reserve(op.group_slots.size());
    for (int slot : op.group_slots) {
      key.push_back(set->records[i][static_cast<size_t>(slot)]);
    }
    auto [it, inserted] = ids.try_emplace({g, std::move(key)}, next);
    if (inserted) ++next;
    new_groups[i] = it->second;
  }
  set->groups = std::move(new_groups);
  set->num_groups = next == 0 ? 1 : next;
  return Status::OK();
}

Status Executor::ApplyCall(const StatementPlan& plan, const PlanOp& op,
                           Frame* frame, const RecordSet& in,
                           RecordSet* out) {
  // Project the sup onto the bound arguments, dedupe, call ONCE (§4).
  Relation input("call_in", op.callee_bound_arity);
  std::vector<Tuple> rec_keys;
  rec_keys.reserve(in.records.size());
  for (const Record& rec : in.records) {
    Tuple key;
    key.reserve(op.call_in_exprs.size());
    for (ExprId e : op.call_in_exprs) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, e, rec, pool_));
      key.push_back(v);
    }
    input.Insert(key);
    rec_keys.push_back(std::move(key));
  }

  Relation result("call_out", op.callee_bound_arity + op.callee_free_arity);
  switch (op.callee) {
    case CalleeKind::kBuiltin:
      ++stats_.builtin_calls;
      GLUENAIL_RETURN_NOT_OK(
          ExecBuiltinProc(static_cast<BuiltinProc>(op.callee_index), pool_,
                          &env_.io, input, &result));
      break;
    case CalleeKind::kHost: {
      ++stats_.host_calls;
      if (env_.hosts == nullptr ||
          op.callee_index >= static_cast<int>(env_.hosts->size())) {
        return Status::Internal("host procedure table missing");
      }
      const HostProcedure& host =
          (*env_.hosts)[static_cast<size_t>(op.callee_index)];
      GLUENAIL_RETURN_NOT_OK(
          host.fn(pool_, input, &result).WithContext(host.name));
      break;
    }
    case CalleeKind::kGlueProc: {
      ++stats_.proc_calls;
      GLUENAIL_RETURN_NOT_OK(
          CallProcedureByIndex(op.callee_index, input, &result));
      break;
    }
  }

  // Join the result back: group result tuples by their bound prefix. The
  // RowViews stay valid because `result` is not mutated during the join.
  std::unordered_map<Tuple, std::vector<RowView>, TupleHash> by_prefix;
  for (RowView t : result) {
    Tuple prefix(t.begin(), t.begin() + op.callee_bound_arity);
    by_prefix[std::move(prefix)].push_back(t);
  }
  OpRunner runner(this, plan, frame);
  for (size_t i = 0; i < in.records.size(); ++i) {
    auto it = by_prefix.find(rec_keys[i]);
    if (it == by_prefix.end()) continue;
    uint32_t g = in.groups.empty() ? 0 : in.groups[i];
    Record rec = in.records[i];
    for (RowView t : it->second) {
      BindUndo undo;
      bool ok = true;
      for (size_t c = 0; c < op.call_out_patterns.size(); ++c) {
        if (!MatchTerm(op.call_out_patterns[c],
                       t[op.callee_bound_arity + c], *pool_, &rec,
                       &undo)) {
          ok = false;
          break;
        }
      }
      if (ok) out->Add(rec, g);
      UnbindAll(undo, &rec);
    }
  }
  out->num_groups = in.num_groups;
  return Status::OK();
}

Status Executor::ApplyUpdate(const StatementPlan& plan, const PlanOp& op,
                             Frame* frame, RecordSet* set) {
  for (const Record& rec : set->records) {
    Tuple tuple;
    tuple.reserve(op.update_exprs.size());
    for (ExprId e : op.update_exprs) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, e, rec, pool_));
      tuple.push_back(v);
    }
    TermId dynamic_name = kNullTerm;
    if (op.access.kind == PredicateAccess::Kind::kDynamic) {
      GLUENAIL_ASSIGN_OR_RETURN(dynamic_name,
                                EvalExpr(plan, op.access.name_expr, rec,
                                         pool_));
    }
    GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                              ResolveWrite(op.access, frame, dynamic_name));
    if (op.update_insert) {
      rel->Insert(tuple);
    } else {
      rel->Erase(tuple);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Heads
// ---------------------------------------------------------------------------

Status Executor::ApplyHead(const StatementPlan& plan, Frame* frame,
                           const RecordSet& sup) {
  const HeadPlan& head = plan.head;

  if (head.is_return) {
    Relation* ret = frame->ret();
    if (ret == nullptr) {
      return Status::Internal("return head outside a procedure frame");
    }
    for (const Record& rec : sup.records) {
      Tuple tuple;
      tuple.reserve(head.arg_exprs.size());
      for (ExprId e : head.arg_exprs) {
        GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, e, rec, pool_));
        tuple.push_back(v);
      }
      ret->Insert(tuple);
      ++stats_.head_tuples;
    }
    // Assigning to return exits the procedure (§4). When the body yields
    // nothing, §3.2's "execution stops on an empty supplementary relation"
    // applies: no assignment happened, so no exit — which is what makes
    // sequential return statements act as conditionals (base case /
    // recursive case) and matches Figure 1's final `return := confirmed`.
    if (!sup.records.empty()) frame->returned = true;
    return Status::OK();
  }

  bool dynamic = head.access.kind == PredicateAccess::Kind::kDynamic;
  Relation* static_rel = nullptr;
  if (!dynamic) {
    GLUENAIL_ASSIGN_OR_RETURN(static_rel,
                              ResolveWrite(head.access, frame, kNullTerm));
  }
  Relation* delta_rel = nullptr;
  if (head.delta_access.kind != PredicateAccess::Kind::kNone) {
    GLUENAIL_ASSIGN_OR_RETURN(
        delta_rel, ResolveWrite(head.delta_access, frame, kNullTerm));
  }

  // Build the head tuples (and their target relation when dynamic).
  std::vector<std::pair<Relation*, Tuple>> new_tuples;
  std::unordered_set<TermId> cleared_dynamic;
  for (const Record& rec : sup.records) {
    Relation* rel = static_rel;
    if (dynamic) {
      GLUENAIL_ASSIGN_OR_RETURN(
          TermId name, EvalExpr(plan, head.access.name_expr, rec, pool_));
      GLUENAIL_ASSIGN_OR_RETURN(rel, ResolveWrite(head.access, frame, name));
      if (head.op == ast::AssignOp::kClear &&
          cleared_dynamic.insert(name).second) {
        rel->Clear();
      }
    }
    Tuple tuple;
    tuple.reserve(head.arg_exprs.size());
    for (ExprId e : head.arg_exprs) {
      GLUENAIL_ASSIGN_OR_RETURN(TermId v, EvalExpr(plan, e, rec, pool_));
      tuple.push_back(v);
    }
    new_tuples.emplace_back(rel, std::move(tuple));
  }

  switch (head.op) {
    case ast::AssignOp::kClear:
      // ":=" overwrites: clear even when the body produced nothing.
      if (!dynamic) static_rel->Clear();
      for (auto& [rel, tuple] : new_tuples) {
        if (rel->Insert(tuple)) ++stats_.head_tuples;
      }
      return Status::OK();
    case ast::AssignOp::kInsert:
      for (auto& [rel, tuple] : new_tuples) {
        if (rel->Insert(tuple)) {
          ++stats_.head_tuples;
          if (delta_rel != nullptr) delta_rel->Insert(tuple);
        }
      }
      return Status::OK();
    case ast::AssignOp::kDelete:
      for (auto& [rel, tuple] : new_tuples) {
        if (rel->Erase(tuple)) ++stats_.head_tuples;
      }
      return Status::OK();
    case ast::AssignOp::kModify: {
      // Update-by-key (§3.1): remove every existing tuple agreeing with a
      // new tuple on the key columns, then insert the new tuples.
      std::vector<std::pair<Relation*, Tuple>> victims;
      std::vector<uint32_t> rows;
      Tuple key;
      for (auto& [rel, tuple] : new_tuples) {
        ExtractKey(head.modify_mask, tuple, &key);
        rows.clear();
        rel->Select(head.modify_mask, key, &rows);
        for (uint32_t row : rows) {
          RowView victim = rel->row(row);
          victims.emplace_back(rel, Tuple(victim.begin(), victim.end()));
        }
      }
      for (auto& [rel, tuple] : victims) rel->Erase(tuple);
      for (auto& [rel, tuple] : new_tuples) {
        if (rel->Insert(tuple)) ++stats_.head_tuples;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable head op");
}

// ---------------------------------------------------------------------------
// Statements, loops, procedures
// ---------------------------------------------------------------------------

Status Executor::ExecuteStatementPlan(const StatementPlan& plan,
                                      Frame* frame) {
  RecordSet final_sup;
  return ExecuteStatementPlanCapture(plan, frame, &final_sup);
}

Status Executor::ExecuteStatementPlanCapture(const StatementPlan& plan,
                                             Frame* frame,
                                             RecordSet* final_sup) {
  GLUENAIL_RETURN_NOT_OK(ExecuteBodyOnly(plan, frame, final_sup));
  return ApplyHead(plan, frame, *final_sup);
}

Status Executor::ExecuteBodyOnly(const StatementPlan& plan, Frame* frame,
                                 RecordSet* final_sup) {
  ++stats_.statements;
  final_sup->Clear();
#if GLUENAIL_TRACE
  if (TraceSink::Current() != nullptr) {
    return ExecuteBodyTraced(plan, frame, final_sup);
  }
#endif
  Status st = options_.strategy == ExecOptions::Strategy::kMaterialized
                  ? RunMaterialized(plan, frame, final_sup)
                  : RunPipelined(plan, frame, final_sup);
  GLUENAIL_RETURN_NOT_OK(st);
  stats_.records_produced += final_sup->size();
  return Status::OK();
}

namespace {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatch: return "match";
    case OpKind::kNegMatch: return "negmatch";
    case OpKind::kCompare: return "compare";
    case OpKind::kAggregate: return "aggregate";
    case OpKind::kGroupBy: return "group_by";
    case OpKind::kCall: return "call";
    case OpKind::kUpdate: return "update";
  }
  return "op";
}

}  // namespace

std::string Executor::OpSpanName(const StatementPlan& plan,
                                 size_t idx) const {
  const PlanOp& op = plan.ops[idx];
  std::string name = StrCat("op", idx, ":", OpKindName(op.kind));
  if ((op.kind == OpKind::kMatch || op.kind == OpKind::kNegMatch) &&
      op.access.name != kNullTerm) {
    name += " ";
    name += pool_->ToString(op.access.name);
  }
  return name;
}

Status Executor::ExecuteBodyTraced(const StatementPlan& plan, Frame* frame,
                                   RecordSet* final_sup) {
  TraceSink* sink = TraceSink::Current();
  ScopedSpan stmt_span("stmt:execute");
  // Borrow (or create) the op profile so the per-op spans report the same
  // actual-rows numbers EXPLAIN ANALYZE would; the delta against a
  // snapshot keeps nested/repeated executions of a profiled plan honest.
  bool created_profile = OpProfile(&plan) == nullptr;
  if (created_profile) EnableOpProfile(&plan);
  std::vector<uint64_t> before = *OpProfile(&plan);
  Status st = options_.strategy == ExecOptions::Strategy::kMaterialized
                  ? RunMaterialized(plan, frame, final_sup)
                  : RunPipelined(plan, frame, final_sup);
  const std::vector<uint64_t>* after = OpProfile(&plan);
  if (after != nullptr) {
    for (size_t i = 0; i < after->size(); ++i) {
      uint64_t delta = (*after)[i] - (i < before.size() ? before[i] : 0);
      int32_t span = sink->StartSpan(OpSpanName(plan, i));
      sink->AddRows(span, delta);
      sink->EndSpan(span);
    }
  }
  if (created_profile) DisableOpProfile(&plan);
  GLUENAIL_RETURN_NOT_OK(st);
  stats_.records_produced += final_sup->size();
  stmt_span.AddRows(final_sup->size());
  return Status::OK();
}

Result<bool> Executor::EvalCond(const CondPlan& cond, Frame* frame) {
  switch (cond.kind) {
    case ast::UntilCond::Kind::kAnd: {
      // No short-circuiting: unchanged() leaves must always update their
      // site state so later iterations see consistent versions.
      GLUENAIL_ASSIGN_OR_RETURN(bool a, EvalCond(cond.children[0], frame));
      GLUENAIL_ASSIGN_OR_RETURN(bool b, EvalCond(cond.children[1], frame));
      return a && b;
    }
    case ast::UntilCond::Kind::kOr: {
      GLUENAIL_ASSIGN_OR_RETURN(bool a, EvalCond(cond.children[0], frame));
      GLUENAIL_ASSIGN_OR_RETURN(bool b, EvalCond(cond.children[1], frame));
      return a || b;
    }
    case ast::UntilCond::Kind::kNot: {
      GLUENAIL_ASSIGN_OR_RETURN(bool a, EvalCond(cond.children[0], frame));
      return !a;
    }
    case ast::UntilCond::Kind::kUnchanged: {
      GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                                ResolveRead(cond.access, frame));
      uint64_t current = rel == nullptr ? 0 : rel->version();
      Frame::UnchangedSite& site =
          frame->unchanged_sites[static_cast<size_t>(cond.unchanged_site)];
      // "always false the first time it is executed" (§4).
      bool result = site.seen && site.version == current;
      site.seen = true;
      site.version = current;
      return result;
    }
    case ast::UntilCond::Kind::kEmpty:
    case ast::UntilCond::Kind::kNonEmpty: {
      GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                                ResolveRead(cond.access, frame));
      bool exists = false;
      if (rel != nullptr) {
        Record dummy;
        BindUndo undo;
        for (RowView t : *rel) {
          undo.clear();
          if (MatchColumns(cond.patterns, t, *pool_, &dummy, &undo)) {
            exists = true;
            break;
          }
        }
      }
      return cond.kind == ast::UntilCond::Kind::kNonEmpty ? exists : !exists;
    }
  }
  return Status::Internal("unreachable cond kind");
}

Status Executor::ExecBlock(const std::vector<CInstr>& code,
                           const CompiledProcedure& proc, Frame* frame) {
  for (const CInstr& instr : code) {
    if (frame->returned) return Status::OK();
    if (instr.kind == CInstr::Kind::kExec) {
      GLUENAIL_RETURN_NOT_OK(ExecuteStatementPlan(
          proc.plans[static_cast<size_t>(instr.plan_index)], frame));
    } else {
      uint64_t iterations = 0;
      while (true) {
        ++stats_.loop_iterations;
        if (++iterations > options_.max_loop_iterations) {
          return Status::RuntimeError(
              StrCat("repeat loop in ", proc.name, " exceeded ",
                     options_.max_loop_iterations, " iterations"));
        }
        // Repeat loops are where generated NAIL! drivers (and user
        // programs) run their fixpoints; check guardrails per iteration.
        GLUENAIL_RETURN_NOT_OK(CheckStorageBudgets());
        GLUENAIL_RETURN_NOT_OK(ExecBlock(instr.body, proc, frame));
        if (frame->returned) return Status::OK();
        GLUENAIL_ASSIGN_OR_RETURN(bool done, EvalCond(instr.cond, frame));
        if (done) break;
      }
    }
  }
  return Status::OK();
}

Status Executor::CheckStorageBudgets() {
  const ExecControl* c = control();
  if (c == nullptr) return Status::OK();
  ++stats_.control_checks;
  GLUENAIL_RETURN_NOT_OK(c->Check());
  if (c->limits.unlimited() || idb_ == nullptr) return Status::OK();
  uint64_t tuples = 0;
  uint64_t bytes = 0;
  idb_->ForEach([&](TermId, uint32_t, Relation* rel) {
    tuples += rel->size();
    bytes += rel->arena_bytes();
  });
  GLUENAIL_RETURN_NOT_OK(c->CheckTuples(tuples));
  return c->CheckArenaBytes(bytes);
}

Status Executor::CallProcedureByIndex(int index, const Relation& input,
                                      Relation* output) {
  if (call_depth_ >= options_.max_call_depth) {
    return Status::RuntimeError(
        StrCat("procedure call depth exceeded ", options_.max_call_depth));
  }
  const CompiledProcedure& proc =
      program_->procedures[static_cast<size_t>(index)];
  if (input.arity() != proc.bound_arity) {
    return Status::Internal(
        StrCat("call to ", proc.name, " with input arity ", input.arity(),
               ", expected ", proc.bound_arity));
  }
  Frame frame(&proc);
  frame.in()->CopyFrom(input);
  ++call_depth_;
  Status st = ExecBlock(proc.code, proc, &frame);
  --call_depth_;
  GLUENAIL_RETURN_NOT_OK(st.WithContext(StrCat("in ", proc.name)));
  output->UnionAll(*frame.ret());
  return Status::OK();
}

}  // namespace gluenail
