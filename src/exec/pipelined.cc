/// \file pipelined.cc
/// \brief The pipelined (nested join) strategy of paper §9.
///
/// Runs of pipelineable ops (matches, negations, comparisons) are fused:
/// each record flows through the whole run without intermediate storage.
/// Fixed language features — aggregators, group_by, procedure calls, body
/// updates — force "pipeline termination and the materialization of a
/// supplementary relation" (§9). At each break the supplementary relation
/// is materialized and (optionally) duplicates are eliminated, which §9
/// reports "has always been advantageous" on real programs; bench E2/E3
/// measure both effects.

#include <optional>

#include "src/exec/executor.h"
#include "src/exec/ops.h"
#include "src/exec/vector/batch_runner.h"

namespace gluenail {

namespace {

/// Recursively streams `rec` through ops[i..end): the fused nested join.
Status StreamSegment(OpRunner* runner, const std::vector<PlanOp>& ops,
                     size_t i, size_t end, Record* rec, uint32_t group,
                     RecordSet* sink) {
  if (i == end) {
    sink->Add(*rec, group);
    return Status::OK();
  }
  return runner->Stream(ops[i],  rec, group,
                        [&](Record* r, uint32_t g) {
                          runner->CountRow(ops[i]);
                          return StreamSegment(runner, ops, i + 1, end, r, g,
                                               sink);
                        });
}

}  // namespace

Status Executor::RunPipelined(const StatementPlan& plan, Frame* frame,
                              RecordSet* out) {
  RecordSet cur;
  cur.Add(Record(static_cast<size_t>(plan.num_slots), kNullTerm), 0);

  OpRunner runner(this, plan, frame);
  // Lazily constructed: most statements never take the batch path.
  std::optional<BatchRunner> batcher;
  size_t i = 0;
  const size_t n = plan.ops.size();
  while (i < n && !cur.empty()) {
    GLUENAIL_RETURN_NOT_OK(CheckControl(cur.records.size()));
    // Find the end of the pipelineable run [i, j).
    size_t j = i;
    while (j < n && !IsBarrier(plan.ops[j])) ++j;

    if (j > i) {
      // Split the run into maximal sub-segments of a single execution
      // mode. A batch sub-segment streams whole lane blocks through its
      // ops with one emit per batch; a tuple sub-segment is the classic
      // fused nested join. A mode switch materializes in between — the
      // same record multiset either way, so dedup at the end of the run
      // (the §9 break) is unaffected.
      size_t s = i;
      while (s < j && !cur.empty()) {
        const bool use_batch = UseBatchFor(plan, plan.ops[s]);
        size_t e = s + 1;
        while (e < j && UseBatchFor(plan, plan.ops[e]) == use_batch) ++e;
        RecordSet next;
        next.num_groups = cur.num_groups;
        if (use_batch) {
          if (!batcher) batcher.emplace(this, plan, frame);
          ++stats_.batch_segments;
          stats_.batch_rows += cur.records.size();
          GLUENAIL_RETURN_NOT_OK(batcher->RunSegment(s, e, cur, &next));
        } else {
          for (size_t r = 0; r < cur.records.size(); ++r) {
            uint32_t g = cur.groups.empty() ? 0 : cur.groups[r];
            GLUENAIL_RETURN_NOT_OK(StreamSegment(&runner, plan.ops, s, e,
                                                 &cur.records[r], g, &next));
          }
        }
        cur = std::move(next);
        s = e;
      }
      if (options_.dedup_at_breaks) {
        stats_.duplicates_removed += DedupRecords(&cur);
      }
      i = j;
      if (cur.empty()) break;
    }

    if (i < n) {
      // A barrier op: the pipeline breaks here (§9).
      ++stats_.pipeline_breaks;
      const PlanOp& op = plan.ops[i];
      switch (op.kind) {
        case OpKind::kAggregate:
          // Mandatory dedup: sup relations are sets (§3.2); duplicates in
          // the materialized record vector must not reach an aggregate.
          if (!options_.dedup_at_breaks) {
            stats_.duplicates_removed += DedupRecords(&cur);
          }
          GLUENAIL_RETURN_NOT_OK(ApplyAggregate(plan, op, &cur));
          break;
        case OpKind::kGroupBy:
          GLUENAIL_RETURN_NOT_OK(ApplyGroupBy(op, &cur));
          break;
        case OpKind::kCall: {
          RecordSet next;
          GLUENAIL_RETURN_NOT_OK(ApplyCall(plan, op, frame, cur, &next));
          cur = std::move(next);
          break;
        }
        case OpKind::kUpdate:
          GLUENAIL_RETURN_NOT_OK(ApplyUpdate(plan, op, frame, &cur));
          break;
        default:
          return Status::Internal("non-barrier op at barrier position");
      }
      CountOpRows(plan, op, cur.records.size());
      if (options_.dedup_at_breaks) {
        stats_.duplicates_removed += DedupRecords(&cur);
      }
      ++i;
    }
  }
  *out = std::move(cur);
  return Status::OK();
}

}  // namespace gluenail
