#include "src/exec/vector/batch_runner.h"

#include "src/common/strings.h"
#include "src/runtime/arith.h"

namespace gluenail {

bool BatchRunner::OpEligible(const StatementPlan& plan, const PlanOp& op) {
  (void)plan;
  switch (op.kind) {
    case OpKind::kCompare:
      return true;
    case OpKind::kMatch:
    case OpKind::kNegMatch: {
      // Dynamic (HiLog) accesses resolve the relation per record and may
      // enumerate predicates; structural patterns recurse into compound
      // terms. Both keep the tuple path.
      if (op.access.kind == PredicateAccess::Kind::kDynamic) return false;
      for (const MatchNode& m : op.col_patterns) {
        if (m.kind == MatchNode::Kind::kStruct) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

BatchRunner::Operand BatchRunner::CompileOperand(ExprId e) const {
  Operand o;
  o.expr = e;
  const ExprNode& n = plan_.exprs[static_cast<size_t>(e)];
  if (n.kind == ExprKind::kConst) {
    o.kind = Operand::Kind::kConst;
    o.value = n.const_term;
  } else if (n.kind == ExprKind::kSlot) {
    o.kind = Operand::Kind::kSlot;
    o.slot = n.slot;
  } else {
    o.kind = Operand::Kind::kExpr;
  }
  return o;
}

void BatchRunner::CompileOp(size_t k) {
  OpState& st = states_[k];
  if (st.compiled) return;
  st.compiled = true;
  const PlanOp& op = plan_.ops[k];
  if (op.kind == OpKind::kCompare) {
    if (op.bind_slot < 0) st.lhs = CompileOperand(op.lhs);
    st.rhs = CompileOperand(op.rhs);
    return;
  }
  // kMatch / kNegMatch: flatten the column patterns into check/bind
  // actions. Pattern matching uses raw TermId equality (interned ground
  // terms), so every check compiles to one integer compare. A kCheck
  // against a slot first bound by an earlier column of the same op cannot
  // read the lane (the bind is only applied on emit), so it becomes a
  // row-column equality instead — the tuple path gets the same effect from
  // its in-record bind + undo log.
  std::vector<std::pair<int, uint32_t>> bound_here;
  for (uint32_t c = 0; c < op.col_patterns.size(); ++c) {
    const MatchNode& m = op.col_patterns[c];
    switch (m.kind) {
      case MatchNode::Kind::kWildcard:
        break;
      case MatchNode::Kind::kConst:
        st.const_checks.push_back({c, m.const_term});
        break;
      case MatchNode::Kind::kBind:
        st.binds.push_back({c, m.slot});
        bound_here.emplace_back(m.slot, c);
        break;
      case MatchNode::Kind::kCheck: {
        uint32_t other = UINT32_MAX;
        for (const auto& [slot, col] : bound_here) {
          if (slot == m.slot) {
            other = col;
            break;
          }
        }
        if (other != UINT32_MAX) {
          st.coleq_checks.push_back({c, other});
        } else {
          st.slot_checks.push_back({c, m.slot});
        }
        break;
      }
      case MatchNode::Kind::kStruct:
        // Unreachable: OpEligible rejects structural patterns.
        break;
    }
  }
  if (op.bound_mask != 0) {
    st.fast_key = true;
    for (ExprId e : op.key_exprs) {
      const ExprNode& n = plan_.exprs[static_cast<size_t>(e)];
      if (n.kind == ExprKind::kConst) {
        st.key_parts.push_back({true, n.const_term, -1});
      } else if (n.kind == ExprKind::kSlot) {
        st.key_parts.push_back({false, kNullTerm, n.slot});
      } else {
        st.fast_key = false;
        st.key_parts.clear();
        break;
      }
    }
  }
}

Result<TermId> BatchRunner::FetchOperand(const Operand& o,
                                         const TermId* lane) const {
  switch (o.kind) {
    case Operand::Kind::kConst:
      return o.value;
    case Operand::Kind::kSlot: {
      TermId v = lane[o.slot];
      if (v == kNullTerm) {
        return Status::Internal(
            StrCat("unbound slot ", o.slot, " read at run time"));
      }
      return v;
    }
    case Operand::Kind::kExpr:
      return EvalExpr(plan_, o.expr, {lane, width_}, exec_->pool_);
  }
  return Status::Internal("bad compare operand");
}

Status BatchRunner::BuildKey(const PlanOp& op, OpState& st,
                             const TermId* lane) {
  st.key.clear();
  if (st.fast_key) {
    for (const KeyPart& p : st.key_parts) {
      if (p.is_const) {
        st.key.push_back(p.value);
        continue;
      }
      TermId v = lane[p.slot];
      if (v == kNullTerm) {
        return Status::Internal(
            StrCat("unbound slot ", p.slot, " read at run time"));
      }
      st.key.push_back(v);
    }
    return Status::OK();
  }
  for (ExprId e : op.key_exprs) {
    GLUENAIL_ASSIGN_OR_RETURN(
        TermId v, EvalExpr(plan_, e, {lane, width_}, exec_->pool_));
    st.key.push_back(v);
  }
  return Status::OK();
}

Status BatchRunner::RunSegment(size_t begin, size_t end, const RecordSet& in,
                               RecordSet* out) {
  for (size_t k = begin; k < end; ++k) {
    CompileOp(k);
    out_bufs_[k].Reset(width_);
    emitted_[k] = 0;
  }
  seed_.Reset(width_);
  Status st = Status::OK();
  for (size_t i = 0; i < in.records.size(); ++i) {
    seed_.PushLane(in.records[i].data(),
                   in.groups.empty() ? 0 : in.groups[i]);
    if (seed_.full()) {
      st = Push(begin, end, &seed_, out);
      seed_.ClearLanes();
      if (!st.ok()) break;
    }
  }
  if (st.ok() && !seed_.empty()) st = Push(begin, end, &seed_, out);
  // Account per-op actual rows in one bulk call per op: same totals as the
  // tuple path's per-record CountRow, flushed even when the segment aborts
  // so EXPLAIN ANALYZE sees the rows produced before the error.
  for (size_t k = begin; k < end; ++k) {
    if (emitted_[k] != 0) {
      exec_->CountOpRows(plan_, plan_.ops[k], emitted_[k]);
      emitted_[k] = 0;
    }
  }
  return st;
}

Status BatchRunner::Push(size_t k, size_t end, LaneBuffer* batch,
                         RecordSet* out) {
  if (batch->empty()) return Status::OK();
  if (k == end) {
    for (size_t i = 0; i < batch->count(); ++i) {
      Record rec;
      if (width_ != 0) {
        const TermId* lane = batch->lane(i);
        rec.assign(lane, lane + width_);
      }
      out->Add(std::move(rec), batch->group(i));
    }
    return Status::OK();
  }
  const PlanOp& op = plan_.ops[k];
  OpState& st = states_[k];
  switch (op.kind) {
    case OpKind::kCompare:
      GLUENAIL_RETURN_NOT_OK(RunCompare(op, st, batch));
      emitted_[k] += batch->count();
      return Push(k + 1, end, batch, out);
    case OpKind::kNegMatch:
      GLUENAIL_RETURN_NOT_OK(RunNegMatch(op, st, batch));
      emitted_[k] += batch->count();
      return Push(k + 1, end, batch, out);
    case OpKind::kMatch: {
      GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                                exec_->ResolveRead(op.access, frame_));
      if (rel == nullptr || rel->empty()) return Status::OK();
      LaneBuffer* ob = &out_bufs_[k];
      ob->ClearLanes();
      GLUENAIL_RETURN_NOT_OK(
          op.bound_mask != 0
              ? RunMatchKeyed(op, st, rel, *batch, k, end, ob, out)
              : RunMatchScan(op, st, rel, *batch, k, end, ob, out));
      return FlushDown(k, end, ob, out);
    }
    default:
      return Status::Internal("barrier op in batch segment");
  }
}

Status BatchRunner::FlushDown(size_t k, size_t end, LaneBuffer* ob,
                              RecordSet* out) {
  if (ob->empty()) return Status::OK();
  emitted_[k] += ob->count();
  Status st = Push(k + 1, end, ob, out);
  ob->ClearLanes();
  return st;
}

Status BatchRunner::RunMatchKeyed(const PlanOp& op, OpState& st,
                                  Relation* rel, const LaneBuffer& in,
                                  size_t k, size_t end, LaneBuffer* ob,
                                  RecordSet* out) {
  // Planner-decided index build, same gating as the tuple path.
  if (op.build_index && !exec_->options_.read_only_storage &&
      rel->index_policy() != IndexPolicy::kNeverIndex) {
    rel->EnsureIndex(op.bound_mask);
  }
  const bool read_only = exec_->options_.read_only_storage;
  for (size_t l = 0; l < in.count(); ++l) {
    const TermId* lane = in.lane(l);
    const uint32_t group = in.group(l);
    GLUENAIL_RETURN_NOT_OK(BuildKey(op, st, lane));
    uint64_t visited = 0;
    std::span<const uint32_t> rows =
        read_only
            ? static_cast<const Relation*>(rel)->SelectSpanConst(
                  op.bound_mask, st.key, &st.rows, &visited)
            : rel->SelectSpan(op.bound_mask, st.key, &st.rows, &visited);
    GLUENAIL_RETURN_NOT_OK(exec_->ChargeScanRows(visited));
    for (uint32_t r : rows) {
      GLUENAIL_RETURN_NOT_OK(exec_->TickControl());
      const TermId* row = rel->row(r).data();
      if (!RowPassesStatic(st, row) || !RowPassesLane(st, row, lane)) {
        continue;
      }
      TermId* ol = ob->PushLane(lane, group);
      for (const ColBind& b : st.binds) ol[b.slot] = row[b.col];
      if (ob->full()) GLUENAIL_RETURN_NOT_OK(FlushDown(k, end, ob, out));
    }
  }
  return Status::OK();
}

Status BatchRunner::RunMatchScan(const PlanOp& op, OpState& st, Relation* rel,
                                 const LaneBuffer& in, size_t k, size_t end,
                                 LaneBuffer* ob, RecordSet* out) {
  const TupleArena& arena = rel->arena();
  const bool has_static =
      !st.const_checks.empty() || !st.coleq_checks.empty();
  for (uint32_t c = 0; c < arena.num_chunks(); ++c) {
    st.rows.clear();
    rel->CollectLiveRows(arena.chunk_begin(c), arena.chunk_end(c), &st.rows);
    if (st.rows.empty()) continue;
    // Tuple-path parity: a full scan visits every live row once per input
    // record; one bulk charge per (chunk, batch) covers the same total and
    // flushes the guardrail check on the same 4096-row cadence.
    GLUENAIL_RETURN_NOT_OK(
        exec_->ChargeScanRows(uint64_t{st.rows.size()} * in.count()));
    // Lane-independent checks (constants, same-op column equalities) run
    // once per chunk, not once per lane.
    const std::vector<uint32_t>* rows = &st.rows;
    if (has_static) {
      st.sel.clear();
      for (uint32_t r : st.rows) {
        if (RowPassesStatic(st, rel->row(r).data())) st.sel.push_back(r);
      }
      if (st.sel.empty()) continue;
      rows = &st.sel;
    }
    for (size_t l = 0; l < in.count(); ++l) {
      const TermId* lane = in.lane(l);
      const uint32_t group = in.group(l);
      for (uint32_t r : *rows) {
        const TermId* row = rel->row(r).data();
        if (!RowPassesLane(st, row, lane)) continue;
        TermId* ol = ob->PushLane(lane, group);
        for (const ColBind& b : st.binds) ol[b.slot] = row[b.col];
        if (ob->full()) GLUENAIL_RETURN_NOT_OK(FlushDown(k, end, ob, out));
      }
    }
  }
  return Status::OK();
}

Status BatchRunner::RunNegMatch(const PlanOp& op, OpState& st,
                                LaneBuffer* batch) {
  GLUENAIL_ASSIGN_OR_RETURN(Relation * rel,
                            exec_->ResolveRead(op.access, frame_));
  if (rel == nullptr || rel->empty()) return Status::OK();  // all survive
  st.sel.clear();
  if (op.bound_mask != 0) {
    const bool read_only = exec_->options_.read_only_storage;
    for (size_t l = 0; l < batch->count(); ++l) {
      const TermId* lane = batch->lane(l);
      GLUENAIL_RETURN_NOT_OK(BuildKey(op, st, lane));
      uint64_t visited = 0;
      std::span<const uint32_t> rows =
          read_only
              ? static_cast<const Relation*>(rel)->SelectSpanConst(
                    op.bound_mask, st.key, &st.rows, &visited)
              : rel->SelectSpan(op.bound_mask, st.key, &st.rows, &visited);
      GLUENAIL_RETURN_NOT_OK(exec_->ChargeScanRows(visited));
      bool found = false;
      for (uint32_t r : rows) {
        const TermId* row = rel->row(r).data();
        if (RowPassesStatic(st, row) && RowPassesLane(st, row, lane)) {
          found = true;
          break;
        }
      }
      if (!found) st.sel.push_back(static_cast<uint32_t>(l));
    }
  } else {
    st.rows.clear();
    rel->CollectLiveRows(0, rel->num_rows(), &st.rows);
    st.row_ok.assign(st.rows.size(), 0);
    for (size_t i = 0; i < st.rows.size(); ++i) {
      st.row_ok[i] =
          RowPassesStatic(st, rel->row(st.rows[i]).data()) ? 1 : 0;
    }
    for (size_t l = 0; l < batch->count(); ++l) {
      const TermId* lane = batch->lane(l);
      // Tuple-path parity: the existence scan visits live rows in order
      // and stops at the first match, charging every row it looked at
      // (including the matching one).
      uint64_t visited = 0;
      bool found = false;
      for (size_t i = 0; i < st.rows.size(); ++i) {
        ++visited;
        if (st.row_ok[i] == 0) continue;
        if (RowPassesLane(st, rel->row(st.rows[i]).data(), lane)) {
          found = true;
          break;
        }
      }
      GLUENAIL_RETURN_NOT_OK(exec_->ChargeScanRows(visited));
      if (!found) st.sel.push_back(static_cast<uint32_t>(l));
    }
  }
  batch->KeepOnly(st.sel);
  return Status::OK();
}

Status BatchRunner::RunCompare(const PlanOp& op, OpState& st,
                               LaneBuffer* batch) {
  if (op.bind_slot >= 0) {
    // Binding equality: write the slot in place — lanes are private copies,
    // so no undo is needed and every lane survives.
    const size_t slot = static_cast<size_t>(op.bind_slot);
    for (size_t l = 0; l < batch->count(); ++l) {
      TermId* lane = batch->lane(l);
      GLUENAIL_ASSIGN_OR_RETURN(TermId v, FetchOperand(st.rhs, lane));
      lane[slot] = v;
    }
    return Status::OK();
  }
  // Pure filter. Only the operand fetch is specialized: the comparison
  // itself always goes through EvalCompare, which coerces numerics
  // (1 == 1.0) — a raw TermId equality here would be unsound.
  st.sel.clear();
  for (size_t l = 0; l < batch->count(); ++l) {
    const TermId* lane = batch->lane(l);
    GLUENAIL_ASSIGN_OR_RETURN(TermId a, FetchOperand(st.lhs, lane));
    GLUENAIL_ASSIGN_OR_RETURN(TermId b, FetchOperand(st.rhs, lane));
    GLUENAIL_ASSIGN_OR_RETURN(bool pass,
                              EvalCompare(*exec_->pool_, op.cmp, a, b));
    if (pass) st.sel.push_back(static_cast<uint32_t>(l));
  }
  batch->KeepOnly(st.sel);
  return Status::OK();
}

}  // namespace gluenail
