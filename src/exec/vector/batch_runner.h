/// \file batch_runner.h
/// \brief Batch-at-a-time execution of pipelineable op segments.
///
/// BatchRunner is the vectorized counterpart of OpRunner: it drives a
/// contiguous segment of kMatch / kNegMatch / kCompare ops over blocks of
/// up to kBatchLanes binding records at once. Per-op it compiles the
/// column patterns into flat check/bind actions once, then runs tight
/// row-id loops instead of the tuple path's per-record virtual emit +
/// MatchColumns + undo-log machinery:
///
///  * compare and negated match filter their input batch in place
///    (selection vector + compress);
///  * match gathers surviving, extended lanes into a per-op output buffer
///    and pushes a full buffer down the rest of the segment — one emit per
///    batch rather than one per record;
///  * full scans walk the relation one arena chunk at a time, running the
///    lane-independent checks (constants, same-op column equalities) once
///    per chunk instead of once per lane.
///
/// Semantics, per-op actual row counts (EXPLAIN ANALYZE), and the
/// rows-scanned guardrail accounting are identical to the tuple path by
/// construction; tests/vector_exec_test.cc holds the two equal.

#ifndef GLUENAIL_EXEC_VECTOR_BATCH_RUNNER_H_
#define GLUENAIL_EXEC_VECTOR_BATCH_RUNNER_H_

#include <vector>

#include "src/exec/executor.h"
#include "src/exec/vector/batch.h"

namespace gluenail {

class BatchRunner {
 public:
  BatchRunner(Executor* exec, const StatementPlan& plan, Frame* frame)
      : exec_(exec),
        plan_(plan),
        frame_(frame),
        width_(static_cast<uint32_t>(plan.num_slots)),
        states_(plan.ops.size()),
        out_bufs_(plan.ops.size()),
        emitted_(plan.ops.size(), 0) {}

  /// Whether the batch runner can express \p op at all: pipelineable ops
  /// except dynamic (HiLog) accesses and structural column patterns, which
  /// stay on the tuple path.
  static bool OpEligible(const StatementPlan& plan, const PlanOp& op);

  /// Runs plan.ops[begin, end) — all batch-eligible, no barriers — over
  /// every record of \p in, appending the surviving extended records to
  /// \p out. Equivalent to streaming each record through the segment with
  /// OpRunner, including per-op actual-rows accounting and guardrail
  /// charges; only the order of \p out may differ (batched, not
  /// depth-first).
  Status RunSegment(size_t begin, size_t end, const RecordSet& in,
                    RecordSet* out);

 private:
  // --- Compiled per-op state --------------------------------------------

  /// Row column c must equal an interned constant.
  struct ColConst {
    uint32_t col;
    TermId value;
  };
  /// Row column c must equal row column other: a later occurrence of a
  /// variable first bound by an earlier column of the same op (p(X, X)).
  struct ColColEq {
    uint32_t col;
    uint32_t other;
  };
  /// Row column c must equal the lane's slot value (kCheck against a slot
  /// bound before this op).
  struct ColSlotEq {
    uint32_t col;
    int slot;
  };
  /// Row column c binds into the output lane's slot.
  struct ColBind {
    uint32_t col;
    int slot;
  };
  /// Compare operand, pre-classified so the common slot/const fetches skip
  /// expression evaluation. Comparison semantics always go through
  /// EvalCompare (numeric coercion: 1 == 1.0), only the fetch is special-
  /// cased.
  struct Operand {
    enum class Kind : uint8_t { kSlot, kConst, kExpr };
    Kind kind = Kind::kExpr;
    int slot = -1;
    TermId value = kNullTerm;
    ExprId expr = kNoExpr;
  };
  /// Key gather step for probes whose key expressions are all slots or
  /// constants (the overwhelmingly common case).
  struct KeyPart {
    bool is_const;
    TermId value;
    int slot;
  };

  struct OpState {
    bool compiled = false;
    // Match / negmatch column actions, split by what they depend on.
    std::vector<ColConst> const_checks;   // lane-independent
    std::vector<ColColEq> coleq_checks;   // lane-independent
    std::vector<ColSlotEq> slot_checks;   // per lane
    std::vector<ColBind> binds;
    bool fast_key = false;
    std::vector<KeyPart> key_parts;
    // Compare operands.
    Operand lhs;
    Operand rhs;
    // Scratch, reused across batches.
    std::vector<uint32_t> rows;  // chunk row-id harvest / probe results
    std::vector<uint32_t> sel;   // selection vector (row ids or lane idxs)
    std::vector<uint8_t> row_ok;  // per-row static-check results (negmatch)
    Tuple key;
  };

  void CompileOp(size_t k);
  Operand CompileOperand(ExprId e) const;

  /// True iff \p row passes the op's lane-independent checks.
  bool RowPassesStatic(const OpState& st, const TermId* row) const {
    for (const ColConst& c : st.const_checks) {
      if (row[c.col] != c.value) return false;
    }
    for (const ColColEq& c : st.coleq_checks) {
      if (row[c.col] != row[c.other]) return false;
    }
    return true;
  }
  /// True iff \p row passes the per-lane slot checks.
  bool RowPassesLane(const OpState& st, const TermId* row,
                     const TermId* lane) const {
    for (const ColSlotEq& c : st.slot_checks) {
      if (row[c.col] != lane[c.slot]) return false;
    }
    return true;
  }

  Result<TermId> FetchOperand(const Operand& o, const TermId* lane) const;

  /// Recursive driver: applies op k to \p batch, pushing survivors through
  /// ops (k, end) and materializing final lanes into \p out at k == end.
  Status Push(size_t k, size_t end, LaneBuffer* batch, RecordSet* out);
  /// Counts the lanes of \p ob as op k's output and pushes them onward.
  Status FlushDown(size_t k, size_t end, LaneBuffer* ob, RecordSet* out);

  Status RunMatchKeyed(const PlanOp& op, OpState& st, Relation* rel,
                       const LaneBuffer& in, size_t k, size_t end,
                       LaneBuffer* ob, RecordSet* out);
  Status RunMatchScan(const PlanOp& op, OpState& st, Relation* rel,
                      const LaneBuffer& in, size_t k, size_t end,
                      LaneBuffer* ob, RecordSet* out);
  Status RunNegMatch(const PlanOp& op, OpState& st, LaneBuffer* batch);
  Status RunCompare(const PlanOp& op, OpState& st, LaneBuffer* batch);

  Status BuildKey(const PlanOp& op, OpState& st, const TermId* lane);

  Executor* exec_;
  const StatementPlan& plan_;
  Frame* frame_;
  uint32_t width_;
  std::vector<OpState> states_;
  /// Per-op gather buffers (kMatch output), indexed by op position; at any
  /// moment at most one Push per op is live, fully flushed before return.
  std::vector<LaneBuffer> out_bufs_;
  /// Rows emitted per op since the last CountOpRows flush: the batch path
  /// counts in bulk (one CountOpRows call per op per segment) but the
  /// totals match the tuple path's per-record CountRow exactly.
  std::vector<uint64_t> emitted_;
  LaneBuffer seed_;
};

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_VECTOR_BATCH_RUNNER_H_
