/// \file batch.h
/// \brief The batch format of the vectorized executor: blocks of binding
/// lanes plus selection vectors.
///
/// A LaneBuffer holds up to kBatchLanes binding records ("lanes") in one
/// flat, width-strided TermId array with a parallel group id per lane —
/// the batch-at-a-time equivalent of a RecordSet slice, with no per-record
/// heap allocation. Ops either append surviving lanes into a downstream
/// buffer (match: the Gather side) or compress a buffer in place against a
/// selection vector of surviving lane indexes (compare/negmatch: the
/// Filter/Compress side). The batch size matches TupleArena::kRowsPerChunk
/// so a scan's unit of work is exactly one arena chunk.

#ifndef GLUENAIL_EXEC_VECTOR_BATCH_H_
#define GLUENAIL_EXEC_VECTOR_BATCH_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/storage/tuple_arena.h"
#include "src/term/term_pool.h"

namespace gluenail {

/// Lanes per batch: one arena chunk's worth of rows.
inline constexpr uint32_t kBatchLanes = TupleArena::kRowsPerChunk;

class LaneBuffer {
 public:
  /// Re-targets the buffer to records of \p width slots and drops all
  /// lanes. Capacity is retained, so steady-state refills do not allocate.
  void Reset(uint32_t width) {
    width_ = width;
    ClearLanes();
  }
  /// Drops all lanes, keeping width and capacity.
  void ClearLanes() {
    data_.clear();
    groups_.clear();
  }

  uint32_t width() const { return width_; }
  size_t count() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }
  bool full() const { return groups_.size() >= kBatchLanes; }

  TermId* lane(size_t i) { return data_.data() + i * width_; }
  const TermId* lane(size_t i) const { return data_.data() + i * width_; }
  uint32_t group(size_t i) const { return groups_[i]; }

  /// Appends a copy of \p src (width terms) and returns the copy, which
  /// the caller may edit in place (bind writes) until the next append.
  TermId* PushLane(const TermId* src, uint32_t group) {
    size_t off = data_.size();
    if (width_ != 0) data_.insert(data_.end(), src, src + width_);
    groups_.push_back(group);
    return data_.data() + off;
  }

  /// Compress: keeps exactly the lanes whose indexes appear in \p sel
  /// (which must be ascending), discarding the rest in place.
  void KeepOnly(const std::vector<uint32_t>& sel) {
    for (size_t i = 0; i < sel.size(); ++i) {
      size_t s = sel[i];
      if (s != i) {
        if (width_ != 0) {
          std::memmove(lane(i), lane(s), sizeof(TermId) * width_);
        }
        groups_[i] = groups_[s];
      }
    }
    data_.resize(sel.size() * width_);
    groups_.resize(sel.size());
  }

 private:
  uint32_t width_ = 0;
  std::vector<TermId> data_;
  std::vector<uint32_t> groups_;
};

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_VECTOR_BATCH_H_
