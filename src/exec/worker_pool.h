/// \file worker_pool.h
/// \brief A small fork-join worker pool for the parallel semi-naive
/// evaluator.
///
/// The pool owns num_workers - 1 helper threads; the calling thread
/// participates in every batch, so `WorkerPool(1)` spawns nothing and
/// degenerates to inline execution. Run() is a full barrier: it returns
/// only after every task index has been processed, which keeps the
/// evaluator's merge phase trivially race-free (workers are quiescent while
/// the merger runs).

#ifndef GLUENAIL_EXEC_WORKER_POOL_H_
#define GLUENAIL_EXEC_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gluenail {

class WorkerPool {
 public:
  /// \p num_workers is the total parallelism including the caller.
  explicit WorkerPool(int num_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const {
    return static_cast<int>(helpers_.size()) + 1;
  }

  /// Invokes fn(i) once for each i in [0, count), distributed across the
  /// helpers and the calling thread. Blocks until all tasks finish. \p fn
  /// must not throw; only one Run may be active at a time (the evaluator
  /// is single-writer, so this holds by construction).
  void Run(int count, const std::function<void(int)>& fn);

 private:
  void HelperLoop();

  std::vector<std::thread> helpers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  int count_ = 0;                                  // guarded by mu_
  uint64_t generation_ = 0;                        // guarded by mu_
  int busy_helpers_ = 0;                           // guarded by mu_
  bool shutdown_ = false;                          // guarded by mu_
  std::atomic<int> next_{0};
};

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_WORKER_POOL_H_
