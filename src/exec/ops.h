/// \file ops.h
/// \brief Shared per-record op semantics used by both executors.
///
/// OpRunner streams one input record through a pipelineable op (match,
/// negated match, comparison), emitting zero or more extended records. The
/// materialized executor calls it once per record per op; the pipelined
/// executor chains the calls without materializing in between — identical
/// semantics, different memory traffic, which is exactly the §9 trade-off
/// the benchmarks measure.

#ifndef GLUENAIL_EXEC_OPS_H_
#define GLUENAIL_EXEC_OPS_H_

#include "src/common/function_ref.h"
#include "src/exec/executor.h"

namespace gluenail {

class OpRunner {
 public:
  /// Emit continuations are borrowed callables: a FunctionRef costs one
  /// indirect call per row and never allocates, where the previous
  /// std::function added type-erasure dispatch to every emitted record.
  using EmitFn = FunctionRef<Status(Record*, uint32_t group)>;

  OpRunner(Executor* exec, const StatementPlan& plan, Frame* frame)
      : exec_(exec), plan_(plan), frame_(frame) {}

  /// Streams \p rec through a kMatch / kNegMatch / kCompare op. \p rec is
  /// scratch space: bindings made during matching are undone before
  /// returning, but the record handed to \p emit is valid only for the
  /// duration of that call.
  Status Stream(const PlanOp& op, Record* rec, uint32_t group,
                EmitFn emit);

  /// Accounts one row emitted by \p op against the executor's per-op
  /// counters (and the EXPLAIN ANALYZE profile, if active). Both
  /// strategies call this from their emit continuations.
  void CountRow(const PlanOp& op) { exec_->CountOpRows(plan_, op, 1); }

 private:
  Status StreamMatch(const PlanOp& op, Record* rec, uint32_t group,
                     EmitFn emit);
  Status StreamMatchRelation(const PlanOp& op, Relation* rel, Record* rec,
                             uint32_t group, EmitFn emit);
  Status StreamNegMatch(const PlanOp& op, Record* rec, uint32_t group,
                        EmitFn emit);
  Result<bool> HasMatch(const PlanOp& op, Relation* rel, Record* rec);
  Status StreamCompare(const PlanOp& op, Record* rec, uint32_t group,
                       EmitFn emit);
  /// Evaluates the op's key expressions into \p key (cleared first). The
  /// buffer is pooled scratch, so steady-state probes do not allocate.
  Status EvalKey(const PlanOp& op, const Record& rec, Tuple* key);

  /// Per-probe scratch: the selected row ids and the packed lookup key.
  struct Scratch {
    std::vector<uint32_t> rows;
    Tuple key;
  };

  /// Scratch buffers, one per nesting depth: in the pipelined executor an
  /// inner match runs while an outer match is still iterating its row
  /// list, so a single shared buffer would be clobbered.
  Scratch* AcquireScratch();
  void ReleaseScratch();

  Executor* exec_;
  const StatementPlan& plan_;
  Frame* frame_;
  std::vector<Scratch> scratch_pool_;
  size_t scratch_depth_ = 0;
};

/// True for predicate names reserved by the implementation (NAIL! storage
/// and delta relations): hidden from dynamic (HiLog) enumeration.
bool IsInternalPredicateName(const TermPool& pool, TermId name);

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_OPS_H_
