/// \file executor.h
/// \brief Plan interpretation: procedures, statements, loops.
///
/// Two statement execution strategies, selected by ExecOptions::strategy:
///  * kMaterialized — realizes every supplementary relation sup_i (§3.2);
///  * kPipelined — nested-join streaming that fuses runs of pipelineable
///    ops and breaks (materializes) at aggregates, group_by, procedure
///    calls, and body updates, optionally eliminating duplicates at each
///    break ("removing duplicates early has always been advantageous",
///    §9).
///
/// Both strategies share the op semantics; differential tests in
/// tests/executor_strategies_test.cc hold them equal.

#ifndef GLUENAIL_EXEC_EXECUTOR_H_
#define GLUENAIL_EXEC_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/result.h"
#include "src/exec/bindings.h"
#include "src/exec/eval.h"
#include "src/exec/frame.h"
#include "src/plan/plan.h"
#include "src/runtime/io.h"
#include "src/storage/database.h"

namespace gluenail {

struct ExecOptions {
  enum class Strategy { kMaterialized, kPipelined };
  Strategy strategy = Strategy::kPipelined;
  /// Whether pipelineable ops run batch-at-a-time (exec/vector/: blocks of
  /// up to 4096 binding records with selection vectors) or tuple-at-a-time
  /// (exec/ops.h). kAuto follows the planner's per-op PlanOp::batch hint
  /// (est_rows-driven, so it compounds with the cost model); kAlways and
  /// kOff force one side for A/B benches and differential tests. Either
  /// way, ops the batch runner cannot express (dynamic HiLog access,
  /// structural patterns) take the tuple path.
  enum class BatchMode { kAuto, kOff, kAlways };
  BatchMode batch_mode = BatchMode::kAuto;
  /// Eliminate duplicate binding records at every materialization point
  /// (§9). Turning this off is the bench E2 baseline.
  bool dedup_at_breaks = true;
  /// Recursion guard for Glue procedure calls.
  int max_call_depth = 512;
  /// Guard against non-terminating repeat loops.
  uint64_t max_loop_iterations = 10'000'000;
  /// Read-only discipline for concurrent reader sessions and parallel
  /// evaluation workers: keyed selections go through SelectConst (never
  /// build indexes or touch adaptive statistics), NAIL! reads assume the
  /// IDB is already fresh, and any statement that writes a shared relation
  /// fails with a runtime error.
  bool read_only_storage = false;
  /// Exception to read_only_storage for magic-sets evaluation: the IDB
  /// passed to this executor is a private scratch database, so kNail writes
  /// and refreshes stay allowed while the shared EDB remains read-only.
  bool writable_private_idb = false;
  /// Borrowed per-query guardrails (deadline, cancellation, budgets); null
  /// when the query is unguarded. The owner (Engine/Session) keeps the
  /// control alive for the duration of the evaluation.
  const ExecControl* control = nullptr;
};

/// Run-time counters surfaced through Engine::stats().
struct ExecStats {
  uint64_t statements = 0;
  uint64_t records_produced = 0;
  uint64_t pipeline_breaks = 0;
  uint64_t duplicates_removed = 0;
  uint64_t proc_calls = 0;
  uint64_t host_calls = 0;
  uint64_t builtin_calls = 0;
  uint64_t loop_iterations = 0;
  uint64_t head_tuples = 0;
  uint64_t nail_refreshes = 0;
  /// Full guardrail checks performed (cancel/deadline/budget probes).
  uint64_t control_checks = 0;
  /// Rows visited answering matches: full-scan rows plus index
  /// probe-chain rows — the quantity ResourceLimits::max_rows_scanned
  /// bounds per query.
  uint64_t rows_scanned = 0;
  /// Batch-at-a-time segments run and the records that entered them —
  /// nonzero proves the vectorized path engaged (tests assert on it the
  /// way parallel_batches proves the worker pool engaged).
  uint64_t batch_segments = 0;
  uint64_t batch_rows = 0;

  // Per-op-kind rows produced ("actual_rows"): every record an op emits —
  // or, for barrier ops, the size of the record set it leaves behind — is
  // counted against its kind. EXPLAIN ANALYZE renders the per-op
  // breakdown; these aggregates make plan behavior visible in stats().
  uint64_t match_rows = 0;
  uint64_t negmatch_rows = 0;
  uint64_t compare_rows = 0;
  uint64_t aggregate_rows = 0;
  uint64_t groupby_rows = 0;
  uint64_t call_rows = 0;
  uint64_t update_rows = 0;
};

/// Interface to the NAIL! engine (implemented in src/nail/seminaive.cc).
/// Keeps exec below nail in the layering.
class NailEvaluator {
 public:
  virtual ~NailEvaluator() = default;
  /// Brings the flattened storage relation \p storage_name up to date with
  /// the current EDB and returns it (lives in the IDB database).
  virtual Result<Relation*> EnsureNail(TermId storage_name,
                                       uint32_t arity) = 0;
  /// Refreshes every NAIL! predicate and its published HiLog instances —
  /// needed before dynamic predicate dereferencing.
  virtual Status EnsureAllNail() = 0;
};

/// Everything the executor reaches outside the plan: streams, host
/// procedures, the NAIL! engine. All pointers are borrowed.
struct RuntimeEnv {
  IoEnv io;
  const std::vector<HostProcedure>* hosts = nullptr;
  NailEvaluator* nail = nullptr;
};

class Executor {
 public:
  Executor(const CompiledProgram* program, Database* edb, Database* idb,
           TermPool* pool, RuntimeEnv env, ExecOptions options)
      : program_(program),
        edb_(edb),
        idb_(idb),
        pool_(pool),
        env_(env),
        options_(options) {}

  /// Calls procedure \p index once on the whole \p input relation (§4) and
  /// copies its return relation into \p output.
  Status CallProcedureByIndex(int index, const Relation& input,
                              Relation* output);

  /// Executes one statement plan in \p frame (which supplies locals and
  /// in/return for procedure statements; a proc-less Frame works for
  /// ad-hoc statements).
  Status ExecuteStatementPlan(const StatementPlan& plan, Frame* frame);

  /// Executes a statement and also hands the final supplementary relation
  /// to the caller — the Engine's query API is built on this.
  Status ExecuteStatementPlanCapture(const StatementPlan& plan, Frame* frame,
                                     RecordSet* final_sup);

  /// Evaluates only the body, leaving the head unapplied: ad-hoc queries
  /// read the final supplementary relation without touching any relation.
  Status ExecuteBodyOnly(const StatementPlan& plan, Frame* frame,
                         RecordSet* final_sup);

  /// Redirects the I/O builtins (tests and examples script stdin/stdout).
  void set_io(const IoEnv& io) { env_.io = io; }

  /// Substitutes the relation read for \p name (any arity) — the parallel
  /// semi-naive workers point the delta predicate at their partition.
  void AddReadOverride(TermId name, Relation* rel) {
    read_overrides_[name] = rel;
  }

  const CompiledProgram* program() const { return program_; }

  /// Evaluates a loop condition.
  Result<bool> EvalCond(const CondPlan& cond, Frame* frame);

  /// Runs a compiled instruction block (statements and loops).
  Status ExecBlock(const std::vector<CInstr>& code,
                   const CompiledProcedure& proc, Frame* frame);

  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }
  const ExecOptions& options() const { return options_; }

  // --- Per-op profiling (EXPLAIN ANALYZE) --------------------------------

  /// Starts collecting per-op actual row counts for \p plan (zeroing any
  /// previous profile). The plan pointer must stay valid while profiled.
  void EnableOpProfile(const StatementPlan* plan) {
    op_profiles_[plan].assign(plan->ops.size(), 0);
  }
  /// The collected actual rows per op index, or nullptr if not profiled.
  const std::vector<uint64_t>* OpProfile(const StatementPlan* plan) const {
    auto it = op_profiles_.find(plan);
    return it == op_profiles_.end() ? nullptr : &it->second;
  }
  /// Drops one plan's profile (callers that enabled profiling for the
  /// lifetime of a short-lived plan must drop it before the plan dies).
  void DisableOpProfile(const StatementPlan* plan) {
    op_profiles_.erase(plan);
  }
  /// Drops every profile (the keys are plan pointers, so callers must
  /// clear before a profiled plan dies).
  void ClearOpProfiles() { op_profiles_.clear(); }

  /// Accounts \p n rows produced by \p op (which must live in plan.ops).
  /// Called by both strategies for every emitted record and after every
  /// barrier op; the profile branch is one empty-map test in the common
  /// unprofiled case.
  void CountOpRows(const StatementPlan& plan, const PlanOp& op, uint64_t n) {
    switch (op.kind) {
      case OpKind::kMatch: stats_.match_rows += n; break;
      case OpKind::kNegMatch: stats_.negmatch_rows += n; break;
      case OpKind::kCompare: stats_.compare_rows += n; break;
      case OpKind::kAggregate: stats_.aggregate_rows += n; break;
      case OpKind::kGroupBy: stats_.groupby_rows += n; break;
      case OpKind::kCall: stats_.call_rows += n; break;
      case OpKind::kUpdate: stats_.update_rows += n; break;
    }
    if (!op_profiles_.empty()) {
      auto it = op_profiles_.find(&plan);
      if (it != op_profiles_.end()) {
        size_t idx = static_cast<size_t>(&op - plan.ops.data());
        if (idx < it->second.size()) it->second[idx] += n;
      }
    }
  }

  // --- Query guardrails ---------------------------------------------------

  /// Installs (or clears, with nullptr) a per-query control that overrides
  /// ExecOptions::control. The Engine's writer path uses this to guard a
  /// query run through its long-lived executor; callers must clear it when
  /// the query finishes (see the ControlScope RAII in engine.cc).
  /// Installing a control restarts the per-query row-scan accounting so a
  /// long-lived executor's history never counts against a fresh budget.
  void set_control(const ExecControl* control) {
    control_override_ = control;
    rows_budget_used_ = 0;
    rows_since_check_ = 0;
  }
  /// The active guardrails: the per-query override, else the one baked
  /// into ExecOptions, else null (unguarded).
  const ExecControl* control() const {
    return control_override_ != nullptr ? control_override_
                                        : options_.control;
  }

  /// Cheap inner-loop probe: a full cancel/deadline check every 4096th
  /// call, a pointer test otherwise. Row loops that were already charged
  /// for their rows (via SelectRows) call this per row.
  Status TickControl() {
    const ExecControl* c = control();
    if (c == nullptr) return Status::OK();
    if ((++control_tick_ & 0xFFF) != 0) return Status::OK();
    ++stats_.control_checks;
    return c->Check();
  }

  /// Per-batch row accounting, shared by every charging path. Scan loops
  /// (per row), keyed selections (per probe, scanned or probe-chain rows),
  /// and batch segments (per chunk) all feed one accumulator; a full
  /// check — cancel, deadline, and the row budget — runs once every
  /// kRowCheckInterval accumulated rows, so an overrun is detected within
  /// one batch window regardless of which path charged the rows.
  static constexpr uint64_t kRowCheckInterval = 4096;

  /// Per-row probe for full-scan loops that visit rows one at a time.
  Status TickScanRow() {
    ++stats_.rows_scanned;
    const ExecControl* c = control();
    if (c == nullptr) return Status::OK();
    ++rows_budget_used_;
    if (++rows_since_check_ < kRowCheckInterval) return Status::OK();
    return FlushRowAccounting(c);
  }

  /// Bulk charge for rows a selection or batch visited (scanned rows or
  /// index probe-chain rows). Same per-batch check cadence as TickScanRow:
  /// an oversized charge (>= one check interval) is checked immediately,
  /// smaller ones accumulate toward the next check.
  Status ChargeScanRows(uint64_t n) {
    stats_.rows_scanned += n;
    const ExecControl* c = control();
    if (c == nullptr) return Status::OK();
    rows_budget_used_ += n;
    rows_since_check_ += n;
    if (rows_since_check_ < kRowCheckInterval) return Status::OK();
    return FlushRowAccounting(c);
  }

  /// The deferred full check behind TickScanRow/ChargeScanRows: resets the
  /// interval accumulator, then runs cancel/deadline and the row budget
  /// against everything charged so far.
  Status FlushRowAccounting(const ExecControl* c) {
    rows_since_check_ = 0;
    ++stats_.control_checks;
    GLUENAIL_RETURN_NOT_OK(c->Check());
    return c->CheckRowsScanned(rows_budget_used_);
  }

  /// Op-boundary check: cancel/deadline plus the tuple budget against the
  /// records materialized so far in the current statement.
  Status CheckControl(uint64_t produced) {
    const ExecControl* c = control();
    if (c == nullptr) return Status::OK();
    ++stats_.control_checks;
    GLUENAIL_RETURN_NOT_OK(c->Check());
    return c->CheckTuples(produced);
  }

  /// Fixpoint-boundary check: cancel/deadline plus both budgets against
  /// the whole materialized IDB. The repeat loops of generated NAIL!
  /// driver procedures and the direct semi-naive evaluator call this once
  /// per iteration, so aborts land within one fixpoint iteration.
  Status CheckStorageBudgets();

 private:
  // --- Strategy entry points (materialized.cc / pipelined.cc) -----------
  Status RunMaterialized(const StatementPlan& plan, Frame* frame,
                         RecordSet* out);
  Status RunPipelined(const StatementPlan& plan, Frame* frame,
                      RecordSet* out);

  /// ExecuteBodyOnly with an active trace sink: wraps the statement in a
  /// span and emits one child span per op carrying its actual rows (taken
  /// from the op profile, so trace rows and EXPLAIN ANALYZE agree by
  /// construction on both strategies).
  Status ExecuteBodyTraced(const StatementPlan& plan, Frame* frame,
                           RecordSet* final_sup);
  /// Display name for op \p idx of \p plan ("op2:match edge").
  std::string OpSpanName(const StatementPlan& plan, size_t idx) const;

  // --- Shared op helpers (ops.cc, vector/batch_runner.cc) ---------------
  friend class OpRunner;
  friend class BatchRunner;

  /// Whether \p op should run batch-at-a-time under the current
  /// BatchMode: the planner hint for kAuto, forced for kAlways — in both
  /// cases gated on the batch runner being able to express the op
  /// (defined in executor.cc to keep the vector layer out of this header).
  bool UseBatchFor(const StatementPlan& plan, const PlanOp& op) const;

  /// Resolves a static-name relation access for reading. May return
  /// nullptr: the relation does not exist, i.e. it is empty.
  Result<Relation*> ResolveRead(const PredicateAccess& access, Frame* frame);
  /// Resolves for writing, creating EDB/IDB relations on demand. Rejects
  /// shared-relation writes under ExecOptions::read_only_storage.
  Result<Relation*> ResolveWrite(const PredicateAccess& access, Frame* frame,
                                 TermId dynamic_name);

  /// Keyed selection honoring read_only_storage: the mutable Select path
  /// (adaptive index building) for writers, SelectConst for shared
  /// readers. Every row the selection visits — scanned or walked along an
  /// index probe chain — is charged against the row-scan budget, so
  /// index-heavy queries cannot dodge ResourceLimits::max_rows_scanned.
  Status SelectRows(Relation* rel, ColumnMask mask, RowView key,
                    std::vector<uint32_t>* out) {
    uint64_t visited = 0;
    if (options_.read_only_storage) {
      const Relation* crel = rel;
      crel->SelectConst(mask, key, out, &visited);
    } else {
      rel->Select(mask, key, out, &visited);
    }
    return ChargeScanRows(visited);
  }

  /// Barrier ops over a whole record set.
  Status ApplyAggregate(const StatementPlan& plan, const PlanOp& op,
                        RecordSet* set);
  Status ApplyGroupBy(const PlanOp& op, RecordSet* set);
  Status ApplyCall(const StatementPlan& plan, const PlanOp& op, Frame* frame,
                   const RecordSet& in, RecordSet* out);
  Status ApplyUpdate(const StatementPlan& plan, const PlanOp& op,
                     Frame* frame, RecordSet* set);

  /// Head application (§3.1 operators; return exit; uniondiff delta).
  Status ApplyHead(const StatementPlan& plan, Frame* frame,
                   const RecordSet& sup);

  /// True when \p op must materialize the supplementary relation (§9).
  static bool IsBarrier(const PlanOp& op) {
    switch (op.kind) {
      case OpKind::kAggregate:
      case OpKind::kGroupBy:
      case OpKind::kCall:
      case OpKind::kUpdate:
        return true;
      default:
        return false;
    }
  }

  const CompiledProgram* program_;
  Database* edb_;
  Database* idb_;
  TermPool* pool_;
  RuntimeEnv env_;
  ExecOptions options_;
  ExecStats stats_;
  int call_depth_ = 0;
  const ExecControl* control_override_ = nullptr;
  uint64_t control_tick_ = 0;
  /// Rows charged against the current control's max_rows_scanned budget;
  /// reset by set_control so each guarded query starts at zero.
  uint64_t rows_budget_used_ = 0;
  /// Rows charged since the last full check; every charging path (per-row
  /// ticks, probe charges, batch charges) accumulates here and flushes at
  /// kRowCheckInterval.
  uint64_t rows_since_check_ = 0;
  /// Name -> replacement relation for reads (parallel delta partitions).
  std::unordered_map<TermId, Relation*> read_overrides_;
  /// Plans under EXPLAIN ANALYZE profiling -> actual rows per op index.
  std::unordered_map<const StatementPlan*, std::vector<uint64_t>>
      op_profiles_;
};

}  // namespace gluenail

#endif  // GLUENAIL_EXEC_EXECUTOR_H_
