/// \file metrics.h
/// \brief Lock-free named metrics: counters, gauges, log-bucket histograms.
///
/// Every layer of the engine (term pool, storage, planner, executors,
/// semi-naive driver, persistence) registers named metrics here so one
/// `Engine::DumpMetrics()` call — or the REPL's `:metrics` — exposes the
/// whole pipeline. Two flavors coexist:
///
///  * owned metrics — the registry allocates the cell and hands back a
///    stable `Counter*` / `Gauge*` / `Histogram*` handle. Updates through a
///    handle are single relaxed atomic ops, so instrumenting a hot path
///    never takes a lock;
///  * pull metrics — a callback read at export time, for values a
///    subsystem already maintains itself (Relation::Counters, ExecStats,
///    fixpoint counters). Nothing is double-counted and the hot path is
///    untouched.
///
/// Registration and export serialize on one mutex; that mutex is never on
/// a query path. Export renders Prometheus text exposition or JSON.

#ifndef GLUENAIL_OBS_METRICS_H_
#define GLUENAIL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gluenail {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can move both ways (live tuples, arena bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucket histogram. Bucket 0 counts values in [0, 2); bucket
/// b >= 1 counts [2^b, 2^(b+1)); the last bucket absorbs everything above.
/// 48 buckets span [0, 2^48) — nanosecond latencies up to ~3 days — with
/// no registration-time layout decisions, so Observe stays three relaxed
/// atomic adds and two histograms are always mergeable bucket-by-bucket.
class Histogram {
 public:
  static constexpr uint32_t kBuckets = 48;

  void Observe(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static uint32_t BucketOf(uint64_t v) {
    if (v < 2) return 0;
    uint32_t lg = 63u - static_cast<uint32_t>(__builtin_clzll(v));
    return lg < kBuckets - 1 ? lg : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket \p b (the Prometheus `le` value); the
  /// last bucket has no finite bound and renders as +Inf.
  static uint64_t UpperBound(uint32_t b) { return (uint64_t{2} << b) - 1; }

  uint64_t bucket(uint32_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// The named-metric registry, one per Engine. Handles returned by the
/// Register* methods stay valid for the registry's lifetime (entries are
/// heap-allocated and never move). Names follow Prometheus conventions:
/// `gluenail_<subsystem>_<what>[_total]`.
class MetricsRegistry {
 public:
  Counter* RegisterCounter(std::string name, std::string help);
  Gauge* RegisterGauge(std::string name, std::string help);
  Histogram* RegisterHistogram(std::string name, std::string help);

  /// Export-time callbacks for values a subsystem already counts itself.
  void RegisterPullCounter(std::string name, std::string help,
                           std::function<uint64_t()> read);
  void RegisterPullGauge(std::string name, std::string help,
                         std::function<int64_t()> read);

  /// Prometheus text exposition format (# HELP / # TYPE + samples).
  std::string RenderPrometheus() const;
  /// The same data as a JSON object {"metrics": [...]}.
  std::string RenderJson() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram, kPullCounter, kPullGauge };
    Kind kind;
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> pull_counter;
    std::function<int64_t()> pull_gauge;
  };

  Entry* Add(Entry::Kind kind, std::string name, std::string help);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace gluenail

#endif  // GLUENAIL_OBS_METRICS_H_
