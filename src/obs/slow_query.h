/// \file slow_query.h
/// \brief Bounded log of queries that exceeded the engine's latency
/// threshold (EngineOptions::slow_query_threshold).
///
/// Each entry captures what a perf investigation needs before the query is
/// gone: the query text, the chosen plan with est vs. actual rows per op,
/// how many times the semi-naive driver replanned during evaluation, and
/// the top-3 spans by duration from the query's trace. Recording is
/// mutexed but only happens once per slow query, never on a hot path.

#ifndef GLUENAIL_OBS_SLOW_QUERY_H_
#define GLUENAIL_OBS_SLOW_QUERY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/trace.h"

namespace gluenail {

struct SlowQueryEntry {
  std::string query;
  double seconds = 0;
  uint64_t replans = 0;
  std::string plan;  ///< chosen plan(s), est vs. actual rows per op
  /// Top spans by duration: (name, dur_ns), longest first.
  std::vector<std::pair<std::string, uint64_t>> top_spans;
  /// When the query triggered a NAIL! memo refresh: how it ran — "full"
  /// (with the fallback reason in parentheses when IVM was on) or the
  /// incremental mode ("counting" | "dred" | "counting+dred" | "empty") —
  /// plus the EDB delta rows consumed and memo rows changed. Empty when
  /// the query hit a fresh memo.
  std::string nail_refresh_mode;
  uint64_t nail_delta_rows_in = 0;
  uint64_t nail_delta_rows_out = 0;
};

/// The (name, dur_ns) of the \p n longest spans, longest first.
std::vector<std::pair<std::string, uint64_t>> TopSpansByDuration(
    const std::vector<TraceSpan>& spans, size_t n);

/// Bounded FIFO of slow-query entries; oldest evicted first. Thread-safe.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  void Record(SlowQueryEntry entry);
  std::vector<SlowQueryEntry> Entries() const;
  /// Slow queries ever recorded (including evicted entries).
  uint64_t total() const;
  /// Human-readable dump for the REPL's `:slowlog`.
  std::string Render() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;
  uint64_t total_ = 0;
};

}  // namespace gluenail

#endif  // GLUENAIL_OBS_SLOW_QUERY_H_
