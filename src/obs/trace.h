/// \file trace.h
/// \brief Structured per-query tracing: span trees, thread-local sinks,
/// bounded trace rings, Chrome trace_event export.
///
/// A traced query (QueryOptions::trace, or any query while the slow-query
/// log is armed) records a tree of TraceSpans — parse, plan, per-statement
/// execute with per-op row markers, fixpoint iterations — into a TraceSink
/// installed thread-locally for the query's duration. Instrumented code
/// never names a sink explicitly: ScopedSpan looks up the current sink and
/// is a no-op when none is installed, so untraced queries pay one
/// thread-local load per span site and nothing else.
///
/// Parallel semi-naive workers get their own sinks (sharing the parent's
/// clock epoch) installed on the worker threads, so recording is mutex-free
/// end to end; the driver merges them into the parent at the fixpoint
/// barrier, re-parenting worker roots under the open iteration span.
///
/// Finished traces become immutable QueryTrace objects held by shared_ptr
/// in a bounded TraceRing (one per Engine, one per Session), rendered as an
/// indented tree (`:trace last`) or as Chrome `trace_event` JSON that loads
/// in about://tracing (`:trace chrome`).

#ifndef GLUENAIL_OBS_TRACE_H_
#define GLUENAIL_OBS_TRACE_H_

// Compile-time kill switch for hot-path span starts: with GLUENAIL_TRACE=0
// the ScopedSpan constructors compile to nothing, so even the per-site
// thread-local load disappears. Trace plumbing (sinks, rings, rendering)
// stays built either way; traces just come back empty.
#ifndef GLUENAIL_TRACE
#define GLUENAIL_TRACE 1
#endif

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gluenail {

/// One timed event. Spans form a tree via parent indices into the owning
/// sink/trace's span vector; times are nanoseconds relative to the trace
/// epoch so worker-recorded spans line up with the query thread's.
struct TraceSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  int32_t parent = -1;  ///< index of the enclosing span, -1 for roots
  uint32_t tid = 0;     ///< 0 = query thread, 1.. = semi-naive workers
  uint64_t rows = 0;    ///< rows produced/visited, when the site knows
};

/// An immutable finished trace.
struct QueryTrace {
  std::string query;
  uint64_t total_ns = 0;
  uint64_t dropped = 0;  ///< spans discarded once the per-query cap hit
  std::string plan;      ///< chosen plan(s) with est vs. actual rows
  std::vector<TraceSpan> spans;

  /// Indented span tree with durations and row counts.
  std::string RenderTree() const;
  /// Chrome trace_event JSON ("X" complete events, µs timestamps); loads
  /// directly in about://tracing / ui.perfetto.dev.
  std::string RenderChromeJson() const;
};

/// Collects spans for one query on one thread. Not thread-safe by design:
/// each thread records into its own sink (installed via TraceScope) and
/// sinks are merged at barriers.
class TraceSink {
 public:
  TraceSink() : epoch_(std::chrono::steady_clock::now()) {}
  /// Worker-sink constructor: shares the parent's epoch so merged spans
  /// share one timeline.
  TraceSink(uint32_t tid, std::chrono::steady_clock::time_point epoch)
      : tid_(tid), epoch_(epoch) {}

  /// The sink installed on this thread, or null when nothing traces.
  static TraceSink* Current();

  /// Opens a span under the innermost open span. Returns its index, or -1
  /// when the per-query span cap was hit (the span is counted as dropped).
  int32_t StartSpan(std::string name);
  void EndSpan(int32_t idx);
  void AddRows(int32_t idx, uint64_t rows);

  /// Index of the innermost open span (-1 when none) — the attach point
  /// for merging worker sinks recorded during the current span.
  int32_t current_open() const {
    return open_.empty() ? -1 : open_.back();
  }

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Appends rendered plan text (accumulates across the statements of one
  /// query; separated by blank lines).
  void AppendPlan(const std::string& text);

  /// Steals \p child's spans, re-parenting its roots under
  /// \p attach_parent (-1 keeps them roots). Called at a barrier, after
  /// the child's thread is done recording.
  void Merge(TraceSink&& child, int32_t attach_parent);

  /// Freezes everything recorded so far into an immutable trace.
  QueryTrace Finish(std::string query, uint64_t total_ns);

  size_t span_count() const { return spans_.size(); }

 private:
  static constexpr size_t kMaxSpans = 4096;

  uint32_t tid_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  std::vector<int32_t> open_;
  uint64_t dropped_ = 0;
  std::string plan_;
};

/// RAII installation of a sink as the thread's current one (saves and
/// restores the previous sink, so scopes nest).
class TraceScope {
 public:
  explicit TraceScope(TraceSink* sink);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceSink* previous_;
};

/// RAII span against the thread's current sink; inert when no sink is
/// installed (or when GLUENAIL_TRACE=0, where the constructor body
/// compiles away entirely).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  explicit ScopedSpan(const char* name) {
#if GLUENAIL_TRACE
    sink_ = TraceSink::Current();
    if (sink_ != nullptr) idx_ = sink_->StartSpan(name);
#endif
  }
  explicit ScopedSpan(std::string name) {
#if GLUENAIL_TRACE
    sink_ = TraceSink::Current();
    if (sink_ != nullptr) idx_ = sink_->StartSpan(std::move(name));
#endif
  }
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Closes the span early (idempotent; the destructor becomes a no-op).
  void End() {
    if (sink_ != nullptr) {
      sink_->EndSpan(idx_);
      sink_ = nullptr;
    }
  }
  void AddRows(uint64_t n) {
    if (sink_ != nullptr) sink_->AddRows(idx_, n);
  }
  bool active() const { return sink_ != nullptr; }

 private:
  TraceSink* sink_ = nullptr;
  int32_t idx_ = -1;
};

/// Bounded FIFO of finished traces; oldest evicted first. Thread-safe
/// (concurrent sessions push while the REPL reads).
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  void Push(std::shared_ptr<const QueryTrace> trace);
  std::shared_ptr<const QueryTrace> Last() const;
  std::vector<std::shared_ptr<const QueryTrace>> All() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const QueryTrace>> ring_;
};

}  // namespace gluenail

#endif  // GLUENAIL_OBS_TRACE_H_
