#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/common/strings.h"

namespace gluenail {

namespace {

thread_local TraceSink* g_current_sink = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

TraceSink* TraceSink::Current() { return g_current_sink; }

int32_t TraceSink::StartSpan(std::string name) {
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return -1;
  }
  TraceSpan span;
  span.name = std::move(name);
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  span.parent = current_open();
  span.tid = tid_;
  int32_t idx = static_cast<int32_t>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(idx);
  return idx;
}

void TraceSink::EndSpan(int32_t idx) {
  if (idx < 0 || static_cast<size_t>(idx) >= spans_.size()) return;
  uint64_t now_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  TraceSpan& span = spans_[static_cast<size_t>(idx)];
  span.dur_ns = now_ns >= span.start_ns ? now_ns - span.start_ns : 0;
  if (!open_.empty() && open_.back() == idx) open_.pop_back();
}

void TraceSink::AddRows(int32_t idx, uint64_t rows) {
  if (idx < 0 || static_cast<size_t>(idx) >= spans_.size()) return;
  spans_[static_cast<size_t>(idx)].rows += rows;
}

void TraceSink::AppendPlan(const std::string& text) {
  if (text.empty()) return;
  if (!plan_.empty()) plan_ += "\n";
  plan_ += text;
}

void TraceSink::Merge(TraceSink&& child, int32_t attach_parent) {
  int32_t offset = static_cast<int32_t>(spans_.size());
  for (TraceSpan& s : child.spans_) {
    if (spans_.size() >= kMaxSpans) {
      ++dropped_;
      continue;
    }
    s.parent = s.parent < 0 ? attach_parent : s.parent + offset;
    spans_.push_back(std::move(s));
  }
  dropped_ += child.dropped_;
  child.spans_.clear();
  child.open_.clear();
}

QueryTrace TraceSink::Finish(std::string query, uint64_t total_ns) {
  QueryTrace out;
  out.query = std::move(query);
  out.total_ns = total_ns;
  out.dropped = dropped_;
  out.plan = std::move(plan_);
  out.spans = std::move(spans_);
  spans_.clear();
  open_.clear();
  plan_.clear();
  dropped_ = 0;
  return out;
}

std::string QueryTrace::RenderTree() const {
  std::string out = StrCat("trace: ", query, "  (", FormatMs(total_ns), ")\n");
  // Children in recording order; a parent index past the vector (possible
  // only when the span cap dropped a parent mid-merge) renders as a root.
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    int32_t p = spans[i].parent;
    if (p < 0 || static_cast<size_t>(p) >= spans.size()) {
      roots.push_back(i);
    } else {
      children[static_cast<size_t>(p)].push_back(i);
    }
  }
  // Depth-first, explicit stack so a deep fixpoint cannot overflow ours.
  std::vector<std::pair<size_t, int>> stack;
  for (size_t r = roots.size(); r > 0; --r) stack.push_back({roots[r - 1], 1});
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const TraceSpan& s = spans[idx];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += s.name;
    out += StrCat("  ", FormatMs(s.dur_ns));
    if (s.rows != 0) out += StrCat("  rows=", s.rows);
    if (s.tid != 0) out += StrCat("  tid=", s.tid);
    out += "\n";
    const std::vector<size_t>& kids = children[idx];
    for (size_t k = kids.size(); k > 0; --k) {
      stack.push_back({kids[k - 1], depth + 1});
    }
  }
  if (dropped != 0) out += StrCat("  (", dropped, " spans dropped)\n");
  if (!plan.empty()) {
    out += "plan:\n";
    out += plan;
    if (out.back() != '\n') out += "\n";
  }
  return out;
}

std::string QueryTrace::RenderChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, uint64_t start_ns, uint64_t dur_ns,
                  uint32_t tid, uint64_t rows) {
    if (!first) out += ",";
    first = false;
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(start_ns) / 1e3);
    char dur[64];
    std::snprintf(dur, sizeof(dur), "%.3f", static_cast<double>(dur_ns) / 1e3);
    out += StrCat("{\"name\":\"", JsonEscape(name),
                  "\",\"cat\":\"gluenail\",\"ph\":\"X\",\"ts\":", ts,
                  ",\"dur\":", dur, ",\"pid\":1,\"tid\":", tid,
                  ",\"args\":{\"rows\":", rows, "}}");
  };
  emit(query.empty() ? "query" : query, 0, total_ns, 0, 0);
  for (const TraceSpan& s : spans) {
    emit(s.name, s.start_ns, s.dur_ns, s.tid, s.rows);
  }
  out += "]}";
  return out;
}

TraceScope::TraceScope(TraceSink* sink) : previous_(g_current_sink) {
  g_current_sink = sink;
}

TraceScope::~TraceScope() { g_current_sink = previous_; }

void TraceRing::Push(std::shared_ptr<const QueryTrace> trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::shared_ptr<const QueryTrace> TraceRing::Last() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? nullptr : ring_.back();
}

std::vector<std::shared_ptr<const QueryTrace>> TraceRing::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

}  // namespace gluenail
