#include "src/obs/metrics.h"

#include "src/common/strings.h"

namespace gluenail {

MetricsRegistry::Entry* MetricsRegistry::Add(Entry::Kind kind,
                                             std::string name,
                                             std::string help) {
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = std::move(name);
  entry->help = std::move(help);
  Entry* out = entry.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return out;
}

Counter* MetricsRegistry::RegisterCounter(std::string name, std::string help) {
  Entry* e = Add(Entry::Kind::kCounter, std::move(name), std::move(help));
  e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::RegisterGauge(std::string name, std::string help) {
  Entry* e = Add(Entry::Kind::kGauge, std::move(name), std::move(help));
  e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::RegisterHistogram(std::string name,
                                              std::string help) {
  Entry* e = Add(Entry::Kind::kHistogram, std::move(name), std::move(help));
  e->histogram = std::make_unique<Histogram>();
  return e->histogram.get();
}

void MetricsRegistry::RegisterPullCounter(std::string name, std::string help,
                                          std::function<uint64_t()> read) {
  Entry* e = Add(Entry::Kind::kPullCounter, std::move(name), std::move(help));
  e->pull_counter = std::move(read);
}

void MetricsRegistry::RegisterPullGauge(std::string name, std::string help,
                                        std::function<int64_t()> read) {
  Entry* e = Add(Entry::Kind::kPullGauge, std::move(name), std::move(help));
  e->pull_gauge = std::move(read);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : entries_) {
    out += StrCat("# HELP ", e->name, " ", e->help, "\n");
    switch (e->kind) {
      case Entry::Kind::kCounter:
        out += StrCat("# TYPE ", e->name, " counter\n", e->name, " ",
                      e->counter->value(), "\n");
        break;
      case Entry::Kind::kPullCounter:
        out += StrCat("# TYPE ", e->name, " counter\n", e->name, " ",
                      e->pull_counter(), "\n");
        break;
      case Entry::Kind::kGauge:
        out += StrCat("# TYPE ", e->name, " gauge\n", e->name, " ",
                      e->gauge->value(), "\n");
        break;
      case Entry::Kind::kPullGauge:
        out += StrCat("# TYPE ", e->name, " gauge\n", e->name, " ",
                      e->pull_gauge(), "\n");
        break;
      case Entry::Kind::kHistogram: {
        out += StrCat("# TYPE ", e->name, " histogram\n");
        const Histogram& h = *e->histogram;
        // Render cumulative buckets up to the last non-empty one; empty
        // tails collapse into +Inf so idle histograms stay one line.
        uint32_t last = 0;
        for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
          if (h.bucket(b) != 0) last = b;
        }
        uint64_t cumulative = 0;
        for (uint32_t b = 0; b <= last && h.count() != 0; ++b) {
          cumulative += h.bucket(b);
          out += StrCat(e->name, "_bucket{le=\"", Histogram::UpperBound(b),
                        "\"} ", cumulative, "\n");
        }
        out += StrCat(e->name, "_bucket{le=\"+Inf\"} ", h.count(), "\n");
        out += StrCat(e->name, "_sum ", h.sum(), "\n");
        out += StrCat(e->name, "_count ", h.count(), "\n");
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& e : entries_) {
    if (!first) out += ",";
    first = false;
    switch (e->kind) {
      case Entry::Kind::kCounter:
        out += StrCat("{\"name\":\"", e->name, "\",\"type\":\"counter\",",
                      "\"value\":", e->counter->value(), "}");
        break;
      case Entry::Kind::kPullCounter:
        out += StrCat("{\"name\":\"", e->name, "\",\"type\":\"counter\",",
                      "\"value\":", e->pull_counter(), "}");
        break;
      case Entry::Kind::kGauge:
        out += StrCat("{\"name\":\"", e->name, "\",\"type\":\"gauge\",",
                      "\"value\":", e->gauge->value(), "}");
        break;
      case Entry::Kind::kPullGauge:
        out += StrCat("{\"name\":\"", e->name, "\",\"type\":\"gauge\",",
                      "\"value\":", e->pull_gauge(), "}");
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        out += StrCat("{\"name\":\"", e->name, "\",\"type\":\"histogram\",",
                      "\"count\":", h.count(), ",\"sum\":", h.sum(),
                      ",\"buckets\":[");
        bool first_bucket = true;
        for (uint32_t b = 0; b < Histogram::kBuckets; ++b) {
          if (h.bucket(b) == 0) continue;
          if (!first_bucket) out += ",";
          first_bucket = false;
          out += StrCat("{\"le\":", Histogram::UpperBound(b),
                        ",\"count\":", h.bucket(b), "}");
        }
        out += "]}";
        break;
      }
    }
  }
  out += "]}";
  return out;
}

}  // namespace gluenail
