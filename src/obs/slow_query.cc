#include "src/obs/slow_query.h"

#include <algorithm>
#include <cstdio>

#include "src/common/strings.h"

namespace gluenail {

std::vector<std::pair<std::string, uint64_t>> TopSpansByDuration(
    const std::vector<TraceSpan>& spans, size_t n) {
  std::vector<size_t> order(spans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t keep = std::min(n, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&](size_t a, size_t b) {
                      return spans[a].dur_ns > spans[b].dur_ns;
                    });
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    out.emplace_back(spans[order[i]].name, spans[order[i]].dur_ns);
  }
  return out;
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

uint64_t SlowQueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string SlowQueryLog::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return "slow-query log is empty\n";
  std::string out = StrCat("slow queries (", entries_.size(), " kept of ",
                           total_, " recorded):\n");
  for (const SlowQueryEntry& e : entries_) {
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.6f", e.seconds);
    out += StrCat("-- ", secs, "s  replans=", e.replans, "  ", e.query, "\n");
    if (!e.nail_refresh_mode.empty()) {
      out += StrCat("   nail refresh ", e.nail_refresh_mode, "  delta_in=",
                    e.nail_delta_rows_in, " delta_out=", e.nail_delta_rows_out,
                    "\n");
    }
    for (const auto& [name, dur_ns] : e.top_spans) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f",
                    static_cast<double>(dur_ns) / 1e6);
      out += StrCat("   span ", name, "  ", ms, "ms\n");
    }
    if (!e.plan.empty()) {
      out += e.plan;
      if (out.back() != '\n') out += "\n";
    }
  }
  return out;
}

}  // namespace gluenail
