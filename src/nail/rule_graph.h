/// \file rule_graph.h
/// \brief NAIL! predicates, rules, and the predicate dependency graph.
///
/// A NAIL! predicate is identified by (root symbol, HiLog parameter arity,
/// argument arity): `path(X,Y)` is path/0/2 and `students(ID)(S)` is
/// students/1/1. Parameterized predicates evaluate over a *flattened*
/// storage relation whose columns are the parameters followed by the
/// arguments; after evaluation each instance is *published* as an ordinary
/// relation named by the ground name term (students(cs99)) so HiLog
/// dereferencing (paper §5) is a database lookup.
///
/// Storage relation names are reserved terms: $nail(root, params, arity),
/// $delta(...), $newdelta(...). They are hidden from HiLog enumeration.

#ifndef GLUENAIL_NAIL_RULE_GRAPH_H_
#define GLUENAIL_NAIL_RULE_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/ast.h"
#include "src/common/result.h"
#include "src/term/term_pool.h"

namespace gluenail {

struct NailPred {
  std::string root;
  uint32_t params = 0;
  uint32_t arity = 0;
  /// Flattened storage (params + arity columns) and the semi-naive delta
  /// relations, all in the IDB database.
  TermId storage = kNullTerm;
  TermId delta_storage = kNullTerm;
  TermId newdelta_storage = kNullTerm;
  /// Rules whose head defines this predicate.
  std::vector<int> rules;
  /// Filled by stratification.
  int scc = -1;

  uint32_t columns() const { return params + arity; }
  std::string Key() const { return StrCat(root, "/", params, "/", arity); }
};

struct NailProgram {
  std::vector<ast::NailRule> rules;
  std::vector<NailPred> preds;
  /// "root/params/arity" -> index into preds.
  std::unordered_map<std::string, int> pred_index;
  /// deps[p] = (q, negated): p's rules read q.
  std::vector<std::vector<std::pair<int, bool>>> deps;
  /// SCCs in evaluation (topological) order; filled by Stratify.
  std::vector<std::vector<int>> scc_order;
  std::vector<bool> scc_recursive;

  int FindPred(const std::string& root, uint32_t params,
               uint32_t arity) const {
    auto it = pred_index.find(StrCat(root, "/", params, "/", arity));
    return it == pred_index.end() ? -1 : it->second;
  }

  bool empty() const { return preds.empty(); }
};

/// Builds predicates and the dependency graph from \p rules. Rule bodies
/// may reference EDB relations (anything that is not a rule head),
/// comparisons, and other NAIL! predicates; dynamic (variable-named)
/// subgoals conservatively depend on every predicate of matching arity.
/// Negated dynamic subgoals are rejected (their stratum is undecidable).
Result<NailProgram> BuildNailProgram(std::vector<ast::NailRule> rules,
                                     TermPool* pool);

/// Computes SCCs and their topological order; rejects programs with
/// negation inside a cycle (not stratified). Fills scc fields.
Status Stratify(NailProgram* program);

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_RULE_GRAPH_H_
