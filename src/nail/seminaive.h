/// \file seminaive.h
/// \brief The NAIL! evaluation engine.
///
/// NAIL! predicates are "computed on demand using the current value of the
/// EDB" (paper §2). The engine materializes every predicate's flattened
/// storage relation in the IDB database, memoized against an EDB version
/// snapshot: any EDB change invalidates the materialization and the next
/// demand recomputes (relation versions are monotone, so a snapshot is
/// just the (count, version-sum) pair).
///
/// Two modes:
///  * kDirect — C++ drives the semi-naive fixpoint per SCC over compiled
///    rule-version plans (the differential-testing oracle and baseline);
///  * kCompiledGlue — the paper's architecture: generated Glue procedures
///    (nail_to_glue.h) run the fixpoint through the ordinary Glue
///    executor, repeat/until and all.
///  * kNaive — ablation baseline for bench E5: every iteration re-derives
///    from full relations; no deltas.
///
/// After evaluation, instances of parameterized predicates are *published*
/// (students(cs99) as a 1-ary relation, ...) for HiLog dereferencing.

#ifndef GLUENAIL_NAIL_SEMINAIVE_H_
#define GLUENAIL_NAIL_SEMINAIVE_H_

#include <memory>
#include <vector>

#include "src/exec/executor.h"
#include "src/nail/rule_graph.h"
#include "src/plan/planner.h"

namespace gluenail {

enum class NailMode { kDirect, kCompiledGlue, kNaive };

class NailEngine : public NailEvaluator {
 public:
  NailEngine(NailProgram program, Database* edb, Database* idb,
             TermPool* pool)
      : program_(std::move(program)), edb_(edb), idb_(idb), pool_(pool) {}

  const NailProgram& program() const { return program_; }

  /// Compiles the rule-version plans for kDirect / kNaive mode. The plans
  /// resolve EDB names implicitly; \p module_scope supplies anything else
  /// visible to rules.
  Status CompileDirect(const Scope* builtin_scope,
                       const PlannerOptions& opts);

  /// Wires the executor used to run plans / generated procedures. Must be
  /// called before evaluation. (The executor's RuntimeEnv points back at
  /// this engine; re-entrant EnsureNail calls during evaluation pass
  /// through to storage.)
  void set_executor(Executor* exec) { exec_ = exec; }

  void set_mode(NailMode mode) { mode_ = mode; }
  NailMode mode() const { return mode_; }

  /// Compiled-Glue mode: the index of the generated driver procedure.
  void set_driver_proc(int index) { driver_proc_ = index; }

  /// Forces recomputation on next demand.
  void Invalidate() { valid_ = false; }

  // NailEvaluator:
  Result<Relation*> EnsureNail(TermId storage_name, uint32_t arity) override;
  Status EnsureAllNail() override;

  /// Number of full recomputations performed (for tests/benches).
  uint64_t refresh_count() const { return refresh_count_; }
  /// Fixpoint iterations across refreshes (direct/naive modes).
  uint64_t iteration_count() const { return iteration_count_; }

 private:
  Status Refresh();
  Status RefreshDirect();
  Status RefreshNaive();
  Status RefreshCompiled();
  Status Publish();
  /// (relation count, sum of versions) over the EDB — monotone snapshot.
  std::pair<uint64_t, uint64_t> EdbSnapshot() const;
  Status ClearIdb();

  NailProgram program_;
  Database* edb_;
  Database* idb_;
  TermPool* pool_;
  Executor* exec_ = nullptr;
  NailMode mode_ = NailMode::kDirect;
  int driver_proc_ = -1;

  /// Per-SCC compiled plans (direct/naive modes).
  struct SccPlans {
    std::vector<StatementPlan> init;
    std::vector<StatementPlan> iterate;
    /// Naive mode: the original rules over full relations, delta-free.
    std::vector<StatementPlan> naive;
  };
  std::vector<SccPlans> scc_plans_;
  std::unique_ptr<Scope> nail_scope_;

  bool valid_ = false;
  bool evaluating_ = false;
  std::pair<uint64_t, uint64_t> snapshot_{0, 0};
  uint64_t refresh_count_ = 0;
  uint64_t iteration_count_ = 0;
};

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_SEMINAIVE_H_
