/// \file seminaive.h
/// \brief The NAIL! evaluation engine.
///
/// NAIL! predicates are "computed on demand using the current value of the
/// EDB" (paper §2). The engine materializes every predicate's flattened
/// storage relation in the IDB database, memoized against an EDB version
/// snapshot: any EDB change invalidates the materialization and the next
/// demand recomputes (relation versions are monotone, so a snapshot is
/// just the (count, version-sum) pair).
///
/// Two modes:
///  * kDirect — C++ drives the semi-naive fixpoint per SCC over compiled
///    rule-version plans (the differential-testing oracle and baseline);
///  * kCompiledGlue — the paper's architecture: generated Glue procedures
///    (nail_to_glue.h) run the fixpoint through the ordinary Glue
///    executor, repeat/until and all.
///  * kNaive — ablation baseline for bench E5: every iteration re-derives
///    from full relations; no deltas.
///
/// After evaluation, instances of parameterized predicates are *published*
/// (students(cs99) as a 1-ary relation, ...) for HiLog dereferencing.

#ifndef GLUENAIL_NAIL_SEMINAIVE_H_
#define GLUENAIL_NAIL_SEMINAIVE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/worker_pool.h"
#include "src/nail/rule_graph.h"
#include "src/plan/planner.h"
#include "src/storage/delta_log.h"

namespace gluenail {

enum class NailMode { kDirect, kCompiledGlue, kNaive };

/// Incremental view maintenance policy (docs/ARCHITECTURE.md,
/// "Incremental view maintenance").
enum class IvmMode {
  kOff,   ///< every stale memo is fully recomputed (the old behavior)
  kAuto,  ///< delta refresh when a valid captured delta is small enough
  kForce, ///< delta refresh whenever structurally possible (tests/benches)
};

/// How the last completed refresh ran, for EXPLAIN ANALYZE, the
/// slow-query log, and trace consumers.
struct NailRefreshInfo {
  /// refresh_count() after this refresh; 0 = no refresh yet.
  uint64_t seq = 0;
  bool incremental = false;
  /// "full" | "counting" | "dred" | "counting+dred" | "empty" (a delta
  /// refresh whose net delta touched no memo).
  std::string mode = "full";
  /// Why a full recompute ran although IVM was enabled ("" otherwise):
  /// "stale-memo", "invalidated", "delta-dropped", "delta-fraction",
  /// "unsupported-rule", "negation-on-delta", "counting-multi-delta",
  /// "count-mismatch", "arity-overload", "error", "mode".
  std::string fallback;
  /// EDB delta rows consumed / memo rows changed by a delta refresh.
  uint64_t delta_rows_in = 0;
  uint64_t delta_rows_out = 0;
};

class NailEngine : public NailEvaluator {
 public:
  NailEngine(NailProgram program, Database* edb, Database* idb,
             TermPool* pool)
      : program_(std::move(program)), edb_(edb), idb_(idb), pool_(pool) {}

  const NailProgram& program() const { return program_; }

  /// Compiles the rule-version plans for kDirect / kNaive mode. The plans
  /// resolve EDB names implicitly; \p module_scope supplies anything else
  /// visible to rules. \p stats (may be null) feeds the physical planner,
  /// both here and on mid-fixpoint replans.
  Status CompileDirect(const Scope* builtin_scope, const PlannerOptions& opts,
                       const StatsProvider* stats = nullptr);

  /// Wires the executor used to run plans / generated procedures. Must be
  /// called before evaluation. (The executor's RuntimeEnv points back at
  /// this engine; re-entrant EnsureNail calls during evaluation pass
  /// through to storage.)
  void set_executor(Executor* exec) { exec_ = exec; }

  void set_mode(NailMode mode) { mode_ = mode; }
  NailMode mode() const { return mode_; }

  /// Parallelism for the direct semi-naive fixpoint: each iteration's delta
  /// is partitioned across \p n workers (1 = the exact serial path).
  void set_num_threads(int n) { num_threads_ = n < 1 ? 1 : n; }
  int num_threads() const { return num_threads_; }

  /// True when the memoized IDB matches the current EDB — i.e. reads can
  /// proceed without evaluation. Callers use this to decide whether a
  /// shared (read) lock suffices.
  bool IsFresh() const {
    return program_.empty() || (valid_ && EdbSnapshot() == snapshot_);
  }

  /// Compiled-Glue mode: the index of the generated driver procedure.
  void set_driver_proc(int index) { driver_proc_ = index; }

  /// Forces recomputation on next demand.
  void Invalidate() { valid_ = false; }

  /// Wires delta-driven maintenance: on staleness, when \p log covers
  /// exactly the span between the memo's snapshot and the live EDB, the
  /// refresh runs counting (non-recursive SCCs) / DRed (recursive SCCs)
  /// against the captured deltas instead of recomputing from scratch.
  /// Requires the direct plans (CompileDirect). \p log may outlive or be
  /// null (null disables).
  void ConfigureIvm(IvmMode mode, double max_delta_fraction, DeltaLog* log) {
    ivm_mode_ = mode;
    ivm_max_fraction_ = max_delta_fraction;
    delta_log_ = log;
  }
  IvmMode ivm_mode() const { return ivm_mode_; }

  // NailEvaluator:
  Result<Relation*> EnsureNail(TermId storage_name, uint32_t arity) override;
  Status EnsureAllNail() override;

  /// Number of refreshes performed, full or delta (for tests/benches).
  uint64_t refresh_count() const { return refresh_count_; }
  /// Fixpoint iterations across refreshes (direct/naive modes).
  uint64_t iteration_count() const { return iteration_count_; }
  /// Iterate statements executed through the parallel partitioned path
  /// (tests assert the parallel evaluator actually engaged).
  uint64_t parallel_batches() const { return parallel_batches_; }
  /// Mid-fixpoint replans of iterate bodies triggered by observed delta
  /// sizes drifting from what the plans were costed against. Atomic so
  /// query observability can sample it before taking the engine lock.
  uint64_t replan_count() const {
    return replan_count_.load(std::memory_order_relaxed);
  }

  /// Refreshes served from captured deltas (counting/DRed) vs. full
  /// recomputations, and fulls that ran *despite* a usable-looking delta
  /// (dropped/oversized/structurally unsupported). Atomics: sampled by
  /// metrics scrapes and query observability without the engine lock.
  uint64_t delta_refresh_count() const {
    return delta_refresh_count_.load(std::memory_order_relaxed);
  }
  uint64_t full_refresh_count() const {
    return full_refresh_count_.load(std::memory_order_relaxed);
  }
  uint64_t ivm_fallback_count() const {
    return ivm_fallback_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative EDB delta rows consumed / memo rows patched by delta
  /// refreshes.
  uint64_t ivm_delta_rows_in() const {
    return ivm_rows_in_.load(std::memory_order_relaxed);
  }
  uint64_t ivm_delta_rows_out() const {
    return ivm_rows_out_.load(std::memory_order_relaxed);
  }
  /// Monotone refresh sequence number (== refresh_count, atomic so query
  /// observability can compare before/after without the engine lock).
  uint64_t refresh_seq() const {
    return refresh_seq_.load(std::memory_order_acquire);
  }
  /// Copy of the last refresh's outcome (internally mutexed — safe to
  /// call while another thread holds the engine lock and refreshes).
  NailRefreshInfo last_refresh() const {
    std::lock_guard<std::mutex> lock(info_mu_);
    return last_refresh_;
  }

 private:
  Status Refresh();
  Status RefreshDirect();
  Status RefreshNaive();
  Status RefreshCompiled();
  Status Publish();
  /// Runs SCC \p s's semi-naive fixpoint loop (deltas already seeded by
  /// the caller: init statements for a full refresh, captured/derived
  /// deltas for an incremental one). Shared by RefreshDirect and the
  /// incremental DRed/insert-propagation phases.
  Status RunSccFixpoint(size_t s);
  /// (relation count, sum of versions) over the EDB — monotone snapshot.
  std::pair<uint64_t, uint64_t> EdbSnapshot() const;
  Status ClearIdb();

  NailProgram program_;
  Database* edb_;
  Database* idb_;
  TermPool* pool_;
  Executor* exec_ = nullptr;
  NailMode mode_ = NailMode::kDirect;
  int driver_proc_ = -1;

  /// Static analysis of one iterate statement for the parallel path.
  struct IterInfo {
    /// The single delta subgoal's relation (the partitioned input);
    /// kNullTerm when the statement is not parallel-eligible.
    TermId delta_name = kNullTerm;
    uint32_t delta_arity = 0;
    bool parallel_ok = false;
  };

  /// Per-SCC compiled plans (direct/naive modes).
  struct SccPlans {
    std::vector<StatementPlan> init;
    std::vector<StatementPlan> iterate;
    /// Parallel to `iterate`.
    std::vector<IterInfo> iterate_info;
    /// Naive mode: the original rules over full relations, delta-free.
    std::vector<StatementPlan> naive;
    /// The iterate statements' ASTs, kept so the fixpoint can replan them
    /// against observed delta cardinalities (feedback loop).
    std::vector<ast::Assignment> iterate_asts;
    /// Total delta rows the iterate plans were last costed against.
    uint64_t last_planned_delta = 0;
  };
  std::vector<SccPlans> scc_plans_;
  std::unique_ptr<Scope> nail_scope_;

  /// Classifies an iterate statement; called once at compile time.
  IterInfo AnalyzeIterate(const StatementPlan& plan) const;
  /// Runs one iterate statement by partitioning its delta across the
  /// worker pool; falls back is handled by the caller.
  Status ParallelIterate(const StatementPlan& plan, const IterInfo& info,
                         Relation* delta);

  /// Sum of delta relation sizes for one SCC (the iterate plans' input).
  uint64_t SccDeltaRows(const std::vector<int>& preds) const;
  /// Replans the SCC's iterate statements when the observed delta volume
  /// has drifted >= 8x from what they were costed against.
  Status MaybeReplanScc(SccPlans* plans, const std::vector<int>& preds);

  /// Planner configuration captured by CompileDirect for replans.
  PlannerOptions planner_opts_;
  const StatsProvider* stats_ = nullptr;

  bool valid_ = false;
  bool evaluating_ = false;
  std::pair<uint64_t, uint64_t> snapshot_{0, 0};
  uint64_t refresh_count_ = 0;
  uint64_t iteration_count_ = 0;
  uint64_t parallel_batches_ = 0;
  std::atomic<uint64_t> replan_count_{0};
  int num_threads_ = 1;
  /// Lazily created when num_threads_ > 1 and a parallel batch runs.
  std::unique_ptr<WorkerPool> workers_;

  // ---- Incremental view maintenance (src/nail/ivm.cc) ----------------

  /// One rule compiled for delta maintenance: every wildcard renamed to a
  /// fresh variable (so distinct matching tuples always yield distinct
  /// binding records — exact derivation multiplicities), the flattened
  /// head columns (HiLog params ++ args), and the full body variable list.
  struct IvmRule {
    int pred = -1;                   ///< index into program_.preds
    std::vector<ast::Subgoal> body;  ///< wildcard-free copy
    std::vector<ast::Term> head_cols;
    std::vector<std::string> vars;  ///< all body variables, in order
    /// A positive body atom over a NAIL! memo or EDB relation. Delta
    /// variants rotate one of these to the front, redirected to the
    /// reserved name `scope_name` (read-overridden to a delta relation at
    /// run time). `nail_pred` >= 0 when the position reads a memo.
    struct Pos {
      size_t index = 0;
      TermId rel = kNullTerm;
      uint32_t arity = 0;
      int nail_pred = -1;
      TermId scope_name = kNullTerm;
    };
    std::vector<Pos> positions;
    /// Negated atoms (rel/arity only), for the
    /// negation-over-changed-relation fallback check.
    std::vector<Pos> negations;
    /// Per entry of `positions`: the body with that position first reading
    /// its reserved name, planned with reordering off (delta-proportional
    /// cost), under a synthetic all-vars head (head_cols ++ vars) run
    /// body-only.
    std::vector<StatementPlan> delta_plans;
    /// Original body under the all-vars head — counting backfill
    /// (EnsureCounts) runs it over full relations.
    StatementPlan count_plan;
    /// DRed rederivation: the per-pred deletion set prepended to the
    /// original body (semi-join on the head variables), head = head_cols.
    StatementPlan rederive;
    bool ok = false;  ///< false => whole-program IVM fallback
  };

  /// Per-refresh working state (net change map, scratch executors, union
  /// overrides); defined in ivm.cc.
  struct IvmCtx;

  Status EnsureIvmPlans();
  /// Attempts a delta refresh; *done=true iff the memos now match the live
  /// EDB and published instances are patched. On *done=false (structural
  /// fallback recorded in info->fallback) the caller runs the full path.
  Status RefreshIncremental(NailRefreshInfo* info, bool* done);
  /// Counting maintenance for a non-recursive SCC / DRed for a recursive
  /// one. Both record the SCC's own net memo delta in the ctx change map
  /// for downstream SCCs. *ok=false requests whole-refresh fallback.
  Status RefreshSccCounting(size_t s, IvmCtx* ctx, bool* ok);
  Status RefreshSccDred(size_t s, IvmCtx* ctx, bool* ok);
  /// Backfills derivation counts for non-recursive pred \p p by running
  /// each rule's count_plan against the *pre-delta* EDB state (ctx carries
  /// old-state overrides for changed relations).
  Status EnsureCounts(int p, IvmCtx* ctx);
  void MarkCountsStale() { counts_.clear(); }

  IvmMode ivm_mode_ = IvmMode::kOff;
  double ivm_max_fraction_ = 0.25;
  DeltaLog* delta_log_ = nullptr;
  bool ivm_plans_ready_ = false;
  bool ivm_program_capable_ = false;
  /// Parallel to program_.rules.
  std::vector<IvmRule> ivm_rules_;
  /// Reserved deletion-set names, parallel to program_.preds (the
  /// rederive plans' first subgoal, read-overridden per refresh).
  std::vector<TermId> ivm_dset_names_;
  /// Derivation counts for non-recursive preds: storage-key ->
  /// (memo row -> count). An entry's *presence* means the pred is
  /// backfilled (possibly with an empty inner map). Cleared on any full
  /// refresh (MarkCountsStale) and rebuilt lazily against pre-delta state.
  std::unordered_map<uint64_t,
                     std::unordered_map<Tuple, int64_t, TupleHash>>
      counts_;

  std::atomic<uint64_t> delta_refresh_count_{0};
  std::atomic<uint64_t> full_refresh_count_{0};
  std::atomic<uint64_t> ivm_fallback_count_{0};
  std::atomic<uint64_t> ivm_rows_in_{0};
  std::atomic<uint64_t> ivm_rows_out_{0};
  std::atomic<uint64_t> refresh_seq_{0};
  mutable std::mutex info_mu_;
  NailRefreshInfo last_refresh_;
};

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_SEMINAIVE_H_
