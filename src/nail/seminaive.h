/// \file seminaive.h
/// \brief The NAIL! evaluation engine.
///
/// NAIL! predicates are "computed on demand using the current value of the
/// EDB" (paper §2). The engine materializes every predicate's flattened
/// storage relation in the IDB database, memoized against an EDB version
/// snapshot: any EDB change invalidates the materialization and the next
/// demand recomputes (relation versions are monotone, so a snapshot is
/// just the (count, version-sum) pair).
///
/// Two modes:
///  * kDirect — C++ drives the semi-naive fixpoint per SCC over compiled
///    rule-version plans (the differential-testing oracle and baseline);
///  * kCompiledGlue — the paper's architecture: generated Glue procedures
///    (nail_to_glue.h) run the fixpoint through the ordinary Glue
///    executor, repeat/until and all.
///  * kNaive — ablation baseline for bench E5: every iteration re-derives
///    from full relations; no deltas.
///
/// After evaluation, instances of parameterized predicates are *published*
/// (students(cs99) as a 1-ary relation, ...) for HiLog dereferencing.

#ifndef GLUENAIL_NAIL_SEMINAIVE_H_
#define GLUENAIL_NAIL_SEMINAIVE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/exec/executor.h"
#include "src/exec/worker_pool.h"
#include "src/nail/rule_graph.h"
#include "src/plan/planner.h"

namespace gluenail {

enum class NailMode { kDirect, kCompiledGlue, kNaive };

class NailEngine : public NailEvaluator {
 public:
  NailEngine(NailProgram program, Database* edb, Database* idb,
             TermPool* pool)
      : program_(std::move(program)), edb_(edb), idb_(idb), pool_(pool) {}

  const NailProgram& program() const { return program_; }

  /// Compiles the rule-version plans for kDirect / kNaive mode. The plans
  /// resolve EDB names implicitly; \p module_scope supplies anything else
  /// visible to rules. \p stats (may be null) feeds the physical planner,
  /// both here and on mid-fixpoint replans.
  Status CompileDirect(const Scope* builtin_scope, const PlannerOptions& opts,
                       const StatsProvider* stats = nullptr);

  /// Wires the executor used to run plans / generated procedures. Must be
  /// called before evaluation. (The executor's RuntimeEnv points back at
  /// this engine; re-entrant EnsureNail calls during evaluation pass
  /// through to storage.)
  void set_executor(Executor* exec) { exec_ = exec; }

  void set_mode(NailMode mode) { mode_ = mode; }
  NailMode mode() const { return mode_; }

  /// Parallelism for the direct semi-naive fixpoint: each iteration's delta
  /// is partitioned across \p n workers (1 = the exact serial path).
  void set_num_threads(int n) { num_threads_ = n < 1 ? 1 : n; }
  int num_threads() const { return num_threads_; }

  /// True when the memoized IDB matches the current EDB — i.e. reads can
  /// proceed without evaluation. Callers use this to decide whether a
  /// shared (read) lock suffices.
  bool IsFresh() const {
    return program_.empty() || (valid_ && EdbSnapshot() == snapshot_);
  }

  /// Compiled-Glue mode: the index of the generated driver procedure.
  void set_driver_proc(int index) { driver_proc_ = index; }

  /// Forces recomputation on next demand.
  void Invalidate() { valid_ = false; }

  // NailEvaluator:
  Result<Relation*> EnsureNail(TermId storage_name, uint32_t arity) override;
  Status EnsureAllNail() override;

  /// Number of full recomputations performed (for tests/benches).
  uint64_t refresh_count() const { return refresh_count_; }
  /// Fixpoint iterations across refreshes (direct/naive modes).
  uint64_t iteration_count() const { return iteration_count_; }
  /// Iterate statements executed through the parallel partitioned path
  /// (tests assert the parallel evaluator actually engaged).
  uint64_t parallel_batches() const { return parallel_batches_; }
  /// Mid-fixpoint replans of iterate bodies triggered by observed delta
  /// sizes drifting from what the plans were costed against. Atomic so
  /// query observability can sample it before taking the engine lock.
  uint64_t replan_count() const {
    return replan_count_.load(std::memory_order_relaxed);
  }

 private:
  Status Refresh();
  Status RefreshDirect();
  Status RefreshNaive();
  Status RefreshCompiled();
  Status Publish();
  /// (relation count, sum of versions) over the EDB — monotone snapshot.
  std::pair<uint64_t, uint64_t> EdbSnapshot() const;
  Status ClearIdb();

  NailProgram program_;
  Database* edb_;
  Database* idb_;
  TermPool* pool_;
  Executor* exec_ = nullptr;
  NailMode mode_ = NailMode::kDirect;
  int driver_proc_ = -1;

  /// Static analysis of one iterate statement for the parallel path.
  struct IterInfo {
    /// The single delta subgoal's relation (the partitioned input);
    /// kNullTerm when the statement is not parallel-eligible.
    TermId delta_name = kNullTerm;
    uint32_t delta_arity = 0;
    bool parallel_ok = false;
  };

  /// Per-SCC compiled plans (direct/naive modes).
  struct SccPlans {
    std::vector<StatementPlan> init;
    std::vector<StatementPlan> iterate;
    /// Parallel to `iterate`.
    std::vector<IterInfo> iterate_info;
    /// Naive mode: the original rules over full relations, delta-free.
    std::vector<StatementPlan> naive;
    /// The iterate statements' ASTs, kept so the fixpoint can replan them
    /// against observed delta cardinalities (feedback loop).
    std::vector<ast::Assignment> iterate_asts;
    /// Total delta rows the iterate plans were last costed against.
    uint64_t last_planned_delta = 0;
  };
  std::vector<SccPlans> scc_plans_;
  std::unique_ptr<Scope> nail_scope_;

  /// Classifies an iterate statement; called once at compile time.
  IterInfo AnalyzeIterate(const StatementPlan& plan) const;
  /// Runs one iterate statement by partitioning its delta across the
  /// worker pool; falls back is handled by the caller.
  Status ParallelIterate(const StatementPlan& plan, const IterInfo& info,
                         Relation* delta);

  /// Sum of delta relation sizes for one SCC (the iterate plans' input).
  uint64_t SccDeltaRows(const std::vector<int>& preds) const;
  /// Replans the SCC's iterate statements when the observed delta volume
  /// has drifted >= 8x from what they were costed against.
  Status MaybeReplanScc(SccPlans* plans, const std::vector<int>& preds);

  /// Planner configuration captured by CompileDirect for replans.
  PlannerOptions planner_opts_;
  const StatsProvider* stats_ = nullptr;

  bool valid_ = false;
  bool evaluating_ = false;
  std::pair<uint64_t, uint64_t> snapshot_{0, 0};
  uint64_t refresh_count_ = 0;
  uint64_t iteration_count_ = 0;
  uint64_t parallel_batches_ = 0;
  std::atomic<uint64_t> replan_count_{0};
  int num_threads_ = 1;
  /// Lazily created when num_threads_ > 1 and a parallel batch runs.
  std::unique_ptr<WorkerPool> workers_;
};

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_SEMINAIVE_H_
