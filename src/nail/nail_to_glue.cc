#include "src/nail/nail_to_glue.h"

#include <functional>

#include "src/analysis/binding.h"
#include "src/common/strings.h"

namespace gluenail {

namespace {

using ast::Assignment;
using ast::Subgoal;
using ast::Term;

/// Fresh column variable names for generated statements.
std::vector<Term> ColumnVars(uint32_t n) {
  std::vector<Term> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(Term::Variable(StrCat("GV", i)));
  }
  return out;
}

std::vector<Term> Wildcards(uint32_t n) {
  std::vector<Term> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(Term::Wildcard());
  return out;
}

/// Flattens the HiLog parameter arguments of a predicate-name chain
/// followed by the subgoal arguments into one column list.
std::vector<Term> FlattenColumns(const Term& pred,
                                 const std::vector<Term>& args) {
  std::vector<Term> cols;
  std::vector<const Term*> chain;
  std::function<void(const Term&)> collect = [&](const Term& t) {
    if (!t.IsApply()) return;
    collect(t.functor());
    for (size_t i = 0; i < t.apply_arity(); ++i) chain.push_back(&t.arg(i));
  };
  collect(pred);
  for (const Term* t : chain) cols.push_back(*t);
  for (const Term& a : args) cols.push_back(a);
  return cols;
}

/// True if the subgoal is a positive atom referencing pred \p target
/// within \p program.
bool IsRecursiveRef(const NailProgram& program, const Subgoal& g,
                    const std::vector<int>& scc_preds) {
  if (g.kind != ast::SubgoalKind::kAtom) return false;
  std::string root;
  uint32_t params = 0;
  if (!StaticPredName(g.pred, &root, &params)) return false;
  int id = program.FindPred(root, params,
                            static_cast<uint32_t>(g.args.size()));
  if (id < 0) return false;
  for (int p : scc_preds) {
    if (p == id) return true;
  }
  return false;
}

int PredOf(const NailProgram& program, const Subgoal& g) {
  std::string root;
  uint32_t params = 0;
  StaticPredName(g.pred, &root, &params);
  return program.FindPred(root, params,
                          static_cast<uint32_t>(g.args.size()));
}

}  // namespace

std::string DeltaScopeName(const NailPred& pred) {
  return StrCat("$delta$", pred.Key());
}

std::string NewdeltaScopeName(const NailPred& pred) {
  return StrCat("$newdelta$", pred.Key());
}

void DeclareNailScope(const NailProgram& program, Scope* scope) {
  for (const NailPred& pred : program.preds) {
    PredBinding full;
    full.cls = PredClass::kNail;
    full.free_arity = pred.arity;
    full.name = pred.storage;
    full.nail_params = pred.params;
    full.assignable = true;
    scope->Declare(pred.root, pred.params, pred.arity, full);

    PredBinding delta;
    delta.cls = PredClass::kNail;
    delta.free_arity = pred.columns();
    delta.name = pred.delta_storage;
    delta.nail_params = 0;
    delta.assignable = true;
    scope->Declare(DeltaScopeName(pred), 0, pred.columns(), delta);

    PredBinding newdelta = delta;
    newdelta.name = pred.newdelta_storage;
    scope->Declare(NewdeltaScopeName(pred), 0, pred.columns(), newdelta);
  }
}

SccStatements BuildSccStatements(const NailProgram& program, int scc_index) {
  SccStatements out;
  const std::vector<int>& preds =
      program.scc_order[static_cast<size_t>(scc_index)];
  bool recursive = program.scc_recursive[static_cast<size_t>(scc_index)];

  for (int p : preds) {
    const NailPred& pred = program.preds[static_cast<size_t>(p)];
    for (int r : pred.rules) {
      const ast::NailRule& rule = program.rules[static_cast<size_t>(r)];

      // Initialization version: body as written (full relations).
      Assignment init;
      init.loc = rule.loc;
      init.head_pred = rule.head_pred;
      init.head_args = rule.head_args;
      init.op = ast::AssignOp::kInsert;
      init.body = rule.body;
      if (recursive) {
        init.has_delta = true;
        init.delta_into = Term::Symbol(DeltaScopeName(pred));
      }
      out.init.push_back(std::move(init));

      if (!recursive) continue;

      // Semi-naive versions: one per recursive subgoal occurrence, that
      // occurrence reading the delta relation.
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!IsRecursiveRef(program, rule.body[i], preds)) continue;
        Assignment ver;
        ver.loc = rule.loc;
        ver.head_pred = rule.head_pred;
        ver.head_args = rule.head_args;
        ver.op = ast::AssignOp::kInsert;
        ver.has_delta = true;
        ver.delta_into = Term::Symbol(NewdeltaScopeName(pred));
        ver.body = rule.body;
        const NailPred& dep = program.preds[static_cast<size_t>(
            PredOf(program, rule.body[i]))];
        Subgoal& g = ver.body[i];
        std::vector<Term> cols = FlattenColumns(g.pred, g.args);
        g.pred = Term::Symbol(DeltaScopeName(dep));
        g.args = std::move(cols);
        out.iterate.push_back(std::move(ver));
      }
    }
  }
  return out;
}

std::string SccProcedureName(int scc_index) {
  return StrCat("$nail$scc", scc_index);
}

ast::Procedure BuildSccProcedure(const NailProgram& program, int scc_index) {
  ast::Procedure proc;
  proc.name = SccProcedureName(scc_index);
  proc.bound_arity = 0;
  proc.free_arity = 0;

  SccStatements stmts = BuildSccStatements(program, scc_index);
  for (Assignment& a : stmts.init) {
    ast::Statement s;
    s.node = std::move(a);
    proc.body.push_back(std::move(s));
  }
  if (stmts.iterate.empty()) return proc;

  const std::vector<int>& preds =
      program.scc_order[static_cast<size_t>(scc_index)];
  ast::RepeatUntil loop;
  // Clear the newdelta relations: nd(C...) -= nd(C...).
  for (int p : preds) {
    const NailPred& pred = program.preds[static_cast<size_t>(p)];
    Assignment clear;
    clear.head_pred = Term::Symbol(NewdeltaScopeName(pred));
    clear.head_args = ColumnVars(pred.columns());
    clear.op = ast::AssignOp::kDelete;
    clear.body.push_back(Subgoal::Atom(Term::Symbol(NewdeltaScopeName(pred)),
                                       ColumnVars(pred.columns())));
    ast::Statement s;
    s.node = std::move(clear);
    loop.body.push_back(std::move(s));
  }
  // The semi-naive rule versions.
  for (Assignment& a : stmts.iterate) {
    ast::Statement s;
    s.node = std::move(a);
    loop.body.push_back(std::move(s));
  }
  // Shift: delta := newdelta.
  for (int p : preds) {
    const NailPred& pred = program.preds[static_cast<size_t>(p)];
    Assignment shift;
    shift.head_pred = Term::Symbol(DeltaScopeName(pred));
    shift.head_args = ColumnVars(pred.columns());
    shift.op = ast::AssignOp::kClear;
    shift.body.push_back(Subgoal::Atom(Term::Symbol(NewdeltaScopeName(pred)),
                                       ColumnVars(pred.columns())));
    ast::Statement s;
    s.node = std::move(shift);
    loop.body.push_back(std::move(s));
  }
  // until empty(nd_p(_,..)) & empty(nd_q(_,..)) & ...
  ast::UntilCond cond;
  bool first = true;
  for (int p : preds) {
    const NailPred& pred = program.preds[static_cast<size_t>(p)];
    ast::UntilCond leaf;
    leaf.kind = ast::UntilCond::Kind::kEmpty;
    leaf.pred = Term::Symbol(NewdeltaScopeName(pred));
    for (ast::Term& w : Wildcards(pred.columns())) {
      leaf.args.push_back(std::move(w));
    }
    if (first) {
      cond = std::move(leaf);
      first = false;
    } else {
      ast::UntilCond conj;
      conj.kind = ast::UntilCond::Kind::kAnd;
      conj.children.push_back(std::move(cond));
      conj.children.push_back(std::move(leaf));
      cond = std::move(conj);
    }
  }
  loop.cond = std::move(cond);
  ast::Statement s;
  s.node = std::move(loop);
  proc.body.push_back(std::move(s));
  return proc;
}

ast::Procedure BuildDriverProcedure(const NailProgram& program) {
  ast::Procedure proc;
  proc.name = kNailDriverName;
  proc.bound_arity = 0;
  proc.free_arity = 0;
  // The call statements need *some* head; a throwaway local works.
  ast::LocalRelation done;
  done.name = "$nail$done";
  done.arity = 1;
  proc.locals.push_back(done);
  for (size_t s = 0; s < program.scc_order.size(); ++s) {
    Assignment call;
    call.head_pred = Term::Symbol("$nail$done");
    call.head_args.push_back(Term::Int(static_cast<int64_t>(s)));
    call.op = ast::AssignOp::kInsert;
    call.body.push_back(
        Subgoal::Atom(Term::Symbol(SccProcedureName(static_cast<int>(s))),
                      {}));
    ast::Statement stmt;
    stmt.node = std::move(call);
    proc.body.push_back(std::move(stmt));
  }
  return proc;
}

}  // namespace gluenail
