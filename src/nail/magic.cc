#include "src/nail/magic.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

#include "src/analysis/binding.h"
#include "src/analysis/resolver.h"
#include "src/common/strings.h"
#include "src/nail/seminaive.h"

namespace gluenail {

namespace {

using ast::NailRule;
using ast::Subgoal;
using ast::Term;

std::string AdornedName(const std::string& root,
                        const std::string& adornment) {
  return StrCat(root, "@", adornment);
}

std::string MagicName(const std::string& root, const std::string& adornment) {
  return StrCat("magic@", root, "@", adornment);
}

/// Binding effect of a comparison, mirroring the planner's Eq rules
/// conservatively: only "UnboundVar = fully-bound-expr" binds.
void ApplyComparisonBindings(const Subgoal& g, BoundSet* bound) {
  bool lv = IsSingleVariable(g.lhs) && bound->count(g.lhs.name) == 0;
  bool rv = IsSingleVariable(g.rhs) && bound->count(g.rhs.name) == 0;
  if (g.cmp != ast::CompareOp::kEq) return;
  if (lv && IsFullyBoundPattern(g.rhs, *bound)) bound->insert(g.lhs.name);
  if (rv && IsFullyBoundPattern(g.lhs, *bound)) bound->insert(g.rhs.name);
}

void BindAtomVars(const Subgoal& g, BoundSet* bound) {
  for (const std::string& v : VarsOf(g.pred)) bound->insert(v);
  for (const Term& a : g.args) {
    for (const std::string& v : VarsOf(a)) bound->insert(v);
  }
}

struct AdornedPred {
  std::string root;
  uint32_t arity;
  std::string adornment;
};

}  // namespace

Result<MagicProgram> MagicTransform(const std::vector<NailRule>& rules,
                                    const MagicQuery& query, TermPool* pool) {
  // Index IDB predicates and their rules.
  std::unordered_set<std::string> idb;
  for (const NailRule& r : rules) {
    std::string root;
    uint32_t params = 0;
    if (!StaticPredName(r.head_pred, &root, &params) || params != 0) {
      return Status::CompileError(
          "magic transformation supports non-parameterized predicates only");
    }
    idb.insert(StrCat(root, "/", r.head_args.size()));
  }
  std::string qkey = StrCat(query.pred, "/", query.arity());
  if (idb.count(qkey) == 0) {
    return Status::InvalidArgument(
        StrCat("query predicate ", qkey, " has no rules"));
  }

  std::string query_adornment;
  for (const auto& c : query.columns) {
    query_adornment += c.has_value() ? 'b' : 'f';
  }

  MagicProgram out;
  out.answer_pred = AdornedName(query.pred, query_adornment);
  out.seed_pred = MagicName(query.pred, query_adornment);
  for (const auto& c : query.columns) {
    if (c.has_value()) out.seed.push_back(*c);
  }

  std::deque<AdornedPred> queue;
  std::unordered_set<std::string> processed;
  queue.push_back(AdornedPred{query.pred, query.arity(), query_adornment});

  while (!queue.empty()) {
    AdornedPred cur = queue.front();
    queue.pop_front();
    std::string cur_key = AdornedName(StrCat(cur.root, "/", cur.arity),
                                      cur.adornment);
    if (!processed.insert(cur_key).second) continue;
    ++out.adorned_count;

    for (const NailRule& rule : rules) {
      std::string root;
      uint32_t params = 0;
      StaticPredName(rule.head_pred, &root, &params);
      if (root != cur.root || rule.head_args.size() != cur.arity) continue;

      // The adorned rule starts from the magic filter.
      NailRule adorned;
      adorned.loc = rule.loc;
      adorned.head_pred =
          Term::Symbol(AdornedName(cur.root, cur.adornment));
      adorned.head_args = rule.head_args;

      BoundSet bound;
      std::vector<Term> magic_args;
      for (size_t i = 0; i < cur.arity; ++i) {
        if (cur.adornment[i] == 'b') {
          magic_args.push_back(rule.head_args[i]);
          for (const std::string& v : VarsOf(rule.head_args[i])) {
            bound.insert(v);
          }
        }
      }
      Subgoal magic_guard = Subgoal::Atom(
          Term::Symbol(MagicName(cur.root, cur.adornment)), magic_args);
      adorned.body.push_back(magic_guard);

      for (const Subgoal& g : rule.body) {
        switch (g.kind) {
          case ast::SubgoalKind::kComparison: {
            adorned.body.push_back(g);
            ApplyComparisonBindings(g, &bound);
            break;
          }
          case ast::SubgoalKind::kGroupBy:
          case ast::SubgoalKind::kInsert:
          case ast::SubgoalKind::kDelete:
            return Status::CompileError(
                "magic transformation applies to pure rules");
          case ast::SubgoalKind::kNegatedAtom: {
            std::string nroot;
            uint32_t nparams = 0;
            if (StaticPredName(g.pred, &nroot, &nparams) &&
                idb.count(StrCat(nroot, "/", g.args.size())) != 0) {
              return Status::CompileError(
                  "magic transformation does not support negated IDB "
                  "subgoals");
            }
            adorned.body.push_back(g);
            break;
          }
          case ast::SubgoalKind::kAtom: {
            std::string aroot;
            uint32_t aparams = 0;
            bool is_idb =
                StaticPredName(g.pred, &aroot, &aparams) && aparams == 0 &&
                idb.count(StrCat(aroot, "/", g.args.size())) != 0;
            if (!is_idb) {
              adorned.body.push_back(g);
              BindAtomVars(g, &bound);
              break;
            }
            // Compute the callee adornment under the left-to-right SIP.
            std::string sub_adornment;
            for (const Term& a : g.args) {
              sub_adornment +=
                  IsFullyBoundPattern(a, bound) ? 'b' : 'f';
            }
            queue.push_back(AdornedPred{
                aroot, static_cast<uint32_t>(g.args.size()),
                sub_adornment});
            // Magic rule: magic@q@a'(bound args) :- prefix-so-far.
            NailRule magic_rule;
            magic_rule.loc = rule.loc;
            magic_rule.head_pred =
                Term::Symbol(MagicName(aroot, sub_adornment));
            for (size_t i = 0; i < g.args.size(); ++i) {
              if (sub_adornment[i] == 'b') {
                magic_rule.head_args.push_back(g.args[i]);
              }
            }
            magic_rule.body = adorned.body;  // transformed prefix
            out.rules.push_back(std::move(magic_rule));
            // Rename the subgoal to the adorned predicate.
            Subgoal renamed = g;
            renamed.pred =
                Term::Symbol(AdornedName(aroot, sub_adornment));
            adorned.body.push_back(std::move(renamed));
            BindAtomVars(g, &bound);
            break;
          }
        }
      }
      out.rules.push_back(std::move(adorned));
    }
  }

  // Seed rule: magic@p@a(constants) :- true.
  NailRule seed_rule;
  seed_rule.head_pred = Term::Symbol(out.seed_pred);
  for (const auto& c : query.columns) {
    if (!c.has_value()) continue;
    // Constants are rendered back as AST terms via the pool.
    const TermId t = *c;
    // Build an AST literal for the interned term.
    std::function<Term(TermId)> to_ast = [&](TermId id) -> Term {
      switch (pool->tag(id)) {
        case TermTag::kInt:
          return Term::Int(pool->IntValue(id));
        case TermTag::kFloat:
          return Term::Float(pool->FloatValue(id));
        case TermTag::kSymbol:
          return Term::Symbol(std::string(pool->SymbolName(id)));
        case TermTag::kCompound: {
          std::vector<Term> args;
          for (TermId a : pool->Args(id)) args.push_back(to_ast(a));
          return Term::Apply(to_ast(pool->Functor(id)), std::move(args));
        }
      }
      return Term::Symbol("?");
    };
    seed_rule.head_args.push_back(to_ast(t));
  }
  seed_rule.body.push_back(Subgoal::Atom(Term::Symbol("true"), {}));
  out.rules.push_back(std::move(seed_rule));
  return out;
}

namespace {

Result<std::vector<Tuple>> RunRulesAndFilter(
    std::vector<NailRule> rules, const std::string& answer_root,
    const MagicQuery& query, Database* edb, TermPool* pool,
    const ExecOptions& exec_opts) {
  GLUENAIL_ASSIGN_OR_RETURN(NailProgram prog,
                            BuildNailProgram(std::move(rules), pool));
  Database scratch_idb(pool);
  NailEngine engine(std::move(prog), edb, &scratch_idb, pool);
  engine.set_mode(NailMode::kDirect);
  Scope builtins;
  DeclareBuiltinScope(&builtins);
  GLUENAIL_RETURN_NOT_OK(engine.CompileDirect(&builtins, PlannerOptions{}));
  CompiledProgram empty_program;
  RuntimeEnv env;
  env.nail = &engine;
  Executor exec(&empty_program, edb, &scratch_idb, pool, env, exec_opts);
  engine.set_executor(&exec);
  GLUENAIL_RETURN_NOT_OK(engine.EnsureAllNail());

  Relation* answers =
      scratch_idb.Find(pool->MakeSymbol(answer_root), query.arity());
  std::vector<Tuple> out;
  if (answers == nullptr) return out;
  for (RowView t : *answers) {
    bool match = true;
    for (size_t i = 0; i < query.columns.size(); ++i) {
      if (query.columns[i].has_value() && t[i] != *query.columns[i]) {
        match = false;
        break;
      }
    }
    if (match) out.emplace_back(t.begin(), t.end());
  }
  std::sort(out.begin(), out.end(), [pool](const Tuple& a, const Tuple& b) {
    return CompareTuples(*pool, a, b) < 0;
  });
  return out;
}

}  // namespace

Result<std::vector<Tuple>> EvaluateWithMagic(
    const std::vector<NailRule>& rules, const MagicQuery& query,
    Database* edb, TermPool* pool, const ExecOptions& exec_opts) {
  GLUENAIL_ASSIGN_OR_RETURN(MagicProgram magic,
                            MagicTransform(rules, query, pool));
  return RunRulesAndFilter(std::move(magic.rules), magic.answer_pred, query,
                           edb, pool, exec_opts);
}

Result<std::vector<Tuple>> EvaluateWithoutMagic(
    const std::vector<NailRule>& rules, const MagicQuery& query,
    Database* edb, TermPool* pool, const ExecOptions& exec_opts) {
  return RunRulesAndFilter(rules, query.pred, query, edb, pool, exec_opts);
}

}  // namespace gluenail
