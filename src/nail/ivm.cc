/// \file ivm.cc
/// \brief Delta-driven NAIL! memo maintenance (docs/ARCHITECTURE.md,
/// "Incremental view maintenance").
///
/// When the engine's structured write path captured every EDB change since
/// the memo's snapshot (storage/delta_log.h), a stale memo is patched
/// instead of recomputed:
///
///  * non-recursive SCCs run *counting* maintenance: exact per-tuple
///    derivation counts, maintained by joining each rule's body with the
///    changed relation's net delta in one position (exact because the
///    other positions are unchanged — old state == new state);
///  * recursive SCCs run *DRed* (delete-and-rederive): over-delete via
///    delta-restricted semi-naive (reading erased relations through a
///    live ∪ erased old-state over-approximation), erase, rederive
///    survivors through a deletion-set semi-join fixpoint, then seed the
///    ordinary semi-naive fixpoint with the insertions.
///
/// Everything here is *optimistic*: any structural condition the
/// algorithms cannot handle (aggregates in rules, negation over a changed
/// relation, more than one changed position per counting rule, a
/// derivation-count mismatch) abandons the attempt and falls back to the
/// full recompute in seminaive.cc, which is always correct. Live EDB and
/// memo relations are never mutated to simulate old states — old-state
/// reads go through private override copies — so an abandoned attempt can
/// at worst leave the memo partially patched, which the caller handles by
/// distrusting it (valid_ = false).

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/analysis/binding.h"
#include "src/common/strings.h"
#include "src/exec/eval.h"
#include "src/nail/seminaive.h"
#include "src/obs/trace.h"
#include "src/plan/planner.h"

namespace gluenail {

namespace {

using ast::Subgoal;
using ast::Term;

/// (relation name, arity) packed the way DeltaLog keys entries.
uint64_t RelKey(TermId name, uint32_t arity) {
  return (static_cast<uint64_t>(name) << 32) | arity;
}

/// Flattens a HiLog predicate-name chain's parameter arguments followed by
/// the subgoal arguments into one column list (same discipline as
/// nail_to_glue.cc — the flattened storage layout).
std::vector<Term> FlattenCols(const Term& pred,
                              const std::vector<Term>& args) {
  std::vector<Term> cols;
  std::vector<const Term*> chain;
  std::function<void(const Term&)> collect = [&](const Term& t) {
    if (!t.IsApply()) return;
    collect(t.functor());
    for (size_t i = 0; i < t.apply_arity(); ++i) chain.push_back(&t.arg(i));
  };
  collect(pred);
  for (const Term* t : chain) cols.push_back(*t);
  for (const Term& a : args) cols.push_back(a);
  return cols;
}

/// Replaces every wildcard with a fresh `$w<n>` variable so each distinct
/// matching tuple yields a distinct binding record — the counting
/// algorithm reads derivation multiplicities straight off the record set.
void RenameWildcards(Term* t, int* counter) {
  if (t->IsWildcard()) {
    *t = Term::Variable(StrCat("$w", (*counter)++));
    return;
  }
  for (Term& c : t->children) RenameWildcards(&c, counter);
}

void AddVars(const Term& t, std::vector<std::string>* out,
             std::unordered_set<std::string>* seen) {
  std::vector<std::string> tmp;
  t.CollectVariables(&tmp);
  for (std::string& v : tmp) {
    if (seen->insert(v).second) out->push_back(std::move(v));
  }
}

/// Whether every op of \p plan is something the maintenance joins can run
/// body-only over frozen storage: matches/negations on EDB or NAIL!
/// relations (read-override-able) and comparisons. Aggregates, group_by,
/// calls, body updates, and dynamic HiLog access all disqualify the rule.
bool PlanCapable(const StatementPlan& plan) {
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case OpKind::kMatch:
      case OpKind::kNegMatch:
        if (op.access.kind != PredicateAccess::Kind::kEdb &&
            op.access.kind != PredicateAccess::Kind::kNail) {
          return false;
        }
        break;
      case OpKind::kCompare:
        break;
      default:
        return false;
    }
  }
  return true;
}

/// Body-only executors read through SelectConst, which never builds
/// indexes — so build any keyed index up front, where the writer path
/// would have built it adaptively (mirrors ParallelIterate).
void BuildIndexesFor(const StatementPlan& plan, Database* edb, Database* idb,
                     const std::unordered_map<TermId, Relation*>& overrides) {
  for (const PlanOp& op : plan.ops) {
    if (op.kind != OpKind::kMatch && op.kind != OpKind::kNegMatch) continue;
    if (op.bound_mask == 0) continue;
    Relation* rel = nullptr;
    auto it = overrides.find(op.access.name);
    if (it != overrides.end()) {
      rel = it->second;
    } else if (op.access.kind == PredicateAccess::Kind::kEdb) {
      rel = edb->Find(op.access.name, op.access.arity);
    } else if (op.access.kind == PredicateAccess::Kind::kNail) {
      rel = idb->Find(op.access.name, op.access.arity);
    }
    if (rel != nullptr && rel->index_policy() != IndexPolicy::kNeverIndex &&
        rel->size() >= 64) {
      rel->EnsureIndex(op.bound_mask);
    }
  }
}

/// Runs \p plan body-only through \p ex and hands each binding record's
/// head tuple (the first \p ncols head expressions) to \p f. One call per
/// record, so multiplicities survive.
template <typename F>
Status RunPlanHeads(Executor* ex, const StatementPlan& plan, size_t ncols,
                    TermPool* pool, F&& f) {
  Frame frame(nullptr);
  RecordSet sup;
  GLUENAIL_RETURN_NOT_OK(ex->ExecuteBodyOnly(plan, &frame, &sup));
  for (const Record& rec : sup.records) {
    Tuple t;
    t.reserve(ncols);
    for (size_t i = 0; i < ncols; ++i) {
      GLUENAIL_ASSIGN_OR_RETURN(
          TermId v, EvalExpr(plan, plan.head.arg_exprs[i], rec, pool));
      t.push_back(v);
    }
    f(std::move(t));
  }
  return Status::OK();
}

}  // namespace

/// Per-refresh working state. Everything old-state-shaped lives here as
/// private copies; live relations are only patched with *final* nets.
struct NailEngine::IvmCtx {
  /// Net change of one relation: rows now present that were absent at the
  /// memo's snapshot, and vice versa.
  struct Net {
    explicit Net(uint32_t arity)
        : inserted("$ivm+", arity), erased("$ivm-", arity) {}
    Relation inserted;
    Relation erased;
    uint64_t rows() const { return inserted.size() + erased.size(); }
  };

  /// RelKey -> net change. Seeded from the delta log's EDB captures;
  /// memo storage keys are appended as their SCCs complete, so downstream
  /// SCCs see upstream memo deltas uniformly.
  std::unordered_map<uint64_t, std::unique_ptr<Net>> changed;
  /// Memo nets to mirror into published HiLog instances, in SCC order.
  std::vector<std::pair<int, const Net*>> publish;
  /// DRed old-state over-approximation per changed relation:
  /// live ∪ erased ⊇ old (also ⊇ new — safe for over-deletion).
  std::unordered_map<uint64_t, std::unique_ptr<Relation>> unions;
  /// Counting backfill: exact pre-delta copies of changed EDB relations
  /// (live − inserted ∪ erased).
  std::unordered_map<uint64_t, std::unique_ptr<Relation>> old_state;

  uint64_t rows_out = 0;
  bool used_counting = false;
  bool used_dred = false;
  std::string fallback;

  Net* Find(uint64_t key) {
    auto it = changed.find(key);
    return it == changed.end() ? nullptr : it->second.get();
  }
};

Status NailEngine::EnsureIvmPlans() {
  if (ivm_plans_ready_) return Status::OK();
  ivm_plans_ready_ = true;
  ivm_program_capable_ = false;
  if (nail_scope_ == nullptr || exec_ == nullptr) return Status::OK();

  // All reserved names live in a scope layered over the direct-compile
  // scope; the plans intern everything they need, so the layer itself can
  // die with this function.
  Scope scope(nail_scope_.get());

  // Deletion-set relations for DRed rederivation, one per predicate.
  ivm_dset_names_.assign(program_.preds.size(), kNullTerm);
  for (size_t p = 0; p < program_.preds.size(); ++p) {
    const NailPred& pred = program_.preds[p];
    std::string dname = StrCat("$ivm$dset$", p);
    ivm_dset_names_[p] = pool_->MakeSymbol(dname);
    PredBinding b;
    b.cls = PredClass::kNail;
    b.free_arity = pred.columns();
    b.name = ivm_dset_names_[p];
    scope.Declare(dname, 0, pred.columns(), b);
  }

  CompileEnv env;
  env.pool = pool_;
  env.scope = &scope;
  env.implicit_edb = true;
  env.stats = stats_;
  // Delta-position-first plans: reordering off keeps the delta subgoal in
  // front so the join cost is proportional to the delta, not the base.
  PlannerOptions delta_opts = planner_opts_;
  delta_opts.reorder = false;

  // A plan that fails without reordering (the original body order may not
  // be schedulable as written) is retried with the regular planner — the
  // join result is the same set of bindings either way.
  auto plan_either = [&](const ast::Assignment& a,
                         StatementPlan* out) -> bool {
    Result<StatementPlan> r = PlanAssignment(a, env, delta_opts);
    if (!r.ok()) r = PlanAssignment(a, env, planner_opts_);
    if (!r.ok() || !PlanCapable(*r)) return false;
    *out = std::move(*r);
    return true;
  };

  std::vector<int> rule_pred(program_.rules.size(), -1);
  for (size_t p = 0; p < program_.preds.size(); ++p) {
    for (int r : program_.preds[p].rules) {
      rule_pred[static_cast<size_t>(r)] = static_cast<int>(p);
    }
  }

  ivm_rules_.clear();
  ivm_rules_.resize(program_.rules.size());
  bool all_ok = true;
  for (size_t r = 0; r < program_.rules.size(); ++r) {
    IvmRule& ir = ivm_rules_[r];
    ir.pred = rule_pred[r];
    const ast::NailRule& rule = program_.rules[r];
    bool ok = ir.pred >= 0;

    ir.head_cols = FlattenCols(rule.head_pred, rule.head_args);
    for (const Term& c : ir.head_cols) {
      if (!c.IsVariable() && !c.IsGround()) ok = false;
    }

    // Wildcard-free body copy (positive atoms only: a fresh variable in a
    // negated atom would be unbound and unsafe, and negations are pure
    // filters so their wildcards cannot inflate multiplicities).
    ir.body = rule.body;
    int wc = 0;
    for (Subgoal& g : ir.body) {
      if (g.kind != ast::SubgoalKind::kAtom) continue;
      for (Term& a : g.args) RenameWildcards(&a, &wc);
    }

    std::unordered_set<std::string> seen;
    for (const Subgoal& g : ir.body) {
      if (g.kind == ast::SubgoalKind::kAtom ||
          g.kind == ast::SubgoalKind::kNegatedAtom) {
        AddVars(g.pred, &ir.vars, &seen);
        for (const Term& a : g.args) AddVars(a, &ir.vars, &seen);
      } else if (g.kind == ast::SubgoalKind::kComparison) {
        AddVars(g.lhs, &ir.vars, &seen);
        AddVars(g.rhs, &ir.vars, &seen);
      }
    }

    // Resolve every atom position to its relation: NAIL! memo storage, or
    // an EDB relation named by the (ground) predicate term.
    auto resolve = [&](const Subgoal& g, size_t index,
                       IvmRule::Pos* pos) -> bool {
      std::string root;
      uint32_t params = 0;
      if (!StaticPredName(g.pred, &root, &params)) return false;
      int dp = program_.FindPred(root, params,
                                 static_cast<uint32_t>(g.args.size()));
      pos->index = index;
      if (dp >= 0) {
        const NailPred& dep = program_.preds[static_cast<size_t>(dp)];
        pos->rel = dep.storage;
        pos->arity = dep.columns();
        pos->nail_pred = dp;
        return true;
      }
      Result<TermId> nm = InternGroundTerm(pool_, g.pred);
      if (!nm.ok()) return false;
      pos->rel = *nm;
      pos->arity = static_cast<uint32_t>(g.args.size());
      pos->nail_pred = -1;
      return true;
    };
    for (size_t i = 0; ok && i < ir.body.size(); ++i) {
      const Subgoal& g = ir.body[i];
      IvmRule::Pos pos;
      switch (g.kind) {
        case ast::SubgoalKind::kAtom:
          if (!resolve(g, i, &pos)) ok = false;
          else ir.positions.push_back(pos);
          break;
        case ast::SubgoalKind::kNegatedAtom:
          if (!resolve(g, i, &pos)) ok = false;
          else ir.negations.push_back(pos);
          break;
        case ast::SubgoalKind::kComparison:
          break;
        default:
          ok = false;
          break;
      }
    }

    if (ok) {
      size_t H = ir.head_cols.size();
      // Synthetic heads: the all-vars head exposes head columns plus every
      // body variable (one record == one derivation); the rederive head is
      // just the head columns. Both are assignable reserved kNail names —
      // assignable so head planning succeeds, though only bodies ever run.
      std::string hname = StrCat("$ivm$h$", r);
      uint32_t hv = static_cast<uint32_t>(H + ir.vars.size());
      PredBinding hb;
      hb.cls = PredClass::kNail;
      hb.free_arity = hv;
      hb.name = pool_->MakeSymbol(hname);
      hb.assignable = true;
      scope.Declare(hname, 0, hv, hb);
      std::string rhname = StrCat("$ivm$rh$", r);
      PredBinding rhb;
      rhb.cls = PredClass::kNail;
      rhb.free_arity = static_cast<uint32_t>(H);
      rhb.name = pool_->MakeSymbol(rhname);
      rhb.assignable = true;
      scope.Declare(rhname, 0, static_cast<uint32_t>(H), rhb);

      std::vector<Term> all_head = ir.head_cols;
      for (const std::string& v : ir.vars) all_head.push_back(Term::Variable(v));

      // One delta plan per positive position: that position rotated to the
      // front, redirected to a reserved per-(rule, position) name that the
      // refresh read-overrides to whichever delta relation it is joining.
      for (size_t k = 0; ok && k < ir.positions.size(); ++k) {
        IvmRule::Pos& pos = ir.positions[k];
        std::string uname = StrCat("$ivm$u$", r, "$", k);
        pos.scope_name = pool_->MakeSymbol(uname);
        PredBinding ub;
        ub.cls = PredClass::kNail;
        ub.free_arity = pos.arity;
        ub.name = pos.scope_name;
        scope.Declare(uname, 0, pos.arity, ub);

        ast::Assignment a;
        a.head_pred = Term::Symbol(hname);
        a.head_args = all_head;
        a.op = ast::AssignOp::kInsert;
        Subgoal dg = ir.body[pos.index];
        if (pos.nail_pred >= 0) {
          // Memo positions flatten HiLog params into columns; EDB delta
          // rows already carry plain argument columns (the params live in
          // the relation name), so those keep their args.
          std::vector<Term> cols = FlattenCols(dg.pred, dg.args);
          dg.args = std::move(cols);
        }
        dg.pred = Term::Symbol(uname);
        a.body.push_back(std::move(dg));
        for (size_t j = 0; j < ir.body.size(); ++j) {
          if (j != pos.index) a.body.push_back(ir.body[j]);
        }
        ir.delta_plans.emplace_back();
        if (!plan_either(a, &ir.delta_plans.back())) ok = false;
      }

      // Counting backfill: the original body under the all-vars head, run
      // over full (pre-delta, via overrides) relations.
      if (ok) {
        ast::Assignment a;
        a.head_pred = Term::Symbol(hname);
        a.head_args = all_head;
        a.op = ast::AssignOp::kInsert;
        a.body = ir.body;
        Result<StatementPlan> cp = PlanAssignment(a, env, planner_opts_);
        if (!cp.ok() || !PlanCapable(*cp)) ok = false;
        else ir.count_plan = std::move(*cp);
      }

      // DRed rederivation: semi-join the head predicate's deletion set
      // against the body — a deleted tuple with a surviving derivation
      // comes back.
      if (ok) {
        const NailPred& hp = program_.preds[static_cast<size_t>(ir.pred)];
        ast::Assignment a;
        a.head_pred = Term::Symbol(rhname);
        a.head_args = ir.head_cols;
        a.op = ast::AssignOp::kInsert;
        a.body.push_back(Subgoal::Atom(
            Term::Symbol(StrCat("$ivm$dset$", ir.pred)), ir.head_cols));
        for (const Subgoal& g : ir.body) a.body.push_back(g);
        (void)hp;
        if (!plan_either(a, &ir.rederive)) ok = false;
      }
    }

    ir.ok = ok;
    all_ok = all_ok && ok;
  }
  ivm_program_capable_ = all_ok && !program_.rules.empty();
  return Status::OK();
}

Status NailEngine::RefreshIncremental(NailRefreshInfo* info, bool* done) {
  *done = false;
  GLUENAIL_RETURN_NOT_OK(EnsureIvmPlans());
  if (!ivm_program_capable_) {
    info->fallback = "unsupported-rule";
    return Status::OK();
  }
  ScopedSpan span("nail:delta-refresh");

  IvmCtx ctx;
  uint64_t rows_in = 0;
  bool too_big = false;
  delta_log_->ForEach([&](TermId name, uint32_t arity,
                          const DeltaLog::RelDelta& d) {
    if (d.rows() == 0) return;
    rows_in += d.rows();
    if (ivm_mode_ != IvmMode::kForce) {
      Relation* live = edb_->Find(name, arity);
      size_t base = live != nullptr ? live->size() : 0;
      if (base < 256) base = 256;
      if (static_cast<double>(d.rows()) >
          ivm_max_fraction_ * static_cast<double>(base)) {
        too_big = true;
      }
    }
    auto net = std::make_unique<IvmCtx::Net>(arity);
    net->inserted.CopyFrom(d.inserted);
    net->erased.CopyFrom(d.erased);
    ctx.changed[RelKey(name, arity)] = std::move(net);
  });
  info->delta_rows_in = rows_in;
  if (span.active()) span.AddRows(rows_in);
  if (too_big) {
    info->fallback = "delta-fraction";
    return Status::OK();
  }
  if (ctx.changed.empty()) {
    info->mode = "empty";
    *done = true;
    return Status::OK();
  }

  // Executor read overrides are keyed by relation *name* only. If a
  // changed relation's name is read at more than one arity anywhere in
  // the program, a name-keyed override would cross-wire the arities.
  {
    std::unordered_map<TermId, uint32_t> read_arity;
    std::unordered_set<TermId> overloaded;
    auto note = [&](const IvmRule::Pos& pos) {
      auto [it, inserted] = read_arity.emplace(pos.rel, pos.arity);
      if (!inserted && it->second != pos.arity) overloaded.insert(pos.rel);
    };
    for (const IvmRule& ir : ivm_rules_) {
      for (const IvmRule::Pos& pos : ir.positions) note(pos);
      for (const IvmRule::Pos& pos : ir.negations) note(pos);
    }
    for (const auto& [key, net] : ctx.changed) {
      TermId name = static_cast<TermId>(key >> 32);
      uint32_t arity = static_cast<uint32_t>(key);
      auto it = read_arity.find(name);
      if (overloaded.count(name) != 0 ||
          (it != read_arity.end() && it->second != arity)) {
        info->fallback = "arity-overload";
        return Status::OK();
      }
    }
  }

  // Possibly-affected predicates, by topological propagation from the
  // changed EDB keys (memo nets materialize later, but any pred they could
  // reach is already downstream of a changed key here).
  std::vector<bool> affected(program_.preds.size(), false);
  for (const std::vector<int>& sccp : program_.scc_order) {
    bool any = false;
    for (int p : sccp) {
      for (int r : program_.preds[static_cast<size_t>(p)].rules) {
        const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
        auto touches = [&](const IvmRule::Pos& pos) {
          if (pos.nail_pred >= 0 &&
              affected[static_cast<size_t>(pos.nail_pred)]) {
            return true;
          }
          IvmCtx::Net* net = ctx.Find(RelKey(pos.rel, pos.arity));
          return net != nullptr && net->rows() > 0;
        };
        for (const IvmRule::Pos& pos : ir.positions) {
          if (touches(pos)) affected[static_cast<size_t>(p)] = true;
        }
        for (const IvmRule::Pos& pos : ir.negations) {
          if (touches(pos)) affected[static_cast<size_t>(p)] = true;
        }
      }
      any = any || affected[static_cast<size_t>(p)];
    }
    // Mutual recursion: one affected member affects the whole SCC.
    if (any) {
      for (int p : sccp) affected[static_cast<size_t>(p)] = true;
    }
  }

  // Counting needs pre-delta derivation counts. Backfill them *up front* —
  // before any memo is patched — so every count_plan run sees the old
  // state: changed EDB relations through exact old-state copies, upstream
  // memos as they stand (unpatched == old).
  std::vector<int> backfill;
  for (size_t p = 0; p < program_.preds.size(); ++p) {
    const NailPred& pred = program_.preds[p];
    if (!affected[p]) continue;
    if (program_.scc_recursive[static_cast<size_t>(pred.scc)]) continue;
    if (counts_.count(RelKey(pred.storage, pred.columns())) != 0) continue;
    backfill.push_back(static_cast<int>(p));
  }
  if (!backfill.empty()) {
    for (const auto& [key, net] : ctx.changed) {
      TermId name = static_cast<TermId>(key >> 32);
      uint32_t arity = static_cast<uint32_t>(key);
      auto old = std::make_unique<Relation>("$ivm$old", arity);
      Relation* live = edb_->Find(name, arity);
      if (live != nullptr) old->CopyFrom(*live);
      for (RowView t : net->inserted) old->Erase(t);
      for (RowView t : net->erased) old->Insert(t);
      ctx.old_state[key] = std::move(old);
    }
    for (int p : backfill) {
      GLUENAIL_RETURN_NOT_OK(EnsureCounts(p, &ctx));
    }
  }

  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    const std::vector<int>& sccp = program_.scc_order[s];
    bool live_affected = false;
    for (int p : sccp) {
      for (int r : program_.preds[static_cast<size_t>(p)].rules) {
        const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
        for (const IvmRule::Pos& pos : ir.positions) {
          IvmCtx::Net* net = ctx.Find(RelKey(pos.rel, pos.arity));
          if (net != nullptr && net->rows() > 0) live_affected = true;
        }
        for (const IvmRule::Pos& pos : ir.negations) {
          IvmCtx::Net* net = ctx.Find(RelKey(pos.rel, pos.arity));
          if (net != nullptr && net->rows() > 0) {
            // Negation is not monotone in the delta; neither algorithm
            // handles a negated premise whose relation changed.
            info->fallback = "negation-on-delta";
            return Status::OK();
          }
        }
      }
    }
    if (!live_affected) continue;
    bool ok = false;
    if (program_.scc_recursive[s]) {
      GLUENAIL_RETURN_NOT_OK(RefreshSccDred(s, &ctx, &ok));
    } else {
      GLUENAIL_RETURN_NOT_OK(RefreshSccCounting(s, &ctx, &ok));
    }
    if (!ok) {
      info->fallback = ctx.fallback.empty() ? "error" : ctx.fallback;
      return Status::OK();
    }
  }

  // Patch the published HiLog instances with the final memo nets.
  for (const auto& [p, net] : ctx.publish) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    TermId root = pool_->MakeSymbol(pred.root);
    if (pred.params == 0) {
      Relation* pub = idb_->GetOrCreate(root, pred.arity);
      for (RowView t : net->erased) pub->Erase(t);
      for (RowView t : net->inserted) pub->Insert(t);
      continue;
    }
    for (RowView t : net->erased) {
      std::vector<TermId> params(t.begin(), t.begin() + pred.params);
      TermId name = pool_->MakeCompound(root, params);
      Relation* pub = idb_->Find(name, pred.arity);
      // An instance emptied by the erase stays behind as an empty
      // relation; readers treat empty and missing alike.
      if (pub != nullptr) pub->Erase(t.subspan(pred.params));
    }
    for (RowView t : net->inserted) {
      std::vector<TermId> params(t.begin(), t.begin() + pred.params);
      TermId name = pool_->MakeCompound(root, params);
      idb_->GetOrCreate(name, pred.arity)->Insert(t.subspan(pred.params));
    }
  }

  info->delta_rows_out = ctx.rows_out;
  info->mode = ctx.used_counting && ctx.used_dred ? "counting+dred"
               : ctx.used_dred                    ? "dred"
               : ctx.used_counting                ? "counting"
                                                  : "empty";
  *done = true;
  return Status::OK();
}

Status NailEngine::EnsureCounts(int p, IvmCtx* ctx) {
  const NailPred& pred = program_.preds[static_cast<size_t>(p)];
  auto& cnts = counts_[RelKey(pred.storage, pred.columns())];
  cnts.clear();

  ExecOptions opts = exec_->options();
  opts.read_only_storage = true;
  opts.writable_private_idb = false;
  RuntimeEnv renv;
  renv.nail = this;
  Executor ex(exec_->program(), edb_, idb_, pool_, renv, opts);
  std::unordered_map<TermId, Relation*> ov;
  for (const auto& [key, old] : ctx->old_state) {
    TermId name = static_cast<TermId>(key >> 32);
    ex.AddReadOverride(name, old.get());
    ov[name] = old.get();
  }
  for (int r : pred.rules) {
    const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
    BuildIndexesFor(ir.count_plan, edb_, idb_, ov);
    GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
        &ex, ir.count_plan, ir.head_cols.size(), pool_,
        [&](Tuple t) { ++cnts[std::move(t)]; }));
  }
  return Status::OK();
}

Status NailEngine::RefreshSccCounting(size_t s, IvmCtx* ctx, bool* ok) {
  *ok = false;
  ScopedSpan span("nail:ivm-counting");
  ctx->used_counting = true;

  ExecOptions opts = exec_->options();
  opts.read_only_storage = true;
  opts.writable_private_idb = false;
  RuntimeEnv renv;
  renv.nail = this;
  Executor ex(exec_->program(), edb_, idb_, pool_, renv, opts);
  std::unordered_map<TermId, Relation*> ov;

  for (int p : program_.scc_order[s]) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    uint64_t skey = RelKey(pred.storage, pred.columns());
    auto cit = counts_.find(skey);
    if (cit == counts_.end()) {
      ctx->fallback = "error";
      return Status::OK();
    }
    auto& cnts = cit->second;
    Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());

    // Derivation-count delta for this pred across all its rules.
    std::unordered_map<Tuple, int64_t, TupleHash> dc;
    for (int r : pred.rules) {
      const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
      std::vector<size_t> changed_pos;
      for (size_t k = 0; k < ir.positions.size(); ++k) {
        IvmCtx::Net* net =
            ctx->Find(RelKey(ir.positions[k].rel, ir.positions[k].arity));
        if (net != nullptr && net->rows() > 0) changed_pos.push_back(k);
      }
      if (changed_pos.empty()) continue;
      if (changed_pos.size() > 1) {
        // Counting is exact only when a single position changed (the
        // others then read identical old and new states). Multi-position
        // deltas would need staged old/new joins — fall back instead.
        ctx->fallback = "counting-multi-delta";
        return Status::OK();
      }
      size_t k = changed_pos[0];
      const IvmRule::Pos& pos = ir.positions[k];
      IvmCtx::Net* net = ctx->Find(RelKey(pos.rel, pos.arity));
      const StatementPlan& plan = ir.delta_plans[k];
      for (int side = 0; side < 2; ++side) {
        Relation* drel = side == 0 ? &net->inserted : &net->erased;
        int64_t sign = side == 0 ? 1 : -1;
        if (drel->empty()) continue;
        ex.AddReadOverride(pos.scope_name, drel);
        ov[pos.scope_name] = drel;
        BuildIndexesFor(plan, edb_, idb_, ov);
        GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
            &ex, plan, ir.head_cols.size(), pool_,
            [&](Tuple t) { dc[std::move(t)] += sign; }));
      }
    }

    auto out = std::make_unique<IvmCtx::Net>(pred.columns());
    for (auto& [t, d] : dc) {
      if (d == 0) continue;
      auto it = cnts.find(t);
      int64_t c = it == cnts.end() ? 0 : it->second;
      int64_t nc = c + d;
      if (nc < 0) {
        ctx->fallback = "count-mismatch";
        return Status::OK();
      }
      if (nc == 0) {
        cnts.erase(it);
        if (!memo->Erase(t)) {
          ctx->fallback = "count-mismatch";
          return Status::OK();
        }
        out->erased.Insert(t);
      } else {
        if (it == cnts.end()) {
          cnts.emplace(t, nc);
        } else {
          it->second = nc;
        }
        if (c == 0) {
          if (!memo->Insert(t)) {
            ctx->fallback = "count-mismatch";
            return Status::OK();
          }
          out->inserted.Insert(t);
        }
      }
    }
    if (span.active()) span.AddRows(out->rows());
    ctx->rows_out += out->rows();
    if (out->rows() > 0) {
      ctx->publish.emplace_back(p, out.get());
      ctx->changed[skey] = std::move(out);
    }
  }
  *ok = true;
  return Status::OK();
}

Status NailEngine::RefreshSccDred(size_t s, IvmCtx* ctx, bool* ok) {
  *ok = false;
  ScopedSpan span("nail:ivm-dred");
  ctx->used_dred = true;
  const std::vector<int>& sccp = program_.scc_order[s];
  std::unordered_set<int> internal(sccp.begin(), sccp.end());
  auto is_internal = [&](const IvmRule::Pos& pos) {
    return pos.nail_pred >= 0 && internal.count(pos.nail_pred) != 0;
  };

  // Deletion sets and per-round propagation deltas.
  std::unordered_map<int, std::unique_ptr<Relation>> dset, ddelta, dnext;
  for (int p : sccp) {
    uint32_t cols = program_.preds[static_cast<size_t>(p)].columns();
    dset[p] = std::make_unique<Relation>("$ivm$D", cols);
    ddelta[p] = std::make_unique<Relation>("$ivm$Dd", cols);
    dnext[p] = std::make_unique<Relation>("$ivm$Dn", cols);
  }

  ExecOptions bopts = exec_->options();
  bopts.read_only_storage = true;
  bopts.writable_private_idb = false;
  RuntimeEnv renv;
  renv.nail = this;

  // ---- Phase 1: over-delete. Derivations lost to erased external rows,
  // then propagated through the SCC. Non-delta reads of changed external
  // relations go through live ∪ erased copies: a superset of the old
  // state, so nothing deletable is missed (extra deletions rederive).
  Executor del_exec(exec_->program(), edb_, idb_, pool_, renv, bopts);
  std::unordered_map<TermId, Relation*> del_ov;
  for (int p : sccp) {
    for (int r : program_.preds[static_cast<size_t>(p)].rules) {
      const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
      for (const IvmRule::Pos& pos : ir.positions) {
        if (is_internal(pos)) continue;
        uint64_t key = RelKey(pos.rel, pos.arity);
        IvmCtx::Net* net = ctx->Find(key);
        if (net == nullptr || net->erased.empty()) continue;
        auto uit = ctx->unions.find(key);
        if (uit == ctx->unions.end()) {
          auto u = std::make_unique<Relation>("$ivm$old+", pos.arity);
          Relation* live = pos.nail_pred >= 0
                               ? idb_->Find(pos.rel, pos.arity)
                               : edb_->Find(pos.rel, pos.arity);
          if (live != nullptr) u->CopyFrom(*live);
          u->UnionAll(net->erased);
          uit = ctx->unions.emplace(key, std::move(u)).first;
        }
        del_exec.AddReadOverride(pos.rel, uit->second.get());
        del_ov[pos.rel] = uit->second.get();
      }
    }
  }
  for (int p : sccp) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
    for (int r : pred.rules) {
      const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
      for (size_t k = 0; k < ir.positions.size(); ++k) {
        const IvmRule::Pos& pos = ir.positions[k];
        if (is_internal(pos)) continue;
        IvmCtx::Net* net = ctx->Find(RelKey(pos.rel, pos.arity));
        if (net == nullptr || net->erased.empty()) continue;
        del_exec.AddReadOverride(pos.scope_name, &net->erased);
        del_ov[pos.scope_name] = &net->erased;
        BuildIndexesFor(ir.delta_plans[k], edb_, idb_, del_ov);
        GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
            &del_exec, ir.delta_plans[k], ir.head_cols.size(), pool_,
            [&](Tuple t) {
              if (memo->Contains(t) && dset[p]->Insert(t)) {
                ddelta[p]->Insert(t);
              }
            }));
      }
    }
  }
  // Propagate deletions through internal positions. The memos stay
  // unpatched throughout this phase, so non-delta internal reads see
  // exactly the old state (deleted tuples included — textbook DRed).
  bool progress = true;
  while (progress) {
    progress = false;
    for (int p : sccp) dnext[p]->Clear();
    for (int p : sccp) {
      const NailPred& pred = program_.preds[static_cast<size_t>(p)];
      Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
      for (int r : pred.rules) {
        const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
        for (size_t k = 0; k < ir.positions.size(); ++k) {
          const IvmRule::Pos& pos = ir.positions[k];
          if (!is_internal(pos)) continue;
          Relation* cur = ddelta[pos.nail_pred].get();
          if (cur->empty()) continue;
          del_exec.AddReadOverride(pos.scope_name, cur);
          del_ov[pos.scope_name] = cur;
          BuildIndexesFor(ir.delta_plans[k], edb_, idb_, del_ov);
          GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
              &del_exec, ir.delta_plans[k], ir.head_cols.size(), pool_,
              [&](Tuple t) {
                if (memo->Contains(t) && dset[p]->Insert(t)) {
                  dnext[p]->Insert(t);
                }
              }));
        }
      }
    }
    for (int p : sccp) {
      if (!dnext[p]->empty()) progress = true;
      std::swap(ddelta[p], dnext[p]);
    }
  }

  // ---- Phase 2: erase the over-deleted tuples, then rederive survivors
  // through the deletion-set semi-join plans against the *deleted* memo
  // state (plus the new EDB / patched upstream memos). A rederived tuple
  // leaves the deletion set and re-enters the memo, enabling more
  // rederivations, to fixpoint.
  for (int p : sccp) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
    for (RowView t : *dset[p]) memo->Erase(t);
  }
  Executor red_exec(exec_->program(), edb_, idb_, pool_, renv, bopts);
  std::unordered_map<TermId, Relation*> red_ov;
  for (int p : sccp) {
    red_exec.AddReadOverride(ivm_dset_names_[static_cast<size_t>(p)],
                             dset[p].get());
    red_ov[ivm_dset_names_[static_cast<size_t>(p)]] = dset[p].get();
  }
  bool rprogress = true;
  while (rprogress) {
    rprogress = false;
    for (int p : sccp) {
      if (dset[p]->empty()) continue;
      const NailPred& pred = program_.preds[static_cast<size_t>(p)];
      Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
      for (int r : pred.rules) {
        if (dset[p]->empty()) break;
        const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
        BuildIndexesFor(ir.rederive, edb_, idb_, red_ov);
        std::vector<Tuple> found;
        GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
            &red_exec, ir.rederive, ir.head_cols.size(), pool_,
            [&](Tuple t) { found.push_back(std::move(t)); }));
        for (Tuple& t : found) {
          if (dset[p]->Erase(t)) {
            memo->Insert(t);
            rprogress = true;
          }
        }
      }
    }
  }

  // ---- Phase 3: insertions. Rows appended from here on are the
  // candidate net inserts (rederived tuples re-entered the arena in phase
  // 2, below these markers, and are not net changes).
  std::unordered_map<int, uint32_t> marker;
  for (int p : sccp) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    marker[p] = idb_->GetOrCreate(pred.storage, pred.columns())->num_rows();
    idb_->GetOrCreate(pred.delta_storage, pred.columns())->Clear();
    idb_->GetOrCreate(pred.newdelta_storage, pred.columns())->Clear();
  }
  Executor ins_exec(exec_->program(), edb_, idb_, pool_, renv, bopts);
  std::unordered_map<TermId, Relation*> ins_ov;
  bool seeded = false;
  for (int p : sccp) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
    Relation* delta = idb_->GetOrCreate(pred.delta_storage, pred.columns());
    for (int r : pred.rules) {
      const IvmRule& ir = ivm_rules_[static_cast<size_t>(r)];
      for (size_t k = 0; k < ir.positions.size(); ++k) {
        const IvmRule::Pos& pos = ir.positions[k];
        if (is_internal(pos)) continue;
        IvmCtx::Net* net = ctx->Find(RelKey(pos.rel, pos.arity));
        if (net == nullptr || net->inserted.empty()) continue;
        ins_exec.AddReadOverride(pos.scope_name, &net->inserted);
        ins_ov[pos.scope_name] = &net->inserted;
        BuildIndexesFor(ir.delta_plans[k], edb_, idb_, ins_ov);
        GLUENAIL_RETURN_NOT_OK(RunPlanHeads(
            &ins_exec, ir.delta_plans[k], ir.head_cols.size(), pool_,
            [&](Tuple t) {
              if (memo->Insert(t)) {
                delta->Insert(t);
                seeded = true;
              }
            }));
      }
    }
  }
  if (seeded) {
    // The seeds feed the ordinary semi-naive engine — same fixpoint loop,
    // same parallel partitioned path, as a full refresh.
    GLUENAIL_RETURN_NOT_OK(RunSccFixpoint(s));
  }

  // ---- Net change: appended live rows are inserts; what remains of the
  // deletion set is erased — unless phase 3 re-derived it (a wash).
  for (int p : sccp) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    Relation* memo = idb_->GetOrCreate(pred.storage, pred.columns());
    auto out = std::make_unique<IvmCtx::Net>(pred.columns());
    std::vector<uint32_t> newrows;
    memo->CollectLiveRows(marker[p], memo->num_rows(), &newrows);
    for (uint32_t rid : newrows) {
      RowView t = memo->row(rid);
      if (dset[p]->Erase(t)) continue;
      out->inserted.Insert(t);
    }
    for (RowView t : *dset[p]) out->erased.Insert(t);
    if (span.active()) span.AddRows(out->rows());
    ctx->rows_out += out->rows();
    if (out->rows() > 0) {
      uint64_t skey = RelKey(pred.storage, pred.columns());
      ctx->publish.emplace_back(p, out.get());
      ctx->changed[skey] = std::move(out);
    }
  }
  *ok = true;
  return Status::OK();
}

}  // namespace gluenail
