#include "src/nail/seminaive.h"

#include "src/common/strings.h"
#include "src/nail/nail_to_glue.h"
#include "src/plan/planner.h"

namespace gluenail {

Status NailEngine::CompileDirect(const Scope* builtin_scope,
                                 const PlannerOptions& opts) {
  nail_scope_ = std::make_unique<Scope>(builtin_scope);
  DeclareNailScope(program_, nail_scope_.get());
  CompileEnv env;
  env.pool = pool_;
  env.scope = nail_scope_.get();
  // Rule bodies reference EDB relations without per-module declarations.
  env.implicit_edb = true;

  scc_plans_.clear();
  scc_plans_.resize(program_.scc_order.size());
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccStatements stmts =
        BuildSccStatements(program_, static_cast<int>(s));
    for (const ast::Assignment& a : stmts.init) {
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                                PlanAssignment(a, env, opts));
      scc_plans_[s].init.push_back(std::move(plan));
      // Naive baseline: same statement without delta capture.
      ast::Assignment naive = a;
      naive.has_delta = false;
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan nplan,
                                PlanAssignment(naive, env, opts));
      scc_plans_[s].naive.push_back(std::move(nplan));
    }
    for (const ast::Assignment& a : stmts.iterate) {
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                                PlanAssignment(a, env, opts));
      scc_plans_[s].iterate.push_back(std::move(plan));
    }
  }
  return Status::OK();
}

std::pair<uint64_t, uint64_t> NailEngine::EdbSnapshot() const {
  uint64_t count = 0, sum = 0;
  edb_->ForEach([&](TermId, uint32_t, Relation* rel) {
    ++count;
    sum += rel->version();
  });
  return {count, sum};
}

Status NailEngine::ClearIdb() {
  // Storage, deltas, and published instances all live in the IDB database;
  // recomputation starts from scratch.
  std::vector<std::pair<TermId, uint32_t>> keys;
  idb_->ForEach([&](TermId name, uint32_t arity, Relation*) {
    keys.emplace_back(name, arity);
  });
  for (const auto& [name, arity] : keys) {
    GLUENAIL_RETURN_NOT_OK(idb_->Drop(name, arity));
  }
  return Status::OK();
}

Result<Relation*> NailEngine::EnsureNail(TermId storage_name,
                                         uint32_t arity) {
  if (!evaluating_) {
    GLUENAIL_RETURN_NOT_OK(Refresh());
  }
  return idb_->GetOrCreate(storage_name, arity);
}

Status NailEngine::EnsureAllNail() {
  if (evaluating_) return Status::OK();
  return Refresh();
}

Status NailEngine::Refresh() {
  if (program_.empty()) return Status::OK();
  std::pair<uint64_t, uint64_t> now = EdbSnapshot();
  if (valid_ && now == snapshot_) return Status::OK();
  if (exec_ == nullptr) {
    return Status::Internal("NailEngine has no executor wired");
  }
  evaluating_ = true;
  Status st = ClearIdb();
  if (st.ok()) {
    switch (mode_) {
      case NailMode::kDirect:
        st = RefreshDirect();
        break;
      case NailMode::kNaive:
        st = RefreshNaive();
        break;
      case NailMode::kCompiledGlue:
        st = RefreshCompiled();
        break;
    }
  }
  if (st.ok()) st = Publish();
  evaluating_ = false;
  GLUENAIL_RETURN_NOT_OK(st.WithContext("NAIL! evaluation"));
  ++refresh_count_;
  // Snapshot *after* evaluation: evaluation only writes the IDB, so the
  // EDB snapshot is unchanged unless a concurrent statement interfered
  // (impossible: single-threaded).
  snapshot_ = EdbSnapshot();
  valid_ = true;
  return Status::OK();
}

Status NailEngine::RefreshDirect() {
  Frame frame(nullptr);
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccPlans& plans = scc_plans_[s];
    for (const StatementPlan& plan : plans.init) {
      GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
    }
    if (plans.iterate.empty()) continue;
    const std::vector<int>& preds = program_.scc_order[s];
    while (true) {
      ++iteration_count_;
      // Clear newdelta relations.
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        idb_->GetOrCreate(pred.newdelta_storage, pred.columns())->Clear();
      }
      for (const StatementPlan& plan : plans.iterate) {
        GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
      }
      bool done = true;
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        Relation* nd =
            idb_->GetOrCreate(pred.newdelta_storage, pred.columns());
        if (!nd->empty()) {
          done = false;
          // Shift: delta := newdelta.
          idb_->GetOrCreate(pred.delta_storage, pred.columns())
              ->CopyFrom(*nd);
        } else {
          idb_->GetOrCreate(pred.delta_storage, pred.columns())->Clear();
        }
      }
      if (done) break;
    }
  }
  return Status::OK();
}

Status NailEngine::RefreshNaive() {
  // Ablation baseline (bench E5): iterate the original rules over full
  // relations until no storage relation grows. No deltas, no uniondiff.
  Frame frame(nullptr);
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccPlans& plans = scc_plans_[s];
    const std::vector<int>& preds = program_.scc_order[s];
    while (true) {
      ++iteration_count_;
      uint64_t before = 0;
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        before += idb_->GetOrCreate(pred.storage, pred.columns())->version();
      }
      for (const StatementPlan& plan : plans.naive) {
        GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
      }
      uint64_t after = 0;
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        after += idb_->GetOrCreate(pred.storage, pred.columns())->version();
      }
      if (after == before) break;
    }
  }
  return Status::OK();
}

Status NailEngine::RefreshCompiled() {
  if (driver_proc_ < 0) {
    return Status::Internal("compiled NAIL! mode without a driver proc");
  }
  Relation input("in", 0);
  input.Insert(Tuple{});
  Relation output("out", 0);
  return exec_->CallProcedureByIndex(driver_proc_, input, &output);
}

Status NailEngine::Publish() {
  for (const NailPred& pred : program_.preds) {
    Relation* storage = idb_->GetOrCreate(pred.storage, pred.columns());
    TermId root = pool_->MakeSymbol(pred.root);
    if (pred.params == 0) {
      Relation* pub = idb_->GetOrCreate(root, pred.arity);
      pub->CopyFrom(*storage);
      continue;
    }
    for (const Tuple& t : *storage) {
      std::vector<TermId> params(t.begin(), t.begin() + pred.params);
      TermId name = pool_->MakeCompound(root, params);
      Relation* pub = idb_->GetOrCreate(name, pred.arity);
      pub->Insert(Tuple(t.begin() + pred.params, t.end()));
    }
  }
  return Status::OK();
}

}  // namespace gluenail
