#include "src/nail/seminaive.h"

#include <memory>
#include <optional>
#include <unordered_set>

#include "src/common/strings.h"
#include "src/nail/nail_to_glue.h"
#include "src/obs/trace.h"
#include "src/plan/planner.h"

namespace gluenail {

Status NailEngine::CompileDirect(const Scope* builtin_scope,
                                 const PlannerOptions& opts,
                                 const StatsProvider* stats) {
  planner_opts_ = opts;
  stats_ = stats;
  nail_scope_ = std::make_unique<Scope>(builtin_scope);
  DeclareNailScope(program_, nail_scope_.get());
  CompileEnv env;
  env.pool = pool_;
  env.scope = nail_scope_.get();
  // Rule bodies reference EDB relations without per-module declarations.
  env.implicit_edb = true;
  env.stats = stats;

  scc_plans_.clear();
  scc_plans_.resize(program_.scc_order.size());
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccStatements stmts =
        BuildSccStatements(program_, static_cast<int>(s));
    for (const ast::Assignment& a : stmts.init) {
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                                PlanAssignment(a, env, opts));
      scc_plans_[s].init.push_back(std::move(plan));
      // Naive baseline: same statement without delta capture.
      ast::Assignment naive = a;
      naive.has_delta = false;
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan nplan,
                                PlanAssignment(naive, env, opts));
      scc_plans_[s].naive.push_back(std::move(nplan));
    }
    for (const ast::Assignment& a : stmts.iterate) {
      GLUENAIL_ASSIGN_OR_RETURN(StatementPlan plan,
                                PlanAssignment(a, env, opts));
      scc_plans_[s].iterate_info.push_back(AnalyzeIterate(plan));
      scc_plans_[s].iterate.push_back(std::move(plan));
      scc_plans_[s].iterate_asts.push_back(a);
    }
    scc_plans_[s].last_planned_delta = 0;
  }
  return Status::OK();
}

uint64_t NailEngine::SccDeltaRows(const std::vector<int>& preds) const {
  uint64_t total = 0;
  for (int p : preds) {
    const NailPred& pred = program_.preds[static_cast<size_t>(p)];
    Relation* delta = idb_->Find(pred.delta_storage, pred.columns());
    if (delta != nullptr) total += delta->size();
  }
  return total;
}

Status NailEngine::MaybeReplanScc(SccPlans* plans,
                                  const std::vector<int>& preds) {
  // Feedback loop: the iterate plans were costed against whatever the
  // delta relations held at planning time (empty, at first compile). When
  // the observed delta volume drifts an order of magnitude — in either
  // direction — the chosen join orders may be stale, so recompile the
  // bodies against live statistics. The 8x hysteresis keeps steady-state
  // fixpoints replan-free.
  if (stats_ == nullptr || !planner_opts_.reorder ||
      planner_opts_.cost_model != PlannerOptions::CostModel::kStatistics) {
    return Status::OK();
  }
  uint64_t cur = SccDeltaRows(preds);
  uint64_t last = plans->last_planned_delta;
  bool drifted = last == 0 ? cur >= 8 : (cur >= last * 8 || last >= cur * 8);
  if (!drifted) return Status::OK();

  CompileEnv env;
  env.pool = pool_;
  env.scope = nail_scope_.get();
  env.implicit_edb = true;
  env.stats = stats_;
  for (size_t i = 0; i < plans->iterate_asts.size(); ++i) {
    GLUENAIL_ASSIGN_OR_RETURN(
        StatementPlan plan,
        PlanAssignment(plans->iterate_asts[i], env, planner_opts_));
    plans->iterate_info[i] = AnalyzeIterate(plan);
    plans->iterate[i] = std::move(plan);
  }
  plans->last_planned_delta = cur;
  replan_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::pair<uint64_t, uint64_t> NailEngine::EdbSnapshot() const {
  uint64_t count = 0, sum = 0;
  edb_->ForEach([&](TermId, uint32_t, Relation* rel) {
    ++count;
    sum += rel->version();
  });
  return {count, sum};
}

Status NailEngine::ClearIdb() {
  // Storage, deltas, and published instances all live in the IDB database;
  // recomputation starts from scratch.
  std::vector<std::pair<TermId, uint32_t>> keys;
  idb_->ForEach([&](TermId name, uint32_t arity, Relation*) {
    keys.emplace_back(name, arity);
  });
  for (const auto& [name, arity] : keys) {
    GLUENAIL_RETURN_NOT_OK(idb_->Drop(name, arity));
  }
  return Status::OK();
}

Result<Relation*> NailEngine::EnsureNail(TermId storage_name,
                                         uint32_t arity) {
  if (!evaluating_) {
    GLUENAIL_RETURN_NOT_OK(Refresh());
  }
  return idb_->GetOrCreate(storage_name, arity);
}

Status NailEngine::EnsureAllNail() {
  if (evaluating_) return Status::OK();
  return Refresh();
}

Status NailEngine::Refresh() {
  if (program_.empty()) return Status::OK();
  std::pair<uint64_t, uint64_t> now = EdbSnapshot();
  if (valid_ && now == snapshot_) return Status::OK();
  if (exec_ == nullptr) {
    return Status::Internal("NailEngine has no executor wired");
  }
  ScopedSpan refresh_span("nail:refresh");

  // ---- Delta maintenance first (docs/ARCHITECTURE.md, "Incremental
  // view maintenance"): when the captured delta log covers exactly the
  // span from the memoized snapshot to the live EDB, patch the memos
  // with counting/DRed instead of recomputing from scratch.
  NailRefreshInfo info;
  bool ivm_enabled = ivm_mode_ != IvmMode::kOff && delta_log_ != nullptr;
  // The naive mode is an ablation baseline — it must keep measuring the
  // non-incremental cost.
  bool ivm_wired =
      ivm_enabled && mode_ != NailMode::kNaive && !scc_plans_.empty();
  if (ivm_enabled && !ivm_wired) info.fallback = "mode";
  if (ivm_wired) {
    EdbVersion base{snapshot_.first, snapshot_.second};
    EdbVersion live{now.first, now.second};
    if (!valid_) {
      // Invalidate() (Recover, LoadEdbFile, program reload) — the memo is
      // untrusted regardless of what the log captured.
      info.fallback = "invalidated";
    } else if (!delta_log_->Covers(base, live)) {
      // Some change bypassed capture (Mutate, ad-hoc updates, Clear…);
      // relation versions are monotone so the watermark gives it away.
      info.fallback = "stale-memo";
    } else if (delta_log_->any_dropped()) {
      info.fallback = "delta-dropped";
    } else {
      bool done = false;
      evaluating_ = true;
      Status ist;
      try {
        ist = RefreshIncremental(&info, &done);
      } catch (const std::bad_alloc&) {
        ist = Status::ResourceExhausted(
            "allocation failed during NAIL! delta maintenance");
        done = false;
      }
      evaluating_ = false;
      if (ist.ok() && done) {
        ++refresh_count_;
        snapshot_ = now;
        valid_ = true;
        delta_log_->Rebase(live);
        delta_refresh_count_.fetch_add(1, std::memory_order_relaxed);
        ivm_rows_in_.fetch_add(info.delta_rows_in,
                               std::memory_order_relaxed);
        ivm_rows_out_.fetch_add(info.delta_rows_out,
                                std::memory_order_relaxed);
        info.seq = refresh_count_;
        info.incremental = true;
        {
          std::lock_guard<std::mutex> lock(info_mu_);
          last_refresh_ = info;
        }
        refresh_seq_.store(refresh_count_, std::memory_order_release);
        return Status::OK();
      }
      // A partially applied delta refresh may have left memo storage
      // inconsistent; distrust it so the full path rebuilds from scratch
      // (errors on the incremental path are never fatal — the full
      // recompute below is always a correct answer).
      valid_ = false;
      if (!ist.ok() && info.fallback.empty()) info.fallback = "error";
    }
  }

  evaluating_ = true;
  Status st = ClearIdb();
  if (st.ok()) {
    // Arena chunk allocation reports OOM (real or injected) by throwing
    // bad_alloc; convert it here so evaluating_ is always unwound and the
    // half-built IDB is recomputed on next demand instead of trusted.
    try {
      switch (mode_) {
        case NailMode::kDirect:
          st = RefreshDirect();
          break;
        case NailMode::kNaive:
          st = RefreshNaive();
          break;
        case NailMode::kCompiledGlue:
          st = RefreshCompiled();
          break;
      }
      if (st.ok()) st = Publish();
    } catch (const std::bad_alloc&) {
      st = Status::ResourceExhausted(
          "allocation failed during NAIL! evaluation");
    }
  }
  evaluating_ = false;
  GLUENAIL_RETURN_NOT_OK(st.WithContext("NAIL! evaluation"));
  ++refresh_count_;
  // Snapshot *after* evaluation: evaluation only writes the IDB, so the
  // EDB snapshot is unchanged unless a concurrent statement interfered
  // (impossible: refreshes run under the engine's writer lock).
  snapshot_ = EdbSnapshot();
  valid_ = true;
  // The memo was rebuilt from scratch: derivation counts no longer match
  // it (rebuilt lazily on the next counting refresh), and the delta log
  // restarts against the fresh memo.
  MarkCountsStale();
  if (delta_log_ != nullptr) {
    delta_log_->Rebase(EdbVersion{snapshot_.first, snapshot_.second});
  }
  full_refresh_count_.fetch_add(1, std::memory_order_relaxed);
  if (ivm_enabled && !info.fallback.empty()) {
    ivm_fallback_count_.fetch_add(1, std::memory_order_relaxed);
  }
  info.seq = refresh_count_;
  info.incremental = false;
  info.mode = "full";
  {
    std::lock_guard<std::mutex> lock(info_mu_);
    last_refresh_ = info;
  }
  refresh_seq_.store(refresh_count_, std::memory_order_release);
  return Status::OK();
}

Status NailEngine::RefreshDirect() {
  Frame frame(nullptr);
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccPlans& plans = scc_plans_[s];
    ScopedSpan scc_span("nail:scc");
    for (const StatementPlan& plan : plans.init) {
      GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
    }
    if (plans.iterate.empty()) continue;
    GLUENAIL_RETURN_NOT_OK(RunSccFixpoint(s));
  }
  return Status::OK();
}

Status NailEngine::RunSccFixpoint(size_t s) {
  // The caller seeds the SCC's delta relations: the init statements do it
  // for a full refresh, the DRed rederive/insert phases for an
  // incremental one. Either way the loop below is the same semi-naive
  // engine — iterate plans over deltas, shift, repeat to fixpoint.
  Frame frame(nullptr);
  SccPlans& plans = scc_plans_[s];
  const std::vector<int>& preds = program_.scc_order[s];
  while (true) {
    // One span per fixpoint iteration; rows carries the delta volume the
    // iteration started from, so a trace shows convergence at a glance.
    ScopedSpan iter_span("nail:iteration");
    if (iter_span.active()) iter_span.AddRows(SccDeltaRows(preds));
    ++iteration_count_;
    // Guardrails once per fixpoint iteration: a cancelled or
    // over-budget query aborts within one iteration.
    GLUENAIL_RETURN_NOT_OK(exec_->CheckStorageBudgets());
    // Replan the iterate bodies if the observed delta sizes drifted far
    // from what they were costed against.
    GLUENAIL_RETURN_NOT_OK(MaybeReplanScc(&plans, preds));
    // Clear newdelta relations.
    for (int p : preds) {
      const NailPred& pred = program_.preds[static_cast<size_t>(p)];
      idb_->GetOrCreate(pred.newdelta_storage, pred.columns())->Clear();
    }
    for (size_t i = 0; i < plans.iterate.size(); ++i) {
      const StatementPlan& plan = plans.iterate[i];
      const IterInfo& info = plans.iterate_info[i];
      Relation* delta = nullptr;
      if (num_threads_ > 1 && info.parallel_ok) {
        delta = idb_->Find(info.delta_name, info.delta_arity);
      }
      // Partitioning pays off only when the delta can feed every worker;
      // tiny deltas (and all barrier statements) take the serial path.
      if (delta != nullptr &&
          delta->size() >= static_cast<size_t>(num_threads_)) {
        GLUENAIL_RETURN_NOT_OK(ParallelIterate(plan, info, delta));
      } else {
        GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
      }
    }
    bool done = true;
    for (int p : preds) {
      const NailPred& pred = program_.preds[static_cast<size_t>(p)];
      Relation* nd =
          idb_->GetOrCreate(pred.newdelta_storage, pred.columns());
      if (!nd->empty()) {
        done = false;
        // Shift: delta := newdelta.
        idb_->GetOrCreate(pred.delta_storage, pred.columns())
            ->CopyFrom(*nd);
      } else {
        idb_->GetOrCreate(pred.delta_storage, pred.columns())->Clear();
      }
    }
    if (done) break;
  }
  return Status::OK();
}

NailEngine::IterInfo NailEngine::AnalyzeIterate(
    const StatementPlan& plan) const {
  IterInfo info;
  const HeadPlan& head = plan.head;
  if (head.is_return || head.op != ast::AssignOp::kInsert ||
      head.access.kind != PredicateAccess::Kind::kNail ||
      head.delta_access.kind != PredicateAccess::Kind::kNail) {
    return info;
  }
  std::unordered_set<TermId> delta_names;
  for (const NailPred& pred : program_.preds) {
    delta_names.insert(pred.delta_storage);
  }
  int delta_ops = 0;
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case OpKind::kMatch:
        if (op.access.kind != PredicateAccess::Kind::kEdb &&
            op.access.kind != PredicateAccess::Kind::kNail) {
          return info;
        }
        if (op.access.kind == PredicateAccess::Kind::kNail &&
            delta_names.count(op.access.name) != 0) {
          ++delta_ops;
          info.delta_name = op.access.name;
          info.delta_arity = op.access.arity;
        }
        break;
      case OpKind::kCompare:
        break;
      default:
        // kNegMatch marks a stratified-negation barrier; aggregates,
        // group_by, calls, and body updates are pipeline barriers. All of
        // them keep the statement on the serial path.
        return info;
    }
  }
  info.parallel_ok = delta_ops == 1 && info.delta_name != kNullTerm;
  if (!info.parallel_ok) {
    info.delta_name = kNullTerm;
    info.delta_arity = 0;
  }
  return info;
}

Status NailEngine::ParallelIterate(const StatementPlan& plan,
                                   const IterInfo& info, Relation* delta) {
  const HeadPlan& head = plan.head;
  Relation* storage = idb_->GetOrCreate(head.access.name, head.access.arity);
  Relation* newdelta =
      idb_->GetOrCreate(head.delta_access.name, head.delta_access.arity);

  // Workers read shared relations strictly through SelectConst, which
  // never builds indexes — so build any keyed index up front, serially,
  // where the serial path would have built it adaptively.
  for (const PlanOp& op : plan.ops) {
    if (op.kind != OpKind::kMatch && op.kind != OpKind::kNegMatch) continue;
    if (op.bound_mask == 0 || op.access.name == info.delta_name) continue;
    Database* db =
        op.access.kind == PredicateAccess::Kind::kEdb ? edb_ : idb_;
    Relation* rel = db->Find(op.access.name, op.access.arity);
    if (rel != nullptr && rel->index_policy() != IndexPolicy::kNeverIndex &&
        rel->size() >= 64) {
      rel->EnsureIndex(op.bound_mask);
    }
  }

  if (workers_ == nullptr) {
    workers_ = std::make_unique<WorkerPool>(num_threads_);
  }
  int k = num_threads_;
  if (static_cast<size_t>(k) > delta->size()) {
    k = static_cast<int>(delta->size());
  }

  // Contiguous-range partition of the delta: harvest the live row ids in
  // one pass, then bulk-load each worker's partition from its slice. The
  // delta is duplicate-free and the partitions start empty, so the loader
  // can skip the per-tuple dedup probe the old round-robin Insert paid.
  // Deterministic given the delta's (deterministic) insertion order.
  std::vector<uint32_t> live;
  live.reserve(delta->size());
  delta->CollectLiveRows(0, delta->num_rows(), &live);
  std::vector<std::unique_ptr<Relation>> parts;
  parts.reserve(static_cast<size_t>(k));
  const size_t per = live.size() / static_cast<size_t>(k);
  const size_t extra = live.size() % static_cast<size_t>(k);
  size_t begin = 0;
  for (int w = 0; w < k; ++w) {
    parts.push_back(std::make_unique<Relation>(delta->name(), delta->arity()));
    size_t len = per + (static_cast<size_t>(w) < extra ? 1 : 0);
    parts.back()->AppendDistinctRows(
        *delta, std::span<const uint32_t>(live).subspan(begin, len));
    begin += len;
  }

  // Each worker evaluates the body against frozen shared state, with the
  // delta subgoal redirected to its partition, and keeps only candidate
  // head tuples not already in storage. Any derivation that would need a
  // tuple merged this same round still appears: its premises are then in
  // storage ∪ newdelta, so the delta rule refires next round.
  std::vector<std::vector<Tuple>> found(static_cast<size_t>(k));
  std::vector<Status> worker_status(static_cast<size_t>(k));
  // Tracing across the fork/join: each worker records into its own sink
  // (sharing the parent's clock epoch) installed thread-locally on the
  // worker thread, so recording needs no mutex; after the barrier the
  // children merge under the span open on this thread (the iteration).
  TraceSink* parent_sink = TraceSink::Current();
  std::vector<std::unique_ptr<TraceSink>> worker_sinks;
  if (parent_sink != nullptr) {
    worker_sinks.reserve(static_cast<size_t>(k));
    for (int w = 0; w < k; ++w) {
      worker_sinks.push_back(std::make_unique<TraceSink>(
          static_cast<uint32_t>(w + 1), parent_sink->epoch()));
    }
  }
  workers_->Run(k, [&](int w) {
    std::optional<TraceScope> trace_scope;
    if (parent_sink != nullptr) {
      trace_scope.emplace(worker_sinks[static_cast<size_t>(w)].get());
    }
    ScopedSpan worker_span("nail:worker");
    ExecOptions opts = exec_->options();
    opts.read_only_storage = true;
    opts.writable_private_idb = false;
    RuntimeEnv env;
    env.nail = this;
    Executor worker(exec_->program(), edb_, idb_, pool_, env, opts);
    worker.AddReadOverride(info.delta_name,
                           parts[static_cast<size_t>(w)].get());
    Frame frame(nullptr);
    RecordSet sup;
    Status st = worker.ExecuteBodyOnly(plan, &frame, &sup);
    if (!st.ok()) {
      worker_status[static_cast<size_t>(w)] = st;
      return;
    }
    std::unordered_set<Tuple, TupleHash> seen;
    std::vector<Tuple>& out = found[static_cast<size_t>(w)];
    for (const Record& rec : sup.records) {
      Tuple t;
      t.reserve(head.arg_exprs.size());
      for (ExprId e : head.arg_exprs) {
        Result<TermId> v = EvalExpr(plan, e, rec, pool_);
        if (!v.ok()) {
          worker_status[static_cast<size_t>(w)] = v.status();
          return;
        }
        t.push_back(*v);
      }
      if (!storage->Contains(t) && seen.insert(t).second) {
        out.push_back(std::move(t));
      }
    }
    worker_span.AddRows(out.size());
  });
  if (parent_sink != nullptr) {
    int32_t attach = parent_sink->current_open();
    for (auto& sink : worker_sinks) {
      parent_sink->Merge(std::move(*sink), attach);
    }
  }
  for (const Status& st : worker_status) {
    GLUENAIL_RETURN_NOT_OK(st);
  }

  // Serial merge: uniondiff the per-worker buffers into storage, capturing
  // genuinely new tuples into newdelta for the next round.
  for (const std::vector<Tuple>& buf : found) {
    for (const Tuple& t : buf) {
      if (storage->Insert(t)) newdelta->Insert(t);
    }
  }
  ++parallel_batches_;
  return Status::OK();
}

Status NailEngine::RefreshNaive() {
  // Ablation baseline (bench E5): iterate the original rules over full
  // relations until no storage relation grows. No deltas, no uniondiff.
  Frame frame(nullptr);
  for (size_t s = 0; s < program_.scc_order.size(); ++s) {
    SccPlans& plans = scc_plans_[s];
    const std::vector<int>& preds = program_.scc_order[s];
    while (true) {
      ++iteration_count_;
      GLUENAIL_RETURN_NOT_OK(exec_->CheckStorageBudgets());
      uint64_t before = 0;
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        before += idb_->GetOrCreate(pred.storage, pred.columns())->version();
      }
      for (const StatementPlan& plan : plans.naive) {
        GLUENAIL_RETURN_NOT_OK(exec_->ExecuteStatementPlan(plan, &frame));
      }
      uint64_t after = 0;
      for (int p : preds) {
        const NailPred& pred = program_.preds[static_cast<size_t>(p)];
        after += idb_->GetOrCreate(pred.storage, pred.columns())->version();
      }
      if (after == before) break;
    }
  }
  return Status::OK();
}

Status NailEngine::RefreshCompiled() {
  if (driver_proc_ < 0) {
    return Status::Internal("compiled NAIL! mode without a driver proc");
  }
  Relation input("in", 0);
  input.Insert(Tuple{});
  Relation output("out", 0);
  return exec_->CallProcedureByIndex(driver_proc_, input, &output);
}

Status NailEngine::Publish() {
  for (const NailPred& pred : program_.preds) {
    Relation* storage = idb_->GetOrCreate(pred.storage, pred.columns());
    TermId root = pool_->MakeSymbol(pred.root);
    if (pred.params == 0) {
      Relation* pub = idb_->GetOrCreate(root, pred.arity);
      pub->CopyFrom(*storage);
      continue;
    }
    for (RowView t : *storage) {
      std::vector<TermId> params(t.begin(), t.begin() + pred.params);
      TermId name = pool_->MakeCompound(root, params);
      Relation* pub = idb_->GetOrCreate(name, pred.arity);
      pub->Insert(t.subspan(pred.params));
    }
  }
  return Status::OK();
}

}  // namespace gluenail
