#include "src/nail/rule_graph.h"

#include "src/analysis/binding.h"
#include "src/runtime/aggregates.h"

namespace gluenail {

namespace {

TermId MakeStorageName(TermPool* pool, std::string_view kind,
                       const NailPred& pred) {
  std::vector<TermId> args{pool->MakeSymbol(pred.root),
                           pool->MakeInt(pred.params),
                           pool->MakeInt(pred.arity)};
  return pool->MakeCompound(kind, args);
}

}  // namespace

Result<NailProgram> BuildNailProgram(std::vector<ast::NailRule> rules,
                                     TermPool* pool) {
  NailProgram prog;
  prog.rules = std::move(rules);

  // Pass 1: predicates from rule heads.
  for (size_t r = 0; r < prog.rules.size(); ++r) {
    const ast::NailRule& rule = prog.rules[r];
    std::string root;
    uint32_t params = 0;
    if (!StaticPredName(rule.head_pred, &root, &params)) {
      return Status::CompileError(
          StrCat("NAIL! rule head must have a static predicate name: ",
                 ast::ToString(rule.head_pred)));
    }
    uint32_t arity = static_cast<uint32_t>(rule.head_args.size());
    int id = prog.FindPred(root, params, arity);
    if (id < 0) {
      NailPred pred;
      pred.root = root;
      pred.params = params;
      pred.arity = arity;
      pred.storage = MakeStorageName(pool, "$nail", pred);
      pred.delta_storage = MakeStorageName(pool, "$delta", pred);
      pred.newdelta_storage = MakeStorageName(pool, "$newdelta", pred);
      id = static_cast<int>(prog.preds.size());
      prog.pred_index.emplace(pred.Key(), id);
      prog.preds.push_back(std::move(pred));
    }
    prog.preds[static_cast<size_t>(id)].rules.push_back(static_cast<int>(r));
  }

  // Pass 2: dependency edges.
  prog.deps.resize(prog.preds.size());
  for (size_t r = 0; r < prog.rules.size(); ++r) {
    const ast::NailRule& rule = prog.rules[r];
    std::string hroot;
    uint32_t hparams = 0;
    StaticPredName(rule.head_pred, &hroot, &hparams);
    int head = prog.FindPred(hroot, hparams,
                             static_cast<uint32_t>(rule.head_args.size()));
    for (const ast::Subgoal& g : rule.body) {
      bool negated = g.kind == ast::SubgoalKind::kNegatedAtom;
      if (g.kind != ast::SubgoalKind::kAtom && !negated) {
        if (g.kind == ast::SubgoalKind::kInsert ||
            g.kind == ast::SubgoalKind::kDelete) {
          return Status::CompileError(
              "NAIL! rules are declarative: no updates allowed");
        }
        if (g.kind == ast::SubgoalKind::kComparison &&
            g.rhs.IsApply() && g.rhs.functor().IsSymbol() &&
            AggKindFromName(g.rhs.functor().name).has_value()) {
          return Status::CompileError(
              "aggregation belongs in Glue, not NAIL! rules (write a Glue "
              "statement over the predicate instead)");
        }
        continue;  // comparisons and group-free builtins: no edges
      }
      std::string root;
      uint32_t params = 0;
      if (StaticPredName(g.pred, &root, &params)) {
        int dep = prog.FindPred(root, params,
                                static_cast<uint32_t>(g.args.size()));
        if (dep >= 0) {
          prog.deps[static_cast<size_t>(head)].emplace_back(dep, negated);
        }
        // Otherwise an EDB relation: no edge.
      } else {
        // Dynamic predicate: conservatively depends on every NAIL!
        // predicate whose published instances have this arity.
        if (negated) {
          return Status::CompileError(
              StrCat("negated dynamic predicate in NAIL! rule: !",
                     ast::ToString(g.pred), "(...) — its stratum cannot be "
                     "determined"));
        }
        for (size_t p = 0; p < prog.preds.size(); ++p) {
          if (prog.preds[p].arity == g.args.size()) {
            prog.deps[static_cast<size_t>(head)].emplace_back(
                static_cast<int>(p), false);
          }
        }
      }
    }
  }

  GLUENAIL_RETURN_NOT_OK(Stratify(&prog));
  return prog;
}

}  // namespace gluenail
