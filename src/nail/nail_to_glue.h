/// \file nail_to_glue.h
/// \brief The NAIL!-to-Glue compiler (paper §1: "NAIL! code is compiled
/// into Glue code, simplifying the system design"; §11: "NAIL! code is
/// compiled into Glue procedures; the Glue optimizer runs over all the
/// code").
///
/// Each SCC of the predicate dependency graph becomes semi-naive Glue:
///
///   % initialization: all rules over full relations,
///   % captured deltas seed the loop (uniondiff, §10)
///   p(Cols) += body...                    [delta -> $delta p]
///   repeat
///     $newdelta_p(Cols) -= $newdelta_p(Cols).
///     p(Cols) += body with one recursive subgoal read from $delta_q...
///                                         [delta -> $newdelta p]
///     $delta_p(Cols) := $newdelta_p(Cols).
///   until empty($newdelta_p(_,...)) & ...;
///
/// The same rule-version statements drive the direct (C++-looped)
/// evaluator, so the two modes are differential-testable.

#ifndef GLUENAIL_NAIL_NAIL_TO_GLUE_H_
#define GLUENAIL_NAIL_NAIL_TO_GLUE_H_

#include <vector>

#include "src/analysis/scope.h"
#include "src/nail/rule_graph.h"

namespace gluenail {

/// Declares every NAIL! predicate plus its delta/newdelta relations into
/// \p scope, assignable, so generated statements plan against flattened
/// storage. Delta bindings use the reserved names returned by
/// DeltaScopeName / NewdeltaScopeName.
void DeclareNailScope(const NailProgram& program, Scope* scope);

std::string DeltaScopeName(const NailPred& pred);
std::string NewdeltaScopeName(const NailPred& pred);

/// Statements for one SCC, shared by both evaluation modes.
struct SccStatements {
  /// All rules over full relations, deltas captured into $delta.
  std::vector<ast::Assignment> init;
  /// Semi-naive rule versions (one per recursive-subgoal occurrence),
  /// deltas captured into $newdelta. Empty for non-recursive SCCs.
  std::vector<ast::Assignment> iterate;
};

/// Builds the init/iterate statements for SCC \p scc_index.
SccStatements BuildSccStatements(const NailProgram& program, int scc_index);

/// Wraps an SCC into a complete generated Glue procedure (compiled mode):
/// init statements, then the repeat/until loop shown above.
ast::Procedure BuildSccProcedure(const NailProgram& program, int scc_index);

/// Names of the generated procedures.
std::string SccProcedureName(int scc_index);
inline constexpr const char* kNailDriverName = "$nail$eval";

/// The driver procedure: calls every SCC procedure in stratum order.
ast::Procedure BuildDriverProcedure(const NailProgram& program);

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_NAIL_TO_GLUE_H_
