/// \file stratify.cc
/// \brief Tarjan SCC + topological ordering + stratified-negation check.
///
/// Paper §8: LDL and CORAL "use stratified negation"; Glue-Nail's NAIL!
/// does the same. A program is stratified iff no negative dependency edge
/// lies inside a strongly connected component.

#include <algorithm>

#include "src/common/strings.h"
#include "src/nail/rule_graph.h"

namespace gluenail {

namespace {

/// Iterative Tarjan to survive deep rule chains.
class TarjanScc {
 public:
  explicit TarjanScc(const NailProgram& prog) : prog_(prog) {
    size_t n = prog.preds.size();
    index_.assign(n, -1);
    low_.assign(n, 0);
    on_stack_.assign(n, false);
    scc_of_.assign(n, -1);
  }

  void Run() {
    for (size_t v = 0; v < prog_.preds.size(); ++v) {
      if (index_[v] < 0) Visit(static_cast<int>(v));
    }
  }

  const std::vector<int>& scc_of() const { return scc_of_; }
  int num_sccs() const { return num_sccs_; }

 private:
  struct WorkItem {
    int node;
    size_t edge = 0;
  };

  void Visit(int root) {
    std::vector<WorkItem> work{{root}};
    while (!work.empty()) {
      WorkItem& item = work.back();
      int v = item.node;
      if (item.edge == 0) {
        index_[v] = low_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      const auto& edges = prog_.deps[static_cast<size_t>(v)];
      while (item.edge < edges.size()) {
        int w = edges[item.edge].first;
        ++item.edge;
        if (index_[w] < 0) {
          work.push_back(WorkItem{w});
          descended = true;
          break;
        }
        if (on_stack_[w]) low_[v] = std::min(low_[v], index_[w]);
      }
      if (descended) continue;
      if (low_[v] == index_[v]) {
        int scc = num_sccs_++;
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          scc_of_[w] = scc;
          if (w == v) break;
        }
      }
      work.pop_back();
      if (!work.empty()) {
        int parent = work.back().node;
        low_[parent] = std::min(low_[parent], low_[v]);
      }
    }
  }

  const NailProgram& prog_;
  std::vector<int> index_, low_, scc_of_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  int counter_ = 0;
  int num_sccs_ = 0;
};

}  // namespace

Status Stratify(NailProgram* program) {
  TarjanScc tarjan(*program);
  tarjan.Run();
  const std::vector<int>& scc_of = tarjan.scc_of();
  int num_sccs = tarjan.num_sccs();

  for (size_t p = 0; p < program->preds.size(); ++p) {
    program->preds[p].scc = scc_of[p];
  }

  // Negative edge within an SCC => not stratified.
  for (size_t p = 0; p < program->preds.size(); ++p) {
    for (const auto& [q, negated] : program->deps[p]) {
      if (negated && scc_of[p] == scc_of[static_cast<size_t>(q)]) {
        return Status::CompileError(
            StrCat("program is not stratified: '", program->preds[p].root,
                   "' depends negatively on '",
                   program->preds[static_cast<size_t>(q)].root,
                   "' within a recursive cycle"));
      }
    }
  }

  // Topological order of SCCs. Tarjan emits SCCs in reverse topological
  // order of the dependency direction "p reads q": an SCC is completed
  // only after everything it depends on, so ascending SCC id is already a
  // valid evaluation order.
  program->scc_order.assign(static_cast<size_t>(num_sccs), {});
  for (size_t p = 0; p < program->preds.size(); ++p) {
    program->scc_order[static_cast<size_t>(scc_of[p])].push_back(
        static_cast<int>(p));
  }

  // An SCC is recursive if it has more than one predicate or a self-loop.
  program->scc_recursive.assign(static_cast<size_t>(num_sccs), false);
  for (size_t s = 0; s < program->scc_order.size(); ++s) {
    if (program->scc_order[s].size() > 1) {
      program->scc_recursive[s] = true;
      continue;
    }
    int p = program->scc_order[s][0];
    for (const auto& [q, negated] : program->deps[static_cast<size_t>(p)]) {
      if (q == p) {
        program->scc_recursive[s] = true;
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace gluenail
