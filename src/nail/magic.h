/// \file magic.h
/// \brief Magic-set rewriting for bound NAIL! queries (experiment E7).
///
/// Paper §8.2 on CORAL's Magic Templates: "It remains to be seen whether
/// the extra power provided by magic templates justifies the increased
/// cost of a database lookup." Glue-Nail keeps relations ground, so the
/// ground-EDB magic-*sets* variant applies without unification; this file
/// implements the classic adornment-driven transformation with a
/// left-to-right sideways-information-passing strategy, letting the
/// benchmarks quantify the trade-off the paper raises.
///
/// Scope: non-parameterized predicates; negation only on EDB relations
/// (negated IDB subgoals are rejected — their magic variant needs extra
/// stratification machinery).

#ifndef GLUENAIL_NAIL_MAGIC_H_
#define GLUENAIL_NAIL_MAGIC_H_

#include <optional>
#include <vector>

#include "src/ast/ast.h"
#include "src/common/result.h"
#include "src/exec/executor.h"
#include "src/storage/database.h"

namespace gluenail {

struct MagicQuery {
  std::string pred;
  /// One entry per column: a constant (bound) or nullopt (free).
  std::vector<std::optional<TermId>> columns;

  uint32_t arity() const { return static_cast<uint32_t>(columns.size()); }
};

struct MagicProgram {
  /// The transformed rule set (adorned originals + magic rules).
  std::vector<ast::NailRule> rules;
  /// Adorned answer predicate, e.g. "path@bf".
  std::string answer_pred;
  /// The magic seed: relation name and the tuple of bound query values.
  std::string seed_pred;
  Tuple seed;
  /// Number of adorned predicates produced (for reporting).
  size_t adorned_count = 0;
};

/// Rewrites \p rules for \p query.
Result<MagicProgram> MagicTransform(const std::vector<ast::NailRule>& rules,
                                    const MagicQuery& query, TermPool* pool);

/// Convenience evaluator: transforms, evaluates the transformed program
/// semi-naively against \p edb (plus the seed), and returns the matching
/// answer tuples (full query arity, sorted). \p edb is not modified.
/// Evaluation writes only a private scratch IDB, so read-only callers pass
/// ExecOptions with read_only_storage + writable_private_idb set and the
/// shared EDB is never mutated (concurrent reader sessions rely on this).
Result<std::vector<Tuple>> EvaluateWithMagic(
    const std::vector<ast::NailRule>& rules, const MagicQuery& query,
    Database* edb, TermPool* pool, const ExecOptions& exec_opts = {});

/// Baseline for the same entry point: evaluates \p rules without the
/// transformation and filters the query predicate on the bound columns.
Result<std::vector<Tuple>> EvaluateWithoutMagic(
    const std::vector<ast::NailRule>& rules, const MagicQuery& query,
    Database* edb, TermPool* pool, const ExecOptions& exec_opts = {});

}  // namespace gluenail

#endif  // GLUENAIL_NAIL_MAGIC_H_
