/// \file bench_repl.cc
/// \brief Experiment E19: log-shipping replication — read scaling and
/// steady-state lag.
///
/// One primary runs the bench_wal write load (several writer threads of
/// continuous durable MutationBatch commits at DurabilityLevel::kSync,
/// the honest per-batch baseline, with periodic checkpoints so the
/// shipped log stays short) while 1/2/4 replicas tail its WAL over the
/// replication stream. The benchmarks then drive a fixed pool of socket
/// readers:
///
///   BM_ReadsOnPrimary   — readers share the primary with the writer.
///     kSync fsyncs inside the writer lock, so every commit blocks
///     queries for a device-fsync; this is the no-replica baseline.
///   BM_ReadsOnReplicas  — the same readers spread round-robin over N
///     replicas, which apply the shipped batches without any fsync.
///
/// The acceptance criterion is aggregate read throughput ≥1.8× the
/// primary baseline with two replicas (reported directly as the
/// speedup_vs_primary counter) while steady-state lag stays bounded
/// (repl_lag_records, sampled while the writer is running). Before any
/// timing, every replica is verified to answer queries byte-identically
/// to a quiesced primary; a mismatch aborts.
///
/// Output lands in BENCH_repl.json via tools/run_bench.sh bench_repl.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/command.h"
#include "src/api/engine.h"
#include "src/server/client.h"
#include "src/server/replication.h"
#include "src/server/server.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {
namespace {

constexpr std::string_view kGoal = "path(0,X)";
/// Short chain: keeps each query cheap, so the primary's per-read cost
/// is dominated by the commit stalls the replicas do not have, not by
/// query CPU that both sides pay equally.
constexpr int kChain = 32;
constexpr int kMaxReplicas = 4;
/// Socket reader threads (the fixed pool both benchmarks share). Kept
/// below the writer count so each primary read absorbs a meaningful
/// share of the in-lock fsync stalls instead of amortizing them away.
constexpr int kReaders = 2;
/// Writer key space (bench_wal's bounded-reinsert trick: commits mostly
/// re-insert existing tuples, so memory stays flat while every commit
/// still pays the full log + fsync + replication cost).
constexpr int kWriterKeys = 1024;
/// One insert per commit: the OLTP-ish worst case where nearly the whole
/// commit cycle is the in-lock device sync rather than batch CPU.
constexpr int kInsertsPerCommit = 1;
/// Concurrent writer threads on the primary. Each kSync commit fsyncs
/// inside the writer lock, so the writers keep a device sync in flight
/// (and the lock held) almost continuously — the write-busy primary
/// that read replicas exist to relieve. The count is kept small because
/// writer CPU (batch build + log append + apply) is a cost the replicas
/// pay too, via the shipped stream.
constexpr int kWriters = 2;
/// Checkpoint cadence, in commits. Rotation keeps the tail the
/// subscribers rescan short, and doubles as live rotation coverage.
constexpr int kCheckpointEvery = 512;

std::string FreshDir() {
  std::string tmpl = "/tmp/bench_repl_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    fprintf(stderr, "bench_repl: mkdtemp failed\n");
    std::abort();
  }
  return std::string(buf.data());
}

/// The shared program: a transitive-closure read workload (path over a
/// chain) plus the writer's w/2 relation. Loaded identically on the
/// primary and every replica — rules are not replicated, facts are.
std::string Module() {
  return StrCat("module kb;\nedb edge(X,Y);\nedb w(X,Y);\n",
                bench::kTcRules, bench::ChainFacts(kChain), "end\n");
}

/// Rows of one wire query, rendered to sorted text for the differential
/// primary-vs-replica comparison.
std::vector<std::string> WireRows(Client* client, const std::string& goal) {
  Result<WireResponse> r = client->Execute(Command::Query(goal));
  bench::Require(r.status());
  bench::Require(r->status);
  std::vector<std::string> rows;
  for (const std::vector<std::string>& row : r->rows) {
    std::string line;
    for (const std::string& cell : row) {
      line += cell;
      line += '|';
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// One primary (engine + server + background writer) and a lazily grown
/// fleet of tailing replicas, shared by every benchmark in this binary.
class ReplHarness {
 public:
  static ReplHarness& Get() {
    static ReplHarness* harness = new ReplHarness();
    return *harness;
  }

  uint16_t primary_port() const { return primary_server_->port(); }
  uint16_t replica_port(int i) { return replicas_[i]->server->port(); }

  /// Grows the fleet to \p n replicas (idempotent; called by every
  /// benchmark thread before it connects).
  void EnsureReplicas(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(replicas_.size()) < n) {
      auto r = std::make_unique<Replica>();
      EngineOptions opts;
      opts.replica = true;
      opts.primary_hint = StrCat("127.0.0.1:", primary_port());
      r->engine = std::make_unique<Engine>(opts);
      bench::Require(r->engine->LoadProgram(Module()));
      r->server = std::make_unique<Server>(r->engine.get(), ServerOptions{});
      bench::Require(r->server->Start());
      ReplicationClientOptions tail;
      tail.port = primary_port();
      tail.reconnect_initial = std::chrono::milliseconds(5);
      tail.reconnect_max = std::chrono::milliseconds(50);
      r->tail = std::make_unique<ReplicationClient>(r->engine.get(), tail);
      bench::Require(r->tail->Start());
      replicas_.push_back(std::move(r));
    }
  }

  /// Hard acceptance check: pauses the writer, waits until the first
  /// \p n replicas have applied everything the primary acked as durable,
  /// and compares wire answers byte-for-byte. Aborts on divergence or a
  /// replica that cannot catch up.
  void VerifyConverged(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    PauseWriter();
    const uint64_t durable = primary_engine_->durable_lsn();
    for (int i = 0; i < n; ++i) {
      Engine* replica = replicas_[i]->engine.get();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (replica->replica_applied_lsn() < durable) {
        if (std::chrono::steady_clock::now() > deadline) {
          fprintf(stderr,
                  "bench_repl: replica %d stuck at lsn %llu, primary "
                  "durable %llu\n",
                  i,
                  static_cast<unsigned long long>(
                      replica->replica_applied_lsn()),
                  static_cast<unsigned long long>(durable));
          std::abort();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    Client at_primary = MustConnect(primary_port());
    for (const char* goal : {"path(0,X)", "w(X,Y)"}) {
      std::vector<std::string> expected = WireRows(&at_primary, goal);
      for (int i = 0; i < n; ++i) {
        Client at_replica = MustConnect(replica_port(i));
        if (WireRows(&at_replica, goal) != expected) {
          fprintf(stderr,
                  "bench_repl: replica %d diverges from the primary on "
                  "%s\n",
                  i, goal);
          std::abort();
        }
      }
    }
    ResumeWriter();
  }

  /// Largest applied-LSN deficit across the first \p n replicas — the
  /// steady-state lag sample (taken while the writer is running).
  double MaxLagRecords(int n) {
    const uint64_t durable = primary_engine_->durable_lsn();
    uint64_t min_applied = durable;
    for (int i = 0; i < n; ++i) {
      min_applied = std::min(min_applied,
                             replicas_[i]->engine->replica_applied_lsn());
    }
    return static_cast<double>(durable - min_applied);
  }

  static Client MustConnect(uint16_t port) {
    Result<Client> c = Client::Connect("127.0.0.1", port);
    bench::Require(c.status());
    return std::move(*c);
  }

  /// Remembered primary-baseline throughput (averaged across benchmark
  /// repetitions — one core makes any single sample scheduling-noisy),
  /// so the replica benchmarks can report their speedup in the JSON.
  void add_primary_qps_sample(double qps) {
    std::lock_guard<std::mutex> lock(mu_);
    primary_samples_.push_back(qps);
  }
  double primary_qps() {
    std::lock_guard<std::mutex> lock(mu_);
    if (primary_samples_.empty()) return 0.0;
    double sum = 0;
    for (double s : primary_samples_) sum += s;
    return sum / static_cast<double>(primary_samples_.size());
  }

 private:
  struct Replica {
    std::unique_ptr<Engine> engine;
    std::unique_ptr<Server> server;
    std::unique_ptr<ReplicationClient> tail;
  };

  ReplHarness() {
    EngineOptions opts;
    opts.data_dir = FreshDir();
    opts.durability = DurabilityLevel::kSync;
    primary_engine_ = std::make_unique<Engine>(opts);
    bench::Require(primary_engine_->LoadProgram(Module()));
    primary_server_ =
        std::make_unique<Server>(primary_engine_.get(), ServerOptions{});
    bench::Require(primary_server_->Start());
    for (int i = 0; i < kWriters; ++i) {
      writers_.emplace_back([this, i] { WriteLoad(i); });
    }
  }

  /// The bench_wal write load: full-tilt durable commits, each one an
  /// 8-insert batch over a bounded key space. Writer 0 additionally
  /// checkpoints every kCheckpointEvery of its own commits.
  void WriteLoad(int id) {
    uint64_t commits = 0;
    int key = id * (kWriterKeys / kWriters);
    while (true) {
      if (pause_.load(std::memory_order_acquire)) {
        paused_.fetch_add(1, std::memory_order_acq_rel);
        while (pause_.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        paused_.fetch_sub(1, std::memory_order_acq_rel);
      }
      MutationBatch batch;
      for (int i = 0; i < kInsertsPerCommit; ++i) {
        key = (key + 1) % kWriterKeys;
        batch.Insert(StrCat("w(", key, ",", key % 7, ")"));
      }
      bench::Require(primary_engine_->ApplyBatch(batch).status());
      if (id == 0 && ++commits % kCheckpointEvery == 0) {
        bench::Require(primary_engine_->Checkpoint());
      }
    }
  }

  void PauseWriter() {
    pause_.store(true, std::memory_order_release);
    while (paused_.load(std::memory_order_acquire) < kWriters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void ResumeWriter() { pause_.store(false, std::memory_order_release); }

  std::unique_ptr<Engine> primary_engine_;
  std::unique_ptr<Server> primary_server_;
  std::vector<std::thread> writers_;
  std::atomic<bool> pause_{false};
  std::atomic<int> paused_{0};
  std::vector<double> primary_samples_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;
};

/// Runs one reader loop against \p port, returning this thread's
/// queries/sec over the timed region.
double ReadLoop(benchmark::State& state, uint16_t port) {
  Client client = ReplHarness::MustConnect(port);
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    Result<WireResponse> r =
        client.Execute(Command::Query(std::string(kGoal)));
    bench::Require(r.status());
    bench::Require(r->status);
    if (r->rows.size() != static_cast<size_t>(kChain)) {
      fprintf(stderr, "bench_repl: %s answered %zu rows, want %d\n",
              std::string(kGoal).c_str(), r->rows.size(), kChain);
      std::abort();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  state.SetItemsProcessed(state.iterations());
  return secs > 0 ? static_cast<double>(state.iterations()) / secs : 0.0;
}

/// Baseline: readers share the primary with the kSync writer. Every
/// commit fsyncs inside the writer lock, so reads stall behind the
/// device; this is the deployment the replicas exist to relieve.
void BM_ReadsOnPrimary(benchmark::State& state) {
  ReplHarness& h = ReplHarness::Get();
  double qps = ReadLoop(state, h.primary_port());
  if (state.thread_index() == 0) {
    // Scale this thread's rate to the pool: threads run near-identical
    // iteration counts, so thread0 * threads approximates the aggregate.
    h.add_primary_qps_sample(qps * state.threads());
  }
}

/// The same reader pool spread round-robin over N tailing replicas,
/// which apply the shipped batches without ever touching a disk.
void BM_ReadsOnReplicas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReplHarness& h = ReplHarness::Get();
  h.EnsureReplicas(n);
  if (state.thread_index() == 0) h.VerifyConverged(n);
  double qps = ReadLoop(state, h.replica_port(state.thread_index() % n));
  if (state.thread_index() == 0) {
    // Sampled while the writer is still running: steady-state lag.
    state.counters["repl_lag_records"] =
        benchmark::Counter(h.MaxLagRecords(n));
    const double aggregate = qps * state.threads();
    if (h.primary_qps() > 0) {
      state.counters["speedup_vs_primary"] =
          benchmark::Counter(aggregate / h.primary_qps());
    }
  }
}

// Three repetitions with median/mean aggregation: a single sample on a
// small machine is at the mercy of lock-handoff scheduling luck.
BENCHMARK(BM_ReadsOnPrimary)
    ->Threads(kReaders)
    ->UseRealTime()
    ->Repetitions(3)
    ->ReportAggregatesOnly(true);
BENCHMARK(BM_ReadsOnReplicas)
    ->Arg(1)
    ->Arg(2)
    ->Arg(kMaxReplicas)
    ->Threads(kReaders)
    ->UseRealTime()
    ->Repetitions(3)
    ->ReportAggregatesOnly(true);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
