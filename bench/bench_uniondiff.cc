/// \file bench_uniondiff.cc
/// \brief Experiment E5b (ablation): what the dedicated uniondiff
/// operator buys.
///
/// §10 argues the back end should implement `uniondiff` natively. The
/// alternative is expressing the delta in the language. Three ways to
/// compute the same transitive closure:
///   1. NAIL! semi-naive — the engine's native uniondiff (delta capture
///      on insertion);
///   2. a hand-written Glue loop emulating the diff with negation:
///      newdelta := cand & !full;
///   3. the paper's §4 tc_e style: no deltas at all, re-join the full
///      relation each pass, terminate on unchanged().

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

constexpr std::string_view kGlueVariants = R"(
module m;
edb edge(X,Y), out(X,Y);
export tc_negdiff(:), tc_unchanged(:);

% Semi-naive with the diff expressed through negation.
proc tc_negdiff(:)
rels full(X,Y), delta(X,Y), newdelta(X,Y), cand(X,Y);
  full(X,Y) := edge(X,Y).
  delta(X,Y) := edge(X,Y).
  repeat
    cand(X,Z) := delta(X,Y) & edge(Y,Z).
    newdelta(X,Z) := cand(X,Z) & !full(X,Z).
    full(X,Z) += newdelta(X,Z).
    delta(X,Y) := newdelta(X,Y).
  until empty(newdelta(_,_));
  out(X,Y) := full(X,Y).
  return(:) := true.
end

% No deltas: the paper's §4 loop, re-deriving from full each pass.
proc tc_unchanged(:)
rels full(X,Y);
  full(X,Y) := edge(X,Y).
  repeat
    full(X,Z) += full(X,Y) & edge(Y,Z).
  until unchanged(full(_,_));
  out(X,Y) := full(X,Y).
  return(:) := true.
end
end
)";

void BM_TcVariant(benchmark::State& state) {
  int variant = static_cast<int>(state.range(0));
  int n = static_cast<int>(state.range(1));
  std::string facts = bench::ChainFacts(n);
  EngineOptions opts;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(opts);
    if (variant == 0) {
      bench::Require(engine.LoadProgram(bench::TcModule(facts)));
    } else {
      bench::Require(engine.LoadProgram(
          StrCat(kGlueVariants, "\nmodule facts;\nedb edge(X,Y);\n", facts,
                 "end\n")));
    }
    state.ResumeTiming();
    switch (variant) {
      case 0: {
        auto r = engine.Query("path(0, Y)");
        bench::Require(r.status());
        benchmark::DoNotOptimize(r->rows.size());
        break;
      }
      case 1:
        bench::Require(engine.Call("tc_negdiff", {{}}).status());
        break;
      case 2:
        bench::Require(engine.Call("tc_unchanged", {{}}).status());
        break;
    }
  }
  const char* names[] = {"native_uniondiff", "glue_negation_diff",
                         "glue_unchanged_nodelta"};
  state.SetLabel(StrCat(names[variant], "/n=", n));
}
BENCHMARK(BM_TcVariant)->ArgsProduct({{0, 1, 2}, {64, 128, 256}});

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
