/// \file bench_seminaive.cc
/// \brief Experiment E5: semi-naive evaluation over uniondiff vs naive.
///
/// Paper §10: the back end "will implement a 'uniondiff' operator in order
/// to support compiled recursive NAIL! queries." Semi-naive evaluation
/// with per-iteration deltas (what uniondiff enables) against the naive
/// re-derive-everything baseline, on chains, grids, and random graphs.
/// Expected shape: semi-naive wins by a factor that grows with the
/// fixpoint depth; naive's per-iteration cost grows with the accumulated
/// relation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

void RunTc(NailMode mode, const std::string& facts,
           benchmark::State& state) {
  EngineOptions opts;
  opts.nail_mode = mode;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(opts);
    bench::Require(engine.LoadProgram(bench::TcModule(facts)));
    state.ResumeTiming();
    auto rows = engine.Query("path(0, Y)");
    bench::Require(rows.status());
    benchmark::DoNotOptimize(rows->rows.size());
    state.PauseTiming();
    if (engine.nail_engine() != nullptr) {
      state.counters["iterations"] = static_cast<double>(
          engine.nail_engine()->iteration_count());
    }
    state.ResumeTiming();
  }
}

const char* ModeName(int m) {
  switch (static_cast<NailMode>(m)) {
    case NailMode::kDirect:
      return "seminaive_direct";
    case NailMode::kCompiledGlue:
      return "seminaive_compiled_glue";
    case NailMode::kNaive:
      return "naive";
  }
  return "?";
}

void BM_TcChain(benchmark::State& state) {
  NailMode mode = static_cast<NailMode>(state.range(1));
  std::string facts = bench::ChainFacts(static_cast<int>(state.range(0)));
  RunTc(mode, facts, state);
  state.SetLabel(StrCat(ModeName(state.range(1)), "/n=", state.range(0)));
}
BENCHMARK(BM_TcChain)->ArgsProduct(
    {{64, 128, 256, 512},
     {static_cast<int>(NailMode::kDirect),
      static_cast<int>(NailMode::kCompiledGlue),
      static_cast<int>(NailMode::kNaive)}});

void BM_TcGrid(benchmark::State& state) {
  NailMode mode = static_cast<NailMode>(state.range(1));
  std::string facts = bench::GridFacts(static_cast<int>(state.range(0)));
  RunTc(mode, facts, state);
  state.SetLabel(StrCat(ModeName(state.range(1)), "/w=", state.range(0)));
}
BENCHMARK(BM_TcGrid)->ArgsProduct(
    {{8, 12, 16},
     {static_cast<int>(NailMode::kDirect),
      static_cast<int>(NailMode::kCompiledGlue),
      static_cast<int>(NailMode::kNaive)}});

void BM_TcRandomGraph(benchmark::State& state) {
  NailMode mode = static_cast<NailMode>(state.range(1));
  int n = static_cast<int>(state.range(0));
  std::string facts = bench::RandomGraphFacts(n, 2 * n);
  RunTc(mode, facts, state);
  state.SetLabel(StrCat(ModeName(state.range(1)), "/n=", state.range(0)));
}
BENCHMARK(BM_TcRandomGraph)->ArgsProduct(
    {{128, 512},
     {static_cast<int>(NailMode::kDirect),
      static_cast<int>(NailMode::kCompiledGlue),
      static_cast<int>(NailMode::kNaive)}});

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
