/// \file bench_observability.cc
/// \brief Experiment E14: observability overhead A/B.
///
/// Every benchmark runs the same workload with tracing off (the default)
/// and on (QueryOptions::trace), so the per-query cost of span recording,
/// plan capture, and ring insertion is the off/on delta. The acceptance
/// bar from the issue is the *off* side: with no sink installed a span
/// site is one thread-local load, so TraceOff must stay within 5% of the
/// pre-observability baseline (tracked via BENCH_observability.json
/// deltas across commits). A third group measures DumpMetrics itself,
/// since scrapes run concurrently with queries in production.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

/// Join workload: a 3-atom body over relations with maintained stats, the
/// shape where per-op spans and plan capture cost the most relative to
/// useful work.
std::unique_ptr<Engine> JoinEngine() {
  auto engine = std::make_unique<Engine>();
  std::mt19937 rng(1991);
  std::uniform_int_distribution<int> key(0, 199);
  for (int i = 0; i < 2000; ++i) {
    bench::Require(engine->AddFact(StrCat("big(", key(rng), ",", i, ").")));
  }
  for (int i = 0; i < 200; ++i) {
    bench::Require(engine->AddFact(StrCat("mid(", i, ",", i % 10, ").")));
  }
  for (int i = 0; i < 10; ++i) {
    bench::Require(engine->AddFact(StrCat("tiny(", i, ").")));
  }
  return engine;
}

void BM_Query_Join(benchmark::State& state) {
  std::unique_ptr<Engine> engine = JoinEngine();
  QueryOptions opts;
  opts.trace = state.range(0) != 0;
  for (auto _ : state) {
    Result<Engine::QueryResult> r =
        engine->Query("tiny(X) & mid(X,Y) & big(Y,Z)", opts);
    bench::Require(r.status());
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_Query_Join)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("trace");

/// Fixpoint workload: transitive closure on a chain, where the semi-naive
/// driver's per-iteration spans (and worker-sink merges when parallel)
/// dominate the trace.
void BM_Query_Fixpoint(benchmark::State& state) {
  Engine engine;
  bench::Require(
      engine.LoadProgram(bench::TcModule(bench::ChainFacts(128))));
  QueryOptions opts;
  opts.trace = state.range(0) != 0;
  for (auto _ : state) {
    Result<Engine::QueryResult> r = engine.Query("path(0,X)", opts);
    bench::Require(r.status());
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_Query_Fixpoint)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("trace");

/// Tiny point query: the worst case for relative overhead — almost no
/// work per query, so the Begin/FinishQueryObs bracket and the metric
/// increments are a visible fraction.
void BM_Query_Point(benchmark::State& state) {
  Engine engine;
  for (int i = 0; i < 64; ++i) {
    bench::Require(engine.AddFact(StrCat("p(", i, ").")));
  }
  QueryOptions opts;
  opts.trace = state.range(0) != 0;
  for (auto _ : state) {
    Result<Engine::QueryResult> r = engine.Query("p(7)", opts);
    bench::Require(r.status());
    benchmark::DoNotOptimize(r->rows.size());
  }
}
BENCHMARK(BM_Query_Point)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("trace");

/// Statement execution with per-op profiling + spans vs. without.
void BM_Statement_Join(benchmark::State& state) {
  std::unique_ptr<Engine> engine = JoinEngine();
  QueryOptions opts;
  opts.trace = state.range(0) != 0;
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(
        "out(X,Z) := tiny(X) & mid(X,Y) & big(Y,Z).", opts));
  }
}
BENCHMARK(BM_Statement_Join)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("trace");

/// A metrics scrape: registry walk + every pull callback under the shared
/// engine lock. Range arg selects the export format.
void BM_DumpMetrics(benchmark::State& state) {
  std::unique_ptr<Engine> engine = JoinEngine();
  bench::Require(engine->Query("tiny(X) & mid(X,Y) & big(Y,Z)").status());
  MetricsFormat format =
      state.range(0) != 0 ? MetricsFormat::kJson : MetricsFormat::kPrometheus;
  for (auto _ : state) {
    std::string dump = engine->DumpMetrics(format);
    benchmark::DoNotOptimize(dump.data());
    state.SetBytesProcessed(state.bytes_processed() + dump.size());
  }
}
BENCHMARK(BM_DumpMetrics)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("json");

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
