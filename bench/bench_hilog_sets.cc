/// \file bench_hilog_sets.cc
/// \brief Experiment E6: HiLog set-name equality vs member-wise set_eq.
///
/// Paper §5.1: "if two set valued attributes contain the same predicate
/// name, then the two sets are identical. Hence much of the time a simple
/// string-string matching suffices" (here: one interned-term comparison).
/// We sweep set cardinality m: name equality should be O(1) in m while
/// member-wise comparison is O(m).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

constexpr std::string_view kSetEqModule = R"(
module sets;
export set_eq(S,T:);
proc set_eq( S, T: )
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end
end
)";

std::unique_ptr<Engine> SetsEngine(int members) {
  auto engine = std::make_unique<Engine>();
  bench::Require(engine->LoadProgram(kSetEqModule));
  // Two identical-membership sets under different names, plus the holder
  // relation pairing names for the name-equality query.
  for (int i = 0; i < members; ++i) {
    bench::Require(engine->AddFact(StrCat("squad_a(", i, ").")));
    bench::Require(engine->AddFact(StrCat("squad_b(", i, ").")));
  }
  bench::Require(engine->AddFact("team(one, squad_a)."));
  bench::Require(engine->AddFact("team(two, squad_a)."));
  bench::Require(engine->AddFact("team(three, squad_b)."));
  return engine;
}

/// Name equality: a single term comparison per candidate pair (§5.1).
void BM_SetNameEquality(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      SetsEngine(static_cast<int>(state.range(0)));
  const std::string stmt =
      "same(X, Y) := team(X, S1) & team(Y, S2) & S1 = S2 & X != Y.";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(StrCat("members=", state.range(0)));
}
BENCHMARK(BM_SetNameEquality)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

/// Member-wise equality through the paper's set_eq procedure.
void BM_SetMemberEquality(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      SetsEngine(static_cast<int>(state.range(0)));
  std::vector<Tuple> input{{*engine->InternTerm("squad_a"),
                            *engine->InternTerm("squad_b")}};
  for (auto _ : state) {
    auto rows = engine->Call("set_eq", input);
    bench::Require(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetLabel(StrCat("members=", state.range(0)));
}
BENCHMARK(BM_SetMemberEquality)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096);

/// HiLog dereference cost: iterating a set through its name (T(X)) vs
/// reading the relation directly — the §8.2 lookup-cost question, on the
/// matching side (Glue-Nail matches, CORAL unifies).
void BM_SetDereference(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      SetsEngine(static_cast<int>(state.range(0)));
  const std::string stmt =
      "members(X) := team(one, S) & S(X).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(StrCat("members=", state.range(0)));
}
BENCHMARK(BM_SetDereference)->Arg(16)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
