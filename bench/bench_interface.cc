/// \file bench_interface.cc
/// \brief Experiment E9: the no-impedance-mismatch claim (§1, §2, §11).
///
/// "a subgoal in Glue or NAIL! can reference an EDB relation, a NAIL!
/// predicate, or a Glue procedure, and the syntax and semantics are
/// identical in all three cases." We phrase the same lookup three ways and
/// measure the interface overhead of each: EDB match (baseline), NAIL!
/// predicate (adds memoized derivation), Glue procedure (adds the §4
/// call-once protocol). The semantics are identical; only constant
/// overheads should differ.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

constexpr std::string_view kProgram = R"(
module m;
edb pairs(X,Y), probe(X);
export go_edb(:), go_nail(:), go_proc(:);

% The same mapping as a NAIL! view ...
mapped(X,Y) :- pairs(X,Y).

% ... and as a Glue procedure.
proc lookup(X:Y)
  return(X:Y) := pairs(X,Y).
end

proc go_edb(:)
rels out(X,Y);
  out(X,Y) := probe(X) & pairs(X,Y).
  return(:) := true.
end
proc go_nail(:)
rels out(X,Y);
  out(X,Y) := probe(X) & mapped(X,Y).
  return(:) := true.
end
proc go_proc(:)
rels out(X,Y);
  out(X,Y) := probe(X) & lookup(X,Y).
  return(:) := true.
end
end
)";

std::unique_ptr<Engine> InterfaceEngine(int rows) {
  auto engine = std::make_unique<Engine>();
  bench::Require(engine->LoadProgram(kProgram));
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> v(0, rows - 1);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine->AddFact(StrCat("pairs(", i, ",", v(rng), ").")));
    if (i % 8 == 0) {
      bench::Require(engine->AddFact(StrCat("probe(", i, ").")));
    }
  }
  return engine;
}

void BM_SubgoalInterface(benchmark::State& state) {
  const char* procs[] = {"go_edb", "go_nail", "go_proc"};
  const char* proc = procs[state.range(0)];
  std::unique_ptr<Engine> engine =
      InterfaceEngine(static_cast<int>(state.range(1)));
  // Warm the NAIL! memo so the steady-state interface cost is measured.
  bench::Require(engine->Call("go_nail", {{}}).status());
  for (auto _ : state) {
    auto r = engine->Call(proc, {{}});
    bench::Require(r.status());
    benchmark::DoNotOptimize(r->size());
  }
  state.SetLabel(StrCat(proc, "/rows=", state.range(1)));
}
BENCHMARK(BM_SubgoalInterface)
    ->ArgsProduct({{0, 1, 2}, {1000, 8000}});

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
