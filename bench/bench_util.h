/// \file bench_util.h
/// \brief Shared workload builders for the experiment benchmarks
/// (DESIGN.md §2 maps each bench binary to a paper claim).

#ifndef GLUENAIL_BENCH_BENCH_UTIL_H_
#define GLUENAIL_BENCH_BENCH_UTIL_H_

#include <memory>
#include <random>
#include <string>

#include "src/api/engine.h"

namespace gluenail {
namespace bench {

inline void Require(const Status& s) {
  if (!s.ok()) {
    fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

template <typename T>
inline T Require(Result<T> r) {
  Require(r.status());
  return std::move(*r);
}

/// The transitive-closure program used across E5/E7/E10.
inline constexpr std::string_view kTcRules =
    "path(X,Y) :- edge(X,Y).\n"
    "path(X,Z) :- path(X,Y) & edge(Y,Z).\n";

inline std::string TcModule(std::string_view facts) {
  return StrCat("module kb;\nedb edge(X,Y);\n", kTcRules, facts, "end\n");
}

/// edge facts for a simple chain 0 -> 1 -> ... -> n.
inline std::string ChainFacts(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) out += StrCat("edge(", i, ",", i + 1, ").\n");
  return out;
}

/// edge facts for a w x w grid (right and down edges).
inline std::string GridFacts(int w) {
  std::string out;
  auto id = [w](int x, int y) { return x * w + y; };
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < w; ++y) {
      if (x + 1 < w) out += StrCat("edge(", id(x, y), ",", id(x + 1, y), ").\n");
      if (y + 1 < w) out += StrCat("edge(", id(x, y), ",", id(x, y + 1), ").\n");
    }
  }
  return out;
}

/// edge facts for a random graph with n nodes and m edges.
inline std::string RandomGraphFacts(int n, int m, uint32_t seed = 1991) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  std::string out;
  for (int i = 0; i < m; ++i) {
    out += StrCat("edge(", node(rng), ",", node(rng), ").\n");
  }
  return out;
}

}  // namespace bench
}  // namespace gluenail

#endif  // GLUENAIL_BENCH_BENCH_UTIL_H_
