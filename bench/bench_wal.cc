/// \file bench_wal.cc
/// \brief Experiment E17: durable commit throughput and the group-commit
/// amortization.
///
/// Measures commits/sec for the served mutation path (Session::Execute of
/// a MutationBatch) at 1..16 concurrent writers under each durability
/// level:
///
///   none   — no log at all: the in-memory writer-lock floor
///   async  — log every batch, ack immediately, fsync lazily
///   sync   — fsync before every ack, one batch at a time (the honest
///            per-batch baseline)
///   group  — one leader fsyncs the whole commit group per window
///
/// The acceptance criterion for ROADMAP item 1 is the Threads(8) rows:
/// BM_CommitGroup must beat BM_CommitSync by ≥5× commits/sec — with
/// identical recovered state, which BM_Recover enforces at the end by
/// recovering each level's data directory into a fresh engine and
/// comparing relation contents against the live engine before timing.
///
/// Output lands in BENCH_wal.json via tools/run_bench.sh bench_wal.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/command.h"
#include "src/api/engine.h"
#include "src/api/session.h"
#include "src/storage/recovery.h"

namespace gluenail {
namespace {

/// Distinct keys per writer thread: commits mostly re-insert existing
/// tuples, so memory stays bounded while every commit still pays the full
/// log-append + durability cost.
constexpr int kKeysPerWriter = 1024;

std::string FreshDir(const char* tag) {
  std::string tmpl = StrCat("/tmp/bench_wal_", tag, "_XXXXXX");
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    fprintf(stderr, "bench_wal: mkdtemp %s failed\n", tmpl.c_str());
    std::abort();
  }
  return std::string(buf.data());
}

/// Every w/2 fact in the engine, rendered to text — the shadow state the
/// recovered engine is compared against.
std::set<std::string> Facts(Engine* engine) {
  Result<std::vector<Tuple>> rows = engine->RelationContents("w", 2);
  std::set<std::string> out;
  if (!rows.ok()) return out;
  for (const Tuple& t : *rows) {
    std::string key;
    for (TermId id : t) {
      key += engine->terms().ToString(id);
      key += ',';
    }
    out.insert(key);
  }
  return out;
}

/// One durable engine per level, lazily built, shared by every thread of
/// that level's benchmark (google-benchmark constructs function-local
/// statics thread-safely).
class WalHarness {
 public:
  static WalHarness& Get(DurabilityLevel level) {
    switch (level) {
      case DurabilityLevel::kNone: {
        static WalHarness* h = new WalHarness(level, "none");
        return *h;
      }
      case DurabilityLevel::kAsync: {
        static WalHarness* h = new WalHarness(level, "async");
        return *h;
      }
      case DurabilityLevel::kSync: {
        static WalHarness* h = new WalHarness(level, "sync");
        return *h;
      }
      case DurabilityLevel::kGroupCommit: {
        static WalHarness* h = new WalHarness(level, "group");
        return *h;
      }
    }
    std::abort();
  }

  Engine& engine() { return *engine_; }
  const std::string& dir() const { return dir_; }
  DurabilityLevel level() const { return level_; }
  bool durable() const { return level_ != DurabilityLevel::kNone; }

  /// Recovers this level's directory into a fresh engine and aborts on
  /// any divergence from the live engine — the "identical recovered
  /// state" half of the acceptance criterion.
  void VerifyRecoveredState() {
    if (!durable()) return;
    EngineOptions opts;
    opts.data_dir = dir_;
    opts.durability = level_;
    Engine fresh(opts);
    bench::Require(fresh.Recover().status());
    std::set<std::string> live = Facts(engine_.get());
    std::set<std::string> recovered = Facts(&fresh);
    if (live != recovered) {
      fprintf(stderr,
              "bench_wal[%s]: recovered state diverges from live state "
              "(%zu vs %zu facts)\n",
              std::string(DurabilityLevelName(level_)).c_str(),
              recovered.size(), live.size());
      std::abort();
    }
  }

 private:
  WalHarness(DurabilityLevel level, const char* tag) : level_(level) {
    EngineOptions opts;
    if (level != DurabilityLevel::kNone) {
      dir_ = FreshDir(tag);
      opts.data_dir = dir_;
      opts.durability = level;
    }
    if (level == DurabilityLevel::kGroupCommit) {
      // Ablation hook: sweep the group-commit linger cap without a
      // rebuild (microseconds; unset keeps the engine default).
      const char* linger = getenv("GLUENAIL_BENCH_GROUP_LINGER_US");
      if (linger != nullptr) {
        opts.wal_group_linger = std::chrono::microseconds(atoll(linger));
      }
    }
    engine_ = std::make_unique<Engine>(opts);
    if (level != DurabilityLevel::kNone) {
      bench::Require(engine_->Recover().status());
    }
  }

  DurabilityLevel level_;
  std::string dir_;
  std::unique_ptr<Engine> engine_;
};

/// One committed batch per iteration through the served mutation path.
/// With --threads=N this is N concurrent writer sessions, which is where
/// group commit's shared fsync separates from kSync's serialized one.
void CommitLoop(benchmark::State& state, DurabilityLevel level) {
  WalHarness& harness = WalHarness::Get(level);
  Session session = harness.engine().OpenSession();
  const int me = state.thread_index();
  int i = 0;
  for (auto _ : state) {
    MutationBatch batch;
    batch.Insert(StrCat("w(", me, ",", i % kKeysPerWriter, ")"));
    Response r = session.Execute(Command::MutateBatch(std::move(batch)));
    bench::Require(r.status);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0 && harness.durable()) {
    state.counters["wal_syncs"] = static_cast<double>(
        harness.engine().wal()->counters().syncs.load());
    state.counters["durable_lsn"] =
        static_cast<double>(harness.engine().durable_lsn());
  }
}

void BM_CommitNone(benchmark::State& state) {
  CommitLoop(state, DurabilityLevel::kNone);
}
BENCHMARK(BM_CommitNone)->ThreadRange(1, 16)->UseRealTime();

void BM_CommitAsync(benchmark::State& state) {
  CommitLoop(state, DurabilityLevel::kAsync);
}
BENCHMARK(BM_CommitAsync)->ThreadRange(1, 16)->UseRealTime();

void BM_CommitSync(benchmark::State& state) {
  CommitLoop(state, DurabilityLevel::kSync);
}
BENCHMARK(BM_CommitSync)->ThreadRange(1, 16)->UseRealTime();

void BM_CommitGroup(benchmark::State& state) {
  CommitLoop(state, DurabilityLevel::kGroupCommit);
}
BENCHMARK(BM_CommitGroup)->ThreadRange(1, 16)->UseRealTime();

/// Registered last so every commit benchmark has already filled its log:
/// verifies recovered == live for each durable level (aborting the whole
/// binary on divergence), then times a full checkpoint+WAL recovery of
/// the group-commit directory into a scratch database.
void BM_Recover(benchmark::State& state) {
  for (DurabilityLevel level :
       {DurabilityLevel::kAsync, DurabilityLevel::kSync,
        DurabilityLevel::kGroupCommit}) {
    WalHarness::Get(level).VerifyRecoveredState();
  }
  WalHarness& group = WalHarness::Get(DurabilityLevel::kGroupCommit);
  uint64_t replayed = 0;
  for (auto _ : state) {
    TermPool pool;
    Database db(&pool);
    Result<RecoveryReport> r =
        RecoverDatabase(&db, &pool, group.dir() + "/checkpoint.facts",
                        group.dir() + "/wal.log");
    bench::Require(r.status());
    replayed = r->records_replayed;
    benchmark::DoNotOptimize(db.num_relations());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["records_replayed"] = static_cast<double>(replayed);
}
BENCHMARK(BM_Recover);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
