/// \file bench_adaptive_index.cc
/// \brief Experiment E4: the §10 adaptive index policy.
///
/// "an index could be created for a relation after the cumulative cost of
/// selection by scanning the relation reaches the cost of creating the
/// index." We run q keyed selections against a relation under the three
/// policies. Expected shape: scan wins for tiny q, always-index wins for
/// large q, adaptive tracks the better of the two across the crossover.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/storage/relation.h"

namespace gluenail {
namespace {

void BM_SelectionPolicies(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  IndexPolicy policy = static_cast<IndexPolicy>(state.range(1));
  TermPool pool;
  const int kRows = 20000;
  for (auto _ : state) {
    state.PauseTiming();
    Relation rel("edge", 2);
    rel.set_index_policy(policy);
    for (int i = 0; i < kRows; ++i) {
      rel.Insert(Tuple{pool.MakeInt(i % 512), pool.MakeInt(i)});
    }
    state.ResumeTiming();
    std::vector<uint32_t> rows;
    for (int q = 0; q < queries; ++q) {
      rows.clear();
      rel.Select(0b01, Tuple{pool.MakeInt(q % 512)}, &rows);
      benchmark::DoNotOptimize(rows.size());
    }
    state.PauseTiming();
    state.counters["indexes_built"] =
        static_cast<double>(rel.counters().indexes_built);
    state.counters["scan_rows"] =
        static_cast<double>(rel.counters().scan_rows);
    state.ResumeTiming();
  }
  const char* names[] = {"never_index", "always_index", "adaptive"};
  state.SetLabel(StrCat(names[state.range(1)], "/q=", queries));
}
BENCHMARK(BM_SelectionPolicies)
    ->ArgsProduct({{1, 4, 16, 64, 1024, 4096},
                   {static_cast<int>(IndexPolicy::kNeverIndex),
                    static_cast<int>(IndexPolicy::kAlwaysIndex),
                    static_cast<int>(IndexPolicy::kAdaptive)}});

/// The same effect end-to-end: a Glue join whose inner relation is
/// repeatedly probed by key.
void BM_JoinUnderPolicy(benchmark::State& state) {
  IndexPolicy policy = static_cast<IndexPolicy>(state.range(0));
  EngineOptions opts;
  opts.index_policy = policy;
  Engine engine(opts);
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> v(0, 2000);
  for (int i = 0; i < 2000; ++i) {
    bench::Require(engine.AddFact(StrCat("probe(", v(rng), ").")));
    bench::Require(engine.AddFact(StrCat("data(", v(rng), ",", i, ").")));
  }
  const std::string stmt = "out(X, Y) := probe(X) & data(X, Y).";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  const char* names[] = {"never_index", "always_index", "adaptive"};
  state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_JoinUnderPolicy)
    ->Arg(static_cast<int>(IndexPolicy::kNeverIndex))
    ->Arg(static_cast<int>(IndexPolicy::kAlwaysIndex))
    ->Arg(static_cast<int>(IndexPolicy::kAdaptive));

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
