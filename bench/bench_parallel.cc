/// \file bench_parallel.cc
/// \brief E11: parallel semi-naive scaling. Transitive closure on a random
/// graph with the delta partitioned across 1/2/4/8 worker threads
/// (EngineOptions::num_threads). Multi-threading forces the direct NAIL!
/// mode, so the single-thread row doubles as the serial baseline.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/api/session.h"

namespace gluenail {
namespace bench {
namespace {

void BM_ParallelTc(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int nodes = static_cast<int>(state.range(1));
  const int edges = nodes * 4;
  const std::string module = TcModule(RandomGraphFacts(nodes, edges));

  size_t rows = 0;
  uint64_t batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.nail_mode = NailMode::kDirect;
    opts.num_threads = threads;
    Engine engine(opts);
    Require(engine.LoadProgram(module));
    state.ResumeTiming();

    auto result = Require(engine.Query("path(0, Y)"));
    rows = result.rows.size();
    batches = engine.nail_engine()->parallel_batches();
    benchmark::DoNotOptimize(result.rows.data());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["parallel_batches"] = static_cast<double>(batches);
}

BENCHMARK(BM_ParallelTc)
    ->ArgsProduct({{1, 2, 4, 8}, {300, 1000}})
    ->ArgNames({"threads", "nodes"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace gluenail

BENCHMARK_MAIN();
