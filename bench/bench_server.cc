/// \file bench_server.cc
/// \brief Experiment E15: the service layer under concurrent clients.
///
/// Measures the wire path (frame + checksum + codec + socket round-trip +
/// Session dispatch) against the in-process baseline, and drives N
/// concurrent socket clients (benchmark --threads, up to 16) against one
/// server to show reads scale the same way N in-process sessions do —
/// each connection owns a Session, so the shared-reader lock is the same
/// either way. Setup verifies wire results are *identical* to in-process
/// Engine::Query answers before any timing runs; a mismatch aborts.
///
/// Output lands in BENCH_server.json via tools/run_bench.sh bench_server.

#include <benchmark/benchmark.h>

#include <mutex>

#include "bench/bench_util.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace gluenail {
namespace {

constexpr std::string_view kGoal = "path(0,X)";
constexpr int kChain = 64;

/// One engine + one running server shared by every benchmark in this
/// binary (google-benchmark threads all enter the loop; the harness is
/// built once under a mutex).
class ServerHarness {
 public:
  static ServerHarness& Get() {
    static ServerHarness* harness = new ServerHarness();
    return *harness;
  }

  uint16_t port() const { return server_->port(); }
  Engine& engine() { return *engine_; }

  /// Renders the in-process answer rows to wire text form, once.
  const std::vector<std::vector<std::string>>& expected_rows() {
    return expected_;
  }

 private:
  ServerHarness() {
    engine_ = std::make_unique<Engine>();
    bench::Require(engine_->LoadProgram(bench::TcModule(
        bench::ChainFacts(kChain))));
    server_ = std::make_unique<Server>(engine_.get(), ServerOptions{});
    bench::Require(server_->Start());
    Engine::QueryResult local =
        bench::Require(engine_->Query(kGoal));
    for (const Tuple& row : local.rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (TermId t : row) cells.push_back(engine_->terms().ToString(t));
      expected_.push_back(std::move(cells));
    }
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Server> server_;
  std::vector<std::vector<std::string>> expected_;
};

Client MustConnect() {
  Result<Client> c =
      Client::Connect("127.0.0.1", ServerHarness::Get().port());
  bench::Require(c.status());
  return std::move(*c);
}

/// Hard acceptance check: the socket answer must be byte-identical to the
/// in-process answer (same rows, same order, same term text).
void VerifyAgainstInProcess(Client* client) {
  Result<WireResponse> remote = client->Execute(Command::Query(
      std::string(kGoal)));
  bench::Require(remote.status());
  bench::Require(remote->status);
  const auto& expected = ServerHarness::Get().expected_rows();
  if (remote->rows != expected) {
    fprintf(stderr,
            "bench_server: wire rows differ from in-process rows "
            "(%zu vs %zu)\n",
            remote->rows.size(), expected.size());
    std::abort();
  }
}

/// Baseline: the same query through an in-process Session (no socket, no
/// codec) — the floor the wire path is compared against.
void BM_InProcessQuery(benchmark::State& state) {
  Engine& engine = ServerHarness::Get().engine();
  Session session = engine.OpenSession();
  for (auto _ : state) {
    Response r = session.Execute(Command::Query(std::string(kGoal)));
    bench::Require(r.status);
    benchmark::DoNotOptimize(r.rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InProcessQuery)->ThreadRange(1, 16)->UseRealTime();

/// The wire path: one connected client per benchmark thread, so
/// --threads=N is N concurrent socket clients against one server.
/// The ≥8-concurrent-clients acceptance run is the Threads(8) row.
void BM_SocketQuery(benchmark::State& state) {
  Client client = MustConnect();
  VerifyAgainstInProcess(&client);
  for (auto _ : state) {
    Result<WireResponse> r =
        client.Execute(Command::Query(std::string(kGoal)));
    bench::Require(r.status());
    bench::Require(r->status);
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SocketQuery)->ThreadRange(1, 16)->UseRealTime();

/// Round-trip floor: a ping frame carries ~no payload, so this isolates
/// framing + socket latency from query evaluation.
void BM_SocketPing(benchmark::State& state) {
  Client client = MustConnect();
  for (auto _ : state) {
    bench::Require(client.Ping());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SocketPing)->ThreadRange(1, 8)->UseRealTime();

/// Writer path over the wire: each iteration inserts and erases one
/// private fact; with --threads=N the mutations from N connections
/// serialize behind the engine's writer lock.
void BM_SocketMutateBatch(benchmark::State& state) {
  Client client = MustConnect();
  const int me = state.thread_index();
  int i = 0;
  for (auto _ : state) {
    MutationBatch ins;
    ins.Insert(StrCat("bench_scratch(", me, ",", i, ")"));
    Result<WireResponse> r1 = client.Execute(Command::MutateBatch(ins));
    bench::Require(r1.status());
    bench::Require(r1->status);
    MutationBatch del;
    del.Erase(StrCat("bench_scratch(", me, ",", i, ")"));
    Result<WireResponse> r2 = client.Execute(Command::MutateBatch(del));
    bench::Require(r2.status());
    bench::Require(r2->status);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SocketMutateBatch)->ThreadRange(1, 8)->UseRealTime();

/// Codec-only: encode + decode one mid-sized response payload, no socket.
/// Bounds what of the wire-vs-in-process delta is CPU (codec) rather than
/// transport.
void BM_ResponseCodec(benchmark::State& state) {
  Engine& engine = ServerHarness::Get().engine();
  Session session = engine.OpenSession();
  Response resp = session.Execute(Command::Query(std::string(kGoal)));
  bench::Require(resp.status);
  for (auto _ : state) {
    std::string bytes = EncodeResponse(resp, engine.terms());
    Result<WireResponse> decoded = DecodeResponse(bytes);
    bench::Require(decoded.status());
    benchmark::DoNotOptimize(decoded->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResponseCodec);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
