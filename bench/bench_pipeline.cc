/// \file bench_pipeline.cc
/// \brief Experiment E3: pipeline breaks.
///
/// Paper §9: "Breaking the pipeline and materializing the supplementary
/// relation incurs some computational overhead ... and costs an extra load
/// and store for each tuple." We compare the pipelined executor against
/// the fully materialized one (a break after *every* subgoal) on chain
/// joins, and sweep the number of forced breaks by inserting fixed
/// subgoals (calls to an identity procedure) into the chain.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

std::unique_ptr<Engine> ChainJoinEngine(ExecOptions::Strategy strategy,
                                        int rows) {
  EngineOptions opts;
  opts.exec.strategy = strategy;
  auto engine = std::make_unique<Engine>(opts);
  bench::Require(engine->LoadProgram(R"(
module m;
export ident(X:Y);
proc ident(X:Y)
  return(X:Y) := in(X) & Y = X.
end
end
)"));
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> v(0, rows / 4);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine->AddFact(StrCat("r1(", v(rng), ",", v(rng), ").")));
    bench::Require(engine->AddFact(StrCat("r2(", v(rng), ",", v(rng), ").")));
    bench::Require(engine->AddFact(StrCat("r3(", v(rng), ",", v(rng), ").")));
    bench::Require(engine->AddFact(StrCat("r4(", v(rng), ",", v(rng), ").")));
  }
  return engine;
}

/// Four-way chain join, no fixed subgoals: pipelined vs materialized.
void BM_ChainJoinStrategy(benchmark::State& state) {
  bool materialized = state.range(0) != 0;
  std::unique_ptr<Engine> engine = ChainJoinEngine(
      materialized ? ExecOptions::Strategy::kMaterialized
                   : ExecOptions::Strategy::kPipelined,
      static_cast<int>(state.range(1)));
  const std::string stmt =
      "out(A, E) := r1(A, B) & r2(B, C) & r3(C, D) & r4(D, E).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.counters["pipeline_breaks"] =
      static_cast<double>(engine->exec_stats().pipeline_breaks);
  state.SetLabel(materialized ? "materialized" : "pipelined");
}
BENCHMARK(BM_ChainJoinStrategy)
    ->ArgsProduct({{0, 1}, {1000, 4000}});

/// Forced breaks: 0..4 identity-procedure calls inserted into the chain.
/// Each call is a barrier (§4: call once on all bindings), so the
/// pipelined executor must materialize at each one.
void BM_ForcedBreaks(benchmark::State& state) {
  int breaks = static_cast<int>(state.range(0));
  std::unique_ptr<Engine> engine =
      ChainJoinEngine(ExecOptions::Strategy::kPipelined, 2000);
  std::string stmt = "out(A, E) := r1(A, B)";
  const char* joins[] = {" & r2(B, C)", " & r3(C, D)", " & r4(D, E)"};
  const char* vars[] = {"B", "C", "D", "E"};
  int j = 0;
  for (int i = 0; i < 3; ++i) {
    if (j < breaks) {
      stmt += StrCat(" & ident(", vars[i], ", _)");
      ++j;
    }
    stmt += joins[i];
  }
  while (j < breaks) {
    stmt += StrCat(" & ident(E, _)");
    ++j;
  }
  stmt += ".";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.counters["breaks_per_stmt"] = breaks;
}
BENCHMARK(BM_ForcedBreaks)->DenseRange(0, 4);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
