/// \file bench_duplicates.cc
/// \brief Experiment E2: early duplicate elimination.
///
/// Paper §9: "the Glue assignment statements that we have examined have
/// produced a large number of duplicates, so removing duplicates early has
/// always been advantageous. However, in the worst case pipeline breakage
/// is a loss." We sweep a join whose projection amplifies duplicates by a
/// factor d, with early dedup on and off, plus an adversarial duplicate-
/// free workload where dedup is pure overhead.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

/// s(X, K) with d tuples per K; joining through K and projecting away X
/// (wildcard) produces d duplicate binding records per key.
std::unique_ptr<Engine> AmplifiedJoinEngine(int keys, int dup_factor,
                                            bool dedup) {
  EngineOptions opts;
  opts.exec.dedup_at_breaks = dedup;
  auto engine = std::make_unique<Engine>(opts);
  bench::Require(engine->LoadProgram(R"(
module m;
export ident(X:Y);
proc ident(X:Y)
  return(X:Y) := in(X) & Y = X.
end
end
)"));
  for (int k = 0; k < keys; ++k) {
    for (int d = 0; d < dup_factor; ++d) {
      bench::Require(
          engine->AddFact(StrCat("s(", k * 1000 + d, ",", k, ").")));
    }
    bench::Require(engine->AddFact(StrCat("t(", k, ",", k % 7, ").")));
    for (int j = 0; j < 40; ++j) {
      bench::Require(engine->AddFact(StrCat("u(", k % 7, ",", j, ").")));
    }
  }
  return engine;
}

void BM_DuplicateAmplification(benchmark::State& state) {
  int dup_factor = static_cast<int>(state.range(0));
  bool dedup = state.range(1) != 0;
  std::unique_ptr<Engine> engine =
      AmplifiedJoinEngine(/*keys=*/200, dup_factor, dedup);
  // The ident call forces a pipeline break after the amplifying join
  // (§9: "Breaks are required whenever a Glue procedure is called").
  // With early dedup the materialized sup shrinks from d*N to N records
  // before the expensive downstream join; without it, u/2 is probed d
  // times per key.
  const std::string stmt =
      "out(B, C) := s(_, K) & t(K, B) & ident(B, _) & u(B, C).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.counters["dups_removed"] = static_cast<double>(
      engine->exec_stats().duplicates_removed);
  state.SetLabel(dedup ? "early_dedup" : "no_dedup");
}
BENCHMARK(BM_DuplicateAmplification)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {0, 1}});

/// Worst case (§9): a duplicate-free pipeline where dedup only costs.
void BM_DuplicateFreeWorstCase(benchmark::State& state) {
  bool dedup = state.range(0) != 0;
  EngineOptions opts;
  opts.exec.dedup_at_breaks = dedup;
  Engine engine(opts);
  for (int i = 0; i < 3000; ++i) {
    bench::Require(engine.AddFact(StrCat("a(", i, ",", i + 1, ").")));
    bench::Require(engine.AddFact(StrCat("b(", i + 1, ",", i + 2, ").")));
  }
  const std::string stmt = "out(X, Z) := a(X, Y) & b(Y, Z).";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  state.SetLabel(dedup ? "early_dedup" : "no_dedup");
}
BENCHMARK(BM_DuplicateFreeWorstCase)->Arg(0)->Arg(1);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
