/// \file bench_nail_compile.cc
/// \brief Experiment E10: the NAIL!-to-Glue architecture (§1, §11).
///
/// "NAIL! code is compiled into Glue code, simplifying the system design."
/// The generated-Glue evaluator pays the generality of the full Glue
/// pipeline (repeat/until, unchanged bookkeeping, statement dispatch); the
/// direct evaluator drives the identical plans from C++. Measuring both
/// across a program suite quantifies the architecture's overhead —
/// expected small and roughly constant-factor, which is what made the
/// paper's single-optimizer design viable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

struct Program {
  const char* name;
  std::string source;
};

std::vector<Program> Suite() {
  std::vector<Program> out;
  out.push_back({"tc_chain", bench::TcModule(bench::ChainFacts(256))});
  out.push_back({"tc_grid", bench::TcModule(bench::GridFacts(12))});
  {
    // Mutual recursion (even/odd over a long successor chain).
    std::string src =
        "module kb;\nedb succ(X,Y), start(X);\n"
        "even(X) :- start(X).\n"
        "even(Y) :- odd(X) & succ(X,Y).\n"
        "odd(Y) :- even(X) & succ(X,Y).\n"
        "start(0).\n";
    for (int i = 0; i < 600; ++i) {
      src += StrCat("succ(", i, ",", i + 1, ").\n");
    }
    src += "end\n";
    out.push_back({"mutual_evenodd", std::move(src)});
  }
  {
    // Stratified negation over recursion.
    std::string src =
        "module kb;\nedb edge(X,Y), node(X), root(X);\n"
        "reach(X) :- root(X).\n"
        "reach(Y) :- reach(X) & edge(X,Y).\n"
        "unreachable(X) :- node(X) & !reach(X).\n"
        "root(0).\n";
    src += bench::RandomGraphFacts(300, 500);
    for (int i = 0; i < 300; ++i) src += StrCat("node(", i, ").\n");
    src += "end\n";
    out.push_back({"strat_negation", std::move(src)});
  }
  return out;
}

void BM_NailEvaluationMode(benchmark::State& state) {
  static const std::vector<Program> suite = Suite();
  const Program& prog = suite[static_cast<size_t>(state.range(0))];
  NailMode mode = static_cast<NailMode>(state.range(1));
  EngineOptions opts;
  opts.nail_mode = mode;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine(opts);
    bench::Require(engine.LoadProgram(prog.source));
    state.ResumeTiming();
    // Force one full evaluation.
    bench::Require(engine.nail_engine()->EnsureAllNail());
    benchmark::DoNotOptimize(engine.snapshot()->idb().num_relations());
  }
  state.SetLabel(StrCat(prog.name, "/",
                        mode == NailMode::kDirect ? "direct"
                                                  : "compiled_glue"));
}
BENCHMARK(BM_NailEvaluationMode)
    ->ArgsProduct({{0, 1, 2, 3},
                   {static_cast<int>(NailMode::kDirect),
                    static_cast<int>(NailMode::kCompiledGlue)}});

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
