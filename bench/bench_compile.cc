/// \file bench_compile.cc
/// \brief Experiment E1: compiler throughput.
///
/// Paper §9: "The system compiles about two statements per Mips-second in
/// compiled Sicstus Prolog on an IBM PC/RT." We measure statements/second
/// for synthetic modules of N assignment statements (parse + link + plan,
/// i.e. the whole front end). Absolute numbers are incomparable across 35
/// years of hardware; the items of interest are the scale (orders of
/// magnitude above 2/s) and near-linear scaling in N.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/analysis/resolver.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

/// A module with n statements of mixed shapes inside one procedure.
std::string SyntheticModule(int n) {
  std::string src =
      "module synth;\n"
      "edb e0(A,B), e1(A,B), e2(A,B,C), log(A);\n"
      "export main(:);\n"
      "proc main(:)\n"
      "rels t0(A,B), t1(A,B), t2(A);\n";
  for (int i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0:
        src += StrCat("  t0(X,Y) += e0(X,W) & e1(W,Y) & X != Y.\n");
        break;
      case 1:
        src += StrCat("  t1(X,M) := e2(X,Y,V) & group_by(X) & M = mean(V).\n");
        break;
      case 2:
        src += StrCat("  t2(X) += t0(X,_) & !e1(X,", i, ").\n");
        break;
      case 3:
        src += StrCat("  log(X) += t2(X) & --t2(X).\n");
        break;
      case 4:
        src += StrCat("  t0(X,Y) -= t0(X,Y) & Y > ", i, ".\n");
        break;
    }
  }
  src += "  return(:) := true.\nend\nend\n";
  return src;
}

void BM_CompileStatements(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string src = SyntheticModule(n);
  int64_t statements = 0;
  for (auto _ : state) {
    TermPool pool;
    ast::Program parsed = bench::Require(ParseProgram(src));
    std::vector<HostProcedure> hosts;
    LinkedProgram linked =
        bench::Require(LinkProgram(parsed, hosts, &pool, LinkOptions{}));
    benchmark::DoNotOptimize(linked.program.procedures.size());
    statements += n;
  }
  state.counters["statements_per_second"] = benchmark::Counter(
      static_cast<double>(statements), benchmark::Counter::kIsRate);
  state.counters["paper_ibm_pc_rt"] = 2.0;  // §9 reference point
}
BENCHMARK(BM_CompileStatements)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

/// Parse-only throughput, to separate front-end costs.
void BM_ParseOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string src = SyntheticModule(n);
  int64_t statements = 0;
  for (auto _ : state) {
    ast::Program parsed = bench::Require(ParseProgram(src));
    benchmark::DoNotOptimize(parsed.modules.size());
    statements += n;
  }
  state.counters["statements_per_second"] = benchmark::Counter(
      static_cast<double>(statements), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParseOnly)->Arg(1024);

/// NAIL! rule compilation (stratification + generated Glue procedures).
void BM_CompileNailRules(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string src = "module kb;\nedb e(X,Y);\n";
  for (int i = 0; i < n; ++i) {
    src += StrCat("p", i, "(X,Y) :- e(X,Y)", i > 0 ? StrCat(" & p", i - 1,
                                                            "(Y,X)")
                                                   : std::string(),
                  ".\n");
  }
  src += "end\n";
  int64_t rules = 0;
  for (auto _ : state) {
    TermPool pool;
    ast::Program parsed = bench::Require(ParseProgram(src));
    std::vector<HostProcedure> hosts;
    LinkedProgram linked =
        bench::Require(LinkProgram(parsed, hosts, &pool, LinkOptions{}));
    benchmark::DoNotOptimize(linked.nail.preds.size());
    rules += n;
  }
  state.counters["rules_per_second"] = benchmark::Counter(
      static_cast<double>(rules), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CompileNailRules)->Arg(64)->Arg(512);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
