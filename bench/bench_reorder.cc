/// \file bench_reorder.cc
/// \brief Experiment E8: compile-time subgoal reordering and binding
/// analysis (§2, §3.1).
///
/// A deliberately mis-ordered body: the selective filter and the keyed
/// lookup appear last. With reordering on, the optimizer runs the filter
/// first and turns the matches into keyed selections; with it off, the
/// statement builds a huge intermediate cross-product.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

std::unique_ptr<Engine> WorkloadEngine(bool reorder, int rows) {
  EngineOptions opts;
  opts.planner.reorder = reorder;
  auto engine = std::make_unique<Engine>(opts);
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> v(0, rows - 1);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine->AddFact(StrCat("big(", i, ",", v(rng), ").")));
    bench::Require(engine->AddFact(StrCat("lookup(", i, ",", v(rng), ").")));
  }
  bench::Require(engine->AddFact("selective(17)."));
  return engine;
}

/// Written order: big x lookup first, selective seed last.
void BM_MisorderedBody(benchmark::State& state) {
  bool reorder = state.range(0) != 0;
  int rows = static_cast<int>(state.range(1));
  std::unique_ptr<Engine> engine = WorkloadEngine(reorder, rows);
  const std::string stmt =
      "out(Y) := big(S, X) & lookup(X, Y) & selective(S).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(StrCat(reorder ? "reordered" : "as_written",
                        "/rows=", rows));
}
BENCHMARK(BM_MisorderedBody)->ArgsProduct({{0, 1}, {500, 2000, 8000}});

/// Filters written after the joins they could have pruned.
void BM_LateFilter(benchmark::State& state) {
  bool reorder = state.range(0) != 0;
  std::unique_ptr<Engine> engine = WorkloadEngine(reorder, 2000);
  const std::string stmt =
      "out(A, B) := big(A, X) & lookup(B, Y) & A = 17 & B = 17.";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(reorder ? "reordered" : "as_written");
}
BENCHMARK(BM_LateFilter)->Arg(0)->Arg(1);

/// Already-optimal order: reordering must not hurt.
void BM_WellOrderedBody(benchmark::State& state) {
  bool reorder = state.range(0) != 0;
  std::unique_ptr<Engine> engine = WorkloadEngine(reorder, 4000);
  const std::string stmt =
      "out(Y) := selective(S) & big(S, X) & lookup(X, Y).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(reorder ? "reordered" : "as_written");
}
BENCHMARK(BM_WellOrderedBody)->Arg(0)->Arg(1);

/// Skewed cardinalities: both subgoals are binary relations, so the
/// syntactic score ties and keeps the written (large-first) order; the
/// statistics cost model (bench_planner has the full A/B suite) picks the
/// 8-row side from maintained row counts.
void BM_SkewedCostModel(benchmark::State& state) {
  EngineOptions opts;
  opts.planner.cost_model = state.range(0) != 0
                                ? PlannerOptions::CostModel::kStatistics
                                : PlannerOptions::CostModel::kSyntactic;
  Engine engine(opts);
  const int rows = 20000;
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const int keys = rows / 8 + 8;
  for (int i = 0; i < rows; ++i) {
    // Zipf-like: u^2 concentrates keys near 0.
    int k = static_cast<int>(keys * u(rng) * u(rng));
    bench::Require(engine.AddFact(StrCat("big(", k, ",", i, ").")));
  }
  for (int i = 0; i < 8; ++i) {
    bench::Require(
        engine.AddFact(StrCat("tiny(", keys - 1 - i, ",", i, ").")));
  }
  const std::string stmt = "out(Z) := big(X, Y) & tiny(X, Z).";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  state.SetLabel(state.range(0) != 0 ? "statistics" : "syntactic");
}
BENCHMARK(BM_SkewedCostModel)->Arg(0)->Arg(1);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
