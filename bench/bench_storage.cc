/// \file bench_storage.cc
/// \brief Storage-layer microbenchmarks: insert, probe, uniondiff, scan.
///
/// These measure the §10 relational back end directly — no parser, no
/// planner, no executor — so storage changes show up undiluted. The
/// binary writes BENCH_storage.json by default (override with the usual
/// --benchmark_out= flags); tools/run_bench.sh builds Release and runs it.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/storage/relation.h"
#include "src/term/term_pool.h"

namespace gluenail {
namespace {

/// Pre-interned int terms so the benchmarks time storage, not interning.
std::vector<TermId> Ints(TermPool* pool, int n) {
  std::vector<TermId> ids;
  ids.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids.push_back(pool->MakeInt(i));
  return ids;
}

/// Fill \p r with n distinct binary tuples whose first column has the
/// given fanout (n / fanout distinct keys).
void Fill(Relation* r, const std::vector<TermId>& ids, int n, int fanout) {
  for (int i = 0; i < n; ++i) {
    r->Insert(Tuple{ids[static_cast<size_t>(i / fanout)],
                    ids[static_cast<size_t>(i)]});
  }
}

/// Insert n distinct rows, then re-insert all of them (pure dedup hits).
void BM_InsertDedup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermPool pool;
  std::vector<TermId> ids = Ints(&pool, n);
  for (auto _ : state) {
    Relation r("r", 2);
    Fill(&r, ids, n, 8);
    Fill(&r, ids, n, 8);  // all duplicates
    benchmark::DoNotOptimize(r.size());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_InsertDedup)->Arg(4096)->Arg(65536);

/// The headline: build a relation, index it, then one keyed probe per
/// distinct key with the matching rows consumed. This is the inner loop
/// of every join the executors run.
void BM_InsertProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int fanout = 8;
  TermPool pool;
  std::vector<TermId> ids = Ints(&pool, n);
  for (auto _ : state) {
    Relation r("r", 2);
    Fill(&r, ids, n, fanout);
    r.EnsureIndex(0b01);
    std::vector<uint32_t> rows;
    Tuple key(1);
    uint64_t matched = 0;
    for (int rep = 0; rep < fanout; ++rep) {
      for (int k = 0; k < n / fanout; ++k) {
        key[0] = ids[static_cast<size_t>(k)];
        rows.clear();
        r.Select(0b01, key, &rows);
        for (uint32_t row : rows) {
          matched += r.row(row).size();
        }
      }
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_InsertProbe)->Arg(4096)->Arg(65536);

/// Contains() hit + miss per element: the semi-naive merge filter.
void BM_ContainsProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermPool pool;
  std::vector<TermId> ids = Ints(&pool, 2 * n);
  Relation r("r", 2);
  Fill(&r, ids, n, 8);
  for (auto _ : state) {
    uint64_t hits = 0;
    for (int i = 0; i < n; ++i) {
      if (r.Contains(Tuple{ids[static_cast<size_t>(i / 8)],
                           ids[static_cast<size_t>(i)]})) {
        ++hits;
      }
      if (r.Contains(Tuple{ids[static_cast<size_t>(n + i)],
                           ids[static_cast<size_t>(i)]})) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ContainsProbe)->Arg(4096)->Arg(65536);

/// uniondiff with a half-overlapping source: one semi-naive iteration.
void BM_UnionDiff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermPool pool;
  std::vector<TermId> ids = Ints(&pool, 2 * n);
  Relation src("src", 2);
  for (int i = 0; i < n; ++i) {
    src.Insert(Tuple{ids[static_cast<size_t>(i / 2)],
                     ids[static_cast<size_t>(i + n / 2)]});
  }
  for (auto _ : state) {
    state.PauseTiming();
    Relation acc("acc", 2);
    Fill(&acc, ids, n, 2);
    Relation delta("delta", 2);
    state.ResumeTiming();
    size_t added = acc.UnionDiff(src, &delta);
    benchmark::DoNotOptimize(added);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionDiff)->Arg(4096)->Arg(65536);

/// Full scan over live rows, touching both columns.
void BM_Scan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TermPool pool;
  std::vector<TermId> ids = Ints(&pool, n);
  Relation r("r", 2);
  Fill(&r, ids, n, 8);
  // Erase a third so the scan also exercises liveness checks.
  for (int i = 0; i < n; i += 3) {
    r.Erase(Tuple{ids[static_cast<size_t>(i / 8)],
                  ids[static_cast<size_t>(i)]});
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const auto& t : r) {
      sum += t[0] + t[1];
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_Scan)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace gluenail

/// Defaults --benchmark_out to BENCH_storage.json so a bare Release run
/// leaves a machine-readable trace of the perf trajectory.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  static std::string out_flag = "--benchmark_out=BENCH_storage.json";
  static std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
