/// \file bench_planner.cc
/// \brief Experiment E13: cost-based physical planning A/B.
///
/// Skewed-cardinality joins where the syntactic reorder heuristic (arity
/// and bound-column counts only) cannot tell a 50k-row relation from an
/// 8-row one: the subgoals tie on score, so the written (pessimal) order
/// survives. The statistics cost model orders by estimated output
/// cardinality from the relations' maintained row/NDV statistics, runs
/// the small side first, and schedules the index build on the large side
/// up front. The acceptance bar is >= 2x on the skewed joins.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

PlannerOptions::CostModel Model(int64_t arg) {
  return arg != 0 ? PlannerOptions::CostModel::kStatistics
                  : PlannerOptions::CostModel::kSyntactic;
}

const char* ModelName(int64_t arg) {
  return arg != 0 ? "statistics" : "syntactic";
}

/// big/2: \p rows tuples, keys Zipf-like (u^2 concentrates mass on low
/// keys); tiny/2: 8 tuples on rare high keys.
std::unique_ptr<Engine> SkewEngine(PlannerOptions::CostModel model,
                                   int rows) {
  EngineOptions opts;
  opts.planner.cost_model = model;
  auto engine = std::make_unique<Engine>(opts);
  std::mt19937 rng(1991);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const int keys = rows / 8 + 8;
  for (int i = 0; i < rows; ++i) {
    int k = static_cast<int>(keys * u(rng) * u(rng));
    bench::Require(engine->AddFact(StrCat("big(", k, ",", i, ").")));
  }
  for (int i = 0; i < 8; ++i) {
    bench::Require(
        engine->AddFact(StrCat("tiny(", keys - 1 - i, ",", i, ").")));
  }
  return engine;
}

/// Small x large, written large-first. Same arity on both sides, so the
/// syntactic score ties and keeps the full scan of big; statistics runs
/// tiny first and probes big keyed.
void BM_SkewedSmallLarge(benchmark::State& state) {
  std::unique_ptr<Engine> engine =
      SkewEngine(Model(state.range(0)), static_cast<int>(state.range(1)));
  const std::string stmt = "out(Z) := big(X, Y) & tiny(X, Z).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(StrCat(ModelName(state.range(0)), "/rows=",
                        state.range(1)));
}
BENCHMARK(BM_SkewedSmallLarge)->ArgsProduct({{0, 1}, {10000, 50000}});

/// Zipf-keyed probe join: hot/2 is large with heavily repeated keys,
/// probe/2 is a 100-row relation over mostly-rare keys, written second.
void BM_ZipfKeyedJoin(benchmark::State& state) {
  EngineOptions opts;
  opts.planner.cost_model = Model(state.range(0));
  Engine engine(opts);
  const int rows = 30000;
  const int keys = 4000;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < rows; ++i) {
    int k = static_cast<int>(keys * u(rng) * u(rng) * u(rng));
    bench::Require(engine.AddFact(StrCat("hot(", k, ",", i, ").")));
  }
  std::uniform_int_distribution<int> any(0, keys - 1);
  for (int i = 0; i < 100; ++i) {
    bench::Require(
        engine.AddFact(StrCat("probe(", any(rng), ",", i, ").")));
  }
  const std::string stmt = "out(V, P) := hot(K, V) & probe(K, P).";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  state.SetLabel(ModelName(state.range(0)));
}
BENCHMARK(BM_ZipfKeyedJoin)->Arg(0)->Arg(1);

/// Well-estimated already-good order: the cost model must not regress a
/// body the syntactic heuristic gets right.
void BM_WellOrderedParity(benchmark::State& state) {
  std::unique_ptr<Engine> engine = SkewEngine(Model(state.range(0)), 10000);
  const std::string stmt = "out(Z) := tiny(X, Z) & big(X, Y).";
  for (auto _ : state) {
    bench::Require(engine->ExecuteStatement(stmt));
  }
  state.SetLabel(ModelName(state.range(0)));
}
BENCHMARK(BM_WellOrderedParity)->Arg(0)->Arg(1);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
