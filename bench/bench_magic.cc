/// \file bench_magic.cc
/// \brief Experiment E7: magic sets for bound queries.
///
/// Paper §8.2 raises the question whether magic-style goal-directed
/// evaluation justifies its costs. For a bound-first-argument reachability
/// query over a graph with many components, magic should restrict
/// derivation to the queried component; full evaluation derives every
/// pair.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/nail/magic.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

std::vector<ast::NailRule> TcRules() {
  std::vector<ast::NailRule> rules;
  rules.push_back(bench::Require(ParseRule("path(X,Y) :- edge(X,Y).")));
  rules.push_back(
      bench::Require(ParseRule("path(X,Z) :- edge(X,Y) & path(Y,Z).")));
  return rules;
}

/// k disjoint chains of length len; the query binds a node in one chain.
void FillChains(Database* db, TermPool* pool, int chains, int len) {
  Relation* e = db->GetOrCreate(pool->MakeSymbol("edge"), 2);
  for (int c = 0; c < chains; ++c) {
    int base = c * (len + 10);
    for (int i = 0; i < len; ++i) {
      e->Insert(Tuple{pool->MakeInt(base + i), pool->MakeInt(base + i + 1)});
    }
  }
}

void BM_BoundQuery(benchmark::State& state) {
  bool magic = state.range(0) != 0;
  int chains = static_cast<int>(state.range(1));
  const int kLen = 60;
  TermPool pool;
  Database db(&pool);
  FillChains(&db, &pool, chains, kLen);
  std::vector<ast::NailRule> rules = TcRules();
  MagicQuery q;
  q.pred = "path";
  q.columns = {pool.MakeInt(5), std::nullopt};  // a node in chain 0
  size_t answers = 0;
  for (auto _ : state) {
    auto rows = magic ? EvaluateWithMagic(rules, q, &db, &pool)
                      : EvaluateWithoutMagic(rules, q, &db, &pool);
    bench::Require(rows.status());
    answers = rows->size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.SetLabel(StrCat(magic ? "magic" : "full", "/chains=", chains));
}
BENCHMARK(BM_BoundQuery)->ArgsProduct({{0, 1}, {1, 4, 16, 64}});

/// The flip side (§8.2's caution): an all-free query, where magic adds
/// pure overhead (the magic predicate covers everything anyway).
void BM_FreeQuery(benchmark::State& state) {
  bool magic = state.range(0) != 0;
  TermPool pool;
  Database db(&pool);
  FillChains(&db, &pool, /*chains=*/4, /*len=*/60);
  std::vector<ast::NailRule> rules = TcRules();
  MagicQuery q;
  q.pred = "path";
  q.columns = {std::nullopt, std::nullopt};
  for (auto _ : state) {
    auto rows = magic ? EvaluateWithMagic(rules, q, &db, &pool)
                      : EvaluateWithoutMagic(rules, q, &db, &pool);
    bench::Require(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetLabel(magic ? "magic" : "full");
}
BENCHMARK(BM_FreeQuery)->Arg(0)->Arg(1);

/// Same-generation with a bound query: the classic magic showcase.
void BM_SameGenerationBound(benchmark::State& state) {
  bool magic = state.range(0) != 0;
  int depth = static_cast<int>(state.range(1));
  TermPool pool;
  Database db(&pool);
  Relation* up = db.GetOrCreate(pool.MakeSymbol("up"), 2);
  Relation* down = db.GetOrCreate(pool.MakeSymbol("down"), 2);
  Relation* flat = db.GetOrCreate(pool.MakeSymbol("flat"), 2);
  // A balanced binary "same generation" structure.
  int next = 1;
  std::vector<int> level{0};
  for (int d = 0; d < depth; ++d) {
    std::vector<int> parents;
    for (int node : level) {
      int a = next++, b = next++;
      up->Insert(Tuple{pool.MakeInt(node), pool.MakeInt(a)});
      up->Insert(Tuple{pool.MakeInt(node), pool.MakeInt(b)});
      down->Insert(Tuple{pool.MakeInt(a), pool.MakeInt(node)});
      down->Insert(Tuple{pool.MakeInt(b), pool.MakeInt(node)});
      parents.push_back(a);
      parents.push_back(b);
    }
    level = std::move(parents);
  }
  for (size_t i = 0; i + 1 < level.size(); i += 2) {
    flat->Insert(Tuple{pool.MakeInt(level[i]), pool.MakeInt(level[i + 1])});
  }
  std::vector<ast::NailRule> rules;
  rules.push_back(bench::Require(ParseRule("sg(X,Y) :- flat(X,Y).")));
  rules.push_back(bench::Require(
      ParseRule("sg(X,Y) :- up(X,U) & sg(U,V) & down(V,Y).")));
  MagicQuery q;
  q.pred = "sg";
  q.columns = {pool.MakeInt(0), std::nullopt};
  for (auto _ : state) {
    auto rows = magic ? EvaluateWithMagic(rules, q, &db, &pool)
                      : EvaluateWithoutMagic(rules, q, &db, &pool);
    bench::Require(rows.status());
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetLabel(StrCat(magic ? "magic" : "full", "/depth=", depth));
}
BENCHMARK(BM_SameGenerationBound)->ArgsProduct({{0, 1}, {4, 6, 8}});

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
